//! Policy-level enforcement the paper requires beyond the headline
//! attack: software updates via SVN (§1: the mechanism "supports …
//! software updates"), debug-enclave rejection, and binding singletons
//! to the right application.

mod common;

use common::{World, CAS_ADDR, CONFIG_ID};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::PolicyMode;
use sinclave_repro::core::signer::SignerConfig;
use sinclave_repro::core::AppConfig;
use sinclave_repro::runtime::scone::{package_app, StartOptions};
use sinclave_repro::runtime::{ProgramImage, RuntimeError};
use sinclave_repro::sgx::attributes::Attributes;

#[test]
fn software_update_svn_gate() {
    // The user ships v1 (SVN 1); later a vulnerability is found and v2
    // (SVN 2) is released, and the CAS policy raises min_isv_svn. The
    // old binary — even via a perfectly honest singleton flow — no
    // longer receives secrets, while the new one does. This is the
    // binary-distribution-compatible update story of §4.1/§4.4.
    let image = ProgramImage::with_entry("svc", "print running", 2).sinclave_aware();
    let world = World::new(
        40,
        image.clone(),
        AppConfig { entry: "embedded".into(), ..AppConfig::default() },
        PolicyMode::Singleton,
    );

    // Re-sign the same image as "v1" with SVN 1 and "v2" with SVN 2
    // under the same signer key the CAS guards.
    let v1 = package_app(
        &image,
        &world.signer_key,
        &SignerConfig { isv_svn: 1, ..SignerConfig::default() },
    )
    .unwrap();
    let v2 = package_app(
        &image,
        &world.signer_key,
        &SignerConfig { isv_svn: 2, ..SignerConfig::default() },
    )
    .unwrap();

    // Raise the policy bar to SVN 2. (Measurements are equal for both
    // versions here since the image is identical; the SVN lives in the
    // SigStruct, exactly as in SGX TCB recovery.)
    let mut policy = sinclave_repro::cas::SessionPolicy {
        config_id: CONFIG_ID.into(),
        expected_common: v2.signed.common_measurement(),
        expected_mrsigner: world.signer_key.public_key().fingerprint(),
        min_isv_svn: 2,
        allow_debug: false,
        mode: PolicyMode::Singleton,
        config: AppConfig { entry: "embedded".into(), ..AppConfig::default() },
    };
    world.cas.add_policy(policy.clone()).unwrap();

    let cas_thread = world.serve_cas(4, 400);

    // v1 singleton: grant succeeds (the binary is genuine), but
    // attestation is denied on SVN.
    let err = world
        .host
        .start_sinclave(&v1, &StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(1))
        .unwrap_err();
    match err {
        RuntimeError::AttestationDenied { reason } => {
            assert!(reason.contains("version"), "denial: {reason}");
        }
        other => panic!("expected SVN denial, got {other:?}"),
    }

    // v2 singleton: accepted.
    let app = world
        .host
        .start_sinclave(&v2, &StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(2))
        .unwrap();
    assert_eq!(app.outcome.stdout, vec!["running"]);
    cas_thread.join().unwrap();

    // Downgrading the policy would re-admit v1 — verify the knob works
    // both ways (operator action, not attacker-reachable).
    policy.min_isv_svn = 1;
    world.cas.add_policy(policy).unwrap();
}

#[test]
fn debug_enclaves_are_refused_secrets() {
    // A debug enclave has host-readable memory; its quote must never
    // unlock production secrets even when the measurement matches.
    let image = ProgramImage::with_entry("svc", "print hi", 2);
    let world = World::new(41, image, AppConfig::default(), PolicyMode::Baseline);
    let cas_thread = world.serve_cas(1, 410);

    let mut opts = StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(3);
    opts.attributes = Attributes::debug();
    // The debug enclave cannot even EINIT against the production
    // SigStruct (attribute mask) — the first line of defense.
    let err = world.host.start_baseline(&world.packaged, &opts).unwrap_err();
    assert!(matches!(err, RuntimeError::Sgx(sinclave_repro::sgx::SgxError::AttributesRejected)));

    // Second line: even with a debug-permissive SigStruct, the CAS
    // policy refuses the quote. Re-sign with a mask ignoring DEBUG.
    let lenient = SignerConfig {
        attributes_mask: Attributes {
            flags: !sinclave_repro::sgx::attributes::DEBUG,
            xfrm: u64::MAX,
        },
        ..SignerConfig::default()
    };
    let debug_packaged = package_app(&world.packaged.image, &world.signer_key, &lenient).unwrap();
    world
        .cas
        .add_policy(sinclave_repro::cas::SessionPolicy {
            config_id: CONFIG_ID.into(),
            expected_common: debug_packaged.signed.common_measurement(),
            expected_mrsigner: world.signer_key.public_key().fingerprint(),
            min_isv_svn: 0,
            allow_debug: false,
            mode: PolicyMode::Baseline,
            config: AppConfig::default(),
        })
        .unwrap();
    let mut opts = StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(4);
    opts.attributes = Attributes::debug();
    let err = world.host.start_baseline(&debug_packaged, &opts).unwrap_err();
    match err {
        RuntimeError::AttestationDenied { reason } => {
            assert!(reason.contains("debug"), "denial: {reason}");
        }
        other => panic!("expected debug denial, got {other:?}"),
    }
    cas_thread.join().unwrap();
}

#[test]
fn singleton_of_one_binary_cannot_claim_anothers_config() {
    // Two applications, both signed by the same signer and registered
    // at the same CAS. A singleton of app A must not receive app B's
    // secrets even with a fresh, honestly-redeemed token.
    let image_a = ProgramImage::with_entry("app-a", "print a", 2).sinclave_aware();
    let world = World::new(42, image_a, AppConfig::default(), PolicyMode::Singleton);

    let image_b = ProgramImage::with_entry("app-b", "print b", 2).sinclave_aware();
    let packaged_b = package_app(&image_b, &world.signer_key, &SignerConfig::default()).unwrap();
    world
        .cas
        .add_policy(sinclave_repro::cas::SessionPolicy {
            config_id: "app-b-config".into(),
            expected_common: packaged_b.signed.common_measurement(),
            expected_mrsigner: world.signer_key.public_key().fingerprint(),
            min_isv_svn: 0,
            allow_debug: false,
            mode: PolicyMode::Singleton,
            config: AppConfig {
                entry: "embedded".into(),
                secrets: vec![("b-secret".into(), b"belongs to b".to_vec())],
                ..AppConfig::default()
            },
        })
        .unwrap();

    let cas_thread = world.serve_cas(2, 420);
    // Start app A's singleton but request app B's configuration.
    let err = world
        .host
        .start_sinclave(&world.packaged, &StartOptions::new(CAS_ADDR, "app-b-config").with_seed(5))
        .unwrap_err();
    cas_thread.join().unwrap();
    match err {
        RuntimeError::AttestationDenied { reason } => {
            assert!(reason.contains("different binary"), "denial: {reason}");
        }
        other => panic!("expected cross-binary denial, got {other:?}"),
    }
}

#[test]
fn grant_then_never_start_leaks_nothing() {
    // Unredeemed tokens are inert: requesting many grants and never
    // starting the enclaves must not affect other deployments.
    let image = ProgramImage::with_entry("svc", "print ok", 2).sinclave_aware();
    let world = World::new(
        43,
        image,
        AppConfig { entry: "embedded".into(), ..AppConfig::default() },
        PolicyMode::Singleton,
    );
    let cas_thread = world.serve_cas(5, 430);

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..3 {
        let _grant = world.host.request_grant(&world.packaged, CAS_ADDR, &mut rng).unwrap();
    }
    assert_eq!(world.cas.issuer().outstanding_tokens(), 3);

    // A legitimate start still works (2 more connections).
    let app = world
        .host
        .start_sinclave(&world.packaged, &StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(8))
        .unwrap();
    assert_eq!(app.outcome.stdout, vec!["ok"]);
    cas_thread.join().unwrap();
    assert_eq!(world.cas.issuer().outstanding_tokens(), 3, "abandoned grants stay outstanding");
}
