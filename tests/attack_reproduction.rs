//! Integration reproduction of the paper's §3.3.1 attack against the
//! *real* CAS implementation, and the §4 defense matrix.
//!
//! The headline assertions:
//!
//! * Against a **baseline** deployment, the reuse attack walks away
//!   with the user's secrets — in both report-server flavors.
//! * Against a **SinClave** deployment, every variant of the attack is
//!   refused: baseline impersonation, forged singletons, token replay,
//!   and verifier substitution.

mod common;

use common::{user_config_with_secrets, victim_interpreter, World, CAS_ADDR, CONFIG_ID};
use sinclave_repro::attack::scone_attack::{
    forged_singleton_attack, replay_singleton_start, run_reuse_attack, AttackEnvironment,
};
use sinclave_repro::cas::policy::PolicyMode;
use sinclave_repro::core::AttestationToken;
use sinclave_repro::runtime::scone::SconeHost;
use sinclave_repro::runtime::RuntimeError;

fn environment(world: &World) -> AttackEnvironment {
    AttackEnvironment {
        host: SconeHost::new(
            world.host.platform.clone(),
            world.host.qe.clone(),
            world.network.clone(),
        ),
        cas_addr: CAS_ADDR.to_owned(),
        config_id: CONFIG_ID.to_owned(),
        victim: world.packaged.clone(),
    }
}

#[test]
fn reuse_attack_steals_secrets_from_baseline_deployment() {
    let world =
        World::new(1, victim_interpreter(), user_config_with_secrets(), PolicyMode::Baseline);
    let cas_thread = world.serve_cas(1, 100);
    let env = environment(&world);

    let loot = run_reuse_attack(&env, false, 1000).expect("attack succeeds against baseline");
    cas_thread.join().unwrap();

    // The adversary holds the user's secrets.
    assert_eq!(loot.config.secret("db-password"), Some(b"correct horse battery staple".as_slice()));
    assert_eq!(loot.config.secret("api-key"), Some(b"sk-live-0123456789".as_slice()));
    // The CAS believed it served a legitimate enclave.
    assert_eq!(world.cas.stats.snapshot().configs_delivered, 1);
}

#[test]
fn reuse_attack_works_via_dynamic_import_flavor() {
    let world =
        World::new(2, victim_interpreter(), user_config_with_secrets(), PolicyMode::Baseline);
    let cas_thread = world.serve_cas(1, 200);
    let env = environment(&world);

    let loot = run_reuse_attack(&env, true, 2000).expect("dynamic-import flavor succeeds");
    cas_thread.join().unwrap();
    assert!(loot.config.secret("db-password").is_some());
}

#[test]
fn sinclave_policy_defeats_impersonation_of_unupgraded_binary() {
    // Defense layer 1 — the verifier: the user switched the CAS policy
    // to singleton-only but the old baseline binary is still out
    // there. The adversary CAN still build a report server from it,
    // and the quote is genuine — yet the CAS refuses the tokenless
    // flow.
    let world = World::new(
        3,
        victim_interpreter(), // baseline binary still circulating
        user_config_with_secrets(),
        PolicyMode::Singleton,
    );
    let cas_thread = world.serve_cas(1, 300);
    let env = environment(&world);

    let err = run_reuse_attack(&env, false, 3000).expect_err("attack must fail");
    cas_thread.join().unwrap();
    match err {
        RuntimeError::AttestationDenied { reason } => {
            assert!(reason.contains("singleton"), "denial: {reason}");
        }
        other => panic!("expected denial, got {other:?}"),
    }
    assert_eq!(world.cas.stats.snapshot().configs_delivered, 0);
}

#[test]
fn sinclave_runtime_refuses_report_server_construction() {
    // Defense layer 2 — the measured runtime: a SinClave-aware binary
    // never accepts starter-provided configuration, so the adversary
    // cannot even construct the report server; the impersonator dies
    // waiting for a report source that never comes up.
    let world = World::new(
        7,
        victim_interpreter().sinclave_aware(),
        user_config_with_secrets(),
        PolicyMode::Singleton,
    );
    let cas_thread = world.serve_cas(1, 700);
    let env = environment(&world);

    let err = run_reuse_attack(&env, false, 7000).expect_err("attack must fail");
    // Unblock the CAS accept loop.
    drop(world.network.connect(CAS_ADDR));
    cas_thread.join().unwrap();
    assert!(matches!(err, RuntimeError::Net(_)), "no report server could be built: {err:?}");
    assert_eq!(world.cas.stats.snapshot().configs_delivered, 0);
}

#[test]
fn forged_singleton_cannot_redeem_real_tokens() {
    let world = World::new(
        4,
        victim_interpreter().sinclave_aware(),
        user_config_with_secrets(),
        PolicyMode::Singleton,
    );
    // Serve enough connections: one grant + one forged-singleton
    // impersonation attempt.
    let cas_thread = world.serve_cas(2, 400);
    let env = environment(&world);

    // The adversary first obtains a *real* token (grants are free).
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(44);
    let grant =
        env.host.request_grant(&env.victim, CAS_ADDR, &mut rng).expect("grants are freely issued");

    let err = forged_singleton_attack(&env, &world.cas, grant.token, 4000)
        .expect_err("forged singleton must be refused");
    cas_thread.join().unwrap();
    match err {
        RuntimeError::AttestationDenied { reason } => {
            // The quote shows the forged measurement/signer — the real
            // CAS refuses at identity or token level.
            assert!(
                reason.contains("signer") || reason.contains("token") || reason.contains("redeem"),
                "denial: {reason}"
            );
        }
        other => panic!("expected denial, got {other:?}"),
    }
    assert_eq!(world.cas.stats.snapshot().configs_delivered, 0);
}

#[test]
fn token_replay_is_refused() {
    let world = World::new(
        5,
        sinclave_repro::runtime::ProgramImage::with_entry("svc", "print serving", 4)
            .sinclave_aware(),
        user_config_with_secrets(),
        PolicyMode::Singleton,
    );
    // grant + first attest + replayed attest.
    let cas_thread = world.serve_cas(3, 500);

    let err =
        replay_singleton_start(&world.host, &world.cas, &world.packaged, CAS_ADDR, CONFIG_ID, 5000);
    cas_thread.join().unwrap();
    match err {
        RuntimeError::AttestationDenied { reason } => {
            assert!(reason.contains("token"), "denial: {reason}");
        }
        other => panic!("expected token denial, got {other:?}"),
    }
    // Exactly one configuration ever left the CAS.
    assert_eq!(world.cas.stats.snapshot().configs_delivered, 1);
    assert_eq!(world.cas.stats.snapshot().denials, 1);
}

#[test]
fn random_token_is_refused() {
    let world = World::new(
        6,
        victim_interpreter().sinclave_aware(),
        user_config_with_secrets(),
        PolicyMode::Singleton,
    );
    let cas_thread = world.serve_cas(1, 600);
    let env = environment(&world);

    // Impersonate with a made-up token and no report server at all —
    // use the attack's own report-server-free path by starting a
    // baseline victim... which a SinClave-aware image refuses; so the
    // adversary cannot even produce a genuine report. They fall back
    // to replaying a stale quote — modeled here by the full attack
    // with a bogus token, which dies at the report-server stage
    // (victim refuses) and hence at impersonation.
    let bogus = AttestationToken([0x99; 32]);
    let err =
        forged_singleton_attack(&env, &world.cas, bogus, 6000).expect_err("bogus token refused");
    cas_thread.join().unwrap();
    assert!(matches!(err, RuntimeError::AttestationDenied { .. }));
}
