//! Admission-control and reactor-path integration tests: high fan-in
//! serving, slow-loris resilience on both serving paths, the wire
//! encoding of rate-limit/quota refusals, circuit-breaker shedding,
//! panic isolation, and the time-based snapshot tick.

mod common;

use common::{World, CAS_ADDR, CONFIG_ID};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::attack::starvation::{quota_abuse, SlowLoris};
use sinclave_repro::cas::middleware::{
    BreakerConfig, DedupConfig, MiddlewareConfig, RateLimitConfig,
};
use sinclave_repro::cas::policy::PolicyMode;
use sinclave_repro::core::protocol::Message;
use sinclave_repro::net::SecureChannel;
use sinclave_repro::runtime::ProgramImage;
use std::time::{Duration, Instant};

fn world(seed: u64) -> World {
    let image = ProgramImage::with_entry("svc", "print ok", 2).sinclave_aware();
    World::new(seed, image, common::user_config_with_secrets(), PolicyMode::Singleton)
}

fn ping(world: &World, seed: u64, rounds: usize) {
    let conn = world.network.connect(CAS_ADDR).expect("connect");
    // Under high fan-in on few cores the server's debug-mode crypto
    // serializes; only the *server's* deadlines are under test, so
    // clients wait patiently.
    conn.set_recv_timeout(Some(Duration::from_secs(300)));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    for _ in 0..rounds {
        chan.send(&Message::Ping.to_bytes()).expect("send");
        let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
        assert_eq!(reply, Message::Pong);
    }
}

#[test]
fn reactor_drives_a_thousand_concurrent_sessions() {
    let world = world(60);
    let clients = 1000;
    let cas = world.serve_cas_reactor(clients, 6000);
    std::thread::scope(|scope| {
        for i in 0..clients {
            let world = &world;
            scope.spawn(move || ping(world, 7000 + i as u64, 2));
        }
    });
    cas.join().expect("reactor");
    let stats = world.cas.stats.snapshot();
    assert_eq!(stats.denials, 0);
    assert_eq!(stats.connections_timed_out, 0);
    assert_eq!(stats.records_rejected, 0);
}

#[test]
fn slow_loris_on_reactor_is_reaped_and_healthy_clients_unaffected() {
    let world = world(61);
    world.cas.set_middleware(MiddlewareConfig {
        handshake_timeout: Some(Duration::from_millis(50)),
        idle_timeout: Some(Duration::from_millis(100)),
        ..MiddlewareConfig::default()
    });
    let (stalled, holders, healthy) = (16, 8, 8);
    let cas = world.serve_cas_reactor(stalled + holders + healthy, 6100);
    let loris = SlowLoris::launch(&world.network, CAS_ADDR, stalled, holders, 6200).expect("loris");
    assert_eq!(loris.stalled_count(), stalled);
    assert_eq!(loris.holder_count(), holders);

    // Healthy clients keep getting served while the loris holds
    // three-quarters of the server's connections hostage.
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..healthy {
            let world = &world;
            scope.spawn(move || ping(world, 6300 + i as u64, 3));
        }
    });
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "healthy clients stalled behind the loris: {:?}",
        started.elapsed()
    );
    cas.join().expect("reactor");
    loris.release();

    // Every silent connection was reaped on deadline — and reaping is
    // a *timeout*, never confused with tampering.
    let stats = world.cas.stats.snapshot();
    assert_eq!(stats.connections_timed_out, (stalled + holders) as u64);
    assert_eq!(stats.records_rejected, 0);
    assert_eq!(stats.denials, 0);
}

#[test]
fn slow_loris_on_pool_times_out_instead_of_leaking_the_worker() {
    let world = world(62);
    world.cas.set_middleware(MiddlewareConfig {
        handshake_timeout: Some(Duration::from_millis(50)),
        idle_timeout: Some(Duration::from_millis(100)),
        ..MiddlewareConfig::default()
    });
    // One worker, two connections: the loris dials first and stalls
    // mid-handshake. Without the timeout the single worker would block
    // on it forever and the healthy client would never be served.
    let cas = world.cas.serve_with_workers(&world.network, CAS_ADDR, 2, 6400, 1);
    let loris = SlowLoris::launch(&world.network, CAS_ADDR, 1, 0, 6500).expect("loris");
    ping(&world, 6600, 2);
    cas.join().expect("pool");
    loris.release();
    let stats = world.cas.stats.snapshot();
    assert_eq!(stats.connections_timed_out, 1);
    assert_eq!(stats.records_rejected, 0);
}

#[test]
fn rate_limit_refusals_encode_over_the_wire() {
    let world = world(63);
    world.cas.set_middleware(MiddlewareConfig {
        rate_limit: Some(RateLimitConfig { burst: 2, per_second: 1 }),
        ..MiddlewareConfig::default()
    });
    let cas = world.serve_cas_reactor(1, 6700);
    let report = quota_abuse(&world.network, CAS_ADDR, CONFIG_ID, 6, 6800).expect("abuser");
    cas.join().expect("reactor");
    // The burst gets through to real dispatch; everything after is
    // refused by the token bucket with the documented reason string.
    assert_eq!(report.served, 2);
    assert_eq!(report.rate_limited, 4);
    assert_eq!(report.quota_denied, 0);
    assert_eq!(world.cas.stats.snapshot().requests_rate_limited, 4);
}

#[test]
fn quota_exhausts_an_identity_on_the_pooled_path() {
    let world = world(64);
    world.cas.set_middleware(MiddlewareConfig { quota: Some(3), ..MiddlewareConfig::default() });
    let cas = world.serve_cas(1, 6900);
    let report = quota_abuse(&world.network, CAS_ADDR, CONFIG_ID, 5, 7000).expect("abuser");
    cas.join().expect("pool");
    assert_eq!(report.served, 3);
    assert_eq!(report.quota_denied, 2);
    assert_eq!(report.rate_limited, 0);
    assert_eq!(world.cas.stats.snapshot().requests_quota_denied, 2);
}

#[test]
fn open_breaker_sheds_journaling_requests_but_not_pings() {
    let world = world(65);
    world.cas.set_middleware(MiddlewareConfig {
        breaker: Some(BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(3600) }),
        ..MiddlewareConfig::default()
    });
    // One failed volume append trips the breaker open.
    world.cas.middleware().record_commit(false);

    let cas = world.serve_cas_reactor(1, 7100);
    let conn = world.network.connect(CAS_ADDR).expect("connect");
    let mut rng = StdRng::seed_from_u64(7200);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    // A grant must append to the journal — shed while the breaker is
    // open, with the retryable reason.
    chan.send(
        &Message::GrantRequest {
            common_sigstruct: world.packaged.signed.common_sigstruct.to_bytes(),
            base_hash: world.packaged.signed.base_hash.encode().to_vec(),
        }
        .to_bytes(),
    )
    .expect("send");
    let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
    assert!(
        matches!(&reply, Message::Denied { reason } if reason.starts_with("service overloaded")),
        "got {reply:?}"
    );
    // Pings touch no storage and keep flowing.
    chan.send(&Message::Ping.to_bytes()).expect("send");
    assert_eq!(Message::from_bytes(&chan.recv().expect("recv")).expect("decode"), Message::Pong);
    drop(chan);
    cas.join().expect("reactor");
    let stats = world.cas.stats.snapshot();
    assert_eq!(stats.requests_shed, 1);
    assert_eq!(stats.grants_issued, 0);
}

#[test]
fn panic_isolation_contains_a_poisoned_dispatch_on_both_paths() {
    for reactor in [true, false] {
        let world = world(66);
        world.cas.set_middleware(MiddlewareConfig {
            isolate_panics: true,
            ..MiddlewareConfig::default()
        });
        let cas = if reactor { world.serve_cas_reactor(2, 7300) } else { world.serve_cas(2, 7300) };

        // First connection trips the poisoned dispatch: the connection
        // dies, the serving thread survives.
        world.cas.set_dispatch_panic_for_tests();
        let conn = world.network.connect(CAS_ADDR).expect("connect");
        let mut rng = StdRng::seed_from_u64(7400);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
        chan.send(&Message::Ping.to_bytes()).expect("send");
        assert!(chan.recv().is_err(), "poisoned dispatch must close the connection, not reply");
        drop(chan);

        // Second connection is served normally by the same threads.
        ping(&world, 7500, 2);
        cas.join().expect("serve");
        assert_eq!(world.cas.stats.snapshot().panics_isolated, 1, "reactor={reactor}");
    }
}

#[test]
fn time_based_snapshot_tick_persists_while_idle() {
    let world = world(67);
    world.cas.set_snapshot_interval(Some(Duration::from_millis(50)));
    assert_eq!(world.cas.snapshot_interval(), Some(Duration::from_millis(50)));
    let cas = world.serve_cas_reactor(1, 7600);

    let conn = world.network.connect(CAS_ADDR).expect("connect");
    let mut rng = StdRng::seed_from_u64(7700);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    // Dirty the issuer state, then go idle: the event-count cadence
    // will never fire again, but the reactor's timer must.
    chan.send(
        &Message::GrantRequest {
            common_sigstruct: world.packaged.signed.common_sigstruct.to_bytes(),
            base_hash: world.packaged.signed.base_hash.encode().to_vec(),
        }
        .to_bytes(),
    )
    .expect("send");
    let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
    assert!(matches!(reply, Message::GrantResponse { .. }), "got {reply:?}");
    std::thread::sleep(Duration::from_millis(250));
    drop(chan);
    cas.join().expect("reactor");

    assert!(
        world.cas.stats.snapshot().snapshot_persisted >= 1,
        "idle period never hit the snapshot tick"
    );
    // The persisted snapshot is the real, restorable article.
    let bytes = world.cas.store().restore_state().expect("read").expect("snapshot present");
    sinclave_repro::core::snapshot::IssuerSnapshot::from_bytes(&bytes).expect("parses");
}

#[test]
fn identical_grant_retry_is_answered_from_the_dedup_cache() {
    let world = world(66);
    world.cas.set_middleware(MiddlewareConfig {
        dedup: Some(DedupConfig { capacity: 8, ttl: Duration::from_secs(60) }),
        ..MiddlewareConfig::default()
    });
    let cas = world.serve_cas(2, 8800);
    // The same client retries a grant it never saw the reply to —
    // e.g. the response was lost in flight. The retry must be served
    // from the dedup cache: bit-identical bytes, no second issuance.
    let request = Message::GrantRequest {
        common_sigstruct: world.packaged.signed.common_sigstruct.to_bytes(),
        base_hash: world.packaged.signed.base_hash.encode().to_vec(),
    }
    .to_bytes();
    let replies: Vec<Message> = (0..2u64)
        .map(|i| {
            let conn = world.network.connect(CAS_ADDR).expect("connect");
            let mut rng = StdRng::seed_from_u64(8900 + i);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
            chan.send(&request).expect("send");
            Message::from_bytes(&chan.recv().expect("recv")).expect("decode")
        })
        .collect();
    cas.join().expect("serve");

    assert!(matches!(replies[0], Message::GrantResponse { .. }), "got {:?}", replies[0]);
    assert_eq!(replies[0], replies[1], "retry must replay the cached reply, not mint anew");
    let stats = world.cas.stats.snapshot();
    assert_eq!(stats.dedup_hits, 1);
    assert_eq!(stats.grants_issued, 1);
}
