//! Integration reproduction of the paper's §3.3.2 attack against the
//! SGX-LKL-like stack, and its SinClave defense.

mod common;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::attack::lkl_attack::{run_lkl_interception, UserDeployment};
use sinclave_repro::core::signer::SignerConfig;
use sinclave_repro::core::verifier::SingletonIssuer;
use sinclave_repro::core::AppConfig;
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::rsa::RsaPrivateKey;
use sinclave_repro::fs::Volume;
use sinclave_repro::net::Network;
use sinclave_repro::runtime::lkl::{
    framework_image, LklController, LklHost, LklInvocation, DISK_ENTRY,
};
use sinclave_repro::runtime::scone::{package_app, PackagedApp, WireGrant};
use sinclave_repro::runtime::RuntimeError;
use sinclave_repro::sgx::attestation::AttestationService;
use sinclave_repro::sgx::platform::Platform;
use sinclave_repro::sgx::quote::QuotingEnclave;
use std::sync::Arc;

struct LklWorld {
    lkl: LklHost,
    controller: LklController,
    framework: PackagedApp,
    signer_key: RsaPrivateKey,
}

fn lkl_world(seed: u64) -> LklWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let service = AttestationService::new(&mut rng, 1024).unwrap();
    let platform = Arc::new(Platform::new(&mut rng));
    service.register_platform(platform.manufacturing_record());
    let qe =
        Arc::new(QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024).unwrap());
    let network = Network::new();
    let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let framework =
        package_app(&framework_image(8), &signer_key, &SignerConfig::default()).unwrap();
    LklWorld {
        lkl: LklHost::new(platform, qe, network.clone()),
        controller: LklController { network, attestation_root: service.root_public_key().clone() },
        framework,
        signer_key,
    }
}

fn user_disk(key_bytes: [u8; 32]) -> Arc<Mutex<Volume>> {
    let key = AeadKey::new(key_bytes);
    let mut disk = Volume::format(&key, "user-disk");
    disk.write_file(&key, DISK_ENTRY, b"secret proprietary -> p\nprint $p").unwrap();
    Arc::new(Mutex::new(disk))
}

#[test]
fn lkl_interception_steals_the_disk_key() {
    let w = lkl_world(1);
    let disk_key = [0x5e; 32];
    let user = UserDeployment {
        disk: user_disk(disk_key),
        config: AppConfig {
            volume_key: Some(disk_key),
            secrets: vec![("proprietary".into(), b"trade secret model".to_vec())],
            ..AppConfig::default()
        },
        service_addr: "lkl:443".into(),
    };

    let stolen = run_lkl_interception(&w.lkl, &w.controller, &w.framework, &user, 100)
        .expect("user-side flow completes (they are fooled)")
        .expect("impersonator captured the configuration");

    // The adversary now holds the user's disk key and secrets, and can
    // open the user's encrypted disk offline.
    assert_eq!(stolen.volume_key, Some(disk_key));
    assert_eq!(stolen.secret("proprietary"), Some(b"trade secret model".as_slice()));
    let key = AeadKey::new(stolen.volume_key.unwrap());
    let plaintext = user.disk.lock().read_file(&key, DISK_ENTRY).unwrap();
    assert!(!plaintext.is_empty(), "disk decrypted with stolen key");
}

#[test]
fn sinclave_lkl_defeats_unauthenticated_configuration() {
    // With SinClave, the framework singleton only accepts configuration
    // from the pinned verifier. The user's controller authenticates;
    // anyone else (including a replayed/hijacked configuration path)
    // cannot.
    let w = lkl_world(2);
    let mut rng = StdRng::seed_from_u64(20);
    let user_verifier = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let issuer =
        SingletonIssuer::new(w.signer_key.clone(), user_verifier.public_key().fingerprint());
    let grant_raw = issuer
        .issue(&mut rng, &w.framework.signed.common_sigstruct, &w.framework.signed.base_hash)
        .unwrap();
    let grant = WireGrant {
        token: grant_raw.token,
        verifier_identity: grant_raw.verifier_identity,
        sigstruct: grant_raw.sigstruct.clone(),
    };

    let disk_key = [0x5f; 32];
    let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let invocation = LklInvocation {
        service_addr: "lkl:444".into(),
        channel_key,
        disk: user_disk(disk_key),
        rng_seed: 21,
    };

    // The adversary connects with a quote-satisfied controller but the
    // WRONG auth key: the enclave refuses before any boot.
    let adversary_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let controller = LklController {
        network: w.controller.network.clone(),
        attestation_root: w.controller.attestation_root.clone(),
    };
    let expected = grant_raw.expected_mrenclave;
    let adversary = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut rng = StdRng::seed_from_u64(22);
        let _ = controller.attest_and_configure(
            "lkl:444",
            [1; 16],
            &AppConfig { volume_key: Some(disk_key), ..AppConfig::default() },
            |body| body.mrenclave == expected,
            Some(&adversary_key),
            &mut rng,
        );
    });

    let err = w.lkl.run_sinclave(&w.framework, &invocation, &grant).unwrap_err();
    adversary.join().unwrap();
    assert_eq!(err, RuntimeError::VerifierIdentityMismatch);
}

#[test]
fn lkl_singleton_measurement_identifies_the_user_program_instance() {
    // With SinClave the user's controller can distinguish *their*
    // singleton from any other SGX-LKL enclave: the expected
    // measurement embeds their token and identity. The baseline
    // cannot make that distinction (all framework enclaves look alike).
    let w = lkl_world(3);
    let mut rng = StdRng::seed_from_u64(30);
    let user_verifier = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let issuer =
        SingletonIssuer::new(w.signer_key.clone(), user_verifier.public_key().fingerprint());
    let g1 = issuer
        .issue(&mut rng, &w.framework.signed.common_sigstruct, &w.framework.signed.base_hash)
        .unwrap();
    let g2 = issuer
        .issue(&mut rng, &w.framework.signed.common_sigstruct, &w.framework.signed.base_hash)
        .unwrap();
    assert_ne!(g1.expected_mrenclave, g2.expected_mrenclave);
    assert_ne!(g1.expected_mrenclave, w.framework.signed.common_measurement());
}
