//! Durable attestation state across CAS restarts.
//!
//! PR 3's verified-SigStruct cache made repeat grants ~160x cheaper —
//! per process. These tests pin down the restart story: a gracefully
//! restarted CAS rebuilt from the *same encrypted volume bytes* must
//! come up warm (no re-run of the ~0.4 ms RSA verification, grants
//! bit-identical to an undisturbed instance), exactly-once token
//! redemption must hold *across* the restart, and every way a snapshot
//! can be damaged — bit flips, truncation, future versions, torn
//! mid-write chunks — must degrade to a clean cold start: no panic, no
//! partially admitted state, `CasStats::snapshot_rejected` counted.

mod common;

use common::{World, CAS_ADDR, CONFIG_ID, STORE_KEY};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::PolicyMode;
use sinclave_repro::cas::store::SNAPSHOT_PATH;
use sinclave_repro::core::protocol::Message;
use sinclave_repro::core::snapshot::{
    IssuerSnapshot, TokenSnapshotEntry, TokenSnapshotState, SNAPSHOT_VERSION,
};
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::sha256;
use sinclave_repro::fs::Volume;
use sinclave_repro::net::SecureChannel;
use std::sync::atomic::Ordering;

fn world(seed: u64) -> World {
    World::new(
        seed,
        common::victim_interpreter(),
        common::user_config_with_secrets(),
        PolicyMode::Either,
    )
}

/// Drives one grant request over a fresh secure channel and returns
/// the raw reply bytes (the unit of bit-identity).
fn grant_over_network(world: &World, conn_seed: u64) -> Vec<u8> {
    let handle = world.serve_cas(1, conn_seed);
    let conn = world.network.connect(CAS_ADDR).expect("connect");
    let mut rng = StdRng::seed_from_u64(conn_seed ^ 0x5eed);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    chan.send(
        &Message::GrantRequest {
            common_sigstruct: world.packaged.signed.common_sigstruct.to_bytes(),
            base_hash: world.packaged.signed.base_hash.encode().to_vec(),
        }
        .to_bytes(),
    )
    .expect("send");
    let reply = chan.recv().expect("recv");
    assert!(
        matches!(Message::from_bytes(&reply).expect("decode"), Message::GrantResponse { .. }),
        "expected a grant"
    );
    drop(chan);
    handle.join().expect("serve");
    reply
}

#[test]
fn cold_volume_starts_empty() {
    let w = world(0xc01d);
    assert_eq!(w.cas.issuer().verified_cache_len(), 0);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0);
    assert_eq!(w.cas.issuer().token_table_len(), 0);
    // A volume that never saw a snapshot is not a rejected snapshot.
    assert_eq!(w.cas.stats.snapshot_restored.load(Ordering::Relaxed), 0);
    assert_eq!(w.cas.stats.snapshot_rejected.load(Ordering::Relaxed), 0);
}

#[test]
fn warm_restart_skips_verification_and_grants_bit_identically() {
    // Two identical worlds serve the same connection sequence; one is
    // restarted in the middle. The restarted CAS must (a) come up with
    // its verify cache already warm — the acceptance criterion "first
    // repeat grant without re-running RSA SigStruct verification" —
    // and (b) answer with bit-identical reply bytes, proving the
    // restored caches are pure memoization.
    let mut restarted = world(77);
    let control = world(77);

    assert_eq!(grant_over_network(&restarted, 100), grant_over_network(&control, 100));
    assert_eq!(restarted.cas.issuer().verified_cache_len(), 1);

    restarted.restart_cas();
    assert_eq!(restarted.cas.stats.snapshot_restored.load(Ordering::Relaxed), 1);
    // Warm *before* serving a single request: restore, not re-verify,
    // warmed the cache.
    assert_eq!(restarted.cas.issuer().verified_cache_len(), 1);

    let after_restart = grant_over_network(&restarted, 200);
    assert_eq!(after_restart, grant_over_network(&control, 200));
    // The repeat grant was served from the restored cache: still
    // exactly one verified entry, and no snapshot was rejected.
    assert_eq!(restarted.cas.issuer().verified_cache_len(), 1);
    assert_eq!(restarted.cas.stats.snapshot_rejected.load(Ordering::Relaxed), 0);

    // Policies survived alongside (they were always durable).
    assert_eq!(restarted.cas.store().get_policy(CONFIG_ID).unwrap().config_id, CONFIG_ID);
}

#[test]
fn double_restart_stays_warm_and_identical() {
    // Restart twice in a row (deploy, then hotfix deploy): warmth and
    // bit-identity must be transitive across snapshot generations.
    let mut restarted = world(78);
    let control = world(78);
    assert_eq!(grant_over_network(&restarted, 300), grant_over_network(&control, 300));
    restarted.restart_cas();
    restarted.restart_cas();
    assert_eq!(restarted.cas.issuer().verified_cache_len(), 1);
    assert_eq!(grant_over_network(&restarted, 301), grant_over_network(&control, 301));
}

#[test]
fn redeemed_tokens_stay_redeemed_across_restart() {
    // Exactly-once across restarts, both directions: a token redeemed
    // before the snapshot is refused after restore; a token issued but
    // not yet redeemed stays redeemable exactly once.
    let mut w = world(79);
    let signed = &w.packaged.signed;
    let mut rng = StdRng::seed_from_u64(1);
    let redeemed =
        w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    let outstanding =
        w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    w.cas.issuer().redeem(&redeemed.token, &redeemed.expected_mrenclave).unwrap();
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1);

    w.restart_cas();
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1);
    assert_eq!(w.cas.issuer().redeemed_tombstones(), 1);
    // The reuse attempt the paper defends against, now across a
    // process boundary.
    assert!(w.cas.issuer().redeem(&redeemed.token, &redeemed.expected_mrenclave).is_err());
    // The legitimate singleton can still come up — once.
    w.cas.issuer().redeem(&outstanding.token, &outstanding.expected_mrenclave).unwrap();
    assert!(w.cas.issuer().redeem(&outstanding.token, &outstanding.expected_mrenclave).is_err());
}

/// Rebuilds the world's CAS after applying `mutate` to the persisted
/// snapshot plaintext (simulating a buggy or hostile writer that holds
/// the volume key — the AEAD layer cannot catch that, the snapshot's
/// own framing must). Asserts the mutated snapshot yields a clean cold
/// start.
fn assert_cold_start_after(w: &mut World, mutate: impl FnOnce(&mut Vec<u8>)) {
    w.cas.persist_state().expect("persist");
    let mut bytes = w.cas.store().restore_state().expect("read").expect("snapshot present");
    IssuerSnapshot::from_bytes(&bytes).expect("sanity: untouched snapshot decodes");
    mutate(&mut bytes);
    w.cas.store().persist_state(&bytes).expect("write mutated");
    let image = w.cas.store().volume().to_disk_image();
    w.rebuild_cas_from_image(&image);
    assert_eq!(w.cas.stats.snapshot_rejected.load(Ordering::Relaxed), 1, "rejected exactly once");
    assert_eq!(w.cas.stats.snapshot_restored.load(Ordering::Relaxed), 0);
    assert_eq!(w.cas.issuer().verified_cache_len(), 0, "no partially-admitted entries");
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0);
    assert_eq!(w.cas.issuer().token_table_len(), 0);
    // The cold CAS still serves: a fresh grant re-verifies and works.
    grant_over_network(w, 900);
    assert_eq!(w.cas.issuer().verified_cache_len(), 1);
}

#[test]
fn bit_flipped_snapshot_degrades_to_cold_start() {
    let mut w = world(80);
    grant_over_network(&w, 400);
    assert_cold_start_after(&mut w, |bytes| {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
    });
}

#[test]
fn truncated_snapshot_degrades_to_cold_start() {
    let mut w = world(81);
    grant_over_network(&w, 401);
    assert_cold_start_after(&mut w, |bytes| {
        bytes.truncate(bytes.len() - 7);
    });
}

#[test]
fn future_version_snapshot_degrades_to_cold_start() {
    // A version bump with an internally consistent checksum — what a
    // rollback from a newer deployment would leave behind. Must be
    // refused, not misparsed.
    let mut w = world(82);
    grant_over_network(&w, 402);
    assert_cold_start_after(&mut w, |bytes| {
        bytes[8..10].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_be_bytes());
        let framed = bytes.len() - 32;
        let digest = sha256::digest(&bytes[..framed]);
        bytes[framed..].copy_from_slice(digest.as_bytes());
    });
}

#[test]
fn tampered_snapshot_ciphertext_degrades_to_cold_start() {
    // Host-level tampering (no volume key): the AEAD chunk layer
    // refuses the read and the server starts cold.
    let mut w = world(83);
    grant_over_network(&w, 403);
    w.cas.persist_state().expect("persist");
    let mut volume = w.cas.store().volume();
    // The snapshot was written last, so it owns the highest file id.
    let snapshot_file = volume.raw_chunk_ids().iter().map(|&(id, _)| id).max().unwrap();
    for id in volume.raw_chunk_ids() {
        if id.0 == snapshot_file {
            assert!(volume.corrupt_chunk(id));
        }
    }
    w.rebuild_cas_from_image(&volume.to_disk_image());
    assert_eq!(w.cas.stats.snapshot_rejected.load(Ordering::Relaxed), 1);
    assert_eq!(w.cas.issuer().verified_cache_len(), 0);
    // Policies (untouched files) still load and serving still works.
    assert_eq!(w.cas.store().get_policy(CONFIG_ID).unwrap().config_id, CONFIG_ID);
    grant_over_network(&w, 901);
}

#[test]
fn crash_reexposure_window_is_bounded_by_redemption_cadence() {
    // The honest crash semantics, full network flow: with a
    // redemption-driven cadence, a token consumed by a real singleton
    // attestation is durable the moment it is redeemed — a crash
    // immediately after (no graceful persist) cannot re-expose it.
    use sinclave_repro::runtime::scone::StartOptions;
    use sinclave_repro::runtime::ProgramImage;

    let image = ProgramImage::with_entry("svc", "print ok", 2).sinclave_aware();
    let mut w = World::new(85, image, common::user_config_with_secrets(), PolicyMode::Singleton);
    w.cas.set_snapshot_cadence(1);
    let cas = w.serve_cas(2, 850); // grant + attest
    w.host
        .start_sinclave(&w.packaged, &StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(3))
        .expect("singleton lifecycle");
    cas.join().expect("serve");
    assert_eq!(w.cas.stats.tokens_redeemed.load(Ordering::Relaxed), 1);
    // Cadence 1 persisted after the grant *and* after the redemption.
    assert_eq!(w.cas.stats.snapshot_persisted.load(Ordering::Relaxed), 2);
    assert_eq!(w.cas.stats.snapshot_persist_failed.load(Ordering::Relaxed), 0);

    // Crash: rebuild from the volume as-is, no graceful persist.
    let image = w.cas.store().volume().to_disk_image();
    w.rebuild_cas_from_image(&image);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0, "redeemed token re-exposed by crash");
    assert_eq!(w.cas.issuer().redeemed_tombstones(), 1);
}

#[test]
fn crash_without_redemption_cadence_reopens_a_documented_window() {
    // The flip side, pinned down so the guarantee stays honest: with
    // the cadence disabled, a redemption after the last snapshot is
    // rolled back by a crash — the token comes back outstanding. This
    // is exactly the window the redemption cadence (or, per ROADMAP,
    // synchronous journaling) bounds; a graceful restart never has it.
    let mut w = world(86);
    let signed = w.packaged.signed.clone();
    let mut rng = StdRng::seed_from_u64(4);
    let g = w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    w.cas.persist_state().unwrap(); // snapshot sees the token as Issued
    w.cas.issuer().redeem(&g.token, &g.expected_mrenclave).unwrap();

    let image = w.cas.store().volume().to_disk_image();
    w.rebuild_cas_from_image(&image); // crash: redemption not persisted
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1, "crash rolls back to the snapshot");
    w.cas.issuer().redeem(&g.token, &g.expected_mrenclave).unwrap();

    // A graceful restart at the same point has no window at all.
    let mut w = world(86);
    let signed = w.packaged.signed.clone();
    let mut rng = StdRng::seed_from_u64(4);
    let g = w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    w.cas.persist_state().unwrap();
    w.cas.issuer().redeem(&g.token, &g.expected_mrenclave).unwrap();
    w.restart_cas();
    assert!(w.cas.issuer().redeem(&g.token, &g.expected_mrenclave).is_err());
}

#[test]
fn crash_mid_snapshot_restarts_from_previous_good_snapshot() {
    // Fault injection: the persist is torn after N chunks, for every N
    // across the snapshot's size — the window a power loss can hit.
    // The volume must stay readable and the CAS must restart from the
    // previous good snapshot, for every crash point.
    let mut w = world(84);
    let signed = w.packaged.signed.clone();

    // Generation 1: one verified binary, a redeemed token, a snapshot.
    let mut rng = StdRng::seed_from_u64(2);
    let g1 = w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    w.cas.issuer().redeem(&g1.token, &g1.expected_mrenclave).unwrap();
    w.cas.persist_state().expect("persist generation 1");
    let generation1 = w.cas.issuer().export_snapshot();

    // Generation 2 is much bigger (many outstanding tokens), so the
    // torn write spans several chunks.
    w.cas.issuer().issue_batch(&mut rng, &signed.common_sigstruct, &signed.base_hash, 180).unwrap();
    let generation2 = w.cas.issuer().export_snapshot().to_bytes();
    let chunk_count = generation2.len().div_ceil(sinclave_repro::fs::volume::CHUNK_SIZE);
    assert!(chunk_count >= 3, "need a multi-chunk snapshot, got {chunk_count}");

    let image = w.cas.store().volume().to_disk_image();
    for crash_after in 0..=chunk_count {
        let mut volume = Volume::from_disk_image(&image).expect("image");
        volume
            .write_file_interrupted(
                &AeadKey::new(STORE_KEY),
                SNAPSHOT_PATH,
                &generation2,
                crash_after,
            )
            .expect("interrupted write");
        w.rebuild_cas_from_image(&volume.to_disk_image());
        // The previous good snapshot was restored: exactly generation
        // 1's state, no panic, nothing rejected.
        assert_eq!(
            w.cas.stats.snapshot_restored.load(Ordering::Relaxed),
            1,
            "crash after {crash_after} chunks"
        );
        assert_eq!(w.cas.stats.snapshot_rejected.load(Ordering::Relaxed), 0);
        assert_eq!(w.cas.issuer().verified_cache_len(), 1);
        assert_eq!(w.cas.issuer().outstanding_tokens(), generation1.tokens.len() - 1);
        assert_eq!(w.cas.issuer().redeemed_tombstones(), 1);
        assert!(w.cas.issuer().redeem(&g1.token, &g1.expected_mrenclave).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The snapshot codec round-trips arbitrary well-formed state.
    #[test]
    fn snapshot_codec_roundtrips(
        verifier in any::<[u8; 32]>(),
        signer in any::<[u8; 32]>(),
        keys in proptest::collection::vec(any::<[u8; 64]>(), 0..12),
        issued in proptest::collection::vec(
            (any::<[u8; 32]>(), any::<[u8; 32]>(), any::<[u8; 32]>()),
            0..12,
        ),
        redeemed in proptest::collection::vec(any::<[u8; 32]>(), 0..12),
    ) {
        let mut tokens: Vec<TokenSnapshotEntry> = issued
            .into_iter()
            .map(|(token, expected, common)| TokenSnapshotEntry {
                token,
                state: TokenSnapshotState::Issued { expected, common },
            })
            .chain(redeemed.into_iter().map(|token| TokenSnapshotEntry {
                token,
                state: TokenSnapshotState::Redeemed,
            }))
            .collect();
        tokens.sort_unstable_by_key(|entry| entry.token);
        let snapshot = IssuerSnapshot {
            verifier_identity: verifier,
            signer_fingerprint: signer,
            verified_keys: keys,
            tokens,
        };
        let bytes = snapshot.to_bytes();
        prop_assert_eq!(IssuerSnapshot::from_bytes(&bytes).unwrap(), snapshot.clone());
        // Deterministic: same state, same bytes.
        prop_assert_eq!(snapshot.to_bytes(), bytes);
    }

    /// Any single bit flip anywhere in a snapshot is rejected — the
    /// trailing checksum turns "plausibly decodes to something else"
    /// into a clean refusal.
    #[test]
    fn snapshot_bit_flips_rejected(
        keys in proptest::collection::vec(any::<[u8; 64]>(), 0..6),
        tokens in proptest::collection::vec(any::<[u8; 32]>(), 0..6),
        byte_pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let snapshot = IssuerSnapshot {
            verifier_identity: [1; 32],
            signer_fingerprint: [2; 32],
            verified_keys: keys,
            tokens: tokens
                .into_iter()
                .map(|token| TokenSnapshotEntry { token, state: TokenSnapshotState::Redeemed })
                .collect(),
        };
        let mut bytes = snapshot.to_bytes();
        let idx = byte_pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert!(IssuerSnapshot::from_bytes(&bytes).is_err(),
            "flip at byte {} bit {} accepted", idx, bit);
    }

    /// Any truncation (and any trailing garbage) is rejected.
    #[test]
    fn snapshot_truncations_rejected(
        keys in proptest::collection::vec(any::<[u8; 64]>(), 0..6),
        cut_pos in any::<usize>(),
    ) {
        let snapshot = IssuerSnapshot {
            verifier_identity: [3; 32],
            signer_fingerprint: [4; 32],
            verified_keys: keys,
            tokens: Vec::new(),
        };
        let bytes = snapshot.to_bytes();
        let cut = cut_pos % bytes.len();
        prop_assert!(IssuerSnapshot::from_bytes(&bytes[..cut]).is_err());
        let mut padded = bytes;
        padded.push(0);
        prop_assert!(IssuerSnapshot::from_bytes(&padded).is_err());
    }
}
