//! Durable attestation state across CAS restarts.
//!
//! PR 3's verified-SigStruct cache made repeat grants ~160x cheaper —
//! per process. These tests pin down the restart story: a gracefully
//! restarted CAS rebuilt from the *same encrypted volume bytes* must
//! come up warm (no re-run of the ~0.4 ms RSA verification, grants
//! bit-identical to an undisturbed instance), exactly-once token
//! redemption must hold *across* the restart, and every way a snapshot
//! can be damaged — bit flips, truncation, future versions, torn
//! mid-write chunks — must degrade to a clean cold start: no panic, no
//! partially admitted state, `CasStats::snapshot_rejected` counted.

mod common;

use common::{World, CAS_ADDR, CONFIG_ID, STORE_KEY};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::PolicyMode;
use sinclave_repro::cas::store::{JOURNAL_ROOT, SNAPSHOT_PATH};
use sinclave_repro::cas::JournalMode;
use sinclave_repro::core::journal_record::{encode_batch, JournalRecord, SequencedRecord};
use sinclave_repro::core::protocol::Message;
use sinclave_repro::core::snapshot::{
    IssuerSnapshot, TokenSnapshotEntry, TokenSnapshotState, SNAPSHOT_VERSION,
};
use sinclave_repro::core::AttestationToken;
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::sha256;
use sinclave_repro::fs::journal::Journal;
use sinclave_repro::fs::Volume;
use sinclave_repro::net::SecureChannel;
use sinclave_repro::sgx::measurement::Measurement;
use sinclave_repro::sgx::sigstruct::SigStruct;

fn world(seed: u64) -> World {
    World::new(
        seed,
        common::victim_interpreter(),
        common::user_config_with_secrets(),
        PolicyMode::Either,
    )
}

/// Drives one grant request over a fresh secure channel and returns
/// the raw reply bytes (the unit of bit-identity).
fn grant_over_network(world: &World, conn_seed: u64) -> Vec<u8> {
    let handle = world.serve_cas(1, conn_seed);
    let conn = world.network.connect(CAS_ADDR).expect("connect");
    let mut rng = StdRng::seed_from_u64(conn_seed ^ 0x5eed);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    chan.send(
        &Message::GrantRequest {
            common_sigstruct: world.packaged.signed.common_sigstruct.to_bytes(),
            base_hash: world.packaged.signed.base_hash.encode().to_vec(),
        }
        .to_bytes(),
    )
    .expect("send");
    let reply = chan.recv().expect("recv");
    assert!(
        matches!(Message::from_bytes(&reply).expect("decode"), Message::GrantResponse { .. }),
        "expected a grant"
    );
    drop(chan);
    handle.join().expect("serve");
    reply
}

#[test]
fn cold_volume_starts_empty() {
    let w = world(0xc01d);
    assert_eq!(w.cas.issuer().verified_cache_len(), 0);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0);
    assert_eq!(w.cas.issuer().token_table_len(), 0);
    // A volume that never saw a snapshot is not a rejected snapshot.
    assert_eq!(w.cas.stats.snapshot().snapshot_restored, 0);
    assert_eq!(w.cas.stats.snapshot().snapshot_rejected, 0);
}

#[test]
fn warm_restart_skips_verification_and_grants_bit_identically() {
    // Two identical worlds serve the same connection sequence; one is
    // restarted in the middle. The restarted CAS must (a) come up with
    // its verify cache already warm — the acceptance criterion "first
    // repeat grant without re-running RSA SigStruct verification" —
    // and (b) answer with bit-identical reply bytes, proving the
    // restored caches are pure memoization.
    let mut restarted = world(77);
    let control = world(77);

    assert_eq!(grant_over_network(&restarted, 100), grant_over_network(&control, 100));
    assert_eq!(restarted.cas.issuer().verified_cache_len(), 1);

    restarted.restart_cas();
    assert_eq!(restarted.cas.stats.snapshot().snapshot_restored, 1);
    // Warm *before* serving a single request: restore, not re-verify,
    // warmed the cache.
    assert_eq!(restarted.cas.issuer().verified_cache_len(), 1);

    let after_restart = grant_over_network(&restarted, 200);
    assert_eq!(after_restart, grant_over_network(&control, 200));
    // The repeat grant was served from the restored cache: still
    // exactly one verified entry, and no snapshot was rejected.
    assert_eq!(restarted.cas.issuer().verified_cache_len(), 1);
    assert_eq!(restarted.cas.stats.snapshot().snapshot_rejected, 0);

    // Policies survived alongside (they were always durable).
    assert_eq!(restarted.cas.store().get_policy(CONFIG_ID).unwrap().config_id, CONFIG_ID);
}

#[test]
fn double_restart_stays_warm_and_identical() {
    // Restart twice in a row (deploy, then hotfix deploy): warmth and
    // bit-identity must be transitive across snapshot generations.
    let mut restarted = world(78);
    let control = world(78);
    assert_eq!(grant_over_network(&restarted, 300), grant_over_network(&control, 300));
    restarted.restart_cas();
    restarted.restart_cas();
    assert_eq!(restarted.cas.issuer().verified_cache_len(), 1);
    assert_eq!(grant_over_network(&restarted, 301), grant_over_network(&control, 301));
}

#[test]
fn redeemed_tokens_stay_redeemed_across_restart() {
    // Exactly-once across restarts, both directions: a token redeemed
    // before the snapshot is refused after restore; a token issued but
    // not yet redeemed stays redeemable exactly once.
    let mut w = world(79);
    let signed = &w.packaged.signed;
    let mut rng = StdRng::seed_from_u64(1);
    let redeemed =
        w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    let outstanding =
        w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    w.cas.issuer().redeem(&redeemed.token, &redeemed.expected_mrenclave).unwrap();
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1);

    w.restart_cas();
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1);
    assert_eq!(w.cas.issuer().redeemed_tombstones(), 1);
    // The reuse attempt the paper defends against, now across a
    // process boundary.
    assert!(w.cas.issuer().redeem(&redeemed.token, &redeemed.expected_mrenclave).is_err());
    // The legitimate singleton can still come up — once.
    w.cas.issuer().redeem(&outstanding.token, &outstanding.expected_mrenclave).unwrap();
    assert!(w.cas.issuer().redeem(&outstanding.token, &outstanding.expected_mrenclave).is_err());
}

/// Rebuilds the world's CAS after applying `mutate` to the persisted
/// snapshot plaintext (simulating a buggy or hostile writer that holds
/// the volume key — the AEAD layer cannot catch that, the snapshot's
/// own framing must). Asserts the mutated snapshot yields a clean cold
/// start.
fn assert_cold_start_after(w: &mut World, mutate: impl FnOnce(&mut Vec<u8>)) {
    w.cas.persist_state().expect("persist");
    let mut bytes = w.cas.store().restore_state().expect("read").expect("snapshot present");
    IssuerSnapshot::from_bytes(&bytes).expect("sanity: untouched snapshot decodes");
    mutate(&mut bytes);
    w.cas.store().persist_state(&bytes).expect("write mutated");
    let image = w.cas.store().volume().to_disk_image();
    w.rebuild_cas_from_image(&image);
    assert_eq!(w.cas.stats.snapshot().snapshot_rejected, 1, "rejected exactly once");
    assert_eq!(w.cas.stats.snapshot().snapshot_restored, 0);
    assert_eq!(w.cas.issuer().verified_cache_len(), 0, "no partially-admitted entries");
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0);
    assert_eq!(w.cas.issuer().token_table_len(), 0);
    // The cold CAS still serves: a fresh grant re-verifies and works.
    grant_over_network(w, 900);
    assert_eq!(w.cas.issuer().verified_cache_len(), 1);
}

#[test]
fn bit_flipped_snapshot_degrades_to_cold_start() {
    let mut w = world(80);
    grant_over_network(&w, 400);
    assert_cold_start_after(&mut w, |bytes| {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
    });
}

#[test]
fn truncated_snapshot_degrades_to_cold_start() {
    let mut w = world(81);
    grant_over_network(&w, 401);
    assert_cold_start_after(&mut w, |bytes| {
        bytes.truncate(bytes.len() - 7);
    });
}

#[test]
fn future_version_snapshot_degrades_to_cold_start() {
    // A version bump with an internally consistent checksum — what a
    // rollback from a newer deployment would leave behind. Must be
    // refused, not misparsed.
    let mut w = world(82);
    grant_over_network(&w, 402);
    assert_cold_start_after(&mut w, |bytes| {
        bytes[8..10].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_be_bytes());
        let framed = bytes.len() - 32;
        let digest = sha256::digest(&bytes[..framed]);
        bytes[framed..].copy_from_slice(digest.as_bytes());
    });
}

#[test]
fn tampered_snapshot_ciphertext_degrades_to_cold_start() {
    // Host-level tampering (no volume key): the AEAD chunk layer
    // refuses the read and the server starts cold.
    let mut w = world(83);
    grant_over_network(&w, 403);
    w.cas.persist_state().expect("persist");
    let mut volume = w.cas.store().volume();
    // The snapshot was written last, so it owns the highest file id.
    let snapshot_file = volume.raw_chunk_ids().iter().map(|&(id, _)| id).max().unwrap();
    for id in volume.raw_chunk_ids() {
        if id.0 == snapshot_file {
            assert!(volume.corrupt_chunk(id));
        }
    }
    w.rebuild_cas_from_image(&volume.to_disk_image());
    assert_eq!(w.cas.stats.snapshot().snapshot_rejected, 1);
    assert_eq!(w.cas.issuer().verified_cache_len(), 0);
    // Policies (untouched files) still load and serving still works.
    assert_eq!(w.cas.store().get_policy(CONFIG_ID).unwrap().config_id, CONFIG_ID);
    grant_over_network(&w, 901);
}

#[test]
fn crash_reexposure_window_is_bounded_by_redemption_cadence() {
    // The honest crash semantics, full network flow: with a
    // redemption-driven cadence, a token consumed by a real singleton
    // attestation is durable the moment it is redeemed — a crash
    // immediately after (no graceful persist) cannot re-expose it.
    use sinclave_repro::runtime::scone::StartOptions;
    use sinclave_repro::runtime::ProgramImage;

    let image = ProgramImage::with_entry("svc", "print ok", 2).sinclave_aware();
    let mut w = World::new(85, image, common::user_config_with_secrets(), PolicyMode::Singleton);
    w.cas.set_snapshot_cadence(1);
    let cas = w.serve_cas(2, 850); // grant + attest
    w.host
        .start_sinclave(&w.packaged, &StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(3))
        .expect("singleton lifecycle");
    cas.join().expect("serve");
    assert_eq!(w.cas.stats.snapshot().tokens_redeemed, 1);
    // Cadence 1 persisted after the grant *and* after the redemption.
    assert_eq!(w.cas.stats.snapshot().snapshot_persisted, 2);
    assert_eq!(w.cas.stats.snapshot().snapshot_persist_failed, 0);

    // Crash: rebuild from the volume as-is, no graceful persist.
    let image = w.cas.store().volume().to_disk_image();
    w.rebuild_cas_from_image(&image);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0, "redeemed token re-exposed by crash");
    assert_eq!(w.cas.issuer().redeemed_tombstones(), 1);
}

#[test]
fn crash_without_redemption_cadence_reopens_a_documented_window() {
    // The flip side, pinned down so the guarantee stays honest: with
    // the cadence disabled, a redemption after the last snapshot is
    // rolled back by a crash — the token comes back outstanding. This
    // is exactly the window the redemption cadence (or, per ROADMAP,
    // synchronous journaling) bounds; a graceful restart never has it.
    let mut w = world(86);
    let signed = w.packaged.signed.clone();
    let mut rng = StdRng::seed_from_u64(4);
    let g = w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    w.cas.persist_state().unwrap(); // snapshot sees the token as Issued
    w.cas.issuer().redeem(&g.token, &g.expected_mrenclave).unwrap();

    let image = w.cas.store().volume().to_disk_image();
    w.rebuild_cas_from_image(&image); // crash: redemption not persisted
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1, "crash rolls back to the snapshot");
    w.cas.issuer().redeem(&g.token, &g.expected_mrenclave).unwrap();

    // A graceful restart at the same point has no window at all.
    let mut w = world(86);
    let signed = w.packaged.signed.clone();
    let mut rng = StdRng::seed_from_u64(4);
    let g = w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    w.cas.persist_state().unwrap();
    w.cas.issuer().redeem(&g.token, &g.expected_mrenclave).unwrap();
    w.restart_cas();
    assert!(w.cas.issuer().redeem(&g.token, &g.expected_mrenclave).is_err());
}

#[test]
fn crash_mid_snapshot_restarts_from_previous_good_snapshot() {
    // Fault injection: the persist is torn after N chunks, for every N
    // across the snapshot's size — the window a power loss can hit.
    // The volume must stay readable and the CAS must restart from the
    // previous good snapshot, for every crash point.
    let mut w = world(84);
    let signed = w.packaged.signed.clone();

    // Generation 1: one verified binary, a redeemed token, a snapshot.
    let mut rng = StdRng::seed_from_u64(2);
    let g1 = w.cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
    w.cas.issuer().redeem(&g1.token, &g1.expected_mrenclave).unwrap();
    w.cas.persist_state().expect("persist generation 1");
    let generation1 = w.cas.issuer().export_snapshot();

    // Generation 2 is much bigger (many outstanding tokens), so the
    // torn write spans several chunks.
    w.cas.issuer().issue_batch(&mut rng, &signed.common_sigstruct, &signed.base_hash, 180).unwrap();
    let generation2 = w.cas.issuer().export_snapshot().to_bytes();
    let chunk_count = generation2.len().div_ceil(sinclave_repro::fs::volume::CHUNK_SIZE);
    assert!(chunk_count >= 3, "need a multi-chunk snapshot, got {chunk_count}");

    let image = w.cas.store().volume().to_disk_image();
    for crash_after in 0..=chunk_count {
        let mut volume = Volume::from_disk_image(&image).expect("image");
        volume
            .write_file_interrupted(
                &AeadKey::new(STORE_KEY),
                SNAPSHOT_PATH,
                &generation2,
                crash_after,
            )
            .expect("interrupted write");
        w.rebuild_cas_from_image(&volume.to_disk_image());
        // The previous good snapshot was restored: exactly generation
        // 1's state, no panic, nothing rejected.
        assert_eq!(w.cas.stats.snapshot().snapshot_restored, 1, "crash after {crash_after} chunks");
        assert_eq!(w.cas.stats.snapshot().snapshot_rejected, 0);
        assert_eq!(w.cas.issuer().verified_cache_len(), 1);
        assert_eq!(w.cas.issuer().outstanding_tokens(), generation1.tokens.len() - 1);
        assert_eq!(w.cas.issuer().redeemed_tombstones(), 1);
        assert!(w.cas.issuer().redeem(&g1.token, &g1.expected_mrenclave).is_err());
    }
}

// ---- Sealed redemption journal ------------------------------------------

/// Drives one grant over the network (so the server journals it) and
/// returns the token plus the predicted singleton measurement.
fn grant_token_over_network(world: &World, conn_seed: u64) -> (AttestationToken, Measurement) {
    let reply = grant_over_network(world, conn_seed);
    let Message::GrantResponse { token, sigstruct, .. } =
        Message::from_bytes(&reply).expect("decode")
    else {
        unreachable!("grant_over_network asserts a GrantResponse");
    };
    let sigstruct = SigStruct::from_bytes(&sigstruct).expect("sigstruct");
    (token, sigstruct.body().enclave_hash)
}

/// Crash-rebuilds the CAS from the volume as-is (no graceful persist).
fn crash(world: &mut World) {
    let image = world.cas.store().volume().to_disk_image();
    world.rebuild_cas_from_image(&image);
}

#[test]
fn journal_replays_grant_after_crash_without_snapshot() {
    // A granted token must survive a crash even though no snapshot was
    // ever written: the grant delta was journaled before the reply.
    let mut w = world(0x10a1);
    let (token, expected) = grant_token_over_network(&w, 500);
    assert_eq!(w.cas.stats.snapshot().journal_appended, 1);

    crash(&mut w);
    assert_eq!(w.cas.stats.snapshot().journal_replayed, 1);
    assert_eq!(w.cas.stats.snapshot().journal_rejected, 0);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1, "granted token lost by crash");
    // Redeemable exactly once, same as if the crash never happened.
    w.cas.redeem_token(&token, &expected).unwrap();
    assert!(w.cas.redeem_token(&token, &expected).is_err());
}

#[test]
fn journal_acked_redemption_is_crash_proof() {
    // The tentpole property: once a redemption is acked, no crash —
    // with or without a snapshot — can ever make the token redeemable
    // again. (Contrast with `crash_without_redemption_cadence_…`,
    // which redeems at the issuer layer, below the journal, and keeps
    // the old window to pin the ablation honest.)
    let mut w = world(0x10a2);
    let (token, expected) = grant_token_over_network(&w, 510);
    w.cas.redeem_token(&token, &expected).expect("redeem");
    assert_eq!(w.cas.stats.snapshot().tokens_redeemed, 1);
    assert_eq!(w.cas.stats.snapshot().snapshot_persisted, 0, "no snapshot involved");

    crash(&mut w);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0, "crash re-exposed an acked redemption");
    assert_eq!(w.cas.issuer().redeemed_tombstones(), 1);
    assert!(w.cas.redeem_token(&token, &expected).is_err(), "token replayed after crash");

    // And across a second crash, from the replayed journal.
    crash(&mut w);
    assert!(w.cas.redeem_token(&token, &expected).is_err());
}

#[test]
fn journal_group_commit_preserves_concurrent_redemptions() {
    // Concurrent redemptions on the sharded server batch through the
    // group-commit pipe; every acked one must survive a crash.
    let mut w = world(0x10a3);
    let grants: Vec<_> = (0..8).map(|i| grant_token_over_network(&w, 520 + i)).collect();
    std::thread::scope(|scope| {
        for (token, expected) in &grants {
            let cas = w.cas.clone();
            scope.spawn(move || cas.redeem_token(token, expected).expect("redeem"));
        }
    });
    // Every grant and every redemption became a durable record.
    assert_eq!(w.cas.stats.snapshot().journal_appended, 16);
    assert_eq!(w.cas.stats.snapshot().journal_append_failed, 0);

    crash(&mut w);
    assert_eq!(w.cas.stats.snapshot().journal_replayed, 16);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0);
    for (token, expected) in &grants {
        assert!(w.cas.redeem_token(token, expected).is_err(), "acked redemption replayed");
    }
}

#[test]
fn journal_torn_append_sweep_never_replays_acked_redemptions() {
    // THE acceptance sweep, chunk level: two redemptions are acked,
    // then the *next* append (never acked) is torn at every byte of
    // its sealed chunk. At every crash point the restarted CAS must
    // hold both acked redemptions, count the torn tail, and never
    // panic or quarantine.
    let mut w = world(0x10a4);
    let (t1, e1) = grant_token_over_network(&w, 530);
    let (t2, e2) = grant_token_over_network(&w, 531);
    let (t3, _e3) = grant_token_over_network(&w, 532);
    w.cas.redeem_token(&t1, &e1).unwrap();
    w.cas.redeem_token(&t2, &e2).unwrap();
    let image = w.cas.store().volume().to_disk_image();

    // The in-flight append a crash interrupts: a redemption record
    // for the still-outstanding third token.
    let torn_record =
        SequencedRecord { seq: 6, record: JournalRecord::TokenRedeemed { token: t3.0 } };
    let payload = torn_record.to_bytes();
    let sealed_len = payload.len() + 16; // + AEAD tag
    let key = AeadKey::new(STORE_KEY);
    for keep in 0..sealed_len {
        let mut volume = Volume::from_disk_image(&image).expect("image");
        let (mut journal, _) = Journal::recover(&mut volume, &key, JOURNAL_ROOT).expect("journal");
        journal.append_torn(&mut volume, &key, &payload, keep).expect("torn append");

        w.rebuild_cas_from_image(&volume.to_disk_image());
        assert_eq!(
            w.cas.stats.snapshot().journal_rejected,
            1,
            "torn tail not counted at keep {keep}"
        );
        assert_eq!(w.cas.stats.snapshot().tokens_quarantined, 0, "keep {keep}");
        // Both acked redemptions held; the never-acked one rolled back
        // to outstanding (its client never got a reply).
        assert!(w.cas.redeem_token(&t1, &e1).is_err(), "t1 replayed at keep {keep}");
        assert!(w.cas.redeem_token(&t2, &e2).is_err(), "t2 replayed at keep {keep}");
        assert_eq!(w.cas.issuer().outstanding_tokens(), 1, "keep {keep}");
    }
}

#[test]
fn journal_torn_batch_sweep_degrades_to_last_complete_record() {
    // THE acceptance sweep, record level: a group-commit batch of
    // three redemption records lands torn at every byte boundary —
    // exactly the records whose frames completed are applied, the rest
    // roll back (never acked), and the damage is counted. Cuts on
    // record boundaries are clean commits and reject nothing.
    let mut w = world(0x10a5);
    let grants: Vec<_> = (0..3).map(|i| grant_token_over_network(&w, 540 + i)).collect();
    let image = w.cas.store().volume().to_disk_image();

    let records: Vec<SequencedRecord> = grants
        .iter()
        .enumerate()
        .map(|(i, (token, _))| SequencedRecord {
            seq: 4 + i as u64,
            record: JournalRecord::TokenRedeemed { token: token.0 },
        })
        .collect();
    let batch = encode_batch(&records);
    let boundaries: Vec<usize> = records
        .iter()
        .scan(0, |pos, r| {
            *pos += r.to_bytes().len();
            Some(*pos)
        })
        .collect();
    let key = AeadKey::new(STORE_KEY);
    for cut in 0..=batch.len() {
        let mut volume = Volume::from_disk_image(&image).expect("image");
        let (mut journal, _) = Journal::recover(&mut volume, &key, JOURNAL_ROOT).expect("journal");
        journal.append(&mut volume, &key, &batch[..cut]);

        w.rebuild_cas_from_image(&volume.to_disk_image());
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        let clean = cut == 0 || boundaries.contains(&cut);
        assert_eq!(w.cas.stats.snapshot().journal_rejected, u64::from(!clean), "cut {cut}");
        assert_eq!(w.cas.stats.snapshot().tokens_quarantined, 0, "cut {cut}");
        assert_eq!(
            w.cas.issuer().outstanding_tokens(),
            grants.len() - complete,
            "cut {cut}: restored past the last complete record"
        );
        for (i, (token, expected)) in grants.iter().enumerate() {
            let redeem = w.cas.redeem_token(token, expected);
            if i < complete {
                assert!(redeem.is_err(), "cut {cut}: acked redemption {i} replayed");
            } else {
                assert!(redeem.is_ok(), "cut {cut}: rolled-back token {i} unusable");
            }
        }
    }
}

#[test]
fn journal_corruption_before_committed_records_fails_closed() {
    // Damage a crash cannot produce — an early record corrupted with
    // committed records after it — is treated as tampering: the clean
    // prefix stands, and every outstanding token is quarantined so
    // nothing the log cannot vouch for is ever honored.
    let mut w = world(0x10a6);
    let (t1, e1) = grant_token_over_network(&w, 550);
    let (t2, e2) = grant_token_over_network(&w, 551);
    w.cas.redeem_token(&t1, &e1).unwrap();

    let mut volume = w.cas.store().volume();
    let key = AeadKey::new(STORE_KEY);
    let epoch = *Journal::epochs(&volume, &key, JOURNAL_ROOT).unwrap().first().unwrap();
    let path = format!("{JOURNAL_ROOT}/epoch-{epoch:016x}");
    let ids = volume.chunk_ids_for(&key, &path).unwrap();
    assert_eq!(ids.len(), 3, "two grants + one redemption");
    assert!(volume.corrupt_chunk(ids[0])); // the first grant's record

    w.rebuild_cas_from_image(&volume.to_disk_image());
    assert_eq!(w.cas.stats.snapshot().journal_rejected, 1);
    // Nothing outstanding survived the quarantine; the acked
    // redemption's token is refused either way (unknown), and the
    // quarantined one must be re-granted.
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0);
    assert!(w.cas.redeem_token(&t1, &e1).is_err());
    assert!(w.cas.redeem_token(&t2, &e2).is_err());
    // The CAS still serves: a fresh grant works (and re-journals).
    grant_over_network(&w, 552);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1);
}

#[test]
fn whole_disk_image_rollback_detected_and_quarantined() {
    // A host replaying an entire older disk image: the snapshot and
    // every checkpoint in it carry an older restore generation than
    // the witness the deployment keeps outside the volume.
    let mut w = world(0x10a7);
    grant_token_over_network(&w, 560);
    w.cas.persist_state().unwrap();
    let old_image = w.cas.store().volume().to_disk_image();
    let old_generation = w.cas.restore_generation();

    // Life moves on: more durable state, another persisted snapshot.
    let (token, expected) = grant_token_over_network(&w, 561);
    w.cas.persist_state().unwrap();
    let witness = w.cas.restore_generation();
    let witness_seq = w.cas.journal_sequence();
    assert!(witness > old_generation);

    // Graceful restore of the *current* image: no alarm.
    w.restart_cas();
    assert_eq!(w.cas.stats.snapshot().rollback_detected, 0);

    // Restore of the old image: detected, counted, quarantined.
    w.rebuild_cas_from_image(&old_image);
    assert!(w.cas.check_rollback(witness, witness_seq));
    assert_eq!(w.cas.stats.snapshot().rollback_detected, 1);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0, "rolled-back tokens honored");
    assert!(w.cas.redeem_token(&token, &expected).is_err());
    assert!(w.cas.stats.snapshot().tokens_quarantined >= 1);
}

#[test]
fn deleted_journal_tail_detected_by_sequence_witness() {
    // A host can delete the last committed journal chunk(s); at the
    // storage layer that is indistinguishable from a clean journal
    // end (no AEAD failure, no gap), so the torn-tail classifier
    // rightly stays silent. The *sequence* half of the rollback
    // witness catches it: the replayed journal ends before the
    // witnessed sequence.
    let mut w = world(0x10ab);
    let (t1, e1) = grant_token_over_network(&w, 565);
    w.cas.redeem_token(&t1, &e1).unwrap();
    let witness_gen = w.cas.restore_generation();
    let witness_seq = w.cas.journal_sequence();

    // Delete the redemption's chunk — the committed tail.
    let mut volume = w.cas.store().volume();
    let key = AeadKey::new(STORE_KEY);
    let epoch = *Journal::epochs(&volume, &key, JOURNAL_ROOT).unwrap().first().unwrap();
    let path = format!("{JOURNAL_ROOT}/epoch-{epoch:016x}");
    let ids = volume.chunk_ids_for(&key, &path).unwrap();
    let last = *ids.last().unwrap();
    assert!(volume.delete_chunk(last));

    w.rebuild_cas_from_image(&volume.to_disk_image());
    // Storage sees a clean end — no journal damage to count…
    assert_eq!(w.cas.stats.snapshot().journal_rejected, 0);
    // …but the witness does not: rollback detected, outstanding
    // quarantined, and the token whose redemption was deleted can
    // never be redeemed again.
    assert!(w.cas.check_rollback(witness_gen, witness_seq));
    assert_eq!(w.cas.stats.snapshot().rollback_detected, 1);
    assert!(w.cas.redeem_token(&t1, &e1).is_err(), "deleted-tail redemption replayed");
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0);
}

#[test]
fn deleted_middle_epoch_quarantines_via_sequence_gap() {
    // A host deletes every chunk of a *middle* journal epoch (say, the
    // one holding an acked redemption). Storage cannot distinguish an
    // emptied epoch from one that never had appends, so the chunk
    // classifier stays silent — but the records in later epochs now
    // jump the sequence past the snapshot's baseline, and that gap is
    // proof of loss: fail closed.
    let mut w = world(0x10ac);
    let (t1, e1) = grant_token_over_network(&w, 566); // seq 1
    w.cas.persist_state().unwrap(); // checkpoint seq 2; snapshot baseline 2 holds t1 as Issued
    w.restart_cas(); // fresh epoch E2
    w.cas.redeem_token(&t1, &e1).unwrap(); // seq 3, acked, in E2
    crash(&mut w); // fresh epoch E3
    grant_token_over_network(&w, 567); // seq 4, in E3

    let mut volume = w.cas.store().volume();
    let key = AeadKey::new(STORE_KEY);
    let epochs = Journal::epochs(&volume, &key, JOURNAL_ROOT).unwrap();
    // Delete every chunk of the epoch holding the acked redemption
    // (the middle one: checkpoint epoch, E2, E3-active).
    let path = format!("{JOURNAL_ROOT}/epoch-{:016x}", epochs[1]);
    let ids = volume.chunk_ids_for(&key, &path).unwrap();
    assert!(!ids.is_empty());
    for id in ids {
        assert!(volume.delete_chunk(id));
    }

    w.rebuild_cas_from_image(&volume.to_disk_image());
    assert_eq!(w.cas.stats.snapshot().journal_rejected, 1, "gap not counted");
    assert!(w.cas.stats.snapshot().tokens_quarantined >= 1);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0);
    // The acked redemption's token was restored Issued from the
    // snapshot; the quarantine is what keeps it unredeemable.
    assert!(w.cas.redeem_token(&t1, &e1).is_err(), "deleted-epoch redemption replayed");
}

#[test]
fn restart_loops_do_not_grow_the_journal() {
    // Every open rolls a fresh epoch; without pruning, a deploy loop
    // with no token activity would grow the manifest one empty epoch
    // per restart forever (and clean-skip persists never truncate).
    let mut w = world(0x10ad);
    let (token, expected) = grant_token_over_network(&w, 575);
    w.cas.redeem_token(&token, &expected).unwrap();
    w.cas.persist_state().unwrap();
    for _ in 0..5 {
        w.restart_cas(); // persist skips (clean); recover prunes
        assert!(
            w.cas.store().journal_epoch_count().unwrap() <= 2,
            "journal epochs grew across idle restarts"
        );
    }
}

#[test]
fn clean_snapshots_are_skipped_not_rewritten() {
    // The dirty-epoch check: persisting twice without any durable
    // mutation writes once and skips once; a mutation re-arms it.
    let mut w = world(0x10a8);
    grant_token_over_network(&w, 570);
    w.cas.persist_state().unwrap();
    assert_eq!(w.cas.stats.snapshot().snapshot_persisted, 1);
    assert_eq!(w.cas.stats.snapshot().snapshot_skipped_clean, 0);

    w.cas.persist_state().unwrap();
    assert_eq!(w.cas.stats.snapshot().snapshot_persisted, 1, "clean state rewritten");
    assert_eq!(w.cas.stats.snapshot().snapshot_skipped_clean, 1);

    grant_token_over_network(&w, 571);
    w.cas.persist_state().unwrap();
    assert_eq!(w.cas.stats.snapshot().snapshot_persisted, 2);

    // A graceful restart replays only the checkpoint (no token
    // records beyond the snapshot), so the restored state is clean
    // too: the shutdown persist of the next restart skips.
    w.restart_cas();
    assert_eq!(w.cas.stats.snapshot().snapshot_skipped_clean, 0);
    w.cas.persist_state().unwrap();
    assert_eq!(w.cas.stats.snapshot().snapshot_skipped_clean, 1);
    assert_eq!(w.cas.stats.snapshot().snapshot_persisted, 0);
}

#[test]
fn journal_stays_bounded_by_checkpoint_truncation() {
    // Snapshot persistence is checkpoint + truncation: however many
    // events and restarts happened, at most the suffix since the last
    // snapshot (plus the fresh epoch) stays on the volume.
    let mut w = world(0x10a9);
    for round in 0..3u64 {
        for i in 0..4 {
            let (token, expected) = grant_token_over_network(&w, 580 + round * 10 + i);
            w.cas.redeem_token(&token, &expected).unwrap();
        }
        w.cas.persist_state().unwrap();
        assert_eq!(
            w.cas.store().journal_epoch_count().unwrap(),
            1,
            "round {round}: retired epochs not truncated"
        );
        w.restart_cas();
    }
    // Replay after the last restart applied no token records: the
    // snapshot covered everything.
    assert_eq!(w.cas.issuer().outstanding_tokens(), 0);
    assert_eq!(w.cas.issuer().redeemed_tombstones(), 12);
}

#[test]
fn disabled_journal_honestly_reopens_the_crash_window() {
    // The opt-out keeps the pre-journal semantics — and the bench's
    // no-journal baseline honest: an acked redemption after the last
    // snapshot is rolled back by a crash.
    let mut w = world(0x10aa);
    w.cas.set_journal_mode(JournalMode::Disabled);
    let (token, expected) = grant_token_over_network(&w, 590);
    w.cas.persist_state().unwrap(); // snapshot sees the token as Issued
    w.cas.redeem_token(&token, &expected).unwrap();
    assert_eq!(w.cas.stats.snapshot().journal_appended, 0);

    crash(&mut w);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1, "the documented window");
    w.cas.redeem_token(&token, &expected).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The snapshot codec round-trips arbitrary well-formed state.
    #[test]
    fn snapshot_codec_roundtrips(
        verifier in any::<[u8; 32]>(),
        signer in any::<[u8; 32]>(),
        keys in proptest::collection::vec(any::<[u8; 64]>(), 0..12),
        issued in proptest::collection::vec(
            (any::<[u8; 32]>(), any::<[u8; 32]>(), any::<[u8; 32]>()),
            0..12,
        ),
        redeemed in proptest::collection::vec(any::<[u8; 32]>(), 0..12),
    ) {
        let mut tokens: Vec<TokenSnapshotEntry> = issued
            .into_iter()
            .map(|(token, expected, common)| TokenSnapshotEntry {
                token,
                state: TokenSnapshotState::Issued { expected, common },
            })
            .chain(redeemed.into_iter().map(|token| TokenSnapshotEntry {
                token,
                state: TokenSnapshotState::Redeemed,
            }))
            .collect();
        tokens.sort_unstable_by_key(|entry| entry.token);
        let snapshot = IssuerSnapshot {
            verifier_identity: verifier,
            signer_fingerprint: signer,
            generation: 1,
            journal_sequence: 7,
            fence: 0,
            verified_keys: keys,
            tokens,
        };
        let bytes = snapshot.to_bytes();
        prop_assert_eq!(IssuerSnapshot::from_bytes(&bytes).unwrap(), snapshot.clone());
        // Deterministic: same state, same bytes.
        prop_assert_eq!(snapshot.to_bytes(), bytes);
    }

    /// Any single bit flip anywhere in a snapshot is rejected — the
    /// trailing checksum turns "plausibly decodes to something else"
    /// into a clean refusal.
    #[test]
    fn snapshot_bit_flips_rejected(
        keys in proptest::collection::vec(any::<[u8; 64]>(), 0..6),
        tokens in proptest::collection::vec(any::<[u8; 32]>(), 0..6),
        byte_pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let snapshot = IssuerSnapshot {
            verifier_identity: [1; 32],
            signer_fingerprint: [2; 32],
            generation: 1,
            journal_sequence: 7,
            fence: 0,
            verified_keys: keys,
            tokens: tokens
                .into_iter()
                .map(|token| TokenSnapshotEntry { token, state: TokenSnapshotState::Redeemed })
                .collect(),
        };
        let mut bytes = snapshot.to_bytes();
        let idx = byte_pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert!(IssuerSnapshot::from_bytes(&bytes).is_err(),
            "flip at byte {} bit {} accepted", idx, bit);
    }

    /// The journal record codec round-trips arbitrary records and
    /// batches of them.
    #[test]
    fn journal_record_roundtrips(
        seq in any::<u64>(),
        token in any::<[u8; 32]>(),
        expected in any::<[u8; 32]>(),
        common in any::<[u8; 32]>(),
        generation in any::<u64>(),
        kind in 0u8..3,
    ) {
        let record = match kind {
            0 => JournalRecord::TokenGranted { token, expected, common },
            1 => JournalRecord::TokenRedeemed { token },
            _ => JournalRecord::Checkpoint { generation },
        };
        let sequenced = SequencedRecord { seq, record };
        let bytes = sequenced.to_bytes();
        prop_assert_eq!(SequencedRecord::from_bytes(&bytes).unwrap(), sequenced);
        prop_assert_eq!(sequenced.to_bytes(), bytes);
        let batch = encode_batch(&[sequenced, sequenced]);
        let decoded = sinclave_repro::core::journal_record::decode_batch(&batch);
        prop_assert_eq!(decoded.records, vec![sequenced, sequenced]);
        prop_assert_eq!(decoded.damaged, None);
    }

    /// Any single bit flip anywhere in a framed journal record is
    /// rejected cleanly — the per-record checksum turns "plausibly a
    /// different record" into a total refusal.
    #[test]
    fn journal_record_bit_flips_rejected(
        seq in any::<u64>(),
        token in any::<[u8; 32]>(),
        byte_pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let record = SequencedRecord { seq, record: JournalRecord::TokenRedeemed { token } };
        let mut bytes = record.to_bytes();
        let idx = byte_pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert!(SequencedRecord::from_bytes(&bytes).is_err(),
            "flip at byte {} bit {} accepted", idx, bit);
        // In a batch, the flip loses at most the suffix from the
        // damaged record on — never a misparse, never a panic.
        let decoded = sinclave_repro::core::journal_record::decode_batch(&bytes);
        prop_assert!(decoded.damaged.is_some());
        prop_assert!(decoded.records.is_empty());
    }

    /// Any short read (truncation) of a journal record is rejected,
    /// and a truncated batch recovers exactly its complete prefix.
    #[test]
    fn journal_record_truncations_rejected(
        seq in any::<u64>(),
        token in any::<[u8; 32]>(),
        expected in any::<[u8; 32]>(),
        common in any::<[u8; 32]>(),
        cut_pos in any::<usize>(),
    ) {
        let first = SequencedRecord {
            seq,
            record: JournalRecord::TokenGranted { token, expected, common },
        };
        let second = SequencedRecord {
            seq: seq.wrapping_add(1),
            record: JournalRecord::TokenRedeemed { token },
        };
        let bytes = first.to_bytes();
        let cut = cut_pos % bytes.len();
        prop_assert!(SequencedRecord::from_bytes(&bytes[..cut]).is_err());
        // Trailing garbage after a whole record is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        prop_assert!(SequencedRecord::from_bytes(&padded).is_err());
        // Batch of two cut inside (or right before) the second
        // record: exactly the first survives.
        let mut batch = encode_batch(&[first, second]);
        let second_len = second.to_bytes().len();
        batch.truncate(bytes.len() + cut_pos % second_len);
        let decoded = sinclave_repro::core::journal_record::decode_batch(&batch);
        prop_assert_eq!(decoded.records, vec![first]);
    }

    /// Any truncation (and any trailing garbage) is rejected.
    #[test]
    fn snapshot_truncations_rejected(
        keys in proptest::collection::vec(any::<[u8; 64]>(), 0..6),
        cut_pos in any::<usize>(),
    ) {
        let snapshot = IssuerSnapshot {
            verifier_identity: [3; 32],
            signer_fingerprint: [4; 32],
            generation: 2,
            journal_sequence: 7,
            fence: 0,
            verified_keys: keys,
            tokens: Vec::new(),
        };
        let bytes = snapshot.to_bytes();
        let cut = cut_pos % bytes.len();
        prop_assert!(IssuerSnapshot::from_bytes(&bytes[..cut]).is_err());
        let mut padded = bytes;
        padded.push(0);
        prop_assert!(IssuerSnapshot::from_bytes(&padded).is_err());
    }
}
