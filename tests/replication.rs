//! The replicated CAS fleet under fire.
//!
//! PR 6 made one CAS fast; this suite makes several of them *one
//! service*. A primary streams its sealed redemption journal to
//! followers ([`sinclave_repro::cas::replica`]); followers replay it
//! idempotently, serve read-mostly traffic locally and linearize
//! writes through the primary; failover is fenced by a durable
//! generation. The harness drives every window the design document
//! worries about — a partitioned stream, a tampered frame, a follower
//! crashing at *every* record boundary, a lagging follower catching
//! up from snapshot + suffix, a deposed primary that comes back —
//! and pins the tentpole invariant throughout: **an acked redemption
//! never replays twice, fleet-wide.**

mod common;

use common::{World, CAS_ADDR, REPL_ADDR, STORE_KEY};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::middleware::{DedupConfig, MiddlewareConfig};
use sinclave_repro::cas::store::CasStore;
use sinclave_repro::cas::{follow, serve_replication, CasServer, ForwardLink};
use sinclave_repro::core::journal_record::{decode_batch, encode_batch, SequencedRecord};
use sinclave_repro::core::protocol::Message;
use sinclave_repro::core::replication::{ReplicaRole, ReplicationFrame};
use sinclave_repro::core::AttestationToken;
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::fs::Volume;
use sinclave_repro::net::{Backoff, NetError, Network, SecureChannel};
use sinclave_repro::sgx::measurement::Measurement;
use sinclave_repro::sgx::sigstruct::SigStruct;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where followers serve their own clients in these tests.
const FOLLOWER_ADDR: &str = "cas-follower:443";
/// The man-in-the-middle relay's address for partition tests.
const RELAY_ADDR: &str = "cas-relay:7443";

fn world(seed: u64) -> World {
    World::new(
        seed,
        common::victim_interpreter(),
        common::user_config_with_secrets(),
        sinclave_repro::cas::policy::PolicyMode::Either,
    )
}

/// A quick reconnect cadence so partition tests converge fast.
fn fast_backoff() -> Backoff {
    Backoff::new(Duration::from_millis(2), Duration::from_millis(20))
}

/// Polls `cond` until it holds or the suite-wide deadline expires.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Drives one grant over a fresh secure channel against `addr` and
/// returns the decoded reply (the caller decides what it must be).
fn grant_attempt(w: &World, addr: &str, conn_seed: u64) -> Message {
    let conn = w.network.connect(addr).expect("connect");
    let mut rng = StdRng::seed_from_u64(conn_seed ^ 0x5eed);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    chan.send(
        &Message::GrantRequest {
            common_sigstruct: w.packaged.signed.common_sigstruct.to_bytes(),
            base_hash: w.packaged.signed.base_hash.encode().to_vec(),
        }
        .to_bytes(),
    )
    .expect("send");
    let reply = chan.recv().expect("recv");
    Message::from_bytes(&reply).expect("decode")
}

/// Grants one token through the primary's own serving loop.
fn grant_token(w: &World, conn_seed: u64) -> (AttestationToken, Measurement) {
    let handle = w.serve_cas(1, conn_seed);
    let reply = grant_attempt(w, CAS_ADDR, conn_seed);
    handle.join().expect("serve");
    let Message::GrantResponse { token, sigstruct, .. } = reply else {
        panic!("expected a grant, got {reply:?}");
    };
    let sigstruct = SigStruct::from_bytes(&sigstruct).expect("sigstruct");
    (token, sigstruct.body().enclave_hash)
}

/// Crash-rebuilds a replica from its volume image, exactly as a
/// rebooted follower machine would: reopen the store, replay the
/// locally journaled replication batches.
fn crash_replica(w: &World, replica: &CasServer) -> Arc<CasServer> {
    let image = replica.store().volume().to_disk_image();
    let store =
        CasStore::open(Volume::from_disk_image(&image).expect("image"), AeadKey::new(STORE_KEY))
            .expect("reopen store");
    let rebuilt = CasServer::new(
        w.channel_key.clone(),
        w.signer_key.clone(),
        w.attestation_root.clone(),
        store,
    );
    rebuilt.add_policy(w.policy.clone()).expect("policy");
    rebuilt
}

/// The primary's full journal as individual sequenced records.
fn exported_records(w: &World) -> Vec<SequencedRecord> {
    let recovery = w.cas.store().export_journal_chunks().expect("export");
    let mut records = Vec::new();
    for chunk in recovery.chunks {
        let decoded = decode_batch(&chunk.payload);
        assert!(decoded.damaged.is_none(), "primary journal damaged: {:?}", decoded.damaged);
        records.extend(decoded.records);
    }
    records
}

#[test]
fn follower_adopts_baseline_and_replays_live_commits() {
    // The bread-and-butter path: a follower bootstraps from the
    // primary's baseline, then live grants stream to it within a
    // heartbeat. Its replayed token table matches the primary's.
    let w = world(0xf1ee7);
    let (t1, m1) = grant_token(&w, 10);
    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 4, 0x10);
    let follower = w.new_replica();
    let pump = follow(follower.clone(), w.network.clone(), REPL_ADDR.into(), 0x11, fast_backoff());
    wait_for("baseline adoption", || follower.journal_sequence() == w.cas.journal_sequence());
    assert_eq!(follower.issuer().outstanding_tokens(), 1);

    // Live traffic: one more grant and an acked redemption.
    let (t2, m2) = grant_token(&w, 11);
    w.cas.redeem_token(&t1, &m1).expect("redeem");
    wait_for("live replay", || follower.journal_sequence() == w.cas.journal_sequence());
    assert_eq!(follower.issuer().outstanding_tokens(), 1);
    assert_eq!(follower.issuer().redeemed_tombstones(), 1);
    assert!(follower.is_following());
    assert!(follower.stats.snapshot().replication_records_replayed >= 3);
    // The acked redemption is already un-replayable *on the replica*.
    pump.stop();
    assert!(follower.redeem_token(&t1, &m1).is_err(), "redeemed token replayed on follower");
    // The streamed-but-open token is redeemable exactly once there.
    follower.redeem_token(&t2, &m2).expect("open token redeemable");
    assert!(follower.redeem_token(&t2, &m2).is_err());
}

#[test]
fn lagging_follower_catches_up_from_snapshot_and_suffix() {
    // A follower that arrives late — after the primary has both a
    // snapshot and a journal suffix beyond it — adopts the snapshot
    // baseline and replays only the suffix, ending bit-identical to
    // what the primary's own crash-restart would rebuild.
    let w = world(0x1a66);
    let (t1, m1) = grant_token(&w, 20);
    let (_t2, _m2) = grant_token(&w, 21);
    w.cas.persist_state().expect("persist");
    // Suffix beyond the snapshot: one more grant, one redemption.
    let (_t3, _m3) = grant_token(&w, 22);
    w.cas.redeem_token(&t1, &m1).expect("redeem");

    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 4, 0x20);
    let follower = w.new_replica();
    let pump = follow(follower.clone(), w.network.clone(), REPL_ADDR.into(), 0x21, fast_backoff());
    wait_for("catch-up", || follower.journal_sequence() == w.cas.journal_sequence());
    pump.stop();

    assert_eq!(follower.issuer().outstanding_tokens(), 2);
    assert_eq!(follower.issuer().redeemed_tombstones(), 1);
    // Bit-identity against the primary's own recovery path: a server
    // rebuilt from the primary's volume (snapshot + journal replay)
    // must export exactly the follower's issuer state.
    let control = crash_replica(&w, &w.cas);
    assert_eq!(
        follower.issuer().export_snapshot().to_bytes(),
        control.issuer().export_snapshot().to_bytes(),
        "follower state diverged from snapshot+suffix replay"
    );
}

#[test]
fn follower_crash_mid_replay_at_every_record_boundary() {
    // Sweep: a follower crashes after locally journaling (and
    // applying) exactly `boundary` records, reboots from its volume,
    // and the stream re-delivers everything from the start. The
    // idempotent sequence filter must skip the duplicates, apply the
    // suffix, and land on the exact primary state — for every
    // boundary. No acked redemption is ever redeemable again.
    let w = world(0xc7a5);
    let (t1, m1) = grant_token(&w, 30);
    let (t2, m2) = grant_token(&w, 31);
    let (t3, m3) = grant_token(&w, 32);
    w.cas.redeem_token(&t1, &m1).expect("redeem t1");
    w.cas.redeem_token(&t2, &m2).expect("redeem t2");
    let records = exported_records(&w);
    assert_eq!(records.len(), 5, "3 grants + 2 redemptions");

    for boundary in 0..=records.len() {
        let replica = w.new_replica();
        for record in &records[..boundary] {
            replica.apply_replicated_batch(&encode_batch(&[*record])).expect("apply");
        }
        // Crash and reboot: the locally journaled prefix replays.
        let replica = crash_replica(&w, &replica);
        assert_eq!(replica.journal_sequence(), boundary as u64, "boundary {boundary}");
        // The stream re-delivers from the beginning (a rejoining
        // follower may see overlap); duplicates must be no-ops.
        for record in &records {
            replica.apply_replicated_batch(&encode_batch(&[*record])).expect("reapply");
        }
        assert_eq!(replica.journal_sequence(), records.len() as u64);
        assert_eq!(replica.issuer().redeemed_tombstones(), 2, "boundary {boundary}");
        assert_eq!(replica.issuer().outstanding_tokens(), 1, "boundary {boundary}");
        // Fleet-wide exactly-once: both acked redemptions refuse…
        assert!(replica.redeem_token(&t1, &m1).is_err(), "t1 replayed at boundary {boundary}");
        assert!(replica.redeem_token(&t2, &m2).is_err(), "t2 replayed at boundary {boundary}");
        // …and the open token redeems exactly once, then refuses.
        replica.redeem_token(&t3, &m3).expect("open token");
        assert!(replica.redeem_token(&t3, &m3).is_err(), "double redeem at boundary {boundary}");
    }
}

#[test]
fn torn_batch_payloads_never_corrupt_a_follower() {
    // Every possible truncation of a multi-record batch payload is
    // thrown at one replica, in order. A cut at a record boundary is a
    // legal shorter batch (the clean prefix applies); a cut mid-record
    // must be rejected whole, moving nothing. After the sweep the
    // pristine payload still lands the replica on the primary's exact
    // state.
    let w = world(0x70a2);
    let (t1, m1) = grant_token(&w, 40);
    let (_t2, _m2) = grant_token(&w, 41);
    w.cas.redeem_token(&t1, &m1).expect("redeem");
    let records = exported_records(&w);
    let payload = encode_batch(&records);

    let replica = w.new_replica();
    for cut in 0..payload.len() {
        let before = replica.journal_sequence();
        match replica.apply_replicated_batch(&payload[..cut]) {
            // A record-boundary cut: only the clean prefix advanced.
            Ok(seq) => assert!(seq >= before && seq <= records.len() as u64, "cut {cut}"),
            Err(_) => assert_eq!(replica.journal_sequence(), before, "cut {cut} moved state"),
        }
    }
    assert!(
        replica.stats.snapshot().replication_frames_rejected > 0,
        "no torn payload was ever rejected"
    );
    replica.apply_replicated_batch(&payload).expect("pristine batch");
    let control = crash_replica(&w, &w.cas);
    assert_eq!(
        replica.issuer().export_snapshot().to_bytes(),
        control.issuer().export_snapshot().to_bytes(),
        "torn-payload sweep corrupted the follower"
    );
    assert!(replica.redeem_token(&t1, &m1).is_err(), "acked redemption replayed after sweep");
}

/// Remote-controllable man-in-the-middle between a follower and the
/// primary: forwards opaque secure-channel messages both ways until
/// told to cut (drop both ends mid-stream) or tamper (flip one bit in
/// the next primary→follower message, then hang up).
struct RelayCtl {
    cut: AtomicBool,
    tamper: AtomicBool,
}

fn relay(network: &Network, ctl: Arc<RelayCtl>) -> std::thread::JoinHandle<()> {
    let listener = network.listen(RELAY_ADDR);
    let network = network.clone();
    std::thread::spawn(move || {
        let Ok(client) = listener.accept() else { return };
        let Ok(primary) = network.connect(REPL_ADDR) else { return };
        loop {
            if ctl.cut.load(Ordering::Relaxed) {
                return; // partition: both connections drop
            }
            let mut idle = true;
            match client.try_recv() {
                Ok(m) => {
                    idle = false;
                    if primary.send(m).is_err() {
                        return;
                    }
                }
                Err(NetError::Timeout) => {}
                Err(_) => return,
            }
            match primary.try_recv() {
                Ok(mut m) => {
                    idle = false;
                    if ctl.tamper.swap(false, Ordering::Relaxed) {
                        let last = m.len() - 1;
                        m[last] ^= 0x40; // torn/corrupted ciphertext
                        let _ = client.send(m);
                        return;
                    }
                    if client.send(m).is_err() {
                        return;
                    }
                }
                Err(NetError::Timeout) => {}
                Err(_) => return,
            }
            if idle {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    })
}

#[test]
fn partitioned_stream_degrades_reconnects_and_catches_up() {
    // Cut the stream mid-flight while the primary keeps committing.
    // The follower must flip to degraded (still serving its last
    // replayed state), back off, reconnect once the partition heals,
    // and converge — with exactly-once intact.
    let w = world(0x9a97);
    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 8, 0x50);
    let ctl = Arc::new(RelayCtl { cut: AtomicBool::new(false), tamper: AtomicBool::new(false) });
    let _mitm = relay(&w.network, ctl.clone());

    let follower = w.new_replica();
    // The follower dials the relay, believing it is the primary.
    let pump = follow(follower.clone(), w.network.clone(), RELAY_ADDR.into(), 0x51, fast_backoff());
    let (t1, m1) = grant_token(&w, 50);
    wait_for("pre-partition replay", || follower.journal_sequence() == w.cas.journal_sequence());
    assert!(!follower.middleware().is_degraded());

    // Partition. Commits keep landing on the primary meanwhile.
    ctl.cut.store(true, Ordering::Relaxed);
    let (t2, m2) = grant_token(&w, 51);
    w.cas.redeem_token(&t1, &m1).expect("redeem during partition");
    wait_for("degraded flag", || follower.middleware().is_degraded());
    // Degraded-but-serving: the last replayed state is still there.
    assert_eq!(follower.issuer().outstanding_tokens(), 1);

    // Heal: new dials to the relay's address reach the primary.
    w.network.adversary_redirect(RELAY_ADDR, REPL_ADDR);
    wait_for("catch-up after heal", || follower.journal_sequence() == w.cas.journal_sequence());
    assert!(!follower.middleware().is_degraded());
    assert!(follower.stats.snapshot().replication_reconnects >= 1);
    pump.stop();
    // Exactly-once held across the partition: the redemption that
    // happened while partitioned is present and final…
    assert!(follower.redeem_token(&t1, &m1).is_err(), "partition replayed a redemption");
    // …and the grant from the partition window arrived intact.
    follower.redeem_token(&t2, &m2).expect("partition-window grant");
    assert!(follower.redeem_token(&t2, &m2).is_err());
    w.network.adversary_clear_redirect(RELAY_ADDR);
}

#[test]
fn tampered_stream_frame_drops_the_session_not_the_state() {
    // One flipped bit in a streamed ciphertext must kill that session
    // (secure-channel integrity), never inject into the replica. The
    // follower reconnects and converges.
    let w = world(0x7a3b);
    let (t1, m1) = grant_token(&w, 60);
    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 8, 0x60);
    let ctl = Arc::new(RelayCtl { cut: AtomicBool::new(false), tamper: AtomicBool::new(false) });
    let _mitm = relay(&w.network, ctl.clone());

    let follower = w.new_replica();
    let pump = follow(follower.clone(), w.network.clone(), RELAY_ADDR.into(), 0x61, fast_backoff());
    wait_for("baseline", || follower.journal_sequence() == w.cas.journal_sequence());

    // Tamper with the next streamed message, then the relay hangs up;
    // future dials go straight to the primary.
    w.network.adversary_redirect(RELAY_ADDR, REPL_ADDR);
    ctl.tamper.store(true, Ordering::Relaxed);
    w.cas.redeem_token(&t1, &m1).expect("redeem");
    let (t2, m2) = grant_token(&w, 62);
    wait_for("reconnect + converge", || follower.journal_sequence() == w.cas.journal_sequence());
    pump.stop();
    assert!(follower.stats.snapshot().replication_reconnects >= 1);
    assert!(follower.redeem_token(&t1, &m1).is_err(), "tampering replayed a redemption");
    follower.redeem_token(&t2, &m2).expect("post-tamper grant");
    w.network.adversary_clear_redirect(RELAY_ADDR);
}

#[test]
fn follower_serves_clients_and_linearizes_writes_through_primary() {
    // A client talks only to the follower: the grant request forwards
    // whole to the primary (admission and dedup run there), the reply
    // relays verbatim, and the committed record streams back to the
    // follower. Reads scale out; writes stay linearized.
    let w = world(0x4f0c);
    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 8, 0x70);
    let follower = w.new_replica();
    let pin = w.channel_key.public_key().fingerprint();
    follower.set_forward_link(Some(ForwardLink::new(w.network.clone(), REPL_ADDR, pin, 0x71)));
    let pump = follow(follower.clone(), w.network.clone(), REPL_ADDR.into(), 0x72, fast_backoff());
    wait_for("baseline", || follower.journal_sequence() == w.cas.journal_sequence());

    let serving = follower.serve(&w.network, FOLLOWER_ADDR, 1, 0x73);
    let reply = grant_attempt(&w, FOLLOWER_ADDR, 73);
    serving.join().expect("serve");
    assert!(matches!(reply, Message::GrantResponse { .. }), "forwarded grant refused: {reply:?}");
    assert_eq!(follower.stats.snapshot().forwarded_writes, 1);
    // The grant committed on the *primary's* journal…
    assert_eq!(w.cas.stats.snapshot().grants_issued, 1);
    assert_eq!(w.cas.journal_sequence(), 1);
    // …and streamed back to the follower that forwarded it.
    wait_for("grant streams back", || follower.journal_sequence() == 1);
    assert_eq!(follower.issuer().outstanding_tokens(), 1);
    pump.stop();
}

#[test]
fn retried_forwarded_grant_hits_primary_dedup_once() {
    // Satellite: idempotent retry. The same grant request arriving
    // twice (a client retrying through a follower after a lost reply)
    // must be answered from the primary's dedup cache — bit-identical
    // bytes, a single journal append, a single issued token.
    let w = world(0xded);
    w.cas.set_middleware(MiddlewareConfig {
        dedup: Some(DedupConfig { capacity: 8, ttl: Duration::from_secs(60) }),
        ..MiddlewareConfig::default()
    });
    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 8, 0x80);
    let follower = w.new_replica();
    let pin = w.channel_key.public_key().fingerprint();
    follower.set_forward_link(Some(ForwardLink::new(w.network.clone(), REPL_ADDR, pin, 0x81)));

    let serving = follower.serve(&w.network, FOLLOWER_ADDR, 2, 0x82);
    let first = grant_attempt(&w, FOLLOWER_ADDR, 80);
    let second = grant_attempt(&w, FOLLOWER_ADDR, 81);
    serving.join().expect("serve");
    assert_eq!(first.to_bytes(), second.to_bytes(), "retried grant not idempotent");
    assert_eq!(w.cas.stats.snapshot().dedup_hits, 1);
    assert_eq!(w.cas.stats.snapshot().grants_issued, 1);
    assert_eq!(w.cas.journal_sequence(), 1, "retry appended a second journal record");
    assert_eq!(follower.stats.snapshot().forwarded_writes, 2);
}

#[test]
fn stale_primary_is_fenced_and_cannot_double_redeem() {
    // Failover. B catches up, is promoted with a durable fence bump,
    // and the old primary A — partitioned, maybe still serving — is
    // deposed the moment the new fence reaches it: local redemptions
    // refuse, client grants refuse, and a crash-restart from its own
    // volume cannot shed the fence. Exactly-once holds fleet-wide
    // through the whole handover.
    let w = world(0xfe2ce);
    let (t_spent, m_spent) = grant_token(&w, 90);
    let (t_open, m_open) = grant_token(&w, 91);
    w.cas.redeem_token(&t_spent, &m_spent).expect("acked redemption before failover");

    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 8, 0x90);
    let b = w.new_replica();
    let pump = follow(b.clone(), w.network.clone(), REPL_ADDR.into(), 0x91, fast_backoff());
    wait_for("b catches up", || b.journal_sequence() == w.cas.journal_sequence());
    pump.stop();

    // Promotion: one past everything B has seen, committed durably.
    let fence = b.promote().expect("promote");
    assert_eq!(fence, 1);
    assert!(!b.is_fenced(), "new primary fenced itself");

    // The fence reaches A through the real protocol path: a
    // replication hello carrying B's fence.
    let conn = w.network.connect(REPL_ADDR).expect("connect");
    let mut rng = StdRng::seed_from_u64(0x92);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    let hello = ReplicationFrame::Hello {
        role: ReplicaRole::Subscribe,
        last_seq: b.journal_sequence(),
        fence: b.fence_ceiling(),
    };
    chan.send(&hello.to_bytes()).expect("send hello");
    let raw = chan.recv().expect("recv");
    assert!(
        matches!(
            ReplicationFrame::from_bytes(&raw).expect("frame"),
            ReplicationFrame::Fenced { fence: 1 }
        ),
        "deposed primary did not announce the fence"
    );
    assert!(w.cas.is_fenced());

    // A's journal boundary refuses: no local redemption…
    assert!(w.cas.redeem_token(&t_open, &m_open).is_err(), "deposed primary redeemed");
    // …and no client-facing grant.
    let serving = w.serve_cas(1, 93);
    let refused = grant_attempt(&w, CAS_ADDR, 93);
    serving.join().expect("serve");
    assert!(matches!(refused, Message::Denied { .. }), "deposed primary granted: {refused:?}");
    assert!(w.cas.stats.snapshot().writes_fenced >= 2);

    // Exactly-once fleet-wide: the pre-failover acked redemption is
    // final on the new primary…
    assert!(
        b.redeem_token(&t_spent, &m_spent).is_err(),
        "acked redemption replayed after failover"
    );
    // …and the open token redeems exactly once, on B only.
    b.redeem_token(&t_open, &m_open).expect("open token on new primary");
    assert!(b.redeem_token(&t_open, &m_open).is_err());

    // The deposition is durable: A restarted from its own volume
    // (which persisted the observed ceiling) comes back fenced.
    let a_rebuilt = crash_replica(&w, &w.cas);
    assert!(a_rebuilt.is_fenced(), "crash-restart shed the fence");
    assert!(a_rebuilt.redeem_token(&t_open, &m_open).is_err());
}

#[test]
fn hijacked_stream_is_dropped_at_the_fingerprint() {
    // A routing adversary answers the follower's dial, completes the
    // handshake with their own key, and stands ready to feed a forged
    // baseline minting a token of their choosing. Fleet pinning must
    // hang up on the wrong fingerprint before the hello — the forged
    // state never even gets transmitted, and the follower just keeps
    // reconnecting (degraded) until the real primary is reachable.
    let w = world(0x41ac);
    let evil = sinclave_repro::attack::hijack::hijack_replication_stream(
        &w.network,
        "cas-evil:7443",
        *w.cas.identity().as_bytes(),
        *w.signer_key.public_key().fingerprint().as_bytes(),
        0xbad,
    );
    let follower = w.new_replica();
    // Routing compromise: the follower believes the evil address is
    // its primary.
    let pump =
        follow(follower.clone(), w.network.clone(), "cas-evil:7443".into(), 0xa1, fast_backoff());
    wait_for("hijack rejected", || follower.stats.snapshot().replication_frames_rejected >= 1);
    pump.stop();
    let report = evil.join().expect("hijacker");
    assert!(report.handshake_completed, "the channel itself never stops a MITM");
    assert!(!report.hello_received, "follower spoke to a hijacked channel");
    assert!(!report.baseline_delivered);
    // Nothing was adopted: the follower is still empty.
    assert_eq!(follower.journal_sequence(), 0);
    assert_eq!(follower.issuer().token_table_len(), 0);
    let forged = AttestationToken(sinclave_repro::attack::hijack::FORGED_TOKEN);
    let forged_m = Measurement(sinclave_repro::crypto::sha256::Digest(
        sinclave_repro::attack::hijack::FORGED_TOKEN,
    ));
    assert!(follower.redeem_token(&forged, &forged_m).is_err(), "forged token minted");
}

#[test]
fn promoted_follower_matches_the_primary_recovery_bit_for_bit() {
    // The acceptance check on failover fidelity: a promoted follower's
    // issuer state must be byte-identical to what the primary's own
    // snapshot + journal-suffix recovery would rebuild — promotion
    // adds a fence record but must not perturb token state.
    let w = world(0xb17);
    let (t1, m1) = grant_token(&w, 95);
    let (_t2, _m2) = grant_token(&w, 96);
    w.cas.persist_state().expect("persist");
    let (_t3, _m3) = grant_token(&w, 97);
    w.cas.redeem_token(&t1, &m1).expect("redeem");

    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 4, 0x95);
    let b = w.new_replica();
    let pump = follow(b.clone(), w.network.clone(), REPL_ADDR.into(), 0x96, fast_backoff());
    wait_for("catch-up", || b.journal_sequence() == w.cas.journal_sequence());
    pump.stop();
    let high_seq = b.journal_sequence();
    b.promote().expect("promote");
    assert_eq!(b.journal_sequence(), high_seq + 1, "fence record continues the sequence");

    let control = crash_replica(&w, &w.cas);
    assert_eq!(
        b.issuer().export_snapshot().to_bytes(),
        control.issuer().export_snapshot().to_bytes(),
        "promoted follower diverged from the primary's recovery"
    );
    // And the promoted journal replays cleanly on B's own restart —
    // the fence bump itself is crash-proof.
    let b_rebuilt = crash_replica(&w, &b);
    assert_eq!(b_rebuilt.fence(), 1, "fence lost by crash");
    assert_eq!(
        b_rebuilt.issuer().export_snapshot().to_bytes(),
        control.issuer().export_snapshot().to_bytes()
    );
}
