//! Concurrent-correctness tests for the sharded CAS serving path:
//! exactly-once token redemption under races, parallel grant + attest
//! flows over the worker pool, and cache/stat consistency when many
//! clients hit one CAS at once.

mod common;

use common::{World, CAS_ADDR, CONFIG_ID};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::PolicyMode;
use sinclave_repro::core::layout::EnclaveLayout;
use sinclave_repro::core::signer::{sign_enclave, SignerConfig};
use sinclave_repro::core::verifier::SingletonIssuer;
use sinclave_repro::crypto::rsa::RsaPrivateKey;
use sinclave_repro::crypto::sha256::Digest;
use sinclave_repro::runtime::scone::StartOptions;
use sinclave_repro::runtime::ProgramImage;

fn issuer_with_enclave(
    seed: u64,
) -> (SingletonIssuer, sinclave_repro::core::signer::SignedEnclave) {
    let mut rng = StdRng::seed_from_u64(seed);
    let signer_key = RsaPrivateKey::generate(&mut rng, 1024).expect("keygen");
    let layout = EnclaveLayout::for_program(b"racing application", 2).expect("layout");
    let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).expect("sign");
    (SingletonIssuer::new(signer_key, Digest([0x77; 32])), signed)
}

#[test]
fn racing_redeems_see_exactly_one_success() {
    let (issuer, signed) = issuer_with_enclave(1);
    let mut rng = StdRng::seed_from_u64(2);
    // Repeat the race a few times: a lost exactly-once guarantee is
    // probabilistic, one round could get lucky.
    for round in 0..8 {
        let grant =
            issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).expect("grant");
        let threads = 8;
        let successes: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let grant = &grant;
                    let issuer = &issuer;
                    scope.spawn(move || {
                        usize::from(issuer.redeem(&grant.token, &grant.expected_mrenclave).is_ok())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("redeemer")).sum()
        });
        assert_eq!(successes, 1, "round {round}: token redeemed other than exactly once");
        assert_eq!(issuer.outstanding_tokens(), 0, "round {round}");
    }
}

#[test]
fn concurrent_grants_share_one_prepared_midstate() {
    let (issuer, signed) = issuer_with_enclave(3);
    let threads = 6;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let issuer = &issuer;
            let signed = &signed;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                for _ in 0..3 {
                    issuer
                        .issue(&mut rng, &signed.common_sigstruct, &signed.base_hash)
                        .expect("grant");
                }
            });
        }
    });
    // All 18 grants for the same binary share one warm midstate, and
    // every token is distinct and outstanding.
    assert_eq!(issuer.prepared_cache_len(), 1);
    assert_eq!(issuer.outstanding_tokens(), threads as usize * 3);
}

#[test]
fn parallel_batch_issue_against_racing_redeems_stays_consistent() {
    let (issuer, signed) = issuer_with_enclave(4);
    let mut rng = StdRng::seed_from_u64(5);
    let batch = issuer
        .issue_batch(&mut rng, &signed.common_sigstruct, &signed.base_hash, 6)
        .expect("batch");
    // Race two redeemers per grant across the whole batch.
    let successes: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .iter()
            .flat_map(|grant| {
                let issuer = &issuer;
                (0..2).map(move |_| {
                    scope.spawn(move || {
                        usize::from(issuer.redeem(&grant.token, &grant.expected_mrenclave).is_ok())
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("redeemer")).sum()
    });
    assert_eq!(successes, batch.len(), "each grant redeems exactly once");
    assert_eq!(issuer.outstanding_tokens(), 0);
}

#[test]
fn parallel_attest_flows_over_worker_pool_keep_stats_consistent() {
    let image = ProgramImage::with_entry("svc", "print ok", 2).sinclave_aware();
    let world = World::new(40, image, common::user_config_with_secrets(), PolicyMode::Singleton);
    let runs = 4;
    // Each start_sinclave opens two connections (grant + attest); the
    // pool serves them concurrently.
    let cas = world.serve_cas(2 * runs, 4000);
    let measurements = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..runs)
            .map(|i| {
                let world = &world;
                scope.spawn(move || {
                    let app = world
                        .host
                        .start_sinclave(
                            &world.packaged,
                            &StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(500 + i as u64),
                        )
                        .expect("singleton start");
                    assert_eq!(app.outcome.stdout, vec!["ok"]);
                    app.enclave.mrenclave()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("starter")).collect::<Vec<_>>()
    });
    cas.join().expect("cas pool");

    // Every singleton is unique, every counter consistent.
    let mut sorted = measurements.clone();
    sorted.sort_by_key(|m| *m.as_bytes());
    sorted.dedup();
    assert_eq!(sorted.len(), runs, "all singleton measurements distinct");
    assert_eq!(world.cas.stats.snapshot().grants_issued, runs as u64);
    assert_eq!(world.cas.stats.snapshot().configs_delivered, runs as u64);
    assert_eq!(world.cas.stats.snapshot().denials, 0);
    assert_eq!(world.cas.issuer().outstanding_tokens(), 0, "every issued token was redeemed");
}

#[test]
fn pipelined_requests_on_one_connection_reply_in_order() {
    use sinclave_repro::core::protocol::Message;
    use sinclave_repro::net::SecureChannel;
    use sinclave_repro::sgx::sigstruct::SigStruct;

    let image = ProgramImage::with_entry("svc", "print ok", 2).sinclave_aware();
    let world = World::new(50, image, common::user_config_with_secrets(), PolicyMode::Singleton);
    let cas = world.serve_cas(1, 5000);

    // Push a burst of requests before draining a single reply: the
    // server's pipelined loop may overlap sealing reply N with
    // dispatching request N+1, but the replies must come back strictly
    // in request order — and the grant replies must carry distinct,
    // each-verifiable on-demand SigStructs.
    let conn = world.network.connect(CAS_ADDR).expect("connect");
    let mut rng = StdRng::seed_from_u64(51);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    let burst = 6;
    for i in 0..burst {
        let request = if i % 2 == 0 {
            Message::GrantRequest {
                common_sigstruct: world.packaged.signed.common_sigstruct.to_bytes(),
                base_hash: world.packaged.signed.base_hash.encode().to_vec(),
            }
        } else {
            Message::Ping
        };
        chan.send(&request.to_bytes()).expect("send");
    }
    let mut mrenclaves = Vec::new();
    for i in 0..burst {
        let reply = Message::from_bytes(&chan.recv().expect("recv")).expect("decode");
        if i % 2 == 0 {
            let Message::GrantResponse { sigstruct, .. } = reply else {
                panic!("slot {i}: expected grant, got {reply:?}");
            };
            let parsed = SigStruct::from_bytes(&sigstruct).expect("sigstruct");
            parsed.verify().expect("on-demand sigstruct verifies");
            mrenclaves.push(*parsed.body().enclave_hash.as_bytes());
        } else {
            assert_eq!(reply, Message::Pong, "slot {i}: replies out of order");
        }
    }
    drop(chan);
    cas.join().expect("cas");

    mrenclaves.sort_unstable();
    mrenclaves.dedup();
    assert_eq!(mrenclaves.len(), burst / 2, "each grant individualized");
    assert_eq!(world.cas.stats.snapshot().grants_issued, (burst / 2) as u64);
    // One RSA verification of the common SigStruct served the burst.
    assert_eq!(world.cas.issuer().verified_cache_len(), 1);
    assert_eq!(world.cas.stats.snapshot().records_rejected, 0);
}

#[test]
fn concurrent_policy_reads_and_writes_stay_coherent() {
    use sinclave_repro::cas::store::CasStore;
    use sinclave_repro::crypto::aead::AeadKey;
    use sinclave_repro::sgx::measurement::Measurement;

    let store = CasStore::create(AeadKey::new([0x17; 32]));
    let policy = |id: String| sinclave_repro::cas::SessionPolicy {
        config_id: id,
        expected_common: Measurement(Digest([1; 32])),
        expected_mrsigner: Digest([2; 32]),
        min_isv_svn: 0,
        allow_debug: false,
        mode: PolicyMode::Either,
        config: sinclave_repro::core::AppConfig::default(),
    };
    store.put_policy(&policy("hot".into())).expect("seed policy");

    // Writers register fresh policies across shards while readers
    // hammer the hot entry; nothing tears and nothing is lost.
    std::thread::scope(|scope| {
        for w in 0..3u8 {
            let store = &store;
            let policy = &policy;
            scope.spawn(move || {
                for i in 0..10u8 {
                    store.put_policy(&policy(format!("svc-{w}-{i}"))).expect("register");
                }
            });
        }
        for _ in 0..3 {
            let store = &store;
            scope.spawn(move || {
                for _ in 0..200 {
                    let p = store.get_policy("hot").expect("hot policy present");
                    assert_eq!(p.config_id, "hot");
                }
            });
        }
    });
    // All 30 writes landed in the cache and in the durable volume.
    for w in 0..3u8 {
        for i in 0..10u8 {
            let id = format!("svc-{w}-{i}");
            assert_eq!(store.get_policy(&id).expect("cached").config_id, id);
        }
    }
    assert_eq!(store.list_policies().expect("volume list").len(), 31);
}
