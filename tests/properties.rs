//! Cross-crate property tests: the invariants SinClave's security
//! argument rests on, checked over randomized inputs.

use proptest::prelude::*;
use sinclave_repro::core::instance_page::InstancePage;
use sinclave_repro::core::layout::EnclaveLayout;
use sinclave_repro::core::protocol::{Message, TraceContext};
use sinclave_repro::core::replication::{ReplicaRole, ReplicationFrame, WireSpan};
use sinclave_repro::core::{AppConfig, AttestationToken, BaseEnclaveHash};
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::rsa::RsaPrivateKey;
use sinclave_repro::crypto::sha256::{self, Backend, Digest, Sha256};
use sinclave_repro::fs::{FsError, Volume};
use sinclave_repro::net::channel::{ClientHello, ServerHello};
use sinclave_repro::net::wire::{Decode, Encode};
use sinclave_repro::sgx::attributes::Attributes;
use sinclave_repro::sgx::secinfo::SecInfo;
use sinclave_repro::sgx::sigstruct::{SigStruct, SigStructBody};
use sinclave_repro::sgx::Measurement;
use std::collections::HashMap;

/// Every compression backend this CPU can run.
fn available_backends() -> Vec<Backend> {
    let mut backends = vec![Backend::Portable];
    if Backend::sha_ni_available() {
        backends.push(Backend::ShaNi);
    }
    backends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The core SinClave correctness property over random inputs: the
    /// verifier's constant-time prediction from the base hash equals a
    /// from-scratch measurement of the full enclave.
    #[test]
    fn prediction_equals_direct_measurement(
        program in proptest::collection::vec(any::<u8>(), 1..20_000),
        heap_pages in 0u64..16,
        token_bytes in any::<[u8; 32]>(),
        verifier in any::<[u8; 32]>(),
    ) {
        prop_assume!(token_bytes != [0u8; 32]);
        let layout = EnclaveLayout::for_program(&program, heap_pages).unwrap();
        let m = layout.measure_base().unwrap();
        let base = BaseEnclaveHash::new(
            m.export_state(),
            layout.enclave_size,
            layout.instance_page_offset(),
        );
        let page = InstancePage::new(AttestationToken(token_bytes), Digest(verifier));

        let predicted = base.singleton_measurement(&page).unwrap();

        let mut direct = layout.measure_base().unwrap();
        direct
            .add_page(
                layout.instance_page_offset(),
                &page.to_page_bytes(),
                SecInfo::read_only(),
                true,
            )
            .unwrap();
        prop_assert_eq!(predicted, direct.finalize());
    }

    /// Distinct tokens always individualize the measurement.
    #[test]
    fn distinct_tokens_distinct_measurements(
        t1 in any::<[u8; 32]>(),
        t2 in any::<[u8; 32]>(),
        verifier in any::<[u8; 32]>(),
    ) {
        prop_assume!(t1 != t2 && t1 != [0; 32] && t2 != [0; 32]);
        let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
        let m = layout.measure_base().unwrap();
        let base = BaseEnclaveHash::new(
            m.export_state(),
            layout.enclave_size,
            layout.instance_page_offset(),
        );
        let m1 = base
            .singleton_measurement(&InstancePage::new(AttestationToken(t1), Digest(verifier)))
            .unwrap();
        let m2 = base
            .singleton_measurement(&InstancePage::new(AttestationToken(t2), Digest(verifier)))
            .unwrap();
        prop_assert_ne!(m1, m2);
    }

    /// AppConfig round-trips through its wire encoding for arbitrary
    /// contents.
    #[test]
    fn app_config_roundtrip(
        entry in ".{0,32}",
        args in proptest::collection::vec(".{0,16}", 0..4),
        env in proptest::collection::vec((".{0,8}", ".{0,8}"), 0..4),
        volume_key in proptest::option::of(any::<[u8; 32]>()),
        secrets in proptest::collection::vec(
            (".{0,8}", proptest::collection::vec(any::<u8>(), 0..32)),
            0..4
        ),
    ) {
        let config = AppConfig { entry, args, env, volume_key, secrets };
        prop_assert_eq!(AppConfig::from_bytes(&config.to_bytes()).unwrap(), config);
    }

    /// The protocol decoder never panics and never "decodes" trailing
    /// garbage, for arbitrary byte soup.
    #[test]
    fn protocol_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(message) = Message::from_bytes(&bytes) {
            // Anything that decodes must re-encode to the input.
            prop_assert_eq!(message.to_bytes(), bytes);
        }
    }

    /// Valid protocol messages survive an encode/decode cycle.
    #[test]
    fn protocol_roundtrip(
        quote in proptest::collection::vec(any::<u8>(), 0..128),
        token in any::<[u8; 32]>(),
        config_id in "[a-z0-9-]{0,24}",
    ) {
        let m = Message::AttestRequest {
            quote,
            token: AttestationToken(token),
            config_id,
        };
        prop_assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    /// The trace trailer is invisible when absent and lossless when
    /// present: `to_bytes_traced(None)` is bit-identical to the
    /// untraced encoding, a present context round-trips through
    /// `from_bytes_traced`, and the strict decoder refuses trailered
    /// frames — a trailer can never masquerade as message payload.
    #[test]
    fn protocol_trace_trailer_roundtrip(
        quote in proptest::collection::vec(any::<u8>(), 0..128),
        token in any::<[u8; 32]>(),
        config_id in "[a-z0-9-]{0,24}",
        ctx in arb_trace_ctx(),
    ) {
        let m = Message::AttestRequest { quote, token: AttestationToken(token), config_id };
        prop_assert_eq!(m.to_bytes_traced(None), m.to_bytes());
        let traced = m.to_bytes_traced(Some(&ctx));
        let (decoded, got) = Message::from_bytes_traced(&traced).unwrap();
        prop_assert_eq!(decoded, m.clone());
        prop_assert_eq!(got, Some(ctx));
        prop_assert!(Message::from_bytes(&traced).is_err());
        // Untraced bytes pass the tolerant decoder unchanged.
        let (decoded, got) = Message::from_bytes_traced(&m.to_bytes()).unwrap();
        prop_assert_eq!(decoded, m);
        prop_assert_eq!(got, None);
    }

    /// All SHA-256 backends produce bit-identical digests for random
    /// inputs, both one-shot and under arbitrary update splits.
    #[test]
    fn sha256_backends_bit_identical(
        data in proptest::collection::vec(any::<u8>(), 0..10_000),
        splits in proptest::collection::vec(any::<u16>(), 0..6),
    ) {
        let reference = sha256::fast::digest_with_backend(Backend::Portable, &data);
        for backend in available_backends() {
            prop_assert_eq!(
                sha256::fast::digest_with_backend(backend, &data),
                reference,
                "one-shot on {:?}", backend
            );
            // Feed the same data through the interruptible hasher in
            // arbitrary pieces.
            let mut h = Sha256::with_backend(backend);
            let mut rest: &[u8] = &data;
            for s in &splits {
                let take = (*s as usize) % (rest.len() + 1);
                h.update(&rest[..take]);
                rest = &rest[take..];
            }
            h.update(rest);
            prop_assert_eq!(h.finalize(), reference, "split update on {:?}", backend);
        }
    }

    /// A state exported at any block boundary resumes bit-exactly on
    /// any backend — signer and verifier may run different CPUs.
    #[test]
    fn sha256_export_resume_across_backends(
        data in proptest::collection::vec(any::<u8>(), 64..8_192),
        cut in any::<u16>(),
    ) {
        let reference = sha256::fast::digest_with_backend(Backend::Portable, &data);
        // Export is only defined at 64-byte boundaries.
        let cut = ((cut as usize) % data.len()) / 64 * 64;
        for first in available_backends() {
            for second in available_backends() {
                let mut h = Sha256::with_backend(first);
                h.update(&data[..cut]);
                let state = h.export_state().expect("block aligned");
                let mut resumed = Sha256::resume_with_backend(state, second);
                resumed.update(&data[cut..]);
                prop_assert_eq!(
                    resumed.finalize(),
                    reference,
                    "{:?} -> {:?} cut {}", first, second, cut
                );
            }
        }
    }

    /// The prepared-midstate prediction equals both the cold base-hash
    /// prediction and a from-scratch measurement of the full enclave.
    #[test]
    fn prepared_prediction_equals_direct_measurement(
        program in proptest::collection::vec(any::<u8>(), 1..20_000),
        heap_pages in 0u64..16,
        token_bytes in any::<[u8; 32]>(),
        verifier in any::<[u8; 32]>(),
    ) {
        prop_assume!(token_bytes != [0u8; 32]);
        let layout = EnclaveLayout::for_program(&program, heap_pages).unwrap();
        let m = layout.measure_base().unwrap();
        let base = BaseEnclaveHash::new(
            m.export_state(),
            layout.enclave_size,
            layout.instance_page_offset(),
        );
        let page = InstancePage::new(AttestationToken(token_bytes), Digest(verifier));

        let prepared = base.prepare().unwrap();
        let predicted = prepared.singleton_measurement(&page);
        prop_assert_eq!(predicted, base.singleton_measurement(&page).unwrap());
        prop_assert_eq!(
            prepared.common_measurement(),
            base.common_measurement().unwrap()
        );

        let mut direct = layout.measure_base().unwrap();
        direct
            .add_page(
                layout.instance_page_offset(),
                &page.to_page_bytes(),
                SecInfo::read_only(),
                true,
            )
            .unwrap();
        prop_assert_eq!(predicted, direct.finalize());
    }

    /// Handshake hellos survive a roundtrip; truncation and trailing
    /// bytes are rejected (a MITM cannot splice partial hellos).
    #[test]
    fn client_hello_roundtrip_and_framing(
        version in any::<u16>(),
        nonce in any::<[u8; 32]>(),
    ) {
        let enc = ClientHello { version, client_nonce: nonce }.encode();
        let dec = ClientHello::decode_all(&enc).unwrap();
        prop_assert_eq!(dec.version, version);
        prop_assert_eq!(dec.client_nonce, nonce);
        for cut in 0..enc.len() {
            prop_assert!(ClientHello::decode_all(&enc[..cut]).is_err(), "prefix {}", cut);
        }
        let mut padded = enc;
        padded.push(0);
        prop_assert!(ClientHello::decode_all(&padded).is_err(), "trailing byte");
    }

    /// ServerHello: roundtrip holds, every strict prefix is rejected,
    /// and any single-bit corruption of the key's length prefix breaks
    /// the framing (the shifted nonce/trailing bytes never line up).
    #[test]
    fn server_hello_length_prefix_mutations_rejected(
        server_key in proptest::collection::vec(any::<u8>(), 0..80),
        nonce in any::<[u8; 32]>(),
    ) {
        let enc = ServerHello { server_key: server_key.clone(), server_nonce: nonce }.encode();
        let dec = ServerHello::decode_all(&enc).unwrap();
        prop_assert_eq!(&dec.server_key, &server_key);
        prop_assert_eq!(dec.server_nonce, nonce);
        for cut in 0..enc.len() {
            prop_assert!(ServerHello::decode_all(&enc[..cut]).is_err(), "prefix {}", cut);
        }
        for bit in 0..32 {
            let mut mutated = enc.clone();
            mutated[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(ServerHello::decode_all(&mutated).is_err(), "bit {}", bit);
        }
    }

    /// Protocol messages under targeted corruption: strict prefixes
    /// never decode, and a flipped bit in an interior length prefix
    /// either fails or decodes canonically to a *different* message —
    /// it can never silently reproduce the original.
    #[test]
    fn message_mutations_never_misdecode(
        quote in proptest::collection::vec(any::<u8>(), 0..64),
        token in any::<[u8; 32]>(),
        config_id in "[a-z0-9-]{0,16}",
        bit in 0usize..32,
    ) {
        let message = Message::AttestRequest {
            quote,
            token: AttestationToken(token),
            config_id,
        };
        let enc = message.to_bytes();
        for cut in 0..enc.len() {
            prop_assert!(Message::from_bytes(&enc[..cut]).is_err(), "prefix {}", cut);
        }
        // The quote's length prefix sits right after the 1-byte tag.
        let mut mutated = enc.clone();
        mutated[1 + bit / 8] ^= 1 << (bit % 8);
        match Message::from_bytes(&mutated) {
            Err(_) => {}
            Ok(other) => {
                prop_assert_eq!(other.to_bytes(), mutated);
                prop_assert_ne!(other, message);
            }
        }
    }

    /// Base-hash wire encoding is stable.
    #[test]
    fn base_hash_roundtrip(program in proptest::collection::vec(any::<u8>(), 1..5_000)) {
        let layout = EnclaveLayout::for_program(&program, 1).unwrap();
        let m = layout.measure_base().unwrap();
        let base = BaseEnclaveHash::new(
            m.export_state(),
            layout.enclave_size,
            layout.instance_page_offset(),
        );
        prop_assert_eq!(BaseEnclaveHash::decode(&base.encode()).unwrap(), base);
    }
}

/// SigStruct deserialization under adversarial framing: exhaustive
/// over every truncation point and every bit of the three length
/// prefixes. Grant requests carry attacker-supplied SigStruct bytes,
/// so nothing malformed may parse into verifiable evidence.
#[test]
fn sigstruct_decoding_rejects_adversarial_framing() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(0xf4a);
    let key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
    let body = SigStructBody {
        enclave_hash: Measurement(Digest([0x42; 32])),
        attributes: Attributes::production(),
        attributes_mask: Attributes { flags: u64::MAX, xfrm: u64::MAX },
        isv_prod_id: 7,
        isv_svn: 3,
        date: 20230411,
        vendor: 0,
    };
    let ss = SigStruct::sign(body, &key).unwrap();
    let bytes = ss.to_bytes();
    SigStruct::from_bytes(&bytes).unwrap().verify().unwrap();

    // Every strict prefix is rejected.
    for cut in 0..bytes.len() {
        assert!(SigStruct::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} parsed");
    }
    // Trailing garbage is rejected.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(SigStruct::from_bytes(&padded).is_err(), "trailing byte parsed");

    // Layout: u32 body_len || body || u32 key_len || key || u32
    // sig_len || sig. Flipping any bit of any length prefix must
    // either break the framing outright or — should the shifted bytes
    // happen to re-frame — yield evidence that no longer verifies.
    let body_len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
    let key_len_off = 4 + body_len;
    let key_len =
        u32::from_be_bytes(bytes[key_len_off..key_len_off + 4].try_into().unwrap()) as usize;
    let sig_len_off = key_len_off + 4 + key_len;
    for offset in [0, key_len_off, sig_len_off] {
        for bit in 0..32 {
            let mut mutated = bytes.clone();
            mutated[offset + bit / 8] ^= 1 << (bit % 8);
            match SigStruct::from_bytes(&mutated) {
                Err(_) => {}
                Ok(reframed) => assert!(
                    reframed.verify().is_err(),
                    "length-prefix flip at {offset}+{bit} still verifies"
                ),
            }
        }
    }
}

/// A model-based test: a random sequence of filesystem operations on a
/// [`Volume`] behaves exactly like a `HashMap<String, Vec<u8>>`.
#[derive(Debug, Clone)]
enum FsOp {
    Write(u8, Vec<u8>),
    Read(u8),
    Remove(u8),
    List,
    Export,
}

fn arb_fs_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..9000))
            .prop_map(|(p, d)| FsOp::Write(p, d)),
        any::<u8>().prop_map(FsOp::Read),
        any::<u8>().prop_map(FsOp::Remove),
        Just(FsOp::List),
        Just(FsOp::Export),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn volume_matches_hashmap_model(ops in proptest::collection::vec(arb_fs_op(), 0..40)) {
        let key = AeadKey::new([0x99; 32]);
        let mut volume = Volume::format(&key, "model");
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                FsOp::Write(p, data) => {
                    let path = format!("file-{}", p % 8);
                    volume.write_file(&key, &path, &data).unwrap();
                    model.insert(path, data);
                }
                FsOp::Read(p) => {
                    let path = format!("file-{}", p % 8);
                    match (volume.read_file(&key, &path), model.get(&path)) {
                        (Ok(got), Some(want)) => prop_assert_eq!(&got, want),
                        (Err(FsError::NotFound { .. }), None) => {}
                        (got, want) => {
                            prop_assert!(false, "divergence: {:?} vs {:?}", got, want)
                        }
                    }
                }
                FsOp::Remove(p) => {
                    let path = format!("file-{}", p % 8);
                    let volume_result = volume.remove_file(&key, &path).is_ok();
                    let model_result = model.remove(&path).is_some();
                    prop_assert_eq!(volume_result, model_result);
                }
                FsOp::List => {
                    let mut got = volume.list(&key).unwrap();
                    got.sort();
                    let mut want: Vec<_> = model.keys().cloned().collect();
                    want.sort();
                    prop_assert_eq!(got, want);
                }
                FsOp::Export => {
                    // Round-trip through a disk image mid-sequence.
                    volume = Volume::from_disk_image(&volume.to_disk_image()).unwrap();
                }
            }
        }
    }
}

/// An arbitrary replication frame, covering every variant the fleet
/// protocol speaks.
fn arb_replication_frame() -> impl Strategy<Value = ReplicationFrame> {
    let role = prop_oneof![Just(ReplicaRole::Subscribe), Just(ReplicaRole::Forward)];
    prop_oneof![
        (role, any::<u64>(), any::<u64>())
            .prop_map(|(role, last_seq, fence)| ReplicationFrame::Hello { role, last_seq, fence }),
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (
                proptest::collection::vec(any::<u8>(), 0..600),
                proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..4),
            ),
        )
            .prop_map(|((fence, high_seq, baseline_seq), (snapshot, chunks))| {
                ReplicationFrame::Baseline { fence, high_seq, baseline_seq, snapshot, chunks }
            }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..600))
            .prop_map(|(fence, batch)| ReplicationFrame::Records { fence, batch }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(fence, high_seq)| ReplicationFrame::Heartbeat { fence, high_seq }),
        any::<u64>().prop_map(|fence| ReplicationFrame::Fenced { fence }),
        (any::<[u8; 32]>(), any::<[u8; 32]>())
            .prop_map(|(token, mrenclave)| ReplicationFrame::Redeem { token, mrenclave }),
        any::<[u8; 32]>().prop_map(|common| ReplicationFrame::RedeemOk { common }),
        (proptest::collection::vec(any::<u8>(), 0..400), proptest::option::of(arb_trace_ctx()))
            .prop_map(|(request, ctx)| ReplicationFrame::Forward { request, ctx }),
        (
            proptest::collection::vec(any::<u8>(), 0..400),
            proptest::option::of((
                arb_trace_ctx(),
                proptest::collection::vec(arb_wire_span(), 0..4),
            )),
        )
            .prop_map(|(response, traced)| match traced {
                Some((ctx, spans)) => {
                    ReplicationFrame::Reply { response, ctx: Some(ctx), spans }
                }
                None => ReplicationFrame::Reply { response, ctx: None, spans: vec![] },
            }),
        "[ -~]{0,60}".prop_map(|reason| ReplicationFrame::Denied { reason }),
    ]
}

/// An arbitrary trace context for the traced-frame properties.
fn arb_trace_ctx() -> impl Strategy<Value = TraceContext> {
    (any::<[u8; 16]>(), any::<u8>(), any::<u8>()).prop_map(|(trace_id, hop, flags)| TraceContext {
        trace_id,
        hop,
        flags,
    })
}

/// An arbitrary exported span for the traced-reply properties.
fn arb_wire_span() -> impl Strategy<Value = WireSpan> {
    (("[a-z_]{0,12}", any::<u64>(), any::<u64>()), (any::<u8>(), any::<u8>())).prop_map(
        |((stage, start_ns, end_ns), (outcome, hop))| WireSpan {
            stage,
            start_ns,
            end_ns,
            outcome,
            hop,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fleet protocol's codec is a bijection on valid frames: any
    /// frame round-trips bit-exactly through its wire form.
    #[test]
    fn replication_frame_roundtrip(frame in arb_replication_frame()) {
        let bytes = frame.to_bytes();
        prop_assert_eq!(ReplicationFrame::from_bytes(&bytes).unwrap(), frame.clone());
        // Deterministic: same frame, same bytes.
        prop_assert_eq!(frame.to_bytes(), bytes);
    }

    /// Tearing sweep: every strict prefix of an encoded frame is
    /// rejected — a replication frame cut mid-write can never decode
    /// as a different valid frame — and trailing garbage is rejected
    /// too. Either would let a torn transport write masquerade as
    /// protocol traffic.
    #[test]
    fn torn_replication_frames_rejected(frame in arb_replication_frame()) {
        let bytes = frame.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                ReplicationFrame::from_bytes(&bytes[..cut]).is_err(),
                "prefix {} decoded", cut
            );
        }
        let mut padded = bytes;
        padded.push(0);
        prop_assert!(ReplicationFrame::from_bytes(&padded).is_err(), "trailing byte decoded");
    }

    /// No input makes the frame decoder panic, and anything it does
    /// accept re-encodes to exactly the bytes it consumed (no
    /// ambiguous encodings for an adversary to smuggle through).
    #[test]
    fn random_bytes_never_panic_frame_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(frame) = ReplicationFrame::from_bytes(&bytes) {
            prop_assert_eq!(frame.to_bytes(), bytes);
        }
    }

    /// Tracing is a *trailing extension* of the fleet frames: an
    /// absent context encodes exactly the pre-trace format (so frames
    /// from an untraced node still decode, and a traced node talking
    /// to one emits bytes the old decoder accepts), while a present
    /// context survives the round trip and changes the bytes.
    #[test]
    fn untraced_fleet_frames_speak_the_old_format(
        request in proptest::collection::vec(any::<u8>(), 0..300),
        ctx in arb_trace_ctx(),
    ) {
        let old = ReplicationFrame::Forward { request: request.clone(), ctx: None };
        let traced = ReplicationFrame::Forward { request, ctx: Some(ctx) };
        let old_bytes = old.to_bytes();
        let traced_bytes = traced.to_bytes();
        prop_assert_eq!(ReplicationFrame::from_bytes(&old_bytes).unwrap(), old);
        prop_assert_eq!(ReplicationFrame::from_bytes(&traced_bytes).unwrap(), traced);
        prop_assert_ne!(old_bytes, traced_bytes);
    }

    /// The journal batch decoder recovers exactly the clean prefix of
    /// a torn group-commit batch: cut at a record boundary it yields
    /// those records undamaged; cut mid-record it flags damage and
    /// never invents or mutates a record. This is the exact property
    /// follower replay leans on when a stream dies mid-batch.
    #[test]
    fn torn_batch_recovers_exact_clean_prefix(
        seqs in proptest::collection::vec(any::<u8>(), 1..5),
        cut_salt in any::<usize>(),
    ) {
        use sinclave_repro::core::journal_record::{decode_batch, encode_batch, JournalRecord, SequencedRecord};
        let records: Vec<SequencedRecord> = seqs
            .iter()
            .enumerate()
            .map(|(i, b)| SequencedRecord {
                seq: i as u64 + 1,
                record: JournalRecord::TokenRedeemed { token: [*b; 32] },
            })
            .collect();
        let payload = encode_batch(&records);
        // Boundaries of each framed record within the payload.
        let record_len = payload.len() / records.len();
        let cut = cut_salt % (payload.len() + 1);
        let decoded = decode_batch(&payload[..cut]);
        let whole = cut / record_len;
        prop_assert_eq!(decoded.records.as_slice(), &records[..whole]);
        prop_assert_eq!(decoded.damaged.is_some(), !cut.is_multiple_of(record_len));
    }
}
