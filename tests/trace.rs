//! Fleet-wide request tracing: causal propagation, the span flight
//! recorder, and per-hop latency attribution.
//!
//! The tentpole acceptance test drives a grant through a follower and
//! asserts ONE causal trace whose span tree shows follower admission →
//! forward → the primary's verify/sign/journal-flush → the sealed
//! reply, retrievable through the `trace` status view. Around it:
//! dark-by-default (zero recorder traffic), stage spans on both
//! serving paths, tail-sampling pins for shed requests, and the
//! operability satellites (status views served from a follower and
//! from a fenced / promoted node without touching the journal,
//! `dedup_replay` latency, uptime + build info).

mod common;

use common::{World, CAS_ADDR, REPL_ADDR, STATUS_ADDR};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::{
    follow, serve_replication, serve_status, status_body, CasServer, CompletedTrace, DedupConfig,
    ForwardLink, MiddlewareConfig, PinReason, RateLimitConfig, SpanOutcome,
};
use sinclave_repro::core::protocol::Message;
use sinclave_repro::net::{Backoff, Network, SecureChannel};
use std::time::{Duration, Instant};

/// Where followers serve their own clients in these tests.
const FOLLOWER_ADDR: &str = "cas-follower:443";
/// The follower's own status endpoint.
const FOLLOWER_STATUS_ADDR: &str = "cas-follower-status:9443";

fn world(seed: u64) -> World {
    World::new(
        seed,
        common::victim_interpreter(),
        common::user_config_with_secrets(),
        sinclave_repro::cas::policy::PolicyMode::Either,
    )
}

/// A quick reconnect cadence so fleet tests converge fast.
fn fast_backoff() -> Backoff {
    Backoff::new(Duration::from_millis(2), Duration::from_millis(20))
}

/// Polls `cond` until it holds or the suite-wide deadline expires.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Lights a server's tracer with keep-everything sampling.
fn light(server: &CasServer) {
    server.tracer().set_enabled(true);
    server.tracer().set_sample_every(1);
}

/// Drives one grant over a fresh secure channel against `addr`.
fn grant_attempt(w: &World, addr: &str, conn_seed: u64) -> Message {
    let conn = w.network.connect(addr).expect("connect");
    let mut rng = StdRng::seed_from_u64(conn_seed ^ 0x7ace);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    chan.send(
        &Message::GrantRequest {
            common_sigstruct: w.packaged.signed.common_sigstruct.to_bytes(),
            base_hash: w.packaged.signed.base_hash.encode().to_vec(),
        }
        .to_bytes(),
    )
    .expect("send");
    let reply = chan.recv().expect("recv");
    Message::from_bytes(&reply).expect("decode")
}

/// Every kept trace (pinned first, then sampled), newest first.
fn all_recent(server: &CasServer) -> Vec<CompletedTrace> {
    let recorder = server.tracer().recorder();
    let mut traces = recorder.recent_pinned(64);
    traces.extend(recorder.recent_sampled(64));
    traces
}

/// The most recent kept trace containing a `stage` span.
fn trace_with_stage(server: &CasServer, stage: &str) -> CompletedTrace {
    all_recent(server)
        .into_iter()
        .find(|t| t.spans().iter().any(|s| s.stage == stage))
        .unwrap_or_else(|| panic!("no recorded trace carries a `{stage}` span"))
}

/// One plaintext status probe against `addr`.
fn probe(network: &Network, addr: &str, view: &str) -> String {
    let conn = network.connect(addr).expect("status endpoint reachable");
    conn.send(view.as_bytes().to_vec()).expect("send view name");
    String::from_utf8(conn.recv().expect("status body")).expect("utf-8 status body")
}

#[test]
fn tracing_is_dark_by_default() {
    // An unconfigured server must trace nothing: no recorder traffic,
    // no sampling decisions, and the `trace` view reports dark.
    let w = world(0x7a00);
    let serving = w.serve_cas(1, 0x7a01);
    let reply = grant_attempt(&w, CAS_ADDR, 1);
    serving.join().expect("serve");
    assert!(matches!(reply, Message::GrantResponse { .. }), "grant refused: {reply:?}");

    let stats = w.cas.tracer().recorder().stats();
    assert_eq!((stats.pinned, stats.sampled, stats.discarded, stats.dropped), (0, 0, 0, 0));
    let status = w.serve_status(1);
    let view = w.probe_view("trace");
    assert!(view.contains("tracing: dark"), "trace view:\n{view}");
    status.join().expect("status");
}

#[test]
fn traced_grant_on_worker_path_records_stage_spans() {
    let w = world(0x7a10);
    light(&w.cas);
    let serving = w.serve_cas(1, 0x7a11);
    let reply = grant_attempt(&w, CAS_ADDR, 2);
    serving.join().expect("serve");
    assert!(matches!(reply, Message::GrantResponse { .. }), "grant refused: {reply:?}");

    let trace = trace_with_stage(&w.cas, "verify");
    for stage in ["request", "admission", "verify", "sign", "journal_flush", "seal"] {
        assert!(
            trace.spans().iter().any(|s| s.stage == stage && s.outcome == SpanOutcome::Ok),
            "missing ok `{stage}` span: {:?}",
            trace.spans()
        );
    }
    // Every stage span nests inside the synthesized end-to-end span.
    for span in trace.spans() {
        assert!(span.start_ns >= trace.begin_ns, "span {} starts before the trace", span.stage);
        assert!(span.end_ns <= trace.end_ns, "span {} ends after the trace", span.stage);
        assert_eq!(span.hop, 0, "single-node trace grew a remote hop");
    }
}

#[test]
fn traced_grant_on_reactor_path_records_queue_span() {
    let w = world(0x7a20);
    light(&w.cas);
    let serving = w.cas.serve_reactor_with(&w.network, CAS_ADDR, 1, 0x7a21, 2, 2);
    let reply = grant_attempt(&w, CAS_ADDR, 3);
    serving.join().expect("serve");
    assert!(matches!(reply, Message::GrantResponse { .. }), "grant refused: {reply:?}");

    let trace = trace_with_stage(&w.cas, "verify");
    for stage in ["request", "admission", "queue", "verify", "sign", "seal"] {
        assert!(
            trace.spans().iter().any(|s| s.stage == stage),
            "missing `{stage}` span on the reactor path: {:?}",
            trace.spans()
        );
    }
}

#[test]
fn follower_forwarded_write_produces_one_causal_trace() {
    // The tentpole acceptance test: a client's grant lands at a
    // follower, forwards to the primary, commits there, and the
    // follower's ONE trace shows the whole causal chain with per-hop
    // attribution — follower admission and forward at hop 0, the
    // primary's verify/sign/journal-flush absorbed at hop 1 and
    // nested inside the forward span, the sealed reply back at hop 0.
    let w = world(0x7a30);
    light(&w.cas);
    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 8, 0x7a31);
    let follower = w.new_replica();
    light(&follower);
    let pin = w.channel_key.public_key().fingerprint();
    follower.set_forward_link(Some(ForwardLink::new(w.network.clone(), REPL_ADDR, pin, 0x7a32)));
    let pump =
        follow(follower.clone(), w.network.clone(), REPL_ADDR.into(), 0x7a33, fast_backoff());
    wait_for("baseline", || follower.journal_sequence() == w.cas.journal_sequence());

    let serving = follower.serve(&w.network, FOLLOWER_ADDR, 1, 0x7a34);
    let reply = grant_attempt(&w, FOLLOWER_ADDR, 4);
    serving.join().expect("serve");
    assert!(matches!(reply, Message::GrantResponse { .. }), "forwarded grant refused: {reply:?}");

    let trace = trace_with_stage(&follower, "forward");
    // Local legs at hop 0.
    for stage in ["request", "admission", "forward", "seal"] {
        assert!(
            trace.spans().iter().any(|s| s.stage == stage && s.hop == 0),
            "missing hop-0 `{stage}` span: {:?}",
            trace.spans()
        );
    }
    // The primary's legs, absorbed at hop 1.
    for stage in ["request", "verify", "sign", "journal_flush"] {
        assert!(
            trace.spans().iter().any(|s| s.stage == stage && s.hop == 1),
            "missing hop-1 `{stage}` span: {:?}",
            trace.spans()
        );
    }
    // Plausible nesting: every remote span sits inside the forward
    // span's interval after rebasing.
    let forward =
        trace.spans().iter().find(|s| s.stage == "forward").copied().expect("forward span");
    for span in trace.spans().iter().filter(|s| s.hop == 1) {
        assert!(
            span.start_ns >= forward.start_ns && span.end_ns <= forward.end_ns,
            "hop-1 span {} [{}, {}] escapes the forward span [{}, {}]",
            span.stage,
            span.start_ns,
            span.end_ns,
            forward.start_ns,
            forward.end_ns
        );
    }
    // One causal id end to end: the primary kept the same trace.
    assert!(
        all_recent(&w.cas).iter().any(|t| t.trace_id == trace.trace_id),
        "primary recorded no trace with the follower's id {}",
        trace.id_hex()
    );

    // And the span tree is retrievable through the `trace` view.
    let status = serve_status(&follower, &w.network, FOLLOWER_STATUS_ADDR, 1);
    let view = probe(&w.network, FOLLOWER_STATUS_ADDR, "trace");
    assert!(view.contains(&trace.id_hex()), "trace id missing from view:\n{view}");
    assert!(view.contains("forward hop=0"), "no forward leg in view:\n{view}");
    assert!(view.contains("verify hop=1"), "no remote verify leg in view:\n{view}");
    // The follower's stream gauges ride along.
    assert!(view.contains("replication: applied_seq="), "no lag gauge in view:\n{view}");
    status.join().expect("status");
    pump.stop();
}

#[test]
fn shed_requests_are_pinned_even_with_sampling_off() {
    // Tail sampling: with the healthy sampler off entirely, a
    // rate-limited request still lands in the pinned ring, tagged
    // shed, with the refusing stage span marked refused.
    let w = world(0x7a40);
    w.cas.set_middleware(MiddlewareConfig {
        rate_limit: Some(RateLimitConfig { burst: 1, per_second: 1 }),
        ..MiddlewareConfig::default()
    });
    w.cas.tracer().set_enabled(true);
    w.cas.tracer().set_sample_every(0);

    // The burst budget admits the first grant; the identical retry
    // right behind it is shed at admission.
    let serving = w.serve_cas(2, 0x7a41);
    let first = grant_attempt(&w, CAS_ADDR, 8);
    let second = grant_attempt(&w, CAS_ADDR, 9);
    serving.join().expect("serve");
    assert!(matches!(first, Message::GrantResponse { .. }), "first grant refused: {first:?}");
    assert!(matches!(second, Message::Denied { .. }), "second grant not shed: {second:?}");

    let stats = w.cas.tracer().recorder().stats();
    assert_eq!(stats.pinned, 1, "refusal not pinned: {stats:?}");
    assert_eq!(stats.sampled, 0, "sampler kept a healthy trace at rate 0");
    assert!(stats.discarded >= 1, "healthy grant not discarded: {stats:?}");
    let pinned = &w.cas.tracer().recorder().recent_pinned(4)[0];
    assert_eq!(pinned.reason, PinReason::Shed);
    assert!(
        pinned.spans().iter().any(|s| s.stage == "rate_limit" && s.outcome == SpanOutcome::Refused),
        "no refused rate_limit span: {:?}",
        pinned.spans()
    );
}

#[test]
fn dedup_replay_lands_in_its_own_histogram_and_span() {
    // Satellite: a cached dedup replay is its own latency population.
    // The second identical grant must be answered from the dedup
    // cache, recording one `dedup_replay` histogram sample and a
    // `dedup_hit` span on its trace.
    let w = world(0x7a50);
    w.cas.set_middleware(MiddlewareConfig {
        dedup: Some(DedupConfig { capacity: 8, ttl: Duration::from_secs(60) }),
        ..MiddlewareConfig::default()
    });
    light(&w.cas);
    let serving = w.serve_cas(2, 0x7a51);
    let first = grant_attempt(&w, CAS_ADDR, 5);
    let second = grant_attempt(&w, CAS_ADDR, 6);
    serving.join().expect("serve");
    assert_eq!(first.to_bytes(), second.to_bytes(), "replay diverged");
    assert_eq!(w.cas.stats.snapshot().dedup_hits, 1);
    assert_eq!(
        w.cas.latency().dedup_replay.view().count(),
        1,
        "dedup replay not recorded in its histogram"
    );
    let trace = trace_with_stage(&w.cas, "dedup_hit");
    assert!(
        trace.spans().iter().any(|s| s.stage == "dedup_hit" && s.outcome == SpanOutcome::Ok),
        "dedup_hit span missing: {:?}",
        trace.spans()
    );
    // The histograms view exposes the new stage.
    let status = w.serve_status(1);
    let view = w.probe_view("histograms");
    assert!(view.contains("dedup_replay count=1"), "histograms view:\n{view}");
    status.join().expect("status");
}

#[test]
fn health_and_metrics_report_uptime_and_build() {
    // Satellite: operators must see what is running and for how long.
    let w = world(0x7a60);
    let status = w.serve_status(2);
    let health = w.probe_view("health");
    assert!(health.contains("build: 0.1.0"), "no build line in health view:\n{health}");
    assert!(health.contains("uptime_seconds: "), "no uptime in health view:\n{health}");
    let metrics = w.probe_view("metrics");
    assert!(metrics.contains("cas_uptime_seconds "), "no uptime gauge:\n{metrics}");
    assert!(metrics.contains("cas_build_info{build=\"0.1.0"), "no build gauge:\n{metrics}");
    status.join().expect("status");
}

#[test]
fn status_views_serve_from_follower_and_fenced_then_promoted_nodes() {
    // Satellite: the operability plane must answer on every fleet
    // role — a live follower, a fenced (deposed) primary, and the
    // promoted follower — over BOTH transports, and rendering the
    // trace/histograms views must never touch the journal.
    let w = world(0x7a70);
    light(&w.cas);
    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 8, 0x7a71);
    let follower = w.new_replica();
    light(&follower);
    let pump =
        follow(follower.clone(), w.network.clone(), REPL_ADDR.into(), 0x7a72, fast_backoff());

    // Commit one real write so the fleet has state to gauge.
    let serving = w.serve_cas(1, 0x7a73);
    let reply = grant_attempt(&w, CAS_ADDR, 7);
    serving.join().expect("serve");
    assert!(matches!(reply, Message::GrantResponse { .. }), "grant refused: {reply:?}");
    wait_for("grant streams to follower", || follower.journal_sequence() == 1);

    // Views from the live follower, over the plaintext listener.
    let views = ["health", "metrics", "histograms", "trace"];
    let follower_status = serve_status(&follower, &w.network, FOLLOWER_STATUS_ADDR, views.len());
    let before = follower.journal_sequence();
    for view in views {
        let body = probe(&w.network, FOLLOWER_STATUS_ADDR, view);
        assert!(!body.is_empty(), "follower served empty `{view}` view");
    }
    assert_eq!(follower.journal_sequence(), before, "a status view touched the journal");
    follower_status.join().expect("follower status");

    // Failover mid-flight: the follower is promoted, the old primary
    // observes the higher fence and fails closed.
    pump.stop();
    let fence = follower.promote().expect("promote");
    assert!(w.cas.observe_fence(fence), "old primary ignored the fence");
    assert!(w.cas.is_fenced());

    // The fenced node still answers every view (fail-closed verdict
    // included) without journal writes…
    let fenced_status = w.serve_status(views.len() + 1);
    let fenced_seq_before = w.cas.journal_sequence();
    for view in views {
        let body = probe(&w.network, STATUS_ADDR, view);
        assert!(!body.is_empty(), "fenced node served empty `{view}` view");
    }
    assert!(w.probe_view("health").contains("status: fail-closed"));
    assert_eq!(w.cas.journal_sequence(), fenced_seq_before, "a fenced view touched the journal");
    fenced_status.join().expect("fenced status");

    // …and the promoted follower answers the Status opcode on the
    // secure channel, views intact, journal untouched by rendering.
    let promoted_seq_before = follower.journal_sequence();
    let serving = follower.serve(&w.network, FOLLOWER_ADDR, 1, 0x7a74);
    let conn = w.network.connect(FOLLOWER_ADDR).expect("connect");
    let mut rng = StdRng::seed_from_u64(0x7a75);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    for view in views {
        chan.send(&Message::StatusRequest { view: view.into() }.to_bytes()).expect("send");
        let Message::StatusResponse { body } =
            Message::from_bytes(&chan.recv().expect("recv")).expect("decode")
        else {
            panic!("no status response for `{view}`");
        };
        assert!(!body.is_empty(), "promoted node served empty `{view}` view");
    }
    drop(chan);
    serving.join().expect("serve");
    assert_eq!(
        follower.journal_sequence(),
        promoted_seq_before,
        "a status opcode touched the promoted journal"
    );
}

#[test]
fn primary_trace_view_gauges_each_follower() {
    // A primary's `trace` view carries one replication-lag gauge line
    // per subscribed follower, straight from the hub's frontier.
    let w = world(0x7a80);
    let _repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 8, 0x7a81);
    let follower = w.new_replica();
    let pump =
        follow(follower.clone(), w.network.clone(), REPL_ADDR.into(), 0x7a82, fast_backoff());
    wait_for("subscriber registers", || {
        status_body(&w.cas, "trace").expect("trace view").contains("follower 0: sent_seq=")
    });
    wait_for("follower catches up", || follower.journal_sequence() == w.cas.journal_sequence());
    let view = status_body(&w.cas, "trace").expect("trace view");
    assert!(view.contains("follower 0: sent_seq=0 lag=0"), "caught-up follower lags:\n{view}");
    pump.stop();
}
