//! Honest-path end-to-end lifecycles across the whole stack: signer →
//! CAS → starter → enclave → attestation → configuration → workload,
//! for baseline and SinClave deployments, including the Fig. 9
//! workloads.

mod common;

use common::{World, CAS_ADDR, CONFIG_ID};
use sinclave_repro::cas::policy::PolicyMode;
use sinclave_repro::core::AppConfig;
use sinclave_repro::runtime::scone::StartOptions;
use sinclave_repro::runtime::workload;
use sinclave_repro::runtime::ProgramImage;

#[test]
fn baseline_lifecycle_delivers_and_runs() {
    let image = ProgramImage::with_entry(
        "service",
        "secret api-key -> k\nenv DEPLOYMENT -> d\nprint $d\ncompute mix 2 -> r",
        4,
    );
    let config = common::user_config_with_secrets();
    let world = World::new(10, image, config, PolicyMode::Baseline);
    let cas = world.serve_cas(1, 100);
    let app = world
        .host
        .start_baseline(&world.packaged, &StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(1))
        .unwrap();
    cas.join().unwrap();
    assert_eq!(app.outcome.stdout, vec!["production"]);
    assert!(app.outcome.vars.contains_key("r"));
}

#[test]
fn sinclave_lifecycle_delivers_and_runs() {
    let image = ProgramImage::with_entry("service", "secret db-password -> p\nprint configured", 4)
        .sinclave_aware();
    let world = World::new(11, image, common::user_config_with_secrets(), PolicyMode::Singleton);
    let cas = world.serve_cas(2, 110); // grant + attest
    let app = world
        .host
        .start_sinclave(&world.packaged, &StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(2))
        .unwrap();
    cas.join().unwrap();
    assert_eq!(app.outcome.stdout, vec!["configured"]);
    assert_eq!(world.cas.stats.snapshot().grants_issued, 1);
    assert_eq!(world.cas.stats.snapshot().configs_delivered, 1);
    assert_eq!(world.cas.stats.snapshot().denials, 0);
    // Unique, non-common measurement.
    assert_ne!(app.enclave.mrenclave(), world.packaged.signed.common_measurement());
}

#[test]
fn many_singletons_all_distinct_and_all_served() {
    let image = ProgramImage::with_entry("svc", "print ok", 2).sinclave_aware();
    let world = World::new(12, image, common::user_config_with_secrets(), PolicyMode::Singleton);
    let runs = 4;
    let cas = world.serve_cas(2 * runs, 120);
    let mut measurements = Vec::new();
    for i in 0..runs {
        let app = world
            .host
            .start_sinclave(
                &world.packaged,
                &StartOptions::new(CAS_ADDR, CONFIG_ID).with_seed(100 + i as u64),
            )
            .unwrap();
        measurements.push(app.enclave.mrenclave());
    }
    cas.join().unwrap();
    measurements.sort_by_key(|m| *m.as_bytes());
    measurements.dedup();
    assert_eq!(measurements.len(), runs, "every singleton is unique");
    assert_eq!(world.cas.stats.snapshot().configs_delivered, runs as u64);
}

#[test]
fn fig9_workloads_run_under_both_flows() {
    for (seed, w) in [
        (20u64, workload::python_volume(2)),
        (21, workload::openvino_inference(2)),
        (22, workload::pytorch_training(1)),
    ] {
        // Baseline flavor.
        let world = World::new(seed, w.image.clone(), w.config.clone(), PolicyMode::Either);
        let cas = world.serve_cas(1, seed * 10);
        let app = world
            .host
            .start_baseline(
                &world.packaged,
                &StartOptions::new(CAS_ADDR, CONFIG_ID)
                    .with_volume(w.volume.clone())
                    .with_seed(seed),
            )
            .unwrap();
        cas.join().unwrap();
        assert!(
            app.outcome.stdout.last().unwrap().ends_with("-done"),
            "workload {} finished: {:?}",
            w.name,
            app.outcome.stdout
        );

        // SinClave flavor over a fresh world (volumes may have been
        // written to; rebuild).
        let w2 = match w.name {
            "Python" => workload::python_volume(2),
            "OpenVINO" => workload::openvino_inference(2),
            _ => workload::pytorch_training(1),
        };
        let world = World::new(
            seed + 100,
            w2.image.clone().sinclave_aware(),
            w2.config.clone(),
            PolicyMode::Singleton,
        );
        let cas = world.serve_cas(2, seed * 10 + 5);
        let app = world
            .host
            .start_sinclave(
                &world.packaged,
                &StartOptions::new(CAS_ADDR, CONFIG_ID)
                    .with_volume(w2.volume.clone())
                    .with_seed(seed + 1),
            )
            .unwrap();
        cas.join().unwrap();
        assert!(app.outcome.stdout.last().unwrap().ends_with("-done"));
    }
}

#[test]
fn tampered_volume_detected_after_legitimate_provisioning() {
    // The host corrupts the encrypted volume after attestation; the
    // runtime's read fails closed.
    let w = workload::python_volume(1);
    let world = World::new(30, w.image.clone(), w.config.clone(), PolicyMode::Baseline);
    let cas = world.serve_cas(1, 300);
    // Corrupt a content chunk before the run.
    {
        let mut vol = w.volume.lock();
        let ids = vol.raw_chunk_ids();
        assert!(vol.corrupt_chunk(ids[ids.len() - 1]));
    }
    let err = world
        .host
        .start_baseline(
            &world.packaged,
            &StartOptions::new(CAS_ADDR, CONFIG_ID).with_volume(w.volume.clone()).with_seed(3),
        )
        .unwrap_err();
    cas.join().unwrap();
    assert!(
        matches!(
            err,
            sinclave_repro::runtime::RuntimeError::Fs(_)
                | sinclave_repro::runtime::RuntimeError::ScriptRuntime { .. }
        ),
        "integrity failure surfaced: {err:?}"
    );
}

#[test]
fn cas_database_survives_restart() {
    // Policies live in the encrypted store; a "restarted" CAS (same
    // store volume, same key) still serves them.
    use sinclave_repro::cas::store::CasStore;
    use sinclave_repro::crypto::aead::AeadKey;

    let key = AeadKey::new([9; 32]);
    let store = CasStore::create(key.clone());
    let world = World::new(
        31,
        ProgramImage::with_entry("x", "print hi", 2),
        AppConfig::default(),
        PolicyMode::Baseline,
    );
    store
        .put_policy(&sinclave_repro::cas::SessionPolicy {
            config_id: "persisted".into(),
            expected_common: world.packaged.signed.common_measurement(),
            expected_mrsigner: world.signer_key.public_key().fingerprint(),
            min_isv_svn: 0,
            allow_debug: false,
            mode: PolicyMode::Either,
            config: AppConfig::default(),
        })
        .unwrap();
    let disk_image = store.volume();
    let reopened = CasStore::open(disk_image, key).unwrap();
    assert!(reopened.get_policy("persisted").is_some());
}
