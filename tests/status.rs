//! The operability plane, end to end: the plaintext status endpoint
//! and the `StatusRequest` opcode serve the same three views (health
//! verdict, counter dump, per-stage latency histograms); an injected
//! volume fault flips the verdict to Degraded and recovery flips it
//! back; a fenced server reports fail-closed and a startup probe
//! refuses to route to it; and [`CasServer::shutdown`] drains every
//! serving path — workers, reactor loops, the status listener,
//! replication sessions, follower pumps — then persists, so a clean
//! stop restarts from the snapshot with **zero** journal replay.
//!
//! [`CasServer::shutdown`]: sinclave_repro::cas::CasServer::shutdown

mod common;

use common::{World, CAS_ADDR, REPL_ADDR};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::PolicyMode;
use sinclave_repro::cas::{follow, serve_replication, Health};
use sinclave_repro::core::protocol::Message;
use sinclave_repro::core::AttestationToken;
use sinclave_repro::net::{Backoff, SecureChannel};
use sinclave_repro::sgx::measurement::Measurement;
use sinclave_repro::sgx::sigstruct::SigStruct;
use std::time::{Duration, Instant};

fn world(seed: u64) -> World {
    World::new(
        seed,
        common::victim_interpreter(),
        common::user_config_with_secrets(),
        PolicyMode::Either,
    )
}

/// Polls `cond` until it holds or the suite-wide deadline expires.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Drives one grant over an already-serving CAS and returns the token
/// plus the predicted singleton measurement.
fn grant_via_wire(w: &World, conn_seed: u64) -> (AttestationToken, Measurement) {
    let conn = w.network.connect(CAS_ADDR).expect("connect");
    let mut rng = StdRng::seed_from_u64(conn_seed ^ 0x5eed);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");
    chan.send(
        &Message::GrantRequest {
            common_sigstruct: w.packaged.signed.common_sigstruct.to_bytes(),
            base_hash: w.packaged.signed.base_hash.encode().to_vec(),
        }
        .to_bytes(),
    )
    .expect("send grant");
    let reply = chan.recv().expect("recv grant");
    let Message::GrantResponse { token, sigstruct, .. } =
        Message::from_bytes(&reply).expect("decode")
    else {
        panic!("expected a grant");
    };
    let sigstruct = SigStruct::from_bytes(&sigstruct).expect("sigstruct");
    (token, sigstruct.body().enclave_hash)
}

/// Spawns a one-connection server, drives one grant, joins the server.
fn grant_over_network(w: &World, conn_seed: u64) -> (AttestationToken, Measurement) {
    let handle = w.serve_cas(1, conn_seed);
    let granted = grant_via_wire(w, conn_seed);
    handle.join().expect("serve");
    granted
}

/// Parses one stage's summary line out of the `histograms` view:
/// `(count, p50_ns, p95_ns, p99_ns, max_ns)`.
fn stage_summary(body: &str, stage: &str) -> (u64, u64, u64, u64, u64) {
    let prefix = format!("{stage} count=");
    let line = body
        .lines()
        .find(|line| line.starts_with(&prefix))
        .unwrap_or_else(|| panic!("no summary line for stage {stage} in:\n{body}"));
    let mut fields = line.split_whitespace().skip(1).map(|pair| {
        pair.split_once('=')
            .unwrap_or_else(|| panic!("malformed field {pair:?}"))
            .1
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("non-numeric field {pair:?}"))
    });
    let mut next = || fields.next().expect("five summary fields");
    (next(), next(), next(), next(), next())
}

#[test]
fn healthy_under_load_reports_all_three_views() {
    // The acceptance scenario: drive grants and a redemption, then
    // read all three views off the plaintext endpoint. The verdict is
    // Healthy, every counter that moved shows its true value, and all
    // five per-stage histograms are non-empty with ordered quantiles.
    let w = world(0x0b51);
    let status = w.serve_status(8);
    for conn_seed in 0..3 {
        grant_over_network(&w, 0x600 + conn_seed);
    }
    let (token, expected) = grant_over_network(&w, 0x610);
    w.cas.redeem_token(&token, &expected).expect("redeem");

    assert_eq!(w.probe_health(), Health::Healthy);

    let metrics = w.probe_view("metrics");
    assert!(
        metrics.contains("# TYPE cas_grants_issued counter\ncas_grants_issued 4\n"),
        "{metrics}"
    );
    assert!(metrics.contains("\ncas_tokens_redeemed 1\n"), "{metrics}");
    // Journal-before-ack means every grant and the redemption left an
    // appended record behind — the counter dump must agree.
    assert!(metrics.contains("\ncas_journal_appended 5\n"), "{metrics}");

    let histograms = w.probe_view("histograms");
    for stage in ["verify", "sign", "seal", "journal_flush", "request"] {
        let (count, p50, p95, p99, max) = stage_summary(&histograms, stage);
        assert!(count > 0, "stage {stage} recorded nothing:\n{histograms}");
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max, "stage {stage} quantiles out of order");
        assert!(max > 0, "stage {stage} max is zero");
    }
    // Four grants each timed verify + sign once (cache hits included).
    assert_eq!(stage_summary(&histograms, "verify").0, 4);
    assert_eq!(stage_summary(&histograms, "sign").0, 4);

    // An unknown view answers an error frame, not a hang or a panic.
    assert_eq!(w.probe_view("bogus"), "error: unknown view\n");

    w.cas.shutdown().expect("shutdown");
    status.join().expect("status listener drains");
}

#[test]
fn persist_failure_flips_degraded_and_recovery_flips_back() {
    // Satellite 2's observable: a reactor-path server whose snapshot
    // tick hits an injected volume write failure must flip the health
    // verdict to Degraded (the old code discarded the error), and a
    // recovered volume must flip it back to Healthy once a persist
    // succeeds again.
    let w = world(0x0b52);
    w.cas.set_snapshot_interval(Some(Duration::from_millis(20)));
    let status = w.serve_status(4096);
    let reactor = w.serve_cas_reactor(2, 0x7ac7);

    // Fail file writes *before* dirtying state: journal appends still
    // work (grants keep committing), only whole-file snapshot writes
    // fail — impaired durability, not fail-closed.
    w.cas.store().set_file_write_failure(true);
    grant_via_wire(&w, 0x620);
    wait_for("degraded verdict after failed tick", || w.probe_health() == Health::Degraded);
    // The failure is visible in the health view's signal lines too.
    assert!(w.probe_view("health").contains("status: degraded\n"));

    // Heal the volume: the state is still dirty (the failed persists
    // never sealed it), so the next tick persists and the consecutive-
    // failure gauge resets.
    w.cas.store().set_file_write_failure(false);
    wait_for("healthy verdict after recovery", || w.probe_health() == Health::Healthy);

    w.cas.shutdown().expect("shutdown");
    reactor.join().expect("reactor drains");
    status.join().expect("status listener drains");
}

#[test]
fn clean_shutdown_drains_persists_and_restarts_without_replay() {
    // Satellite 3's observable: shutdown() drains in-flight serving,
    // then persists, so a restart from the resulting image restores
    // the snapshot and replays *zero* journal records — previously a
    // dropped server lost its dirty window to replay (or, before the
    // journal, entirely).
    let mut w = world(0x0b53);
    let (token, expected) = grant_over_network(&w, 0x700);
    let (spent, spent_expected) = grant_over_network(&w, 0x701);
    w.cas.redeem_token(&spent, &spent_expected).expect("redeem");
    assert_eq!(w.cas.stats.snapshot().journal_appended, 3);

    w.cas.shutdown().expect("shutdown");
    let image = w.cas.store().volume().to_disk_image();
    w.rebuild_cas_from_image(&image);

    let stats = w.cas.stats.snapshot();
    assert_eq!(stats.journal_replayed, 0, "clean stop must not need journal replay");
    assert_eq!(stats.snapshot_restored, 1);
    assert_eq!(stats.snapshot_rejected, 0);
    assert_eq!(w.cas.issuer().outstanding_tokens(), 1);
    // Exactly-once held across the stop: spent stays spent, the
    // outstanding token redeems exactly once.
    assert!(w.cas.redeem_token(&spent, &spent_expected).is_err());
    w.cas.redeem_token(&token, &expected).expect("redeem survivor");
    assert!(w.cas.redeem_token(&token, &expected).is_err());
}

#[test]
fn status_opcode_answers_on_the_secure_channel() {
    // The same views ride the regular protocol for clients that
    // already hold a channel — one renderer, two transports.
    let w = world(0x0b54);
    let handle = w.serve_cas(1, 0x900);
    let conn = w.network.connect(CAS_ADDR).expect("connect");
    let mut rng = StdRng::seed_from_u64(0x55);
    let mut chan = SecureChannel::client_connect(conn, &mut rng).expect("handshake");

    chan.send(&Message::StatusRequest { view: "health".into() }.to_bytes()).expect("send");
    let Message::StatusResponse { body } =
        Message::from_bytes(&chan.recv().expect("recv")).expect("decode")
    else {
        panic!("expected a status response");
    };
    assert!(body.starts_with("status: healthy\n"), "{body}");

    chan.send(&Message::StatusRequest { view: "bogus".into() }.to_bytes()).expect("send");
    assert!(matches!(
        Message::from_bytes(&chan.recv().expect("recv")).expect("decode"),
        Message::Denied { .. }
    ));
    drop(chan);
    handle.join().expect("serve");
}

#[test]
fn fenced_server_fails_closed_and_startup_probe_refuses() {
    // The /healthz contract: a deployment controller checks the
    // verdict before routing traffic and must refuse a fail-closed
    // server — the fence refuses writes, so routing to it only
    // manufactures errors.
    let w = world(0x0b55);
    let status = w.serve_status(8);
    assert_eq!(w.startup_probe().expect("healthy server admits traffic"), Health::Healthy);

    assert!(w.cas.observe_fence(w.cas.fence() + 1), "higher fence deposes");
    assert_eq!(w.probe_health(), Health::FailClosed);
    let refusal = w.startup_probe().expect_err("must refuse a fail-closed server");
    assert!(refusal.contains("fenced: true\n"), "{refusal}");

    // Shutdown on a fenced ex-primary drains but does NOT persist —
    // it holds no authority to seal state.
    let persisted_before = w.cas.stats.snapshot().snapshot_persisted;
    w.cas.shutdown().expect("fenced shutdown");
    assert_eq!(w.cas.stats.snapshot().snapshot_persisted, persisted_before);
    status.join().expect("status listener drains");
}

#[test]
fn shutdown_drains_replication_sessions_and_follower_pumps() {
    // The fleet half of the drain contract: a primary's shutdown
    // retires its replication listener, and a follower's shutdown
    // raises its pump's stop flag so the subscription ends cleanly
    // (no reconnect storm against a drained primary).
    let w = world(0x0b56);
    let follower = w.new_replica();
    let repl = serve_replication(&w.cas, &w.network, REPL_ADDR, 4, 0x11);
    let pump = follow(
        follower.clone(),
        w.network.clone(),
        REPL_ADDR.into(),
        0x12,
        Backoff::new(Duration::from_millis(2), Duration::from_millis(20)),
    );
    wait_for("baseline adoption", || follower.is_following());
    grant_over_network(&w, 0x720);
    wait_for("live replay", || follower.journal_sequence() == w.cas.journal_sequence());

    // Follower-side shutdown raises the registered pump stop: the
    // pump exits on its next poll and the handle joins promptly.
    follower.shutdown().expect("follower shutdown");
    wait_for("pump unsubscribed", || !follower.is_following());
    pump.stop();

    // Primary-side shutdown drains the replication accept loop (and
    // the subscriber session the pump left behind), then persists.
    w.cas.shutdown().expect("primary shutdown");
    repl.join().expect("replication listener drains");
    assert!(w.cas.stats.snapshot().snapshot_persisted >= 1);
}
