#![allow(dead_code)] // shared across test targets; not all use every helper

//! Shared fixture for cross-crate integration tests: a complete world
//! with attestation infrastructure, a platform, a quoting enclave, a
//! real CAS, and a packaged victim application.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::{PolicyMode, SessionPolicy};
use sinclave_repro::cas::store::CasStore;
use sinclave_repro::cas::CasServer;
use sinclave_repro::core::signer::SignerConfig;
use sinclave_repro::core::AppConfig;
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::rsa::RsaPrivateKey;
use sinclave_repro::fs::Volume;
use sinclave_repro::net::Network;
use sinclave_repro::runtime::scone::{package_app, PackagedApp, SconeHost};
use sinclave_repro::runtime::ProgramImage;
use sinclave_repro::sgx::attestation::AttestationService;
use sinclave_repro::sgx::platform::Platform;
use sinclave_repro::sgx::quote::QuotingEnclave;
use std::sync::Arc;

/// The real CAS's address in every test world.
pub const CAS_ADDR: &str = "cas:443";
/// The user's configuration id.
pub const CONFIG_ID: &str = "user-app";
/// Key protecting the CAS store's encrypted volume in every world.
pub const STORE_KEY: [u8; 32] = [0x42; 32];

pub struct World {
    pub host: SconeHost,
    pub cas: Arc<CasServer>,
    pub network: Network,
    pub packaged: PackagedApp,
    pub signer_key: RsaPrivateKey,
    pub channel_key: RsaPrivateKey,
    pub attestation_root: sinclave_repro::crypto::rsa::RsaPublicKey,
    /// The restore-generation witness a deployment keeps *outside* the
    /// CAS volume (e.g. a sealed monotonic counter): updated after
    /// each graceful persist, handed to `CasServer::check_rollback`
    /// after a restore so a replayed older disk image is detected.
    pub generation_witness: u64,
    /// The journal-sequence half of the rollback witness: catches a
    /// host deleting the journal's committed tail, which generations
    /// (refreshed only at snapshots) cannot see.
    pub sequence_witness: u64,
}

impl World {
    /// Builds a world around `image`, registering a policy that
    /// delivers `config` under the given mode.
    pub fn new(seed: u64, image: ProgramImage, config: AppConfig, mode: PolicyMode) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let service = AttestationService::new(&mut rng, 1024).expect("attestation service");
        let platform = Arc::new(Platform::new(&mut rng));
        service.register_platform(platform.manufacturing_record());
        let qe = Arc::new(
            QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024)
                .expect("qe provision"),
        );
        let network = Network::new();
        let host = SconeHost::new(platform, qe, network.clone());

        let signer_key = RsaPrivateKey::generate(&mut rng, 1024).expect("signer key");
        let packaged = package_app(&image, &signer_key, &SignerConfig::default()).expect("package");

        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).expect("channel key");
        let store = CasStore::create(AeadKey::new(STORE_KEY));
        let cas = CasServer::new(
            channel_key.clone(),
            signer_key.clone(),
            service.root_public_key().clone(),
            store,
        );
        cas.add_policy(SessionPolicy {
            config_id: CONFIG_ID.to_owned(),
            expected_common: packaged.signed.common_measurement(),
            expected_mrsigner: signer_key.public_key().fingerprint(),
            min_isv_svn: 0,
            allow_debug: false,
            mode,
            config,
        })
        .expect("policy");

        World {
            host,
            cas,
            network,
            packaged,
            signer_key,
            channel_key,
            attestation_root: service.root_public_key().clone(),
            generation_witness: 0,
            sequence_witness: 0,
        }
    }

    /// Spawns the CAS serving `connections` connections.
    pub fn serve_cas(&self, connections: usize, seed: u64) -> std::thread::JoinHandle<()> {
        self.cas.serve(&self.network, CAS_ADDR, connections, seed)
    }

    /// Spawns the CAS on the reactor path serving `connections`
    /// connections with the default loop/worker counts.
    pub fn serve_cas_reactor(&self, connections: usize, seed: u64) -> std::thread::JoinHandle<()> {
        self.cas.serve_reactor(&self.network, CAS_ADDR, connections, seed)
    }

    /// Gracefully restarts the CAS: persist its durable state, drop
    /// the server, and rebuild one from the *same volume bytes* (a
    /// disk-image round trip, exactly what a redeploy sees). The new
    /// server holds the same keys and identity; whatever state was
    /// persisted comes back through the snapshot-restore path.
    pub fn restart_cas(&mut self) {
        self.cas.persist_state().expect("persist state");
        self.generation_witness = self.generation_witness.max(self.cas.restore_generation());
        self.sequence_witness = self.sequence_witness.max(self.cas.journal_sequence());
        let image = self.cas.store().volume().to_disk_image();
        self.rebuild_cas_from_image(&image);
        // A graceful restart restores the image just written; the
        // freshness check against the external witness must pass.
        assert!(
            !self.cas.check_rollback(self.generation_witness, self.sequence_witness),
            "false rollback alarm"
        );
    }

    /// Crash-restarts the CAS from an explicit volume image — used by
    /// fault-injection tests that interrupt or corrupt the volume
    /// between persist and rebuild. Does *not* persist first: whatever
    /// the image holds is what the "rebooted machine" finds on disk.
    pub fn rebuild_cas_from_image(&mut self, image: &[u8]) {
        let volume = Volume::from_disk_image(image).expect("volume image");
        let store = CasStore::open(volume, AeadKey::new(STORE_KEY)).expect("open store");
        self.cas = CasServer::new(
            self.channel_key.clone(),
            self.signer_key.clone(),
            self.attestation_root.clone(),
            store,
        );
    }
}

/// The canonical user secrets every attack test tries to steal.
pub fn user_config_with_secrets() -> AppConfig {
    AppConfig {
        entry: "embedded".into(),
        env: vec![("DEPLOYMENT".into(), "production".into())],
        secrets: vec![
            ("db-password".into(), b"correct horse battery staple".to_vec()),
            ("api-key".into(), b"sk-live-0123456789".to_vec()),
        ],
        ..AppConfig::default()
    }
}

/// A victim interpreter image (baseline flavor).
pub fn victim_interpreter() -> ProgramImage {
    ProgramImage::interpreter("python-3.8", 8)
}
