#![allow(dead_code)] // shared across test targets; not all use every helper

//! Shared fixture for cross-crate integration tests: a complete world
//! with attestation infrastructure, a platform, a quoting enclave, a
//! real CAS, and a packaged victim application.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave_repro::cas::policy::{PolicyMode, SessionPolicy};
use sinclave_repro::cas::store::CasStore;
use sinclave_repro::cas::witness::SealedWitness;
use sinclave_repro::cas::{CasServer, Health};
use sinclave_repro::core::signer::SignerConfig;
use sinclave_repro::core::AppConfig;
use sinclave_repro::crypto::aead::AeadKey;
use sinclave_repro::crypto::rsa::RsaPrivateKey;
use sinclave_repro::fs::Volume;
use sinclave_repro::net::Network;
use sinclave_repro::runtime::scone::{package_app, PackagedApp, SconeHost};
use sinclave_repro::runtime::ProgramImage;
use sinclave_repro::sgx::attestation::AttestationService;
use sinclave_repro::sgx::platform::Platform;
use sinclave_repro::sgx::quote::QuotingEnclave;
use std::sync::Arc;

/// The real CAS's address in every test world.
pub const CAS_ADDR: &str = "cas:443";
/// The user's configuration id.
pub const CONFIG_ID: &str = "user-app";
/// Key protecting the CAS store's encrypted volume in every world.
pub const STORE_KEY: [u8; 32] = [0x42; 32];
/// Key protecting the rollback witness's own (separate) volume.
pub const WITNESS_KEY: [u8; 32] = [0x57; 32];
/// The primary's replication address in fleet tests.
pub const REPL_ADDR: &str = "cas-repl:7443";
/// The plaintext status endpoint's address in operability tests.
pub const STATUS_ADDR: &str = "cas-status:9443";

pub struct World {
    pub host: SconeHost,
    pub cas: Arc<CasServer>,
    pub network: Network,
    pub packaged: PackagedApp,
    pub signer_key: RsaPrivateKey,
    pub channel_key: RsaPrivateKey,
    pub attestation_root: sinclave_repro::crypto::rsa::RsaPublicKey,
    /// The session policy registered at build time; fleet tests
    /// provision it onto follower replicas too (policies are
    /// configuration, not journaled state — they do not replicate).
    pub policy: SessionPolicy,
    /// The rollback witness the deployment keeps *outside* the CAS
    /// volume: a sealed monotonic `(generation, journal sequence)`
    /// counter in its **own** encrypted volume, advanced after each
    /// graceful persist and handed to `CasServer::check_rollback`
    /// after a restore. Separation is the point — a host must roll
    /// back both volumes consistently to silence the alarm.
    pub witness: SealedWitness,
}

impl World {
    /// Builds a world around `image`, registering a policy that
    /// delivers `config` under the given mode.
    pub fn new(seed: u64, image: ProgramImage, config: AppConfig, mode: PolicyMode) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let service = AttestationService::new(&mut rng, 1024).expect("attestation service");
        let platform = Arc::new(Platform::new(&mut rng));
        service.register_platform(platform.manufacturing_record());
        let qe = Arc::new(
            QuotingEnclave::provision(platform.clone(), &service, &mut rng, 1024)
                .expect("qe provision"),
        );
        let network = Network::new();
        let host = SconeHost::new(platform, qe, network.clone());

        let signer_key = RsaPrivateKey::generate(&mut rng, 1024).expect("signer key");
        let packaged = package_app(&image, &signer_key, &SignerConfig::default()).expect("package");

        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).expect("channel key");
        let store = CasStore::create(AeadKey::new(STORE_KEY));
        let cas = CasServer::new(
            channel_key.clone(),
            signer_key.clone(),
            service.root_public_key().clone(),
            store,
        );
        let policy = SessionPolicy {
            config_id: CONFIG_ID.to_owned(),
            expected_common: packaged.signed.common_measurement(),
            expected_mrsigner: signer_key.public_key().fingerprint(),
            min_isv_svn: 0,
            allow_debug: false,
            mode,
            config,
        };
        cas.add_policy(policy.clone()).expect("policy");

        World {
            host,
            cas,
            network,
            packaged,
            signer_key,
            channel_key,
            attestation_root: service.root_public_key().clone(),
            policy,
            witness: SealedWitness::create(AeadKey::new(WITNESS_KEY)),
        }
    }

    /// Spawns the CAS serving `connections` connections.
    pub fn serve_cas(&self, connections: usize, seed: u64) -> std::thread::JoinHandle<()> {
        self.cas.serve(&self.network, CAS_ADDR, connections, seed)
    }

    /// Spawns the CAS on the reactor path serving `connections`
    /// connections with the default loop/worker counts.
    pub fn serve_cas_reactor(&self, connections: usize, seed: u64) -> std::thread::JoinHandle<()> {
        self.cas.serve_reactor(&self.network, CAS_ADDR, connections, seed)
    }

    /// Gracefully restarts the CAS: persist its durable state, drop
    /// the server, and rebuild one from the *same volume bytes* (a
    /// disk-image round trip, exactly what a redeploy sees). The new
    /// server holds the same keys and identity; whatever state was
    /// persisted comes back through the snapshot-restore path.
    pub fn restart_cas(&mut self) {
        self.cas.persist_state().expect("persist state");
        self.witness
            .advance(self.cas.restore_generation(), self.cas.journal_sequence())
            .expect("advance witness");
        // Round-trip the witness through *its own* disk image too — a
        // restart reopens both volumes, and they must stay separable.
        let witness_image = self.witness.volume().to_disk_image();
        self.witness = SealedWitness::open(
            Volume::from_disk_image(&witness_image).expect("witness image"),
            AeadKey::new(WITNESS_KEY),
        )
        .expect("reopen witness");
        let image = self.cas.store().volume().to_disk_image();
        self.rebuild_cas_from_image(&image);
        // A graceful restart restores the image just written; the
        // freshness check against the external witness must pass.
        let mark = self.witness.read().expect("read witness");
        assert!(!self.cas.check_rollback(mark.generation, mark.sequence), "false rollback alarm");
    }

    /// Builds a follower replica for the fleet tests: a fresh CAS on
    /// its own empty store but sharing this world's channel key,
    /// signer key, and attestation root (snapshot adoption checks the
    /// verifier identity, so a fleet is one identity on many
    /// machines), with the same session policy provisioned out of
    /// band (policies are configuration — they are not journaled and
    /// do not replicate).
    pub fn new_replica(&self) -> Arc<CasServer> {
        let store = CasStore::create(AeadKey::new(STORE_KEY));
        let replica = CasServer::new(
            self.channel_key.clone(),
            self.signer_key.clone(),
            self.attestation_root.clone(),
            store,
        );
        replica.add_policy(self.policy.clone()).expect("replica policy");
        replica
    }

    /// Spawns the plaintext status endpoint serving up to `probes`
    /// probe connections.
    pub fn serve_status(&self, probes: usize) -> std::thread::JoinHandle<()> {
        sinclave_repro::cas::serve_status(&self.cas, &self.network, STATUS_ADDR, probes)
    }

    /// One status probe: connect to the status endpoint, send `view`
    /// as a raw frame, return the rendered body.
    pub fn probe_view(&self, view: &str) -> String {
        let conn = self.network.connect(STATUS_ADDR).expect("status endpoint reachable");
        conn.send(view.as_bytes().to_vec()).expect("send view name");
        String::from_utf8(conn.recv().expect("status body")).expect("utf-8 status body")
    }

    /// Probes the `health` view and parses the verdict line.
    pub fn probe_health(&self) -> Health {
        let body = self.probe_view("health");
        let verdict = body
            .lines()
            .find_map(|line| line.strip_prefix("status: "))
            .unwrap_or_else(|| panic!("no verdict line in health view:\n{body}"));
        match verdict {
            "healthy" => Health::Healthy,
            "degraded" => Health::Degraded,
            "fail-closed" => Health::FailClosed,
            other => panic!("unknown health verdict {other:?}"),
        }
    }

    /// The deployment's startup probe, mirroring an enclave runtime's
    /// `/healthz` contract: a controller checks health before routing
    /// traffic, and **refuses to drive a fail-closed server**. Returns
    /// the full health body on refusal so the operator sees why.
    pub fn startup_probe(&self) -> Result<Health, String> {
        match self.probe_health() {
            Health::FailClosed => Err(self.probe_view("health")),
            verdict => Ok(verdict),
        }
    }

    /// Crash-restarts the CAS from an explicit volume image — used by
    /// fault-injection tests that interrupt or corrupt the volume
    /// between persist and rebuild. Does *not* persist first: whatever
    /// the image holds is what the "rebooted machine" finds on disk.
    pub fn rebuild_cas_from_image(&mut self, image: &[u8]) {
        let volume = Volume::from_disk_image(image).expect("volume image");
        let store = CasStore::open(volume, AeadKey::new(STORE_KEY)).expect("open store");
        self.cas = CasServer::new(
            self.channel_key.clone(),
            self.signer_key.clone(),
            self.attestation_root.clone(),
            store,
        );
    }
}

/// The canonical user secrets every attack test tries to steal.
pub fn user_config_with_secrets() -> AppConfig {
    AppConfig {
        entry: "embedded".into(),
        env: vec![("DEPLOYMENT".into(), "production".into())],
        secrets: vec![
            ("db-password".into(), b"correct horse battery staple".to_vec()),
            ("api-key".into(), b"sk-live-0123456789".to_vec()),
        ],
        ..AppConfig::default()
    }
}

/// A victim interpreter image (baseline flavor).
pub fn victim_interpreter() -> ProgramImage {
    ProgramImage::interpreter("python-3.8", 8)
}
