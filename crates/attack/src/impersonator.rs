//! The TEE impersonators — ordinary host code that completes
//! attestation protocols using a remote report server (§3.3.1's
//! "75 lines of code" CAS client, §3.3.2's SGX-LKL protocol server).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::protocol::Message;
use sinclave::AppConfig;
use sinclave::AttestationToken;
use sinclave_crypto::rsa::RsaPrivateKey;
use sinclave_net::{Network, SecureChannel};
use sinclave_runtime::RuntimeError;
use sinclave_sgx::quote::QuotingEnclave;
use sinclave_sgx::report::Report;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Asks the report server at `addr` for a report over `reportdata`.
///
/// # Errors
///
/// Propagates connectivity failures; retries while the victim enclave
/// is still starting up.
pub fn fetch_report(
    network: &Network,
    addr: &str,
    reportdata: &[u8],
) -> Result<Report, RuntimeError> {
    // The victim enclave binds its listener only after its own (fake)
    // attestation completes; retry briefly.
    let mut attempts = 0;
    let conn = loop {
        match network.connect(addr) {
            Ok(conn) => break conn,
            Err(e) if attempts > 100 => return Err(e.into()),
            Err(_) => {
                attempts += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    conn.send(reportdata.to_vec())?;
    let raw = conn.recv()?;
    Ok(Report::from_bytes(&raw)?)
}

/// The SCONE-flavored TEE impersonator: completes the CAS attestation
/// protocol for `config_id`, delegating report generation to the
/// report server. On success the verifier's configuration — the
/// user's secrets — is returned to the adversary.
///
/// `qe` is the platform's quoting enclave: quoting is a host-available
/// system service (aesmd in real deployments), so the adversary may
/// use it directly.
///
/// # Errors
///
/// Returns the verifier's denial (the SinClave case) or protocol
/// failures.
pub fn scone_impersonate(
    network: &Network,
    cas_addr: &str,
    config_id: &str,
    report_server_addr: &str,
    qe: &Arc<QuotingEnclave>,
    token: Option<AttestationToken>,
    seed: u64,
) -> Result<AppConfig, RuntimeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let conn = network.connect(cas_addr)?;
    let mut chan = SecureChannel::client_connect(conn, &mut rng)?;

    chan.send(&Message::ChallengeRequest.to_bytes())?;
    let Message::Challenge { nonce } = Message::from_bytes(&chan.recv()?)? else {
        return Err(RuntimeError::ProtocolViolation { context: "challenge" });
    };

    // The crucial move: have the *genuine* enclave bind the
    // *impersonator's* channel into a report (§3.3.1: "incorporate the
    // TEE impersonator's certificate key into the report's reportdata
    // field, undermining the channel's authenticity").
    let binding = chan.transcript();
    let report = fetch_report(network, report_server_addr, binding.as_bytes())?;
    let quote = qe.quote(&report, nonce)?;

    let request = match token {
        Some(token) => Message::AttestRequest {
            quote: quote.to_bytes(),
            token,
            config_id: config_id.to_owned(),
        },
        None => Message::BaselineAttestRequest {
            quote: quote.to_bytes(),
            config_id: config_id.to_owned(),
        },
    };
    chan.send(&request.to_bytes())?;
    match Message::from_bytes(&chan.recv()?)? {
        Message::ConfigResponse { config } => Ok(AppConfig::from_bytes(&config)?),
        Message::Denied { reason } => Err(RuntimeError::AttestationDenied { reason }),
        _ => Err(RuntimeError::ProtocolViolation { context: "attest reply" }),
    }
}

/// The SGX-LKL-flavored impersonator (§3.3.2): a *server* that
/// occupies the enclave's service address. When the user's controller
/// connects, it relays the challenge to the report server, quotes the
/// result and — if the user falls for it — receives the configuration
/// with the disk key.
///
/// Returns a handle resolving to the stolen configuration, if any.
#[must_use]
pub fn lkl_impersonate(
    network: &Network,
    service_addr: &str,
    channel_key: RsaPrivateKey,
    report_server_addr: &str,
    qe: Arc<QuotingEnclave>,
    seed: u64,
) -> JoinHandle<Option<AppConfig>> {
    let listener = network.listen(service_addr);
    let network = network.clone();
    let report_server_addr = report_server_addr.to_owned();
    std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let conn = listener.accept().ok()?;
        let mut chan = SecureChannel::server_accept(conn, &channel_key, &mut rng).ok()?;
        let Message::Challenge { nonce } = Message::from_bytes(&chan.recv().ok()?).ok()? else {
            return None;
        };
        // Bind the *impersonator's* channel into the report.
        let binding = chan.transcript();
        let report = fetch_report(&network, &report_server_addr, binding.as_bytes()).ok()?;
        let quote = qe.quote(&report, nonce).ok()?;
        chan.send(&Message::QuoteResponse { quote: quote.to_bytes() }.to_bytes()).ok()?;
        // The user, convinced, sends the configuration (possibly after
        // a VerifierAuth we happily swallow).
        loop {
            match Message::from_bytes(&chan.recv().ok()?).ok()? {
                Message::ConfigResponse { config } => {
                    return AppConfig::from_bytes(&config).ok();
                }
                Message::VerifierAuth { .. } => continue,
                _ => return None,
            }
        }
    })
}

/// Spins until `f` returns `Some`, with a deadline — test helper for
/// racing against enclave startup.
pub fn wait_for<T>(mut f: impl FnMut() -> Option<T>, deadline: Duration) -> Option<T> {
    let start = std::time::Instant::now();
    loop {
        if let Some(v) = f() {
            return Some(v);
        }
        if start.elapsed() > deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_report_times_out_cleanly() {
        let network = Network::new();
        let err = fetch_report(&network, "nowhere:1", &[0u8; 32]).unwrap_err();
        assert!(matches!(err, RuntimeError::Net(_)));
    }

    #[test]
    fn wait_for_deadline() {
        assert_eq!(wait_for(|| Some(1), Duration::from_millis(10)), Some(1));
        let none: Option<u32> = wait_for(|| None, Duration::from_millis(30));
        assert_eq!(none, None);
    }
}
