//! A replication-stream hijacker.
//!
//! The fleet's replication port speaks the same secure-channel
//! construction as the client port — and that channel authenticates
//! *a* server key, not *the* server (see `sinclave_net::channel`). An
//! adversary who controls routing (DNS, ARP, a compromised LB) can
//! therefore answer a follower's dial, complete the handshake with a
//! key of their own, and try to feed the follower a forged baseline:
//! a snapshot minting an adversary-chosen token, stamped with the
//! fleet's *public* identity values (the verifier identity and signer
//! fingerprint travel in every signed SigStruct, so the snapshot
//! identity check alone cannot stop someone who has watched one
//! deployment).
//!
//! The defense is **fleet pinning**: every replica holds the shared
//! channel key, so a follower knows exactly which fingerprint the real
//! primary must present and drops a session terminated by any other
//! key before even sending its hello. This module is the attack side;
//! `tests/replication.rs` drives it and asserts the pin holds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::replication::{ReplicaRole, ReplicationFrame};
use sinclave::snapshot::{IssuerSnapshot, TokenSnapshotEntry, TokenSnapshotState};
use sinclave_crypto::rsa::RsaPrivateKey;
use sinclave_net::{Network, SecureChannel};

/// The token the hijacker tries to mint into a follower's table.
pub const FORGED_TOKEN: [u8; 32] = [0x66; 32];

/// How far one hijack attempt got, step by step.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HijackReport {
    /// The victim dialed us and the handshake completed — the channel
    /// construction itself never stops a key-substitution MITM.
    pub handshake_completed: bool,
    /// The victim sent its subscribe hello over the hijacked channel
    /// (with fleet pinning this must stay `false`: the victim hangs up
    /// on the wrong fingerprint first).
    pub hello_received: bool,
    /// The forged baseline was sent and the victim kept the channel
    /// open long enough to have received it.
    pub baseline_delivered: bool,
}

/// Answers one follower dial on `listen_addr` with an
/// adversary-terminated channel and a forged baseline carrying
/// [`FORGED_TOKEN`]. `verifier_identity` and `signer_fingerprint` are
/// the fleet's public identity values, harvested from any signed
/// binary. Returns when the victim hangs up (or was fed everything).
#[must_use]
pub fn hijack_replication_stream(
    network: &Network,
    listen_addr: &str,
    verifier_identity: [u8; 32],
    signer_fingerprint: [u8; 32],
    seed: u64,
) -> std::thread::JoinHandle<HijackReport> {
    let listener = network.listen(listen_addr);
    std::thread::spawn(move || {
        let mut report = HijackReport::default();
        let mut rng = StdRng::seed_from_u64(seed);
        // The adversary's own channel key — the handshake will happily
        // bind the session to it.
        let Ok(evil_key) = RsaPrivateKey::generate(&mut rng, 1024) else { return report };
        let Ok(conn) = listener.accept() else { return report };
        let Ok(mut chan) = SecureChannel::server_accept(conn, &evil_key, &mut rng) else {
            return report;
        };
        report.handshake_completed = true;
        let Ok(raw) = chan.recv() else { return report };
        let Ok(ReplicationFrame::Hello { role: ReplicaRole::Subscribe, .. }) =
            ReplicationFrame::from_bytes(&raw)
        else {
            return report;
        };
        report.hello_received = true;
        // A baseline whose snapshot mints the forged token as issued,
        // wearing the fleet's public identity.
        let snapshot = IssuerSnapshot {
            verifier_identity,
            signer_fingerprint,
            generation: 1,
            journal_sequence: 1,
            fence: 0,
            verified_keys: Vec::new(),
            tokens: vec![TokenSnapshotEntry {
                token: FORGED_TOKEN,
                state: TokenSnapshotState::Issued { expected: FORGED_TOKEN, common: FORGED_TOKEN },
            }],
        };
        let baseline = ReplicationFrame::Baseline {
            fence: 0,
            high_seq: 1,
            baseline_seq: 1,
            snapshot: snapshot.to_bytes(),
            chunks: Vec::new(),
        };
        if chan.send(&baseline.to_bytes()).is_err() {
            return report;
        }
        // One more exchange proves the victim was still listening
        // after the baseline landed (sends only fail once the victim's
        // endpoint is dropped).
        report.baseline_delivered =
            chan.send(&ReplicationFrame::Heartbeat { fence: 0, high_seq: 1 }.to_bytes()).is_ok();
        report
    })
}
