//! The full §3.3.1 attack procedure against the SCONE-like stack —
//! and the §4.4 defense checks showing every variant fails against
//! SinClave.
//!
//! Attack recipe ("Attack Procedure", §3.3.1):
//!
//! 1. The adversary starts the victim's *genuine* interpreter enclave
//!    on their machine, but configured through the adversary's own
//!    verifier and volume to run a report-server script.
//! 2. The TEE impersonator connects to the *real* CAS, fetches a
//!    challenge, has the report server bind the impersonator's channel
//!    into a report, quotes it via the host quoting enclave, and
//!    completes attestation.
//! 3. The real CAS — seeing a valid quote for the expected enclave,
//!    correctly channel-bound — delivers the user's secrets to the
//!    adversary.

use crate::impersonator::scone_impersonate;
use crate::malicious::{report_server_payload, MaliciousCas};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::instance_page::InstancePage;
use sinclave::token::AttestationToken;
use sinclave::AppConfig;
use sinclave_cas::CasServer;
use sinclave_runtime::scone::{PackagedApp, SconeHost, StartOptions};
use sinclave_runtime::RuntimeError;
use std::sync::Arc;

/// Everything the adversary controls when mounting the attack.
pub struct AttackEnvironment {
    /// The deployment machine (adversary-controlled host).
    pub host: SconeHost,
    /// The *real* verifier's address.
    pub cas_addr: String,
    /// The user's configuration id at the real verifier.
    pub config_id: String,
    /// The victim's distributable binary package.
    pub victim: PackagedApp,
}

/// Result of a successful reuse attack: the stolen configuration.
#[derive(Debug)]
pub struct StolenLoot {
    /// The user's configuration, including secrets and volume keys.
    pub config: AppConfig,
}

/// Runs the complete reuse attack against a baseline deployment.
///
/// `use_import_flavor` selects the report-server construction: direct
/// entry-script configuration, or a dynamically `import`ed module
/// (the paper's Apache/NGINX dynamic-module variant).
///
/// # Errors
///
/// Returns the verifier's denial when the attack is defeated (the
/// SinClave deployments) or infrastructure failures.
pub fn run_reuse_attack(
    env: &AttackEnvironment,
    use_import_flavor: bool,
    seed: u64,
) -> Result<StolenLoot, RuntimeError> {
    let network = env.host.network.clone();
    let rs_addr = format!("rs:{seed}");

    // Step 1: adversary infrastructure — their verifier delivering the
    // report-server configuration.
    let (evil_volume, evil_config) = report_server_payload(&rs_addr, use_import_flavor);
    let evil_cas = MaliciousCas::new(seed ^ 0xe411, evil_config);
    let evil_addr = format!("evil-cas:{seed}");
    let evil_handle = evil_cas.serve(&network, &evil_addr, 1, seed ^ 0xe412);

    // Step 2: start the victim's *genuine* enclave, pointed at the
    // adversary's verifier. In the background: its entry script is the
    // report server, which blocks waiting for the impersonator.
    let victim = env.victim.clone();
    let host_platform = env.host.platform.clone();
    let host_qe = env.host.qe.clone();
    let host_network = network.clone();
    let victim_handle = std::thread::spawn(move || {
        let host = SconeHost::new(host_platform, host_qe, host_network);
        host.start_baseline(
            &victim,
            &StartOptions::new(&evil_addr, "adversary-session")
                .with_volume(evil_volume)
                .with_seed(seed ^ 0x71),
        )
    });

    // Step 3: the impersonator completes the real attestation.
    let result = scone_impersonate(
        &network,
        &env.cas_addr,
        &env.config_id,
        &rs_addr,
        &env.host.qe,
        None,
        seed ^ 0x1a9e,
    );

    let victim_result = victim_handle.join().expect("victim thread");
    evil_handle.join().expect("evil cas thread");

    // If the impersonation failed before contacting the report server,
    // the victim enclave may have failed too (e.g. SinClave-aware
    // runtime refusing baseline configuration); surface the
    // impersonation outcome either way.
    let config = result?;
    let _ = victim_result; // may be Ok (report served) in the success case
    Ok(StolenLoot { config })
}

/// Defense check: the adversary holds a grant-issued token *and*
/// observed the matching sigstruct, restarts the singleton enclave
/// construction, and lets it attest — the token must redeem at most
/// once, so the restarted ("reused") enclave is refused.
///
/// Returns the runtime error of the *second* attestation.
///
/// # Panics
///
/// Panics if the first, legitimate start fails.
pub fn replay_singleton_start(
    host: &SconeHost,
    cas: &Arc<CasServer>,
    packaged: &PackagedApp,
    cas_addr: &str,
    config_id: &str,
    seed: u64,
) -> RuntimeError {
    let mut rng = StdRng::seed_from_u64(seed);
    // Legitimate singleton start: grant → build → attest → run.
    let grant = host.request_grant(packaged, cas_addr, &mut rng).expect("grant");
    let page = InstancePage::new(grant.token, grant.verifier_identity);
    let enclave1 = Arc::new(
        host.build_enclave(
            packaged,
            &page.to_page_bytes(),
            &grant.sigstruct,
            sinclave_sgx::attributes::Attributes::production(),
        )
        .expect("build"),
    );
    host.resume_singleton(
        packaged,
        enclave1,
        &StartOptions::new(cas_addr, config_id).with_seed(seed ^ 1),
    )
    .expect("first singleton start succeeds");
    assert_eq!(cas.stats.configs_delivered.load(std::sync::atomic::Ordering::Relaxed), 1);

    // The reuse: identical construction, second attestation.
    let enclave2 = Arc::new(
        host.build_enclave(
            packaged,
            &page.to_page_bytes(),
            &grant.sigstruct,
            sinclave_sgx::attributes::Attributes::production(),
        )
        .expect("adversary can rebuild the enclave"),
    );
    host.resume_singleton(
        packaged,
        enclave2,
        &StartOptions::new(cas_addr, config_id).with_seed(seed ^ 2),
    )
    .expect_err("token reuse must be refused")
}

/// Defense check: an adversary-signed singleton (the adversary forges
/// their own on-demand SigStruct with their own key and verifier
/// identity) can start — but can never redeem a real token.
///
/// Returns the impersonation error.
///
/// # Errors
///
/// Never succeeds by construction; the `Result` carries the denial.
pub fn forged_singleton_attack(
    env: &AttackEnvironment,
    cas: &Arc<CasServer>,
    token: AttestationToken,
    seed: u64,
) -> Result<StolenLoot, RuntimeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = env.host.network.clone();
    let rs_addr = format!("rs-forged:{seed}");

    // Adversary forges their own grant: own signer key, own identity.
    let adversary_signer =
        sinclave_crypto::rsa::RsaPrivateKey::generate(&mut rng, 1024).expect("keygen");
    let adversary_verifier =
        sinclave_crypto::rsa::RsaPrivateKey::generate(&mut rng, 1024).expect("keygen");
    let forged_issuer = sinclave::verifier::SingletonIssuer::new(
        adversary_signer.clone(),
        adversary_verifier.public_key().fingerprint(),
    );
    // They must also re-sign the *common* sigstruct with their key to
    // satisfy the issuer's signer check (§2.2.2 allows this).
    let resigned = sinclave::signer::sign_enclave(
        &env.victim.signed.layout,
        &adversary_signer,
        &sinclave::signer::SignerConfig::default(),
    )
    .expect("resign");
    let forged_grant = forged_issuer
        .issue(&mut rng, &resigned.common_sigstruct, &resigned.base_hash)
        .expect("forged grant");

    // Build and run the forged singleton as a report server: the
    // adversary's own verifier will happily configure it.
    let (evil_volume, evil_config) = report_server_payload(&rs_addr, false);
    let evil_addr = format!("evil-cas-forged:{seed}");
    // The forged instance page pins the *adversary's* verifier, so the
    // enclave will accept the adversary's configuration.
    let evil_cas = MaliciousCas::with_key(adversary_verifier, evil_config);
    let evil_handle = evil_cas.serve(&network, &evil_addr, 1, seed ^ 0xf0);

    let victim = env.victim.clone();
    let page = InstancePage::new(forged_grant.token, forged_grant.verifier_identity);
    let host_platform = env.host.platform.clone();
    let host_qe = env.host.qe.clone();
    let host_network = network.clone();
    let forged_sigstruct = forged_grant.sigstruct.clone();
    let victim_handle = std::thread::spawn(move || {
        let host = SconeHost::new(host_platform, host_qe, host_network);
        let enclave = Arc::new(
            host.build_enclave(
                &victim,
                &page.to_page_bytes(),
                &forged_sigstruct,
                sinclave_sgx::attributes::Attributes::production(),
            )
            .expect("EINIT accepts any validly signed sigstruct"),
        );
        host.resume_singleton(
            &victim,
            enclave,
            &StartOptions::new(&evil_addr, "x").with_volume(evil_volume).with_seed(1),
        )
    });

    // Impersonate with the *real* token against the real CAS. The
    // quote will show the forged singleton's measurement and signer —
    // neither matches what the real CAS issued the token for.
    let result = scone_impersonate(
        &network,
        &env.cas_addr,
        &env.config_id,
        &rs_addr,
        &env.host.qe,
        Some(token),
        seed ^ 0x1a10,
    );
    let _ = victim_handle.join().expect("victim thread");
    evil_handle.join().expect("evil cas");
    let _ = cas;
    result.map(|config| StolenLoot { config })
}
