//! Denial-of-capacity adversaries for the admission-control stack.
//!
//! Unlike the reuse attack ([`crate::scone_attack`],
//! [`crate::lkl_attack`]), these adversaries never try to steal
//! secrets — they try to starve the verifier so honest clients cannot
//! reach it:
//!
//! * [`SlowLoris`] — opens many connections and then goes silent,
//!   either mid-handshake (never sending the `ClientHello`) or after
//!   establishing a session (holding it idle forever). Against a
//!   thread-per-connection pool with blocking reads this pins one
//!   worker per victim connection; against the reactor with
//!   handshake/idle timeouts every held connection costs only a timer
//!   entry and is reaped on deadline.
//! * [`quota_abuse`] — a single identity hammering chargeable requests
//!   as fast as the channel allows, measuring how quickly the
//!   rate-limit and quota layers start refusing it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::protocol::Message;
use sinclave_net::{Connection, NetError, Network, SecureChannel};

/// A fleet of silent connections held open against a server.
///
/// Dropping (or [`SlowLoris::release`]-ing) the value closes every
/// held connection at once.
pub struct SlowLoris {
    stalled: Vec<Connection>,
    holders: Vec<SecureChannel>,
}

impl SlowLoris {
    /// Opens `stalled` connections that never start the handshake and
    /// `holders` fully established sessions that never send a request.
    ///
    /// # Errors
    ///
    /// Propagates connect/handshake failures — the attack needs the
    /// server to accept it before it can starve anything.
    pub fn launch(
        network: &Network,
        addr: &str,
        stalled: usize,
        holders: usize,
        seed: u64,
    ) -> Result<Self, NetError> {
        let mut loris = SlowLoris { stalled: Vec::new(), holders: Vec::new() };
        for _ in 0..stalled {
            loris.stalled.push(network.connect(addr)?);
        }
        for i in 0..holders {
            let conn = network.connect(addr)?;
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            loris.holders.push(SecureChannel::client_connect(conn, &mut rng)?);
        }
        Ok(loris)
    }

    /// Number of connections held mid-handshake.
    #[must_use]
    pub fn stalled_count(&self) -> usize {
        self.stalled.len()
    }

    /// Number of established-but-idle sessions held.
    #[must_use]
    pub fn holder_count(&self) -> usize {
        self.holders.len()
    }

    /// Drops every held connection, ending the attack.
    pub fn release(self) {}
}

/// What the quota abuser observed, reply by reply.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AbuseReport {
    /// Replies that got past admission control (served or denied on
    /// policy grounds — either way, they cost the server real work).
    pub served: usize,
    /// Refusals from the token-bucket layer.
    pub rate_limited: usize,
    /// Refusals from the absolute-quota layer.
    pub quota_denied: usize,
    /// Refusals from the circuit breaker.
    pub shed: usize,
}

/// Hammers the verifier with `requests` chargeable attestation
/// requests under a single identity (`config_id`) and tallies how the
/// admission stack answered.
///
/// # Errors
///
/// Propagates transport failures; admission refusals are *not* errors
/// — counting them is the point.
pub fn quota_abuse(
    network: &Network,
    addr: &str,
    config_id: &str,
    requests: usize,
    seed: u64,
) -> Result<AbuseReport, NetError> {
    let conn = network.connect(addr)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chan = SecureChannel::client_connect(conn, &mut rng)?;
    let mut report = AbuseReport::default();
    for _ in 0..requests {
        chan.send(
            &Message::BaselineAttestRequest { quote: vec![0; 8], config_id: config_id.into() }
                .to_bytes(),
        )?;
        let reply = Message::from_bytes(&chan.recv()?)
            .map_err(|_| NetError::Decode { context: "abuse reply" })?;
        match reply {
            Message::Denied { reason } if reason.starts_with("rate limited") => {
                report.rate_limited += 1;
            }
            Message::Denied { reason } if reason.starts_with("quota exceeded") => {
                report.quota_denied += 1;
            }
            Message::Denied { reason } if reason.starts_with("service overloaded") => {
                report.shed += 1;
            }
            _ => report.served += 1,
        }
    }
    Ok(report)
}
