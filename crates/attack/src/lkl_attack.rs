//! The §3.3.2 attack against the SGX-LKL-like stack.
//!
//! The adversary intercepts the user's `sgx-lkl-run` invocation:
//! instead of the user's disk image under the user's wireguard key,
//! they boot their *report-server disk image* under their own key and
//! configure it themselves. An impersonator then occupies the service
//! address; the user's `sgx-lkl-ctl` sees a valid quote for the
//! expected SGX-LKL framework — produced by the genuine enclave, bound
//! to the impersonator's channel — trusts it, and sends the
//! configuration with the disk encryption key to the adversary.

use crate::impersonator::lkl_impersonate;
use crate::malicious::report_server_script;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::AppConfig;
use sinclave_crypto::aead::AeadKey;
use sinclave_crypto::rsa::RsaPrivateKey;
use sinclave_fs::Volume;
use sinclave_runtime::exec::SharedVolume;
use sinclave_runtime::lkl::{LklController, LklHost, LklInvocation, DISK_ENTRY};
use sinclave_runtime::scone::PackagedApp;
use sinclave_runtime::RuntimeError;
use std::sync::Arc;

/// Builds the adversary's report-server disk image.
#[must_use]
pub fn report_server_disk(listen_addr: &str) -> (SharedVolume, [u8; 32]) {
    let key_bytes = [0xad; 32];
    let key = AeadKey::new(key_bytes);
    let mut disk = Volume::format(&key, "adversary-disk");
    disk.write_file(&key, DISK_ENTRY, report_server_script(listen_addr).as_bytes()).expect("write");
    (Arc::new(Mutex::new(disk)), key_bytes)
}

/// What the user wanted to deploy (and what the adversary intercepts).
pub struct UserDeployment {
    /// The user's encrypted application disk.
    pub disk: SharedVolume,
    /// The user's disk key — inside the configuration their controller
    /// will send after (what they believe is) successful attestation.
    pub config: AppConfig,
    /// Address the user's controller dials.
    pub service_addr: String,
}

/// Runs the complete §3.3.2 interception attack against a baseline
/// SGX-LKL deployment. Returns the configuration the user's
/// controller leaked to the adversary (containing the disk key).
///
/// # Errors
///
/// Returns controller-side failures when the attack is defeated.
///
/// # Panics
///
/// Panics if adversary-side infrastructure fails (their own machine).
pub fn run_lkl_interception(
    lkl: &LklHost,
    controller: &LklController,
    framework: &PackagedApp,
    user: &UserDeployment,
    seed: u64,
) -> Result<Option<AppConfig>, RuntimeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = lkl.network.clone();
    let rs_addr = format!("lkl-rs:{seed}");

    // The adversary boots the report-server disk under *their* key, on
    // a side address, configuring it themselves.
    let (evil_disk, evil_disk_key) = report_server_disk(&rs_addr);
    let adversary_wg = RsaPrivateKey::generate(&mut rng, 1024).expect("keygen");
    let side_addr = format!("lkl-side:{seed}");
    let invocation = LklInvocation {
        service_addr: side_addr.clone(),
        channel_key: adversary_wg,
        disk: evil_disk,
        rng_seed: seed ^ 1,
    };
    let framework_clone = framework.clone();
    let lkl_host = LklHost::new(lkl.platform.clone(), lkl.qe.clone(), network.clone());
    let enclave_thread =
        std::thread::spawn(move || lkl_host.run_baseline(&framework_clone, &invocation));
    // Adversary configures their own enclave (they are the controller
    // of the side deployment).
    let expected = framework.signed.common_measurement();
    let adversary_controller = LklController {
        network: network.clone(),
        attestation_root: controller.attestation_root.clone(),
    };
    crate::impersonator::wait_for(
        || {
            let mut rng = StdRng::seed_from_u64(seed ^ 2);
            adversary_controller
                .attest_and_configure(
                    &side_addr,
                    [0xaa; 16],
                    &AppConfig { volume_key: Some(evil_disk_key), ..AppConfig::default() },
                    |body| body.mrenclave == expected,
                    None,
                    &mut rng,
                )
                .ok()
        },
        std::time::Duration::from_secs(5),
    )
    .expect("adversary configures their own enclave");

    // The impersonator occupies the address the user will dial.
    let impersonator_wg = RsaPrivateKey::generate(&mut rng, 1024).expect("keygen");
    let steal_handle = lkl_impersonate(
        &network,
        &user.service_addr,
        impersonator_wg,
        &rs_addr,
        lkl.qe.clone(),
        seed ^ 3,
    );

    // The user's controller attests and — if satisfied — configures.
    let mut user_rng = StdRng::seed_from_u64(seed ^ 4);
    let user_result = controller.attest_and_configure(
        &user.service_addr,
        [0xbb; 16],
        &user.config,
        |body| body.mrenclave == expected,
        None,
        &mut user_rng,
    );

    let stolen = steal_handle.join().expect("impersonator thread");
    let _ = enclave_thread.join().expect("enclave thread");
    user_result?;
    Ok(stolen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinclave_runtime::script::Script;

    #[test]
    fn report_server_disk_has_entry() {
        let (disk, key_bytes) = report_server_disk("rs:9");
        let key = AeadKey::new(key_bytes);
        let entry = disk.lock().read_file(&key, DISK_ENTRY).unwrap();
        Script::parse(std::str::from_utf8(&entry).unwrap()).unwrap();
    }
}
