//! The remote-attestation **reuse attack** (§3) and its SinClave
//! defense validation.
//!
//! The adversary's two components (§3.2):
//!
//! * a **report server** — the *user's own trusted enclave*,
//!   reconfigured (via an adversary-controlled verifier and volume)
//!   into a service that emits SGX reports with adversary-chosen
//!   `reportdata`;
//! * a **TEE impersonator** — ordinary host code that speaks the
//!   verifier's attestation protocol, outsourcing only the report
//!   generation to the report server.
//!
//! Together they defeat baseline attestation: the verifier sees a
//! valid quote for the expected enclave, correctly bound to the secure
//! channel — yet the channel terminates in the impersonator, and the
//! provisioned secrets land with the adversary.
//!
//! * [`malicious`] — the adversary's verifier and report-server
//!   payloads (configuration flavor and dynamic-import flavor).
//! * [`impersonator`] — SCONE- and SGX-LKL-flavored impersonators.
//! * [`scone_attack`] — full §3.3.1 procedure + defense checks.
//! * [`lkl_attack`] — full §3.3.2 procedure + defense checks.
//! * [`starvation`] — denial-of-capacity adversaries (slow loris,
//!   quota abuse) for the admission-control middleware stack.
//! * [`hijack`] — a replication-stream hijacker that answers a
//!   follower's dial with an adversary-terminated channel and a
//!   forged baseline; defeated by the fleet's channel-key pinning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hijack;
pub mod impersonator;
pub mod lkl_attack;
pub mod malicious;
pub mod scone_attack;
pub mod starvation;
