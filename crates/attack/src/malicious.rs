//! The adversary's own infrastructure: a no-questions-asked verifier
//! and report-server payloads.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sinclave::protocol::Message;
use sinclave::AppConfig;
use sinclave_crypto::aead::AeadKey;
use sinclave_crypto::rsa::RsaPrivateKey;
use sinclave_fs::Volume;
use sinclave_net::{Network, SecureChannel};
use sinclave_runtime::exec::SharedVolume;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The adversary's "verification and configuration component" (§3.2):
/// it answers the attestation protocol but verifies nothing and hands
/// out whatever configuration the adversary chose.
pub struct MaliciousCas {
    channel_key: RsaPrivateKey,
    config: AppConfig,
}

impl MaliciousCas {
    /// Creates a malicious verifier delivering `config`.
    #[must_use]
    pub fn new(seed: u64, config: AppConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).expect("keygen");
        MaliciousCas { channel_key, config }
    }

    /// Creates a malicious verifier with a caller-chosen channel key
    /// (needed when the adversary forged an instance page pinning
    /// *their* identity and must answer under exactly that key).
    #[must_use]
    pub fn with_key(channel_key: RsaPrivateKey, config: AppConfig) -> Self {
        MaliciousCas { channel_key, config }
    }

    /// Serves `connections` connections at `addr` in the background.
    #[must_use]
    pub fn serve(
        self,
        network: &Network,
        addr: &str,
        connections: usize,
        seed: u64,
    ) -> JoinHandle<()> {
        let listener = network.listen(addr);
        std::thread::spawn(move || {
            for i in 0..connections {
                let Ok(conn) = listener.accept() else { return };
                let mut rng = StdRng::seed_from_u64(seed + i as u64);
                let Ok(mut chan) = SecureChannel::server_accept(conn, &self.channel_key, &mut rng)
                else {
                    continue;
                };
                while let Ok(raw) = chan.recv() {
                    let reply = match Message::from_bytes(&raw) {
                        Ok(Message::ChallengeRequest) => {
                            let mut nonce = [0u8; 16];
                            rng.fill_bytes(&mut nonce);
                            Message::Challenge { nonce }
                        }
                        // Accept anything: no verification whatsoever.
                        Ok(Message::BaselineAttestRequest { .. })
                        | Ok(Message::AttestRequest { .. }) => {
                            Message::ConfigResponse { config: self.config.to_bytes() }
                        }
                        Ok(Message::Ping) => Message::Pong,
                        _ => Message::Denied { reason: "malicious cas confused".into() },
                    };
                    if chan.send(&reply.to_bytes()).is_err() {
                        break;
                    }
                }
            }
        })
    }
}

/// The report-server script (§3.3.1's "33 lines of Python", here in
/// SinScript): serve one request, returning a report over the
/// caller-chosen `reportdata`.
#[must_use]
pub fn report_server_script(listen_addr: &str) -> String {
    format!(
        "# report server: reuse the victim enclave as a report oracle\n\
         listen {listen_addr}\n\
         accept\n\
         recvmsg -> reportdata\n\
         getreport $reportdata -> report\n\
         sendmsg $report"
    )
}

/// The dynamic-import flavor (§3.2's dynamically loaded module): a
/// benign-looking entry that `import`s a "plugin" which is the report
/// server.
#[must_use]
pub fn report_server_via_import(listen_addr: &str) -> (String, String) {
    let entry = "# web server entry\nimport modules/compression.so\nprint served".to_owned();
    let module = report_server_script(listen_addr);
    (entry, module)
}

/// Builds the adversary's volume + configuration that turn any
/// interpreter enclave into a report server.
///
/// Returns `(volume, config)` ready to be registered at a
/// [`MaliciousCas`].
#[must_use]
pub fn report_server_payload(
    listen_addr: &str,
    use_import_flavor: bool,
) -> (SharedVolume, AppConfig) {
    let key_bytes = [0xee; 32];
    let key = AeadKey::new(key_bytes);
    let mut volume = Volume::format(&key, "adversary-volume");
    if use_import_flavor {
        let (entry, module) = report_server_via_import(listen_addr);
        volume.write_file(&key, "app.ss", entry.as_bytes()).expect("write");
        volume.write_file(&key, "modules/compression.so", module.as_bytes()).expect("write");
    } else {
        volume
            .write_file(&key, "rs.ss", report_server_script(listen_addr).as_bytes())
            .expect("write");
    }
    let config = AppConfig {
        entry: if use_import_flavor { "app.ss".into() } else { "rs.ss".into() },
        volume_key: Some(key_bytes),
        ..AppConfig::default()
    };
    (Arc::new(Mutex::new(volume)), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinclave_runtime::script::Script;

    #[test]
    fn scripts_parse() {
        Script::parse(&report_server_script("rs:1")).unwrap();
        let (entry, module) = report_server_via_import("rs:2");
        Script::parse(&entry).unwrap();
        Script::parse(&module).unwrap();
    }

    #[test]
    fn payload_volume_contains_expected_entry() {
        let (volume, config) = report_server_payload("rs:3", false);
        let key = AeadKey::new(config.volume_key.unwrap());
        assert!(volume.lock().contains(&key, "rs.ss").unwrap());
        let (volume, config) = report_server_payload("rs:4", true);
        let key = AeadKey::new(config.volume_key.unwrap());
        assert!(volume.lock().contains(&key, "modules/compression.so").unwrap());
        assert_eq!(config.entry, "app.ss");
    }

    #[test]
    fn malicious_cas_accepts_garbage_quotes() {
        let network = Network::new();
        let config = AppConfig {
            entry: "rs.ss".into(),
            secrets: vec![("anything".into(), b"goes".to_vec())],
            ..AppConfig::default()
        };
        let handle = MaliciousCas::new(1, config.clone()).serve(&network, "evil:443", 1, 10);
        let conn = network.connect("evil:443").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
        chan.send(&Message::ChallengeRequest.to_bytes()).unwrap();
        assert!(matches!(
            Message::from_bytes(&chan.recv().unwrap()).unwrap(),
            Message::Challenge { .. }
        ));
        chan.send(
            &Message::BaselineAttestRequest { quote: vec![0xde, 0xad], config_id: "x".into() }
                .to_bytes(),
        )
        .unwrap();
        let Message::ConfigResponse { config: raw } =
            Message::from_bytes(&chan.recv().unwrap()).unwrap()
        else {
            panic!("malicious cas must accept anything");
        };
        assert_eq!(AppConfig::from_bytes(&raw).unwrap(), config);
        drop(chan);
        handle.join().unwrap();
    }
}
