//! Per-request causal tracing: trace ids, span records, and the
//! flight recorder.
//!
//! Aggregate histograms (PR 9) answer "how is the fleet doing";
//! this module answers "why was *this* request slow" and "where did
//! *this* forwarded write spend its time". A trace is minted at
//! admission (or inherited from the wire via
//! [`sinclave::protocol::TraceContext`]), accumulates bounded,
//! monotonically-ordered [`Span`]s as the request moves through the
//! middleware chain, the issuer stages, the journal, and fleet hops,
//! and is classified at completion by always-on **tail sampling**:
//!
//! * **pinned** — slow (any stage exceeding its cached histogram p99),
//!   errored, or shed requests are always kept;
//! * **sampled** — healthy requests are kept at a configurable
//!   1-in-N rate;
//! * everything else is discarded after counting.
//!
//! Kept traces land in the [`FlightRecorder`]: sharded, bounded,
//! overwrite-oldest ring buffers that never allocate and never block
//! on the hot path (a contended shard drops the trace and counts it).
//! The `trace` status view renders recent traces as span trees.
//!
//! Tracing is **dark by default**: with the tracer disabled,
//! [`Tracer::begin`] returns `None`, no span is recorded, and served
//! bytes are identical to an untraced build — the `ablation/trace`
//! bench gates this.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sinclave::protocol::TraceContext;
use sinclave::replication::WireSpan;

use crate::histogram::StageHistograms;

/// Span capacity of one trace. Spans past the cap are dropped and the
/// trace is flagged truncated — never reallocated.
pub const MAX_SPANS: usize = 24;

/// Numeric-annotation capacity of one trace.
pub const MAX_NOTES: usize = 4;

/// Ring shards in the flight recorder (reduces push contention).
const SHARDS: usize = 8;

/// Pinned-trace slots per shard.
const PIN_SLOTS: usize = 16;

/// Sampled-trace slots per shard.
const SAMPLE_SLOTS: usize = 8;

/// Completed traces between p99-threshold refreshes from the stage
/// histograms.
const THRESHOLD_REFRESH: u64 = 256;

/// Minimum histogram samples before a stage's p99 is trusted as a
/// slowness threshold (avoids pinning everything during warmup).
const THRESHOLD_MIN_COUNT: u64 = 64;

/// Stage names a remote [`WireSpan`] may map onto. Spans are `Copy`
/// and allocation-free because stages are `&'static str`; unknown
/// remote names collapse to `"remote"` rather than allocating.
const KNOWN_STAGES: &[&str] = &[
    "admission",
    "verify",
    "sign",
    "seal",
    "journal_flush",
    "request",
    "dedup_replay",
    "dedup_hit",
    "rate_limit",
    "quota",
    "breaker_shed",
    "forward",
    "queue",
    "remote",
];

/// Maps a wire stage name to its static spelling (`"remote"` when
/// unknown, so absorbing hostile names never allocates).
#[must_use]
pub fn intern_stage(name: &str) -> &'static str {
    KNOWN_STAGES.iter().find(|s| **s == name).copied().unwrap_or("remote")
}

/// The process-wide monotonic trace clock's epoch.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds on the trace clock. Monotonic within the process; a
/// remote node's readings are rebased before being merged (see
/// [`ActiveTrace::absorb_remote`]).
#[must_use]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// How a span (and transitively its trace) ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The stage completed normally.
    Ok,
    /// The stage failed (denied reply, forward error, journal error).
    Error,
    /// Admission control refused the request (rate limit, quota,
    /// breaker shed).
    Refused,
}

impl SpanOutcome {
    /// Wire discriminant (see [`WireSpan::outcome`]).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            SpanOutcome::Ok => 0,
            SpanOutcome::Error => 1,
            SpanOutcome::Refused => 2,
        }
    }

    /// Inverse of [`SpanOutcome::code`]; unknown values read as
    /// errors so a newer peer's outcome is never mistaken for success.
    #[must_use]
    pub fn from_code(code: u8) -> SpanOutcome {
        match code {
            0 => SpanOutcome::Ok,
            2 => SpanOutcome::Refused,
            _ => SpanOutcome::Error,
        }
    }

    /// Render label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Error => "error",
            SpanOutcome::Refused => "refused",
        }
    }
}

/// One timed stage of a traced request.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// Stage name (one of [`KNOWN_STAGES`]).
    pub stage: &'static str,
    /// Start on the trace clock, nanoseconds.
    pub start_ns: u64,
    /// End on the trace clock, nanoseconds.
    pub end_ns: u64,
    /// How the stage ended.
    pub outcome: SpanOutcome,
    /// Fleet hop the span was recorded at (0 = the node that minted
    /// the trace).
    pub hop: u8,
}

impl Span {
    const EMPTY: Span =
        Span { stage: "", start_ns: 0, end_ns: 0, outcome: SpanOutcome::Ok, hop: 0 };

    /// Span duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A trace being assembled for one in-flight request. Fixed-capacity:
/// recording a span never allocates.
#[derive(Clone, Debug)]
pub struct ActiveTrace {
    ctx: TraceContext,
    echo: bool,
    begin_ns: u64,
    spans: [Span; MAX_SPANS],
    len: usize,
    notes: [(&'static str, u64); MAX_NOTES],
    notes_len: usize,
    truncated: bool,
    errored: bool,
    refused: bool,
}

impl ActiveTrace {
    fn new(ctx: TraceContext, echo: bool) -> ActiveTrace {
        ActiveTrace {
            ctx,
            echo,
            begin_ns: now_ns(),
            spans: [Span::EMPTY; MAX_SPANS],
            len: 0,
            notes: [("", 0); MAX_NOTES],
            notes_len: 0,
            truncated: false,
            errored: false,
            refused: false,
        }
    }

    /// The trace's wire context (id + this node's hop).
    #[must_use]
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// Whether the context arrived on the wire (and should be echoed
    /// on the reply) rather than being minted here.
    #[must_use]
    pub fn inherited(&self) -> bool {
        self.echo
    }

    /// The context to propagate on a forward hop: same id, hop + 1.
    #[must_use]
    pub fn forward_context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.ctx.trace_id,
            hop: self.ctx.hop.saturating_add(1),
            flags: self.ctx.flags,
        }
    }

    /// Records one completed span at this node's hop.
    pub fn record(&mut self, stage: &'static str, start_ns: u64, end_ns: u64, out: SpanOutcome) {
        self.record_at_hop(stage, start_ns, end_ns, out, self.ctx.hop);
    }

    /// Records a span that ended just now and took `elapsed`.
    pub fn record_elapsed(&mut self, stage: &'static str, elapsed: Duration, out: SpanOutcome) {
        let end = now_ns();
        self.record(stage, end.saturating_sub(elapsed.as_nanos() as u64), end, out);
    }

    fn record_at_hop(
        &mut self,
        stage: &'static str,
        start_ns: u64,
        end_ns: u64,
        out: SpanOutcome,
        hop: u8,
    ) {
        match out {
            SpanOutcome::Error => self.errored = true,
            SpanOutcome::Refused => self.refused = true,
            SpanOutcome::Ok => {}
        }
        if self.len == MAX_SPANS {
            self.truncated = true;
            return;
        }
        self.spans[self.len] = Span { stage, start_ns, end_ns, outcome: out, hop };
        self.len += 1;
    }

    /// Attaches a numeric annotation (dropped past [`MAX_NOTES`]).
    ///
    /// Annotations are rendered into status views; never put key
    /// material or other secrets here (`sinclave-analysis` SA005
    /// flags key-ish identifiers at annotate call sites).
    pub fn annotate(&mut self, name: &'static str, value: u64) {
        if self.notes_len < MAX_NOTES {
            self.notes[self.notes_len] = (name, value);
            self.notes_len += 1;
        }
    }

    /// Merges spans exported by a remote hop, rebasing their clock so
    /// the earliest remote span starts at `anchor_ns` (normally the
    /// local forward span's start) — durations are preserved, and the
    /// merged tree nests plausibly instead of comparing two machines'
    /// clocks.
    pub fn absorb_remote(&mut self, spans: &[WireSpan], anchor_ns: u64) {
        let Some(remote_min) = spans.iter().map(|s| s.start_ns).min() else { return };
        for span in spans {
            let start = anchor_ns.saturating_add(span.start_ns.saturating_sub(remote_min));
            let end = anchor_ns.saturating_add(span.end_ns.saturating_sub(remote_min));
            self.record_at_hop(
                intern_stage(&span.stage),
                start,
                end,
                SpanOutcome::from_code(span.outcome),
                span.hop,
            );
        }
    }

    /// The spans recorded so far, in recording order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.len]
    }

    /// Flags the trace errored without recording a span — for
    /// failures that have no timed stage, like a contained dispatch
    /// panic. The synthesized end-to-end span carries the outcome.
    pub fn mark_errored(&mut self) {
        self.errored = true;
    }
}

/// Why a completed trace was kept.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinReason {
    /// A stage exceeded its cached p99 threshold.
    Slow,
    /// Some span ended in error.
    Errored,
    /// Admission control refused the request.
    Shed,
    /// Healthy, kept by the 1-in-N sampler.
    Sampled,
}

impl PinReason {
    /// Render label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PinReason::Slow => "slow",
            PinReason::Errored => "errored",
            PinReason::Shed => "shed",
            PinReason::Sampled => "sampled",
        }
    }
}

/// A finished trace as stored in the flight recorder. `Copy` so ring
/// overwrites are plain memory writes.
#[derive(Clone, Copy, Debug)]
pub struct CompletedTrace {
    /// The causal trace id.
    pub trace_id: [u8; 16],
    /// Admission time on the trace clock.
    pub begin_ns: u64,
    /// Completion time on the trace clock.
    pub end_ns: u64,
    /// Why the trace was kept.
    pub reason: PinReason,
    /// Recorder-wide completion sequence (recency order).
    pub seq: u64,
    /// Whether spans were dropped at [`MAX_SPANS`].
    pub truncated: bool,
    spans: [Span; MAX_SPANS],
    len: usize,
    notes: [(&'static str, u64); MAX_NOTES],
    notes_len: usize,
}

impl CompletedTrace {
    /// The recorded spans.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.len]
    }

    /// The numeric annotations.
    #[must_use]
    pub fn notes(&self) -> &[(&'static str, u64)] {
        &self.notes[..self.notes_len]
    }

    /// End-to-end duration in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }

    /// Trace id as lowercase hex.
    #[must_use]
    pub fn id_hex(&self) -> String {
        TraceContext { trace_id: self.trace_id, hop: 0, flags: 0 }.id_hex()
    }

    /// Exports the spans for a [`sinclave::replication::ReplicationFrame::Reply`]
    /// so the hop that minted the trace can merge them.
    #[must_use]
    pub fn export_wire_spans(&self) -> Vec<WireSpan> {
        self.spans()
            .iter()
            .map(|s| WireSpan {
                stage: s.stage.to_owned(),
                start_ns: s.start_ns,
                end_ns: s.end_ns,
                outcome: s.outcome.code(),
                hop: s.hop,
            })
            .collect()
    }
}

/// One bounded overwrite-oldest ring.
struct Ring {
    slots: Vec<Option<CompletedTrace>>,
    next: usize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring { slots: vec![None; capacity], next: 0 }
    }

    fn push(&mut self, trace: CompletedTrace) {
        let capacity = self.slots.len();
        if capacity == 0 {
            return;
        }
        self.slots[self.next % capacity] = Some(trace);
        self.next = (self.next + 1) % capacity;
    }
}

/// One recorder shard: a pinned ring and a sampled ring.
struct RecorderShard {
    pinned: Mutex<Ring>,
    sampled: Mutex<Ring>,
}

/// Counters describing what the recorder has seen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Traces pinned (slow / errored / shed).
    pub pinned: u64,
    /// Healthy traces kept by the sampler.
    pub sampled: u64,
    /// Healthy traces discarded (not sampled).
    pub discarded: u64,
    /// Traces lost to shard contention (`try_lock` failed).
    pub dropped: u64,
}

/// The flight recorder: sharded, bounded, overwrite-oldest storage
/// for completed traces. Pushing never blocks and never allocates; a
/// contended shard counts a drop instead of waiting.
pub struct FlightRecorder {
    shards: Vec<RecorderShard>,
    seq: AtomicU64,
    pinned_total: AtomicU64,
    sampled_total: AtomicU64,
    discarded_total: AtomicU64,
    dropped_total: AtomicU64,
}

impl FlightRecorder {
    fn new() -> FlightRecorder {
        let shards = (0..SHARDS)
            .map(|_| RecorderShard {
                pinned: Mutex::new(Ring::new(PIN_SLOTS)),
                sampled: Mutex::new(Ring::new(SAMPLE_SLOTS)),
            })
            .collect();
        FlightRecorder {
            shards,
            seq: AtomicU64::new(0),
            pinned_total: AtomicU64::new(0),
            sampled_total: AtomicU64::new(0),
            discarded_total: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
        }
    }

    fn push(&self, mut trace: CompletedTrace) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        trace.seq = seq;
        let shard = &self.shards[(seq as usize) % self.shards.len()];
        let ring = if trace.reason == PinReason::Sampled { &shard.sampled } else { &shard.pinned };
        match ring.try_lock() {
            Some(mut guard) => {
                guard.push(trace);
                let counter = if trace.reason == PinReason::Sampled {
                    &self.sampled_total
                } else {
                    &self.pinned_total
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn collect(&self, pinned: bool, limit: usize) -> Vec<CompletedTrace> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let ring = if pinned { shard.pinned.lock() } else { shard.sampled.lock() };
            out.extend(ring.slots.iter().flatten().copied());
        }
        out.sort_by_key(|trace| std::cmp::Reverse(trace.seq));
        out.truncate(limit);
        out
    }

    /// The most recent pinned traces, newest first.
    #[must_use]
    pub fn recent_pinned(&self, limit: usize) -> Vec<CompletedTrace> {
        self.collect(true, limit)
    }

    /// The most recent sampled (healthy) traces, newest first.
    #[must_use]
    pub fn recent_sampled(&self, limit: usize) -> Vec<CompletedTrace> {
        self.collect(false, limit)
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            pinned: self.pinned_total.load(Ordering::Relaxed),
            sampled: self.sampled_total.load(Ordering::Relaxed),
            discarded: self.discarded_total.load(Ordering::Relaxed),
            dropped: self.dropped_total.load(Ordering::Relaxed),
        }
    }
}

/// splitmix64 — the id mixer (not security-relevant: trace ids only
/// need to be distinct, and they deliberately never draw from the
/// deterministic session RNG so tracing cannot perturb serving).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The per-server tracing control plane: enablement, id minting,
/// tail-sampling classification, and the flight recorder.
pub struct Tracer {
    enabled: AtomicBool,
    sample_every: AtomicU32,
    healthy_seen: AtomicU64,
    next_id: AtomicU64,
    salt: u64,
    finished: AtomicU64,
    latency: Arc<StageHistograms>,
    thresholds: Vec<(&'static str, AtomicU64)>,
    recorder: FlightRecorder,
}

impl Tracer {
    /// Creates a tracer seeded from `latency` (the server's stage
    /// histograms, consulted for p99 slowness thresholds). Starts
    /// **disabled**.
    #[must_use]
    pub fn new(latency: Arc<StageHistograms>) -> Tracer {
        let thresholds =
            latency.named().iter().map(|(name, _)| (*name, AtomicU64::new(u64::MAX))).collect();
        let salt = splitmix64(u64::from(std::process::id()) ^ now_ns());
        Tracer {
            enabled: AtomicBool::new(false),
            sample_every: AtomicU32::new(64),
            healthy_seen: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            salt,
            finished: AtomicU64::new(0),
            latency,
            thresholds,
            recorder: FlightRecorder::new(),
        }
    }

    /// Turns tracing on or off. Off (the default) is "dark": no ids,
    /// no spans, byte-identical serving.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether tracing is lit.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the healthy-trace sampling rate: keep 1 in `n` (0 keeps
    /// none; slow/errored/shed traces are always pinned regardless).
    pub fn set_sample_every(&self, n: u32) {
        self.sample_every.store(n, Ordering::Relaxed);
    }

    /// The configured healthy-trace sampling rate.
    #[must_use]
    pub fn sample_every(&self) -> u32 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Starts a trace for a newly admitted request: inherits
    /// `inherited` when the frame carried a context (a forwarded or
    /// client-traced request), otherwise mints a fresh id at hop 0.
    /// Returns `None` when tracing is dark.
    #[must_use]
    pub fn begin(&self, inherited: Option<TraceContext>) -> Option<Box<ActiveTrace>> {
        if !self.is_enabled() {
            return None;
        }
        let (ctx, echo) = match inherited {
            Some(ctx) => (ctx, true),
            None => {
                let n = self.next_id.fetch_add(1, Ordering::Relaxed);
                let hi = splitmix64(self.salt ^ n);
                let lo = splitmix64(hi ^ n.rotate_left(32));
                let mut trace_id = [0u8; 16];
                trace_id[..8].copy_from_slice(&hi.to_be_bytes());
                trace_id[8..].copy_from_slice(&lo.to_be_bytes());
                (TraceContext { trace_id, hop: 0, flags: 0 }, false)
            }
        };
        Some(Box::new(ActiveTrace::new(ctx, echo)))
    }

    /// Completes a trace: synthesizes the end-to-end `request` span,
    /// classifies it (tail sampling), records kept traces in the
    /// flight recorder, and returns the completed record (callers on
    /// the primary export its spans back across the wire).
    pub fn finish(&self, mut trace: Box<ActiveTrace>) -> CompletedTrace {
        let end_ns = now_ns();
        let overall = if trace.errored {
            SpanOutcome::Error
        } else if trace.refused {
            SpanOutcome::Refused
        } else {
            SpanOutcome::Ok
        };
        trace.record("request", trace.begin_ns, end_ns, overall);
        let reason = if trace.errored {
            Some(PinReason::Errored)
        } else if trace.refused {
            Some(PinReason::Shed)
        } else if self.is_slow(&trace) {
            Some(PinReason::Slow)
        } else {
            let every = u64::from(self.sample_every.load(Ordering::Relaxed));
            let n = self.healthy_seen.fetch_add(1, Ordering::Relaxed);
            (every > 0 && n.is_multiple_of(every)).then_some(PinReason::Sampled)
        };
        let completed = CompletedTrace {
            trace_id: trace.ctx.trace_id,
            begin_ns: trace.begin_ns,
            end_ns,
            reason: reason.unwrap_or(PinReason::Sampled),
            seq: 0,
            truncated: trace.truncated,
            spans: trace.spans,
            len: trace.len,
            notes: trace.notes,
            notes_len: trace.notes_len,
        };
        match reason {
            Some(_) => self.recorder.push(completed),
            None => {
                self.recorder.discarded_total.fetch_add(1, Ordering::Relaxed);
            }
        }
        if self.finished.fetch_add(1, Ordering::Relaxed).is_multiple_of(THRESHOLD_REFRESH) {
            self.refresh_thresholds();
        }
        completed
    }

    /// Whether any span exceeds its stage's cached p99 threshold.
    fn is_slow(&self, trace: &ActiveTrace) -> bool {
        trace.spans().iter().any(|span| {
            self.thresholds
                .iter()
                .find(|(name, _)| *name == span.stage)
                .is_some_and(|(_, limit)| span.duration_ns() > limit.load(Ordering::Relaxed))
        })
    }

    /// Re-caches each stage's p99 from the live histograms. Stages
    /// with too few samples keep an infinite threshold so warmup
    /// traffic is not all pinned as "slow".
    fn refresh_thresholds(&self) {
        for ((_, histogram), (_, threshold)) in
            self.latency.named().iter().zip(self.thresholds.iter())
        {
            let view = histogram.view();
            let limit = if view.count() >= THRESHOLD_MIN_COUNT {
                u64::try_from(view.p99().as_nanos()).unwrap_or(u64::MAX)
            } else {
                u64::MAX
            };
            threshold.store(limit, Ordering::Relaxed);
        }
    }

    /// The flight recorder.
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }
}

thread_local! {
    /// The trace of the request currently being dispatched on this
    /// thread, installed around `dispatch` so deep call sites (issuer
    /// observer, commit path, middleware decisions) can record spans
    /// without threading a handle through every signature.
    static CURRENT: RefCell<Option<Box<ActiveTrace>>> = const { RefCell::new(None) };
}

/// Installs `trace` as the current thread's active trace.
pub fn install(trace: Box<ActiveTrace>) {
    CURRENT.with(|current| {
        if let Ok(mut slot) = current.try_borrow_mut() {
            *slot = Some(trace);
        }
    });
}

/// Removes and returns the current thread's active trace.
#[must_use]
pub fn take() -> Option<Box<ActiveTrace>> {
    CURRENT.with(|current| current.try_borrow_mut().ok().and_then(|mut slot| slot.take()))
}

/// Runs `f` against the active trace, if any. No-op when untraced —
/// instrumentation call sites cost one thread-local read when dark.
pub fn with_active(f: impl FnOnce(&mut ActiveTrace)) {
    let _ = map_active(f);
}

/// Runs `f` against the active trace and returns its result; `None`
/// when this thread has no trace installed (tracing dark, or an
/// untraced request).
pub fn map_active<R>(f: impl FnOnce(&mut ActiveTrace) -> R) -> Option<R> {
    CURRENT.with(|current| {
        current.try_borrow_mut().ok().and_then(|mut slot| slot.as_mut().map(|trace| f(trace)))
    })
}

/// Records a completed span on the active trace, if any.
pub fn record_span(stage: &'static str, start_ns: u64, end_ns: u64, outcome: SpanOutcome) {
    with_active(|trace| trace.record(stage, start_ns, end_ns, outcome));
}

/// Records a span that ended just now and took `elapsed`.
pub fn record_elapsed(stage: &'static str, elapsed: Duration, outcome: SpanOutcome) {
    with_active(|trace| trace.record_elapsed(stage, elapsed, outcome));
}

/// Attaches a numeric annotation to the active trace, if any. Never
/// pass key material (SA005 polices call sites).
pub fn annotate(name: &'static str, value: u64) {
    with_active(|trace| trace.annotate(name, value));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> Tracer {
        let tracer = Tracer::new(Arc::new(StageHistograms::default()));
        tracer.set_enabled(true);
        tracer
    }

    #[test]
    fn dark_tracer_begins_nothing() {
        let dark = Tracer::new(Arc::new(StageHistograms::default()));
        assert!(dark.begin(None).is_none());
        assert!(!dark.is_enabled());
    }

    #[test]
    fn minted_ids_are_distinct_and_hop_zero() {
        let tracer = tracer();
        let a = tracer.begin(None).unwrap();
        let b = tracer.begin(None).unwrap();
        assert_ne!(a.context().trace_id, b.context().trace_id);
        assert_eq!(a.context().hop, 0);
        assert!(!a.inherited());
    }

    #[test]
    fn inherited_context_is_preserved_and_echoed() {
        let tracer = tracer();
        let ctx = TraceContext { trace_id: [7; 16], hop: 3, flags: 0 };
        let trace = tracer.begin(Some(ctx)).unwrap();
        assert_eq!(trace.context(), ctx);
        assert!(trace.inherited());
        assert_eq!(trace.forward_context().hop, 4);
    }

    #[test]
    fn finish_synthesizes_request_span_and_samples() {
        let tracer = tracer();
        tracer.set_sample_every(1);
        let mut trace = tracer.begin(None).unwrap();
        trace.record("verify", 10, 20, SpanOutcome::Ok);
        let completed = tracer.finish(trace);
        assert_eq!(completed.reason, PinReason::Sampled);
        let stages: Vec<_> = completed.spans().iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["verify", "request"]);
        assert_eq!(tracer.recorder().recent_sampled(8).len(), 1);
        assert!(tracer.recorder().recent_pinned(8).is_empty());
    }

    #[test]
    fn errored_and_refused_traces_are_pinned_even_unsampled() {
        let tracer = tracer();
        tracer.set_sample_every(0);
        let mut errored = tracer.begin(None).unwrap();
        errored.record("verify", 0, 5, SpanOutcome::Error);
        assert_eq!(tracer.finish(errored).reason, PinReason::Errored);
        let mut shed = tracer.begin(None).unwrap();
        shed.record("rate_limit", 0, 1, SpanOutcome::Refused);
        assert_eq!(tracer.finish(shed).reason, PinReason::Shed);
        assert_eq!(tracer.recorder().recent_pinned(8).len(), 2);
        // Healthy + sample_every=0 → discarded.
        let healthy = tracer.begin(None).unwrap();
        tracer.finish(healthy);
        let stats = tracer.recorder().stats();
        assert_eq!(stats.pinned, 2);
        assert_eq!(stats.discarded, 1);
    }

    #[test]
    fn slow_stage_pins_once_thresholds_are_seeded() {
        let latency = Arc::new(StageHistograms::default());
        let tracer = Tracer::new(Arc::clone(&latency));
        tracer.set_enabled(true);
        tracer.set_sample_every(0);
        // Seed the verify histogram with fast samples so its p99 is
        // far below the slow span below.
        for _ in 0..THRESHOLD_MIN_COUNT {
            latency.verify.record(Duration::from_nanos(100));
        }
        tracer.refresh_thresholds();
        let mut slow = tracer.begin(None).unwrap();
        slow.record("verify", 0, 50_000_000, SpanOutcome::Ok);
        assert_eq!(tracer.finish(slow).reason, PinReason::Slow);
    }

    #[test]
    fn span_capacity_truncates_instead_of_growing() {
        let tracer = tracer();
        let mut trace = tracer.begin(None).unwrap();
        for i in 0..(MAX_SPANS as u64 + 5) {
            trace.record("verify", i, i + 1, SpanOutcome::Ok);
        }
        assert_eq!(trace.spans().len(), MAX_SPANS);
        let completed = tracer.finish(trace);
        assert!(completed.truncated);
    }

    #[test]
    fn remote_spans_rebase_into_the_anchor() {
        let tracer = tracer();
        let mut trace = tracer.begin(None).unwrap();
        let remote = vec![
            WireSpan {
                stage: "verify".to_owned(),
                start_ns: 1000,
                end_ns: 1400,
                outcome: 0,
                hop: 1,
            },
            WireSpan {
                stage: "no-such-stage".to_owned(),
                start_ns: 1500,
                end_ns: 1600,
                outcome: 9,
                hop: 1,
            },
        ];
        trace.absorb_remote(&remote, 50);
        let spans = trace.spans();
        assert_eq!(spans[0].stage, "verify");
        assert_eq!(spans[0].start_ns, 50);
        assert_eq!(spans[0].duration_ns(), 400);
        assert_eq!(spans[1].stage, "remote");
        assert_eq!(spans[1].outcome, SpanOutcome::Error);
        assert_eq!(spans[1].hop, 1);
    }

    #[test]
    fn recorder_rings_overwrite_oldest() {
        let recorder = FlightRecorder::new();
        let capacity = (SHARDS * PIN_SLOTS) as u64;
        for _ in 0..capacity * 2 {
            let trace = CompletedTrace {
                trace_id: [0; 16],
                begin_ns: 0,
                end_ns: 1,
                reason: PinReason::Errored,
                seq: 0,
                truncated: false,
                spans: [Span::EMPTY; MAX_SPANS],
                len: 0,
                notes: [("", 0); MAX_NOTES],
                notes_len: 0,
            };
            recorder.push(trace);
        }
        let recent = recorder.recent_pinned(usize::MAX);
        assert_eq!(recent.len(), capacity as usize);
        // Newest first, and only the newest half survived.
        assert!(recent.iter().all(|t| t.seq >= capacity));
        assert_eq!(recorder.stats().pinned, capacity * 2);
    }

    #[test]
    fn thread_local_install_take_roundtrip() {
        let tracer = tracer();
        assert!(take().is_none());
        install(tracer.begin(None).unwrap());
        record_span("sign", 3, 9, SpanOutcome::Ok);
        annotate("batch", 4);
        let trace = take().unwrap();
        assert!(take().is_none());
        assert_eq!(trace.spans()[0].stage, "sign");
        assert_eq!(trace.spans()[0].duration_ns(), 6);
        let completed = tracer.finish(trace);
        assert_eq!(completed.notes(), &[("batch", 4)]);
    }
}
