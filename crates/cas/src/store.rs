//! The encrypted CAS database.
//!
//! CAS itself runs inside an enclave (the paper's CAS does), so its
//! state at rest — policies full of application secrets — lives on an
//! encrypted volume sealed with a key only CAS knows. Loading and
//! parsing this database is part of every singleton retrieval, which
//! is why Fig. 7c attributes most of the 26.3 ms round trip to
//! "miscellaneous other necessary activities in the SCONE CAS".
//!
//! The store therefore splits hot from cold: the encrypted [`Volume`]
//! is the durable source of truth (written under one mutex — policy
//! registration is rare), while retrieval — the step on every
//! attestation — reads from a decoded in-memory cache of
//! `Arc<SessionPolicy>` sharded by config id. A hot-path lookup is a
//! shard read-lock plus an `Arc` pointer bump: no volume decryption,
//! no policy re-parse, no deep clone of the embedded `AppConfig`, and
//! no contention between lookups that hash to different shards.
//!
//! Beyond policies, the store persists the issuer's durable-state
//! snapshot (verify-cache keys + token table) at [`SNAPSHOT_PATH`],
//! through the same encrypted volume: the snapshot gets chunk-level
//! tamper detection and the volume's crash-safe rewrite (fresh file
//! id, manifest flip) without any bespoke machinery. The sealed
//! redemption journal lives alongside it under [`JOURNAL_ROOT`]
//! ([`sinclave_fs::journal`]): appends commit at chunk granularity —
//! one seal, no manifest rewrite — which is what lets the CAS make
//! every redemption durable before acking it without paying a
//! snapshot write per event.

use crate::policy::SessionPolicy;
use parking_lot::{Mutex, RwLock};
use sinclave::SinclaveError;
use sinclave_crypto::aead::AeadKey;
use sinclave_fs::journal::{Journal, Recovery};
use sinclave_fs::Volume;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Path prefix for policy records.
const POLICY_PREFIX: &str = "policies/";

/// Path of the issuer's durable-state snapshot inside the encrypted
/// volume. Living in the volume, the snapshot inherits chunk-level
/// tamper detection and nonce-unique crash-safe rewrites for free.
pub const SNAPSHOT_PATH: &str = "state/issuer-snapshot";

/// Root of the sealed redemption journal inside the encrypted volume
/// (epochs live at `<root>/epoch-<n>`).
pub const JOURNAL_ROOT: &str = "journal/redemption";

/// Path of the fencing-generation ceiling inside the encrypted volume:
/// the highest fence this server has *observed* (its own or a peer's),
/// 8 big-endian bytes. Kept separate from the snapshot so observing a
/// fence — which must durably depose a stale primary — never has to
/// rewrite the whole issuer state.
pub const FENCE_PATH: &str = "state/fence";

/// Number of independent cache shards. Config ids hash uniformly, so
/// a small fixed power of two is enough to keep concurrent retrievals
/// off each other's locks.
const STORE_SHARDS: usize = 8;

/// One lock shard of the decoded-policy read cache.
type PolicyShard = RwLock<HashMap<String, Arc<SessionPolicy>>>;

/// Shard index for a config id (shared FNV-1a fold).
fn shard_of(config_id: &str) -> usize {
    sinclave::shard::fnv1a_index(config_id.as_bytes(), STORE_SHARDS)
}

/// The encrypted policy store.
pub struct CasStore {
    /// Durable encrypted state; writes only (registration, removal).
    volume: Mutex<Volume>,
    key: AeadKey,
    /// Decoded read cache, sharded by config id.
    shards: Box<[PolicyShard]>,
    /// The sealed redemption journal's append handle, opened by
    /// [`CasStore::recover_journal`]. Lock order is always
    /// journal → volume; appends hold both briefly (the group-commit
    /// layer above already serializes flushers, so this lock is
    /// uncontended in practice).
    journal: Mutex<Option<Journal>>,
}

impl fmt::Debug for CasStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CasStore")
            .field("policies", &self.shards.iter().map(|s| s.read().len()).sum::<usize>())
            .finish()
    }
}

impl CasStore {
    fn empty_shards() -> Box<[PolicyShard]> {
        (0..STORE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect()
    }

    /// Creates an empty store protected by `key`.
    #[must_use]
    pub fn create(key: AeadKey) -> Self {
        CasStore {
            volume: Mutex::new(Volume::format(&key, "cas-db")),
            key,
            shards: Self::empty_shards(),
            journal: Mutex::new(None),
        }
    }

    /// Opens an existing database volume, decoding every stored policy
    /// into the read cache.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] if the key does not
    /// open the volume or any stored policy is corrupt.
    pub fn open(mut volume: Volume, key: AeadKey) -> Result<Self, SinclaveError> {
        volume.verify_key(&key).map_err(|_| SinclaveError::ProtocolDecode)?;
        // Reclaim chunks an interrupted write (crash mid-snapshot) may
        // have left behind; orphans are unreachable through every read
        // path, so this is purely a space reclaim.
        let _ = volume.sweep_orphans(&key);
        let store = CasStore {
            volume: Mutex::new(volume),
            key,
            shards: Self::empty_shards(),
            journal: Mutex::new(None),
        };
        for config_id in store.list_policies()? {
            let path = format!("{POLICY_PREFIX}{config_id}");
            let bytes = store
                .volume
                .lock()
                .read_file(&store.key, &path)
                .map_err(|_| SinclaveError::ProtocolDecode)?;
            let policy = Arc::new(SessionPolicy::from_bytes(&bytes)?);
            store.shards[shard_of(&config_id)].write().insert(config_id, policy);
        }
        Ok(store)
    }

    /// Persists a policy (insert or replace). The cache is updated
    /// only after the volume write succeeds — and while the volume
    /// lock is still held, so racing writers cannot leave the cache
    /// diverged from the durable state — and readers never observe a
    /// policy that is not durable.
    ///
    /// # Errors
    ///
    /// Propagates volume failures as [`SinclaveError::ProtocolDecode`].
    pub fn put_policy(&self, policy: &SessionPolicy) -> Result<(), SinclaveError> {
        let mut volume = self.volume.lock();
        volume
            .write_file(
                &self.key,
                &format!("{POLICY_PREFIX}{}", policy.config_id),
                &policy.to_bytes(),
            )
            .map_err(|_| SinclaveError::ProtocolDecode)?;
        // Lock order is always volume → shard (here and in
        // remove_policy/open); get_policy takes only the shard lock.
        self.shards[shard_of(&policy.config_id)]
            .write()
            .insert(policy.config_id.clone(), Arc::new(policy.clone()));
        Ok(())
    }

    /// Loads one policy — a shard read-lock and an `Arc` clone, no
    /// volume access.
    ///
    /// Returns `None` if absent.
    #[must_use]
    pub fn get_policy(&self, config_id: &str) -> Option<Arc<SessionPolicy>> {
        self.shards[shard_of(config_id)].read().get(config_id).cloned()
    }

    /// Lists all stored policy ids (from the durable volume).
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] on volume failures.
    pub fn list_policies(&self) -> Result<Vec<String>, SinclaveError> {
        Ok(self
            .volume
            .lock()
            .list(&self.key)
            .map_err(|_| SinclaveError::ProtocolDecode)?
            .into_iter()
            .filter_map(|p| p.strip_prefix(POLICY_PREFIX).map(str::to_owned))
            .collect())
    }

    /// Removes a policy; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] on volume failures.
    pub fn remove_policy(&self, config_id: &str) -> Result<bool, SinclaveError> {
        let mut volume = self.volume.lock();
        let removed = match volume.remove_file(&self.key, &format!("{POLICY_PREFIX}{config_id}")) {
            Ok(()) => true,
            Err(sinclave_fs::FsError::NotFound { .. }) => false,
            Err(_) => return Err(SinclaveError::ProtocolDecode),
        };
        // Cache update under the volume lock — see put_policy.
        self.shards[shard_of(config_id)].write().remove(config_id);
        Ok(removed)
    }

    /// Persists the issuer's durable-state snapshot as a file in the
    /// encrypted volume, at [`SNAPSHOT_PATH`].
    ///
    /// The volume's write path is crash-safe (fresh file id, manifest
    /// flip as the commit point), so an interrupted persist leaves the
    /// previous snapshot readable.
    ///
    /// # Errors
    ///
    /// Propagates volume failures as [`SinclaveError::ProtocolDecode`].
    pub fn persist_state(&self, snapshot: &[u8]) -> Result<(), SinclaveError> {
        self.volume
            .lock()
            .write_file(&self.key, SNAPSHOT_PATH, snapshot)
            .map_err(|_| SinclaveError::ProtocolDecode)
    }

    /// Reads back the persisted snapshot, if any.
    ///
    /// `Ok(None)` means a cold volume (no snapshot was ever written) —
    /// the normal first boot. An error means a snapshot *exists* but
    /// cannot be read (tampered or unreadable chunks); callers treat
    /// that as a rejected snapshot and start cold.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::SnapshotInvalid`] when the stored
    /// snapshot file fails volume integrity checks.
    pub fn restore_state(&self) -> Result<Option<Vec<u8>>, SinclaveError> {
        let volume = self.volume.lock();
        match volume.read_file(&self.key, SNAPSHOT_PATH) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(sinclave_fs::FsError::NotFound { .. }) => Ok(None),
            Err(_) => Err(SinclaveError::SnapshotInvalid { context: "snapshot file unreadable" }),
        }
    }

    /// Durably records the highest observed fencing generation (see
    /// [`FENCE_PATH`]). Written when a server observes a fence — its
    /// own at promotion, or a peer's outranking one — so a restart
    /// cannot forget it was deposed.
    ///
    /// # Errors
    ///
    /// Propagates volume failures as [`SinclaveError::ProtocolDecode`].
    pub fn persist_fence(&self, fence: u64) -> Result<(), SinclaveError> {
        self.volume
            .lock()
            .write_file(&self.key, FENCE_PATH, &fence.to_be_bytes())
            .map_err(|_| SinclaveError::ProtocolDecode)
    }

    /// Reads back the fence ceiling; `Ok(None)` means none was ever
    /// observed (a pre-replication volume, or a fresh one).
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] if a fence file exists
    /// but is unreadable or malformed — the caller fails closed.
    pub fn restore_fence(&self) -> Result<Option<u64>, SinclaveError> {
        let volume = self.volume.lock();
        match volume.read_file(&self.key, FENCE_PATH) {
            Ok(bytes) => {
                let raw: [u8; 8] =
                    bytes.as_slice().try_into().map_err(|_| SinclaveError::ProtocolDecode)?;
                Ok(Some(u64::from_be_bytes(raw)))
            }
            Err(sinclave_fs::FsError::NotFound { .. }) => Ok(None),
            Err(_) => Err(SinclaveError::ProtocolDecode),
        }
    }

    // ---- Redemption journal ----------------------------------------------

    /// Opens (or reopens) the sealed redemption journal under
    /// [`JOURNAL_ROOT`]: replays every committed chunk, classifies
    /// damage, reclaims a benign torn tail, and rolls a fresh epoch so
    /// subsequent appends never touch a consumed chunk index. Called
    /// once at server construction.
    ///
    /// # Errors
    ///
    /// Propagates volume failures as [`SinclaveError::JournalInvalid`].
    pub fn recover_journal(&self) -> Result<Recovery, SinclaveError> {
        let mut slot = self.journal.lock();
        let (journal, recovery) =
            Journal::recover(&mut self.volume.lock(), &self.key, JOURNAL_ROOT)
                .map_err(|_| SinclaveError::JournalInvalid { context: "journal unreadable" })?;
        *slot = Some(journal);
        Ok(recovery)
    }

    /// Appends one sealed group-commit payload; returning `Ok` is the
    /// durability point the CAS acks redemptions against.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::JournalInvalid`] if the journal was
    /// never recovered or the volume refuses the append.
    // invariant: journal-before-ack
    pub fn append_journal(&self, payload: &[u8]) -> Result<(), SinclaveError> {
        let mut slot = self.journal.lock();
        let journal = slot
            .as_mut()
            .ok_or(SinclaveError::JournalInvalid { context: "journal not recovered" })?;
        journal.append(&mut self.volume.lock(), &self.key, payload);
        Ok(())
    }

    /// Starts a fresh journal epoch (snapshot checkpoint) and returns
    /// the retired epochs for [`CasStore::remove_journal_epochs`] once
    /// the covering snapshot is durable.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::JournalInvalid`] on volume failures.
    pub fn rotate_journal(&self) -> Result<Vec<u64>, SinclaveError> {
        let mut slot = self.journal.lock();
        let journal = slot
            .as_mut()
            .ok_or(SinclaveError::JournalInvalid { context: "journal not recovered" })?;
        journal
            .rotate(&mut self.volume.lock(), &self.key)
            .map_err(|_| SinclaveError::JournalInvalid { context: "journal rotate failed" })
    }

    /// Deletes retired journal epochs (truncation behind a durable
    /// snapshot). Missing epochs are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::JournalInvalid`] on volume failures.
    pub fn remove_journal_epochs(&self, epochs: &[u64]) -> Result<(), SinclaveError> {
        let slot = self.journal.lock();
        let journal = slot
            .as_ref()
            .ok_or(SinclaveError::JournalInvalid { context: "journal not recovered" })?;
        journal
            .remove_epochs(&mut self.volume.lock(), &self.key, epochs)
            .map_err(|_| SinclaveError::JournalInvalid { context: "journal truncate failed" })
    }

    /// Reads every committed journal chunk in append order **without
    /// mutating the journal** — no torn-tail reclaim, no epoch roll.
    /// This is the replication bootstrap export: exactly the sealed
    /// payloads a restart of this server would replay, safe to call
    /// while the live journal handle keeps appending.
    ///
    /// # Errors
    ///
    /// Propagates volume failures as [`SinclaveError::JournalInvalid`].
    pub fn export_journal_chunks(&self) -> Result<Recovery, SinclaveError> {
        // Lock order journal → volume, as everywhere: holding the
        // journal lock keeps a concurrent append from landing between
        // the scan and the caller capturing the high sequence.
        let _slot = self.journal.lock();
        Journal::export_chunks(&self.volume.lock(), &self.key, JOURNAL_ROOT)
            .map_err(|_| SinclaveError::JournalInvalid { context: "journal unreadable" })
    }

    /// Number of journal epochs currently on the volume (observability
    /// for the log-stays-bounded property).
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] on volume failures.
    pub fn journal_epoch_count(&self) -> Result<usize, SinclaveError> {
        Journal::epochs(&self.volume.lock(), &self.key, JOURNAL_ROOT)
            .map(|epochs| epochs.len())
            .map_err(|_| SinclaveError::ProtocolDecode)
    }

    /// Sets the modeled block-device flush latency on the underlying
    /// volume (see [`Volume::set_flush_latency_micros`]); used by
    /// benchmarks so durability trade-offs are costed like hardware.
    pub fn set_flush_latency_micros(&self, micros: u64) {
        self.volume.lock().set_flush_latency_micros(micros);
    }

    /// Injects (or clears) whole-file write failures on the underlying
    /// volume (see [`Volume::set_file_write_failure`]); used by
    /// degradation drills to make snapshot persists fail while the
    /// journal keeps appending.
    pub fn set_file_write_failure(&self, fail: bool) {
        self.volume.lock().set_file_write_failure(fail);
    }

    /// A snapshot of the underlying volume (for persistence by the
    /// host).
    #[must_use]
    pub fn volume(&self) -> Volume {
        self.volume.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyMode;
    use sinclave::AppConfig;
    use sinclave_crypto::sha256::Digest;
    use sinclave_sgx::measurement::Measurement;

    fn policy(id: &str) -> SessionPolicy {
        SessionPolicy {
            config_id: id.into(),
            expected_common: Measurement(Digest([1; 32])),
            expected_mrsigner: Digest([2; 32]),
            min_isv_svn: 1,
            allow_debug: false,
            mode: PolicyMode::Either,
            config: AppConfig::default(),
        }
    }

    #[test]
    fn put_get_list_remove() {
        let store = CasStore::create(AeadKey::new([1; 32]));
        store.put_policy(&policy("a")).unwrap();
        store.put_policy(&policy("b")).unwrap();
        assert_eq!(store.get_policy("a").unwrap().config_id, "a");
        assert!(store.get_policy("missing").is_none());
        let mut ids = store.list_policies().unwrap();
        ids.sort();
        assert_eq!(ids, vec!["a".to_owned(), "b".to_owned()]);
        assert!(store.remove_policy("a").unwrap());
        assert!(!store.remove_policy("a").unwrap());
        assert!(store.get_policy("a").is_none());
    }

    #[test]
    fn get_policy_shares_one_allocation() {
        let store = CasStore::create(AeadKey::new([5; 32]));
        store.put_policy(&policy("hot")).unwrap();
        let a = store.get_policy("hot").unwrap();
        let b = store.get_policy("hot").unwrap();
        // The hot path hands out the same allocation, not a deep copy.
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn reopen_with_right_key_only() {
        let key = AeadKey::new([2; 32]);
        let store = CasStore::create(key.clone());
        store.put_policy(&policy("x")).unwrap();
        let volume = store.volume();
        let reopened = CasStore::open(volume.clone(), key).unwrap();
        assert_eq!(reopened.get_policy("x").unwrap().config_id, "x");
        assert!(CasStore::open(volume, AeadKey::new([3; 32])).is_err());
    }

    #[test]
    fn snapshot_persist_restore_roundtrip() {
        let key = AeadKey::new([6; 32]);
        let store = CasStore::create(key.clone());
        assert_eq!(store.restore_state().unwrap(), None, "cold volume");
        store.persist_state(b"snapshot v1").unwrap();
        assert_eq!(store.restore_state().unwrap().unwrap(), b"snapshot v1");
        store.persist_state(b"snapshot v2, longer than before").unwrap();
        assert_eq!(store.restore_state().unwrap().unwrap(), b"snapshot v2, longer than before");
        // Snapshots survive a volume reopen and never masquerade as
        // policies.
        let reopened = CasStore::open(store.volume(), key).unwrap();
        assert_eq!(reopened.restore_state().unwrap().unwrap(), b"snapshot v2, longer than before");
        assert!(reopened.list_policies().unwrap().is_empty());
    }

    #[test]
    fn tampered_snapshot_chunk_surfaces_as_snapshot_invalid() {
        let key = AeadKey::new([7; 32]);
        let store = CasStore::create(key.clone());
        store.persist_state(b"good bytes").unwrap();
        let mut volume = store.volume();
        // The snapshot is the only file, so every chunk is its.
        for id in volume.raw_chunk_ids() {
            volume.corrupt_chunk(id);
        }
        let reopened = CasStore::open(volume, key).unwrap();
        assert!(matches!(
            reopened.restore_state(),
            Err(SinclaveError::SnapshotInvalid { context: "snapshot file unreadable" })
        ));
    }

    #[test]
    fn fence_ceiling_roundtrips_and_survives_reopen() {
        let key = AeadKey::new([8; 32]);
        let store = CasStore::create(key.clone());
        assert_eq!(store.restore_fence().unwrap(), None, "no fence ever observed");
        store.persist_fence(3).unwrap();
        assert_eq!(store.restore_fence().unwrap(), Some(3));
        store.persist_fence(9).unwrap();
        let reopened = CasStore::open(store.volume(), key).unwrap();
        assert_eq!(reopened.restore_fence().unwrap(), Some(9));
    }

    #[test]
    fn journal_export_sees_appends_without_rolling_epochs() {
        let store = CasStore::create(AeadKey::new([9; 32]));
        store.recover_journal().unwrap();
        store.append_journal(b"batch-1").unwrap();
        store.append_journal(b"batch-2").unwrap();
        let export = store.export_journal_chunks().unwrap();
        assert_eq!(export.damage, None);
        let payloads: Vec<&[u8]> = export.chunks.iter().map(|c| c.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"batch-1".as_slice(), b"batch-2".as_slice()]);
        // Exporting did not rotate or consume anything: appends keep
        // landing in the same epoch and a re-export sees all three.
        store.append_journal(b"batch-3").unwrap();
        assert_eq!(store.export_journal_chunks().unwrap().chunks.len(), 3);
    }

    #[test]
    fn database_is_opaque_to_the_host() {
        let store = CasStore::create(AeadKey::new([4; 32]));
        let mut p = policy("secret-session");
        p.config.secrets = vec![("password".into(), b"super secret value".to_vec())];
        store.put_policy(&p).unwrap();
        // The host sees ciphertext only: the secret must not appear.
        let volume = store.volume();
        assert!(volume.size_on_disk() > 0);
        // (Chunk scanning is covered in the fs crate; here we check the
        // secret is not in the superblock-visible metadata either.)
        let ids = volume.raw_chunk_ids();
        assert!(!ids.is_empty());
    }
}
