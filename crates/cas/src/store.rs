//! The encrypted CAS database.
//!
//! CAS itself runs inside an enclave (the paper's CAS does), so its
//! state at rest — policies full of application secrets — lives on an
//! encrypted volume sealed with a key only CAS knows. Loading and
//! parsing this database is part of every singleton retrieval, which
//! is why Fig. 7c attributes most of the 26.3 ms round trip to
//! "miscellaneous other necessary activities in the SCONE CAS".

use crate::policy::SessionPolicy;
use sinclave::SinclaveError;
use sinclave_crypto::aead::AeadKey;
use sinclave_fs::Volume;

/// Path prefix for policy records.
const POLICY_PREFIX: &str = "policies/";

/// The encrypted policy store.
#[derive(Debug)]
pub struct CasStore {
    volume: Volume,
    key: AeadKey,
}

impl CasStore {
    /// Creates an empty store protected by `key`.
    #[must_use]
    pub fn create(key: AeadKey) -> Self {
        CasStore { volume: Volume::format(&key, "cas-db"), key }
    }

    /// Opens an existing database volume.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] if the key does not
    /// open the volume.
    pub fn open(volume: Volume, key: AeadKey) -> Result<Self, SinclaveError> {
        volume.verify_key(&key).map_err(|_| SinclaveError::ProtocolDecode)?;
        Ok(CasStore { volume, key })
    }

    /// Persists a policy (insert or replace).
    ///
    /// # Errors
    ///
    /// Propagates volume failures as [`SinclaveError::ProtocolDecode`].
    pub fn put_policy(&mut self, policy: &SessionPolicy) -> Result<(), SinclaveError> {
        self.volume
            .write_file(
                &self.key,
                &format!("{POLICY_PREFIX}{}", policy.config_id),
                &policy.to_bytes(),
            )
            .map_err(|_| SinclaveError::ProtocolDecode)
    }

    /// Loads one policy.
    ///
    /// Returns `None` if absent.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] for corrupt records.
    pub fn get_policy(&self, config_id: &str) -> Result<Option<SessionPolicy>, SinclaveError> {
        match self.volume.read_file(&self.key, &format!("{POLICY_PREFIX}{config_id}")) {
            Ok(bytes) => Ok(Some(SessionPolicy::from_bytes(&bytes)?)),
            Err(sinclave_fs::FsError::NotFound { .. }) => Ok(None),
            Err(_) => Err(SinclaveError::ProtocolDecode),
        }
    }

    /// Lists all stored policy ids.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] on volume failures.
    pub fn list_policies(&self) -> Result<Vec<String>, SinclaveError> {
        Ok(self
            .volume
            .list(&self.key)
            .map_err(|_| SinclaveError::ProtocolDecode)?
            .into_iter()
            .filter_map(|p| p.strip_prefix(POLICY_PREFIX).map(str::to_owned))
            .collect())
    }

    /// Removes a policy; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] on volume failures.
    pub fn remove_policy(&mut self, config_id: &str) -> Result<bool, SinclaveError> {
        match self.volume.remove_file(&self.key, &format!("{POLICY_PREFIX}{config_id}")) {
            Ok(()) => Ok(true),
            Err(sinclave_fs::FsError::NotFound { .. }) => Ok(false),
            Err(_) => Err(SinclaveError::ProtocolDecode),
        }
    }

    /// The underlying volume (for persistence by the host).
    #[must_use]
    pub fn volume(&self) -> &Volume {
        &self.volume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyMode;
    use sinclave::AppConfig;
    use sinclave_crypto::sha256::Digest;
    use sinclave_sgx::measurement::Measurement;

    fn policy(id: &str) -> SessionPolicy {
        SessionPolicy {
            config_id: id.into(),
            expected_common: Measurement(Digest([1; 32])),
            expected_mrsigner: Digest([2; 32]),
            min_isv_svn: 1,
            allow_debug: false,
            mode: PolicyMode::Either,
            config: AppConfig::default(),
        }
    }

    #[test]
    fn put_get_list_remove() {
        let mut store = CasStore::create(AeadKey::new([1; 32]));
        store.put_policy(&policy("a")).unwrap();
        store.put_policy(&policy("b")).unwrap();
        assert_eq!(store.get_policy("a").unwrap().unwrap().config_id, "a");
        assert!(store.get_policy("missing").unwrap().is_none());
        let mut ids = store.list_policies().unwrap();
        ids.sort();
        assert_eq!(ids, vec!["a".to_owned(), "b".to_owned()]);
        assert!(store.remove_policy("a").unwrap());
        assert!(!store.remove_policy("a").unwrap());
    }

    #[test]
    fn reopen_with_right_key_only() {
        let key = AeadKey::new([2; 32]);
        let mut store = CasStore::create(key.clone());
        store.put_policy(&policy("x")).unwrap();
        let volume = store.volume().clone();
        let reopened = CasStore::open(volume.clone(), key).unwrap();
        assert_eq!(reopened.get_policy("x").unwrap().unwrap().config_id, "x");
        assert!(CasStore::open(volume, AeadKey::new([3; 32])).is_err());
    }

    #[test]
    fn database_is_opaque_to_the_host() {
        let mut store = CasStore::create(AeadKey::new([4; 32]));
        let mut p = policy("secret-session");
        p.config.secrets = vec![("password".into(), b"super secret value".to_vec())];
        store.put_policy(&p).unwrap();
        // The host sees ciphertext only: the secret must not appear.
        let volume = store.volume();
        assert!(volume.size_on_disk() > 0);
        // (Chunk scanning is covered in the fs crate; here we check the
        // secret is not in the superblock-visible metadata either.)
        let ids = volume.raw_chunk_ids();
        assert!(!ids.is_empty());
    }
}
