//! Session policies: who may receive which configuration.

use sinclave::{AppConfig, BaseEnclaveHash};
use sinclave_crypto::sha256::Digest;
use sinclave_sgx::measurement::Measurement;
use sinclave_sgx::sigstruct::SigStruct;

/// Which attestation flows a policy accepts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyMode {
    /// Accept the tokenless baseline flow only (unmodified SCONE).
    Baseline,
    /// Accept only SinClave singleton attestation.
    Singleton,
    /// Accept either flow (migration setting).
    Either,
}

/// A configuration session: identity expectations plus the payload.
#[derive(Clone, Debug)]
pub struct SessionPolicy {
    /// The configuration id enclaves request.
    pub config_id: String,
    /// Expected *common* enclave measurement (what the user's binary
    /// measures with a zeroed instance page).
    pub expected_common: Measurement,
    /// Expected signer identity.
    pub expected_mrsigner: Digest,
    /// Minimum security version number.
    pub min_isv_svn: u16,
    /// Whether debug-mode enclaves are acceptable (never in prod).
    pub allow_debug: bool,
    /// Accepted flows.
    pub mode: PolicyMode,
    /// The configuration to deliver.
    pub config: AppConfig,
}

impl SessionPolicy {
    /// Serializes the policy for the encrypted database.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put = |out: &mut Vec<u8>, b: &[u8]| {
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(b);
        };
        put(&mut out, self.config_id.as_bytes());
        out.extend_from_slice(self.expected_common.as_bytes());
        out.extend_from_slice(self.expected_mrsigner.as_bytes());
        out.extend_from_slice(&self.min_isv_svn.to_be_bytes());
        out.push(self.allow_debug as u8);
        out.push(match self.mode {
            PolicyMode::Baseline => 0,
            PolicyMode::Singleton => 1,
            PolicyMode::Either => 2,
        });
        put(&mut out, &self.config.to_bytes());
        out
    }

    /// Parses a policy from its database encoding.
    ///
    /// # Errors
    ///
    /// Returns [`sinclave::SinclaveError::ProtocolDecode`] on malformed
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, sinclave::SinclaveError> {
        use sinclave::SinclaveError::ProtocolDecode;
        fn take<'a>(c: &mut &'a [u8], n: usize) -> Result<&'a [u8], sinclave::SinclaveError> {
            if c.len() < n {
                return Err(sinclave::SinclaveError::ProtocolDecode);
            }
            let (h, r) = c.split_at(n);
            *c = r;
            Ok(h)
        }
        fn get(c: &mut &[u8]) -> Result<Vec<u8>, sinclave::SinclaveError> {
            let len =
                u32::from_be_bytes(take(c, 4)?.try_into().map_err(|_| ProtocolDecode)?) as usize;
            Ok(take(c, len)?.to_vec())
        }
        let mut c = bytes;
        let config_id = String::from_utf8(get(&mut c)?).map_err(|_| ProtocolDecode)?;
        let expected_common =
            Measurement(Digest(take(&mut c, 32)?.try_into().map_err(|_| ProtocolDecode)?));
        let expected_mrsigner = Digest(take(&mut c, 32)?.try_into().map_err(|_| ProtocolDecode)?);
        let min_isv_svn =
            u16::from_be_bytes(take(&mut c, 2)?.try_into().map_err(|_| ProtocolDecode)?);
        let allow_debug = match take(&mut c, 1)?[0] {
            0 => false,
            1 => true,
            _ => return Err(ProtocolDecode),
        };
        let mode = match take(&mut c, 1)?[0] {
            0 => PolicyMode::Baseline,
            1 => PolicyMode::Singleton,
            2 => PolicyMode::Either,
            _ => return Err(ProtocolDecode),
        };
        let config = AppConfig::from_bytes(&get(&mut c)?)?;
        if !c.is_empty() {
            return Err(ProtocolDecode);
        }
        Ok(SessionPolicy {
            config_id,
            expected_common,
            expected_mrsigner,
            min_isv_svn,
            allow_debug,
            mode,
            config,
        })
    }
}

/// A binary registered for singleton grants: what the verifier needs
/// to validate grant requests offline.
#[derive(Clone, Debug)]
pub struct BinaryRecord {
    /// Registration name.
    pub name: String,
    /// The binary's base enclave hash.
    pub base_hash: BaseEnclaveHash,
    /// The binary's common SigStruct.
    pub common_sigstruct: SigStruct,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SessionPolicy {
        SessionPolicy {
            config_id: "python-app".into(),
            expected_common: Measurement(Digest([1; 32])),
            expected_mrsigner: Digest([2; 32]),
            min_isv_svn: 3,
            allow_debug: false,
            mode: PolicyMode::Singleton,
            config: AppConfig {
                entry: "main.py".into(),
                secrets: vec![("k".into(), b"v".to_vec())],
                ..AppConfig::default()
            },
        }
    }

    #[test]
    fn roundtrip_all_modes() {
        for mode in [PolicyMode::Baseline, PolicyMode::Singleton, PolicyMode::Either] {
            let mut p = policy();
            p.mode = mode;
            let decoded = SessionPolicy::from_bytes(&p.to_bytes()).unwrap();
            assert_eq!(decoded.mode, mode);
            assert_eq!(decoded.config, p.config);
            assert_eq!(decoded.expected_common, p.expected_common);
            assert_eq!(decoded.min_isv_svn, 3);
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(SessionPolicy::from_bytes(&[0, 1]).is_err());
        let mut bytes = policy().to_bytes();
        bytes.push(7);
        assert!(SessionPolicy::from_bytes(&bytes).is_err());
    }
}
