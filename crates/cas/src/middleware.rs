//! Admission-control middleware for the CAS serving paths.
//!
//! Production verifier deployments front their request loop with a
//! small, *fixed-order* stack of defensive layers (cf. the 17-layer
//! middleware stack of production CAS deployments). This module is
//! that stack for both CAS serving paths (the worker pool and the
//! reactor), evaluated per request in a fixed order:
//!
//! 1. **Timeouts** — handshake and read idle deadlines (enforced at
//!    the connection layer by the serving paths; configured here) so a
//!    slow-loris peer cannot pin a worker or an event-loop slot.
//! 2. **Rate limiting** — a token bucket per client identity. Sits
//!    first among the per-request layers because it is the cheapest
//!    check and protects everything behind it from a single noisy
//!    identity.
//! 3. **Quotas** — an absolute per-identity request budget. After rate
//!    limiting so a quota-exhausted identity still pays the rate
//!    limiter first and cannot use quota probes to bypass it.
//! 4. **Request deduplication** — a bounded TTL cache of recent grant
//!    replies keyed by the request's idempotency key (the hash of its
//!    wire bytes). A client retrying an acked grant — routine during
//!    failover, when a follower's forward link drops mid-reply — gets
//!    the identical cached response instead of a second token. After
//!    quotas (a retry storm still pays admission) and before dispatch
//!    (a hit skips issuance entirely).
//! 5. **Panic isolation** — dispatch runs under `catch_unwind` so a
//!    panic poisons one connection, not the serving thread (enforced
//!    by the serving paths; configured here).
//! 6. **Circuit breaker** — wraps the volume/journal append boundary,
//!    the one layer that talks to storage. Last, at the resource it
//!    guards: when appends fail repeatedly the breaker opens and
//!    journaling requests are shed with a clean refusal instead of
//!    queueing behind a dead volume.
//!
//! The order is fixed — cheap and outermost first, the resource guard
//! innermost — so every refusal is as cheap as possible and the layers
//! compose predictably; making it configurable would let a deployment
//! accidentally run the breaker in front of the rate limiter and turn
//! an overload refusal into a quota charge.
//!
//! The default [`MiddlewareConfig`] disables every layer: the chain
//! admits everything and the serving paths behave bit-identically to
//! the unprotected loop (the determinism contract the ablation gates).
//! [`MiddlewareConfig::hardened`] is the everything-on preset.
//!
//! Alongside the per-request layers, the chain carries the fleet's
//! **degraded flag**: a follower that loses its replication stream
//! keeps serving reads (stale-bounded, by design) and reconnects with
//! bounded backoff — the breaker stays closed, because the local
//! volume is healthy and opening it would shed traffic the replica can
//! still serve correctly. The flag makes the state observable instead
//! of silent.
//!
//! Time is read from a chain-local clock that tests can step with
//! [`MiddlewareChain::advance`] — layer tests never sleep.

use parking_lot::Mutex;
use sinclave_crypto::sha256::Digest;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Token-bucket rate limiting parameters (per client identity).
#[derive(Clone, Copy, Debug)]
pub struct RateLimitConfig {
    /// Bucket capacity: how many requests an idle identity may burst.
    pub burst: u32,
    /// Sustained refill rate in requests per second.
    pub per_second: u32,
}

/// Request-deduplication parameters (the idempotent-retry cache).
#[derive(Clone, Copy, Debug)]
pub struct DedupConfig {
    /// Maximum cached replies; the oldest entry is evicted beyond it.
    pub capacity: u32,
    /// How long a cached reply stays replayable. Long enough to cover
    /// a failover's retry window, short enough that the cache cannot
    /// serve a reply from a meaningfully different policy epoch.
    pub ttl: Duration,
}

/// Circuit-breaker parameters for the journal/volume append boundary.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive append failures that open the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting one half-open
    /// probe.
    pub cooldown: Duration,
}

/// Configuration for the full middleware stack. The default disables
/// every layer (bit-identical serving); see the module docs for the
/// fixed evaluation order.
#[derive(Clone, Copy, Debug, Default)]
pub struct MiddlewareConfig {
    /// Inactivity deadline during the secure-channel handshake: the
    /// longest a connection may go without delivering a handshake
    /// flight (`None` = the transport default). A slow loris that
    /// drips flights buys at most one extra deadline per flight — the
    /// handshake has only two.
    pub handshake_timeout: Option<Duration>,
    /// Inactivity deadline for an established session to send its
    /// next request (`None` = the transport default).
    pub idle_timeout: Option<Duration>,
    /// Per-identity token-bucket rate limiting (`None` = off).
    pub rate_limit: Option<RateLimitConfig>,
    /// Absolute per-identity request budget (`None` = off).
    pub quota: Option<u64>,
    /// Idempotent-retry deduplication for grant requests (`None` =
    /// off). Sits between quota and panic isolation.
    pub dedup: Option<DedupConfig>,
    /// Run dispatch under `catch_unwind`, refusing the connection
    /// instead of crashing the serving thread.
    pub isolate_panics: bool,
    /// Circuit breaker around journal/volume appends (`None` = off).
    pub breaker: Option<BreakerConfig>,
}

impl MiddlewareConfig {
    /// The everything-on preset: aggressive slow-loris deadlines,
    /// burst-tolerant rate limiting, a generous quota, panic
    /// isolation, and a breaker that opens fast and probes after a
    /// short cooldown.
    #[must_use]
    pub fn hardened() -> MiddlewareConfig {
        MiddlewareConfig {
            handshake_timeout: Some(Duration::from_millis(500)),
            idle_timeout: Some(Duration::from_secs(2)),
            rate_limit: Some(RateLimitConfig { burst: 64, per_second: 32 }),
            quota: Some(100_000),
            dedup: Some(DedupConfig { capacity: 1024, ttl: Duration::from_secs(30) }),
            isolate_panics: true,
            breaker: Some(BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(100),
            }),
        }
    }
}

/// Why the chain refused a request. The serving paths encode the
/// reason into a [`Message::Denied`] reply, so clients can tell an
/// admission refusal (retryable) from a verification failure (not).
///
/// [`Message::Denied`]: sinclave::protocol::Message::Denied
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// The identity's token bucket is empty.
    RateLimited,
    /// The identity's absolute request budget is spent.
    QuotaExceeded,
    /// The circuit breaker is open: storage is refusing appends and
    /// the request would need one.
    LoadShed,
}

impl Refusal {
    /// The wire-visible refusal reason.
    #[must_use]
    pub fn reason(self) -> &'static str {
        match self {
            Refusal::RateLimited => "rate limited: retry later",
            Refusal::QuotaExceeded => "quota exceeded",
            Refusal::LoadShed => "service overloaded: retry later",
        }
    }

    /// The trace-span stage name of the refusing layer (see
    /// [`crate::trace`]): the decision span a refused request's trace
    /// carries alongside the admission span.
    #[must_use]
    pub fn trace_stage(self) -> &'static str {
        match self {
            Refusal::RateLimited => "rate_limit",
            Refusal::QuotaExceeded => "quota",
            Refusal::LoadShed => "breaker_shed",
        }
    }
}

/// A monotonic clock the tests can step without sleeping.
struct Clock {
    base: Instant,
    skew_micros: AtomicU64,
}

impl Clock {
    fn new() -> Clock {
        Clock { base: Instant::now(), skew_micros: AtomicU64::new(0) }
    }

    fn now_micros(&self) -> u64 {
        let elapsed = u64::try_from(self.base.elapsed().as_micros()).unwrap_or(u64::MAX);
        elapsed.saturating_add(self.skew_micros.load(Ordering::Relaxed))
    }

    fn advance(&self, by: Duration) {
        let micros = u64::try_from(by.as_micros()).unwrap_or(u64::MAX);
        self.skew_micros.fetch_add(micros, Ordering::Relaxed);
    }
}

/// One identity's token bucket, in micro-tokens (integer arithmetic:
/// `1_000_000` micro-tokens = one admission).
struct Bucket {
    micro_tokens: u64,
    refilled_at_micros: u64,
}

const MICRO: u64 = 1_000_000;

/// Layer 2: per-identity token buckets.
struct RateLimiter {
    config: RateLimitConfig,
    buckets: Mutex<HashMap<Digest, Bucket>>,
}

impl RateLimiter {
    fn admit(&self, identity: &Digest, now_micros: u64) -> bool {
        let cap = u64::from(self.config.burst) * MICRO;
        let mut buckets = self.buckets.lock();
        let bucket = buckets
            .entry(*identity)
            .or_insert(Bucket { micro_tokens: cap, refilled_at_micros: now_micros });
        let elapsed = now_micros.saturating_sub(bucket.refilled_at_micros);
        let refill = elapsed.saturating_mul(u64::from(self.config.per_second));
        bucket.micro_tokens = bucket.micro_tokens.saturating_add(refill).min(cap);
        bucket.refilled_at_micros = now_micros;
        if bucket.micro_tokens >= MICRO {
            bucket.micro_tokens -= MICRO;
            true
        } else {
            false
        }
    }
}

/// Layer 3: absolute per-identity budgets.
struct QuotaTracker {
    limit: u64,
    spent: Mutex<HashMap<Digest, u64>>,
}

impl QuotaTracker {
    fn admit(&self, identity: &Digest) -> bool {
        let mut spent = self.spent.lock();
        let count = spent.entry(*identity).or_insert(0);
        if *count >= self.limit {
            false
        } else {
            *count += 1;
            true
        }
    }
}

/// One cached grant reply awaiting a possible retry.
struct DedupEntry {
    reply: Vec<u8>,
    stored_at_micros: u64,
}

/// Layer 4: the bounded TTL cache of recent grant replies, keyed by
/// the request's idempotency key (SHA-256 of its wire bytes — the
/// deterministic codec makes a byte-identical retry the definition of
/// "the same request").
struct DedupCache {
    config: DedupConfig,
    /// Entries plus their insertion order (for capacity eviction).
    entries: Mutex<(HashMap<Digest, DedupEntry>, VecDeque<Digest>)>,
}

impl DedupCache {
    fn lookup(&self, key: &Digest, now_micros: u64) -> Option<Vec<u8>> {
        let ttl = u64::try_from(self.config.ttl.as_micros()).unwrap_or(u64::MAX);
        let mut entries = self.entries.lock();
        match entries.0.get(key) {
            Some(entry) if now_micros.saturating_sub(entry.stored_at_micros) <= ttl => {
                Some(entry.reply.clone())
            }
            Some(_) => {
                // Expired: drop it now so a post-TTL retry re-dispatches
                // (the order queue self-cleans on eviction).
                entries.0.remove(key);
                None
            }
            None => None,
        }
    }

    fn store(&self, key: Digest, reply: Vec<u8>, now_micros: u64) {
        let mut entries = self.entries.lock();
        let (map, order) = &mut *entries;
        while map.len() >= self.config.capacity.max(1) as usize {
            // Evict oldest-inserted; keys already removed (TTL expiry,
            // or re-stored under a fresher entry) are skipped.
            match order.pop_front() {
                Some(old) => {
                    map.remove(&old);
                }
                None => break,
            }
        }
        if map.insert(key, DedupEntry { reply, stored_at_micros: now_micros }).is_none() {
            order.push_back(key);
        }
    }
}

/// Layer 6: the journal/volume append circuit breaker.
enum BreakerState {
    /// Appends flowing; counts consecutive failures.
    Closed { failures: u32 },
    /// Shedding journaling requests until the cooldown passes.
    Open { since_micros: u64 },
    /// One probe request is in flight; its outcome decides.
    HalfOpen,
}

struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<BreakerState>,
}

impl CircuitBreaker {
    fn admit(&self, now_micros: u64) -> bool {
        let mut state = self.state.lock();
        match *state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { since_micros } => {
                let cooldown = u64::try_from(self.config.cooldown.as_micros()).unwrap_or(u64::MAX);
                if now_micros.saturating_sub(since_micros) >= cooldown {
                    *state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // The admitted probe is still in flight; hold the line
            // until its outcome is recorded.
            BreakerState::HalfOpen => false,
        }
    }

    fn record(&self, ok: bool, now_micros: u64) {
        let mut state = self.state.lock();
        match (&*state, ok) {
            (BreakerState::Closed { .. }, true) => *state = BreakerState::Closed { failures: 0 },
            (BreakerState::Closed { failures }, false) => {
                let failures = failures + 1;
                *state = if failures >= self.config.failure_threshold {
                    BreakerState::Open { since_micros: now_micros }
                } else {
                    BreakerState::Closed { failures }
                };
            }
            (BreakerState::HalfOpen, true) => *state = BreakerState::Closed { failures: 0 },
            (BreakerState::HalfOpen, false) => {
                *state = BreakerState::Open { since_micros: now_micros };
            }
            // Late results from requests admitted before the breaker
            // opened carry no new information.
            (BreakerState::Open { .. }, _) => {}
        }
    }
}

/// The instantiated middleware stack one [`CasServer`] consults.
///
/// [`CasServer`]: crate::server::CasServer
pub struct MiddlewareChain {
    config: MiddlewareConfig,
    clock: Clock,
    limiter: Option<RateLimiter>,
    quotas: Option<QuotaTracker>,
    dedup: Option<DedupCache>,
    breaker: Option<CircuitBreaker>,
    /// Degraded-but-serving: the replication stream is down and the
    /// replica is reconnecting with bounded backoff. Observability
    /// only — reads keep flowing and the breaker stays out of it.
    degraded: AtomicBool,
}

impl Default for MiddlewareChain {
    fn default() -> Self {
        MiddlewareChain::new(MiddlewareConfig::default())
    }
}

impl std::fmt::Debug for MiddlewareChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiddlewareChain").field("config", &self.config).finish()
    }
}

impl MiddlewareChain {
    /// Instantiates the stack for `config`.
    #[must_use]
    pub fn new(config: MiddlewareConfig) -> MiddlewareChain {
        MiddlewareChain {
            config,
            clock: Clock::new(),
            limiter: config
                .rate_limit
                .map(|rl| RateLimiter { config: rl, buckets: Mutex::new(HashMap::new()) }),
            quotas: config
                .quota
                .map(|limit| QuotaTracker { limit, spent: Mutex::new(HashMap::new()) }),
            dedup: config.dedup.map(|d| DedupCache {
                config: d,
                entries: Mutex::new((HashMap::new(), VecDeque::new())),
            }),
            breaker: config.breaker.map(|b| CircuitBreaker {
                config: b,
                state: Mutex::new(BreakerState::Closed { failures: 0 }),
            }),
            degraded: AtomicBool::new(false),
        }
    }

    /// The configuration this chain was built from.
    #[must_use]
    pub fn config(&self) -> &MiddlewareConfig {
        &self.config
    }

    /// The per-request admission layers in fixed order: rate limit,
    /// then quota. `identity` is the requester's stable identity (the
    /// SigStruct signer for grants, the config id for attestations);
    /// identity-less messages (ping, challenge) are not charged.
    ///
    /// # Errors
    ///
    /// Returns the outermost refusing layer's [`Refusal`].
    pub fn admit(&self, identity: &Digest) -> Result<(), Refusal> {
        if let Some(limiter) = &self.limiter {
            if !limiter.admit(identity, self.clock.now_micros()) {
                return Err(Refusal::RateLimited);
            }
        }
        if let Some(quotas) = &self.quotas {
            if !quotas.admit(identity) {
                return Err(Refusal::QuotaExceeded);
            }
        }
        Ok(())
    }

    /// The breaker layer's pre-dispatch check for a request that will
    /// need a journal/volume append.
    ///
    /// # Errors
    ///
    /// Returns [`Refusal::LoadShed`] while the breaker is open.
    pub fn admit_journaling(&self) -> Result<(), Refusal> {
        match &self.breaker {
            Some(breaker) if !breaker.admit(self.clock.now_micros()) => Err(Refusal::LoadShed),
            _ => Ok(()),
        }
    }

    /// Feeds an append outcome to the breaker (no-op when disabled).
    pub fn record_commit(&self, ok: bool) {
        if let Some(breaker) = &self.breaker {
            breaker.record(ok, self.clock.now_micros());
        }
    }

    /// Whether the append circuit breaker is currently open — the
    /// health probe's read-only view. Unlike
    /// [`MiddlewareChain::admit_journaling`] this never transitions
    /// the breaker (an open→half-open probe admission must be spent
    /// by a real request, not consumed by a monitoring poll).
    #[must_use]
    pub fn breaker_open(&self) -> bool {
        self.breaker
            .as_ref()
            .is_some_and(|breaker| matches!(*breaker.state.lock(), BreakerState::Open { .. }))
    }

    /// Layer 4 lookup: the cached reply for this idempotency key, if a
    /// byte-identical request was answered within the TTL. `None` when
    /// the layer is off or the key is cold/expired.
    #[must_use]
    pub fn dedup_lookup(&self, key: &Digest) -> Option<Vec<u8>> {
        self.dedup.as_ref().and_then(|cache| cache.lookup(key, self.clock.now_micros()))
    }

    /// Layer 4 store: caches an answered reply under its request's
    /// idempotency key (no-op when the layer is off).
    pub fn dedup_store(&self, key: &Digest, reply: Vec<u8>) {
        if let Some(cache) = &self.dedup {
            cache.store(*key, reply, self.clock.now_micros());
        }
    }

    /// Marks or clears the degraded-but-serving state (replication
    /// stream lost / restored). Deliberately independent of the
    /// circuit breaker: the local volume is healthy, so journaling
    /// writes (on a primary) and reads (on a follower) keep flowing.
    pub fn set_degraded(&self, degraded: bool) {
        self.degraded.store(degraded, Ordering::Relaxed);
    }

    /// Whether the replica is currently serving without a live
    /// replication stream.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Steps the chain's clock forward — the test hook that replaces
    /// sleeping in rate-limit and breaker tests.
    pub fn advance(&self, by: Duration) {
        self.clock.advance(by);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(byte: u8) -> Digest {
        Digest([byte; 32])
    }

    #[test]
    fn default_chain_admits_everything() {
        let chain = MiddlewareChain::default();
        for i in 0..10_000 {
            assert_eq!(chain.admit(&identity((i % 7) as u8)), Ok(()));
        }
        assert_eq!(chain.admit_journaling(), Ok(()));
        chain.record_commit(false); // no breaker: outcome discarded
        assert_eq!(chain.admit_journaling(), Ok(()));
    }

    #[test]
    fn rate_limiter_allows_burst_then_refuses() {
        let chain = MiddlewareChain::new(MiddlewareConfig {
            rate_limit: Some(RateLimitConfig { burst: 3, per_second: 1 }),
            ..MiddlewareConfig::default()
        });
        let id = identity(1);
        for _ in 0..3 {
            assert_eq!(chain.admit(&id), Ok(()));
        }
        assert_eq!(chain.admit(&id), Err(Refusal::RateLimited));
        // Refill: one second buys one token, not a full burst.
        chain.advance(Duration::from_secs(1));
        assert_eq!(chain.admit(&id), Ok(()));
        assert_eq!(chain.admit(&id), Err(Refusal::RateLimited));
    }

    #[test]
    fn rate_limiter_buckets_are_per_identity() {
        let chain = MiddlewareChain::new(MiddlewareConfig {
            rate_limit: Some(RateLimitConfig { burst: 1, per_second: 1 }),
            ..MiddlewareConfig::default()
        });
        assert_eq!(chain.admit(&identity(1)), Ok(()));
        assert_eq!(chain.admit(&identity(1)), Err(Refusal::RateLimited));
        // A different identity has its own untouched bucket.
        assert_eq!(chain.admit(&identity(2)), Ok(()));
    }

    #[test]
    fn rate_limiter_refill_caps_at_burst() {
        let chain = MiddlewareChain::new(MiddlewareConfig {
            rate_limit: Some(RateLimitConfig { burst: 2, per_second: 10 }),
            ..MiddlewareConfig::default()
        });
        let id = identity(3);
        chain.advance(Duration::from_secs(3600)); // long idle
        assert_eq!(chain.admit(&id), Ok(()));
        assert_eq!(chain.admit(&id), Ok(()));
        assert_eq!(chain.admit(&id), Err(Refusal::RateLimited), "burst must cap the refill");
    }

    #[test]
    fn quota_is_absolute_and_per_identity() {
        let chain = MiddlewareChain::new(MiddlewareConfig {
            quota: Some(2),
            ..MiddlewareConfig::default()
        });
        let id = identity(4);
        assert_eq!(chain.admit(&id), Ok(()));
        assert_eq!(chain.admit(&id), Ok(()));
        assert_eq!(chain.admit(&id), Err(Refusal::QuotaExceeded));
        // No refill, ever: quotas are budgets, not rates.
        chain.advance(Duration::from_secs(3600));
        assert_eq!(chain.admit(&id), Err(Refusal::QuotaExceeded));
        assert_eq!(chain.admit(&identity(5)), Ok(()));
    }

    #[test]
    fn rate_limit_refuses_before_quota_is_charged() {
        // Fixed order: the rate limiter sits in front of the quota, so
        // a rate-limited request must not burn budget.
        let chain = MiddlewareChain::new(MiddlewareConfig {
            rate_limit: Some(RateLimitConfig { burst: 1, per_second: 1 }),
            quota: Some(2),
            ..MiddlewareConfig::default()
        });
        let id = identity(6);
        assert_eq!(chain.admit(&id), Ok(())); // quota 1/2
        for _ in 0..10 {
            assert_eq!(chain.admit(&id), Err(Refusal::RateLimited));
        }
        // The refusals above spent no quota: one admission remains.
        chain.advance(Duration::from_secs(1));
        assert_eq!(chain.admit(&id), Ok(())); // quota 2/2
        chain.advance(Duration::from_secs(1));
        assert_eq!(chain.admit(&id), Err(Refusal::QuotaExceeded));
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_through_half_open() {
        let chain = MiddlewareChain::new(MiddlewareConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(100),
            }),
            ..MiddlewareConfig::default()
        });
        // Closed: admits, counts consecutive failures.
        assert_eq!(chain.admit_journaling(), Ok(()));
        chain.record_commit(false);
        assert_eq!(chain.admit_journaling(), Ok(()), "one failure is below the threshold");
        chain.record_commit(false);
        // Open: sheds without touching storage.
        assert_eq!(chain.admit_journaling(), Err(Refusal::LoadShed));
        assert_eq!(chain.admit_journaling(), Err(Refusal::LoadShed));
        // After the cooldown: exactly one half-open probe.
        chain.advance(Duration::from_millis(100));
        assert_eq!(chain.admit_journaling(), Ok(()));
        assert_eq!(chain.admit_journaling(), Err(Refusal::LoadShed), "one probe at a time");
        // Probe failure reopens (and restarts the cooldown).
        chain.record_commit(false);
        assert_eq!(chain.admit_journaling(), Err(Refusal::LoadShed));
        chain.advance(Duration::from_millis(100));
        assert_eq!(chain.admit_journaling(), Ok(()));
        // Probe success closes: appends flow again.
        chain.record_commit(true);
        assert_eq!(chain.admit_journaling(), Ok(()));
        assert_eq!(chain.admit_journaling(), Ok(()));
    }

    #[test]
    fn breaker_success_resets_the_failure_streak() {
        let chain = MiddlewareChain::new(MiddlewareConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(100),
            }),
            ..MiddlewareConfig::default()
        });
        chain.record_commit(false);
        chain.record_commit(true); // streak broken
        chain.record_commit(false);
        assert_eq!(
            chain.admit_journaling(),
            Ok(()),
            "threshold counts consecutive failures, not lifetime failures"
        );
    }

    #[test]
    fn dedup_replays_within_ttl_and_expires_after() {
        let chain = MiddlewareChain::new(MiddlewareConfig {
            dedup: Some(DedupConfig { capacity: 8, ttl: Duration::from_secs(1) }),
            ..MiddlewareConfig::default()
        });
        let key = identity(1);
        assert_eq!(chain.dedup_lookup(&key), None, "cold key");
        chain.dedup_store(&key, b"reply-1".to_vec());
        assert_eq!(chain.dedup_lookup(&key), Some(b"reply-1".to_vec()));
        assert_eq!(chain.dedup_lookup(&key), Some(b"reply-1".to_vec()), "replays repeatedly");
        chain.advance(Duration::from_secs(2));
        assert_eq!(chain.dedup_lookup(&key), None, "expired");
        // A re-answered request re-caches under the same key.
        chain.dedup_store(&key, b"reply-2".to_vec());
        assert_eq!(chain.dedup_lookup(&key), Some(b"reply-2".to_vec()));
    }

    #[test]
    fn dedup_capacity_evicts_oldest_first() {
        let chain = MiddlewareChain::new(MiddlewareConfig {
            dedup: Some(DedupConfig { capacity: 2, ttl: Duration::from_secs(60) }),
            ..MiddlewareConfig::default()
        });
        chain.dedup_store(&identity(1), vec![1]);
        chain.dedup_store(&identity(2), vec![2]);
        chain.dedup_store(&identity(3), vec![3]);
        assert_eq!(chain.dedup_lookup(&identity(1)), None, "oldest evicted");
        assert_eq!(chain.dedup_lookup(&identity(2)), Some(vec![2]));
        assert_eq!(chain.dedup_lookup(&identity(3)), Some(vec![3]));
    }

    #[test]
    fn dedup_disabled_is_inert() {
        let chain = MiddlewareChain::default();
        chain.dedup_store(&identity(1), vec![1]);
        assert_eq!(chain.dedup_lookup(&identity(1)), None);
    }

    #[test]
    fn degraded_flag_is_independent_of_the_breaker() {
        let chain = MiddlewareChain::new(MiddlewareConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_millis(100),
            }),
            ..MiddlewareConfig::default()
        });
        assert!(!chain.is_degraded());
        chain.set_degraded(true);
        // A lost replication stream is not a storage failure: the
        // breaker still admits journaling requests.
        assert!(chain.is_degraded());
        assert_eq!(chain.admit_journaling(), Ok(()));
        chain.set_degraded(false);
        assert!(!chain.is_degraded());
    }

    #[test]
    fn refusal_reasons_are_distinct_and_stable() {
        // The wire encoding tests (and clients) rely on these exact
        // strings to tell admission refusals apart.
        assert_eq!(Refusal::RateLimited.reason(), "rate limited: retry later");
        assert_eq!(Refusal::QuotaExceeded.reason(), "quota exceeded");
        assert_eq!(Refusal::LoadShed.reason(), "service overloaded: retry later");
    }

    #[test]
    fn hardened_preset_enables_every_layer() {
        let config = MiddlewareConfig::hardened();
        assert!(config.handshake_timeout.is_some());
        assert!(config.idle_timeout.is_some());
        assert!(config.rate_limit.is_some());
        assert!(config.quota.is_some());
        assert!(config.dedup.is_some());
        assert!(config.isolate_panics);
        assert!(config.breaker.is_some());
    }
}
