//! The replicated CAS fleet: sealed-journal streaming, follower
//! replay, and fenced failover.
//!
//! # Fleet topology
//!
//! One **primary** owns all durable writes: it sequences every grant
//! and redemption through its group-commit pipe, appends the sealed
//! batch to its journal, and — via [`serve_replication`] — publishes
//! exactly those on-disk bytes to any number of **followers**. A
//! follower ([`follow`]) bootstraps from a
//! [`ReplicationFrame::Baseline`] (the primary's raw snapshot bytes
//! plus its journal suffix — precisely what the primary's own restart
//! would replay) and then applies live
//! [`ReplicationFrame::Records`] batches through the same idempotent
//! [`apply_record`] path restart recovery uses, journaling each batch
//! locally *before* applying it. Replication is therefore not a
//! second consistency mechanism: it is crash recovery, streamed.
//!
//! Followers serve **read-mostly traffic locally** — ping, challenge,
//! quote verification, policy retrieval, baseline attestation — and
//! linearize the two writes through the primary: grant requests are
//! forwarded whole ([`ReplicationFrame::Forward`] via a
//! [`ForwardLink`]), and a singleton attestation splits — the quote,
//! channel binding and policy checks run on the follower, while the
//! exactly-once token consumption travels as
//! [`ReplicationFrame::Redeem`].
//!
//! # Fencing rules
//!
//! Failover is **fenced by generation**, not by consensus: the
//! deployment (here, the test harness) decides who is primary, and
//! the fence makes a wrong or stale decision safe rather than
//! split-brained.
//!
//! * Every server carries its own fence (the highest it has committed
//!   under) and a persisted *ceiling* (the highest it has ever
//!   observed). `ceiling > own` means deposed: every write — grant,
//!   redemption, checkpoint — is refused at the journal boundary.
//! * [`CasServer::promote`](crate::CasServer::promote) bumps a
//!   replica one past everything it has seen and commits the bump as
//!   a durable [`JournalRecord::Fence`](sinclave::journal_record::JournalRecord)
//!   record, continuing the primary's sequence numbering.
//! * A replication `Hello` carries the sender's observed fence; a
//!   primary that hears a higher one answers
//!   [`ReplicationFrame::Fenced`], persists the observation, and is
//!   deposed from that moment — even if it restarts from its
//!   pre-failover disk image, the persisted ceiling keeps it fenced.
//!
//! An acked redemption therefore cannot replay fleet-wide: the ack
//! implies a durable journal record on the then-primary; a promoted
//! follower either replayed that record (and refuses the token as
//! spent) or the record is above its high sequence — in which case
//! the old primary was partitioned, its ack raced the promotion, and
//! the *fence* guarantees it could not have committed the record
//! after the promotion's fence reached it. The fault harness in
//! `tests/replication.rs` sweeps exactly these windows.
//!
//! # Consistency story (honest version)
//!
//! * **Writes are linearizable through the primary.** Grants and
//!   redemptions either commit on the primary's journal or are
//!   refused; followers never mint durable state of their own while
//!   following.
//! * **Follower reads are stale-bounded, not fresh.** A follower
//!   serves policy retrievals and attestations from its replayed
//!   state, which lags the primary by the in-flight stream window
//!   (one heartbeat interval under no load). A grant acked through
//!   one replica is visible on another only after the covering batch
//!   arrives there.
//! * **A partitioned follower keeps serving, degraded.** Losing the
//!   stream flips the middleware degraded flag and starts a bounded
//!   exponential backoff ([`Backoff`]) of reconnect attempts; reads
//!   continue from the last replayed state the whole time.
//! * **Fleet links are pinned.** The secure channel authenticates *a*
//!   server key, not *the* primary; a routing adversary could
//!   terminate a follower's dial with their own key and forge a
//!   baseline. Every replica holds the shared fleet channel key, so
//!   the pump and every [`ForwardLink`] pin the peer's fingerprint
//!   and hang up on any other before speaking
//!   (`sinclave_attack::hijack` is the attack side of that argument).
//!
//! [`apply_record`]: sinclave::verifier::SingletonIssuer::apply_record

use crate::server::{CasServer, ServeGuard};
use crate::trace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::protocol::{Message, TraceContext};
use sinclave::replication::{ReplicaRole, ReplicationFrame, WireSpan};
use sinclave::snapshot::IssuerSnapshot;
use sinclave::AttestationToken;
use sinclave_crypto::sha256::Digest;
use sinclave_net::{Backoff, Connection, NetError, Network, SecureChannel};
use sinclave_sgx::measurement::Measurement;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a subscriber session waits for a fresh batch before
/// sending a liveness heartbeat instead.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(20);

/// The follower pump's receive poll: bounds how long a stop request
/// waits on an idle stream.
const PUMP_POLL: Duration = Duration::from_millis(20);

/// Per-round-trip deadline on a forward link: a dead primary costs a
/// forwarded write one bounded wait, not a hang.
const FORWARD_TIMEOUT: Duration = Duration::from_millis(500);

/// One registered replication subscriber: a queue of sealed batch
/// payloads in commit order, fed by [`ReplicationHub::publish`].
struct Subscriber {
    queue: std::sync::Mutex<VecDeque<Vec<u8>>>,
    ready: std::sync::Condvar,
    /// Set when the serving session ends; the hub prunes closed
    /// subscribers on the next publish.
    closed: AtomicBool,
    /// Lag gauges for the `trace` status view: the highest journal
    /// sequence the session had streamed past as of its last frame,
    /// and when (trace-clock ns) that frame was written.
    sent_seq: std::sync::atomic::AtomicU64,
    last_frame_ns: std::sync::atomic::AtomicU64,
}

impl Subscriber {
    /// The next queued batch, or `None` after `timeout` with an empty
    /// queue (the session sends a heartbeat and asks again).
    fn next(&self, timeout: Duration) -> Option<Vec<u8>> {
        // A poisoned queue degrades to "nothing queued": the session
        // heartbeats and retries rather than unwinding the follower's
        // stream thread. The queue itself is a VecDeque of complete
        // payloads, so a recovered guard never exposes a torn value.
        let queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let (mut queue, _timed_out) = self
            .ready
            .wait_timeout_while(queue, timeout, |queue| queue.is_empty())
            .unwrap_or_else(PoisonError::into_inner);
        queue.pop_front()
    }
}

/// Ends the subscription when the serving session unwinds, however it
/// exits — the hub stops queueing for it.
struct CloseOnDrop<'a>(&'a Subscriber);

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.closed.store(true, Ordering::Relaxed);
    }
}

/// Fans committed journal batches out to live subscriber sessions.
/// The publish side is called from inside the commit pipe's
/// serialized flush, so every subscriber observes batches in sequence
/// order with no gaps between registration and its bootstrap capture.
pub struct ReplicationHub {
    subscribers: parking_lot::Mutex<Vec<Arc<Subscriber>>>,
}

impl ReplicationHub {
    fn new() -> Arc<Self> {
        Arc::new(ReplicationHub { subscribers: parking_lot::Mutex::new(Vec::new()) })
    }

    fn register(&self) -> Arc<Subscriber> {
        let subscriber = Arc::new(Subscriber {
            queue: std::sync::Mutex::new(VecDeque::new()),
            ready: std::sync::Condvar::new(),
            closed: AtomicBool::new(false),
            sent_seq: std::sync::atomic::AtomicU64::new(0),
            last_frame_ns: std::sync::atomic::AtomicU64::new(0),
        });
        self.subscribers.lock().push(subscriber.clone());
        subscriber
    }

    /// Per-subscriber lag gauges for the `trace` status view:
    /// `(sent_seq, queued_batches, stream_age_ns)` for every live
    /// session, in registration order.
    pub(crate) fn peer_gauges(&self) -> Vec<(u64, u64, u64)> {
        let now = trace::now_ns();
        let subscribers = self.subscribers.lock();
        subscribers
            .iter()
            .filter(|s| !s.closed.load(Ordering::Relaxed))
            .map(|s| {
                let queued = s.queue.lock().unwrap_or_else(PoisonError::into_inner).len() as u64;
                let last = s.last_frame_ns.load(Ordering::Relaxed);
                let age = if last == 0 { 0 } else { now.saturating_sub(last) };
                (s.sent_seq.load(Ordering::Relaxed), queued, age)
            })
            .collect()
    }

    /// Queues one sealed batch payload for every live subscriber.
    pub(crate) fn publish(&self, payload: &[u8]) {
        let mut subscribers = self.subscribers.lock();
        subscribers.retain(|s| !s.closed.load(Ordering::Relaxed));
        for subscriber in subscribers.iter() {
            // Publishing runs inside the commit pipe's serialized
            // flush; a poisoned per-subscriber queue must not take the
            // whole fan-out down, so recover the guard and keep going.
            subscriber
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(payload.to_vec());
            subscriber.ready.notify_one();
        }
    }
}

/// Serves `sessions` replication sessions on `addr` — subscriber
/// streams and forward (write-linearization) sessions, dispatched by
/// the opening `Hello`'s role. Installs the publish hub on the
/// server; live commits stream to subscribers from then on. The
/// returned handle joins once all session slots have been served (or
/// their accepts timed out), and uninstalls the hub.
#[must_use]
pub fn serve_replication(
    server: &Arc<CasServer>,
    network: &Network,
    addr: &str,
    sessions: usize,
    seed: u64,
) -> JoinHandle<()> {
    let hub = ReplicationHub::new();
    server.set_replication_hub(Some(hub.clone()));
    let listener = Arc::new(network.listen(addr));
    let guard = ServeGuard::register(server);
    let server = server.clone();
    std::thread::spawn(move || {
        let _serving = guard;
        std::thread::scope(|scope| {
            for slot in 0..sessions {
                let Some(conn) = server.accept_drainable(&listener) else { break };
                let server = &server;
                let hub = &hub;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(slot as u64));
                    let _ = serve_session(server, hub, conn, &mut rng);
                });
            }
        });
        server.set_replication_hub(None);
    })
}

/// One replication session: handshake, hello, then role dispatch.
fn serve_session(
    server: &CasServer,
    hub: &ReplicationHub,
    conn: Connection,
    rng: &mut StdRng,
) -> Result<(), NetError> {
    let mut chan = SecureChannel::server_accept(conn, &server.channel_key, rng)?;
    let raw = chan.recv()?;
    let Ok(ReplicationFrame::Hello { role, last_seq: _, fence }) =
        ReplicationFrame::from_bytes(&raw)
    else {
        server.stats.replication_frames_rejected.fetch_add(1, Ordering::Relaxed);
        let reason = "replication session must open with hello".to_owned();
        let _ = chan.send(&ReplicationFrame::Denied { reason }.to_bytes());
        return Ok(());
    };
    // The hello's fence is an observation either way: a peer that has
    // seen a fence above ours deposes us on the spot — before any
    // baseline capture or forwarded write could happen under stale
    // authority.
    if server.observe_fence(fence) {
        let fenced = ReplicationFrame::Fenced { fence: server.fence_ceiling() };
        let _ = chan.send(&fenced.to_bytes());
        return Ok(());
    }
    match role {
        ReplicaRole::Subscribe => serve_subscriber(server, hub, &mut chan),
        ReplicaRole::Forward => serve_forwarder(server, &mut chan, rng),
    }
}

/// Streams the baseline and then live batches to one subscriber.
fn serve_subscriber(
    server: &CasServer,
    hub: &ReplicationHub,
    chan: &mut SecureChannel,
) -> Result<(), NetError> {
    // Register FIRST, then capture: a commit landing between the two
    // shows up in both the baseline and the queue, and the follower's
    // idempotent sequence filter drops the duplicate. The other order
    // could lose the batch entirely.
    let subscriber = hub.register();
    let _closing = CloseOnDrop(&subscriber);
    let snapshot = server.store().restore_state().ok().flatten().unwrap_or_default();
    let baseline_seq =
        IssuerSnapshot::from_bytes(&snapshot).map_or(0, |parsed| parsed.journal_sequence);
    let chunks: Vec<Vec<u8>> = server
        .store()
        .export_journal_chunks()
        .map(|recovery| recovery.chunks.into_iter().map(|chunk| chunk.payload).collect())
        .unwrap_or_default();
    let baseline = ReplicationFrame::Baseline {
        fence: server.fence(),
        high_seq: server.journal_sequence(),
        baseline_seq,
        snapshot,
        chunks,
    };
    chan.send(&baseline.to_bytes())?;
    loop {
        // Shutdown drains subscriber streams cleanly: the ≤20ms
        // heartbeat cadence bounds how long a drain waits on this
        // session.
        if server.is_draining() {
            return Ok(());
        }
        // A primary deposed mid-stream tells its subscribers before
        // going quiet, so they reconnect (and find the new primary)
        // instead of trusting a stale stream.
        if server.is_fenced() {
            let fenced = ReplicationFrame::Fenced { fence: server.fence_ceiling() };
            let _ = chan.send(&fenced.to_bytes());
            return Ok(());
        }
        let frame = match subscriber.next(HEARTBEAT_INTERVAL) {
            Some(batch) => ReplicationFrame::Records { fence: server.fence(), batch },
            None => ReplicationFrame::Heartbeat {
                fence: server.fence(),
                high_seq: server.journal_sequence(),
            },
        };
        chan.send(&frame.to_bytes())?;
        subscriber.sent_seq.store(server.journal_sequence(), Ordering::Relaxed);
        subscriber.last_frame_ns.store(trace::now_ns(), Ordering::Relaxed);
    }
}

/// Answers forwarded writes from one follower, request–response.
fn serve_forwarder(
    server: &CasServer,
    chan: &mut SecureChannel,
    rng: &mut StdRng,
) -> Result<(), NetError> {
    // Ack the hello so the link knows the session is live.
    let ack =
        ReplicationFrame::Heartbeat { fence: server.fence(), high_seq: server.journal_sequence() };
    chan.send(&ack.to_bytes())?;
    let transcript = chan.transcript();
    // Poll the receive in short slices so a shutdown drains this
    // session within one slice; the transport's default budget still
    // bounds how long an idle forwarder stays parked.
    chan.set_recv_timeout(Some(PUMP_POLL));
    let mut last_frame = std::time::Instant::now();
    loop {
        let raw = match chan.recv() {
            Ok(raw) => raw,
            Err(NetError::Timeout) => {
                let idle = last_frame.elapsed() >= sinclave_net::bus::RECV_TIMEOUT;
                if server.is_draining() || idle {
                    return Ok(());
                }
                continue;
            }
            Err(NetError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        };
        last_frame = std::time::Instant::now();
        let reply = match ReplicationFrame::from_bytes(&raw) {
            Ok(frame) => forward_reply(server, frame, &transcript, rng),
            Err(_) => {
                server.stats.replication_frames_rejected.fetch_add(1, Ordering::Relaxed);
                ReplicationFrame::Denied { reason: "malformed replication frame".into() }
            }
        };
        chan.send(&reply.to_bytes())?;
    }
}

/// Dispatches one forwarded write on the primary. Forwarded grants go
/// through the full admission + dedup + dispatch path (so rate
/// limits, quotas, the breaker and idempotent retry all hold at the
/// primary no matter which replica a client talked to); redemptions
/// go straight to the durable exactly-once path.
fn forward_reply(
    server: &CasServer,
    frame: ReplicationFrame,
    transcript: &Digest,
    rng: &mut StdRng,
) -> ReplicationFrame {
    if server.is_fenced() {
        return ReplicationFrame::Fenced { fence: server.fence_ceiling() };
    }
    match frame {
        ReplicationFrame::Forward { request, ctx } => {
            let Ok(message) = Message::from_bytes(&request) else {
                return ReplicationFrame::Denied { reason: "malformed forwarded request".into() };
            };
            if !matches!(message, Message::GrantRequest { .. }) {
                return ReplicationFrame::Denied { reason: "only grants forward".into() };
            }
            // Continue the follower's trace at its propagated hop (a
            // no-op when this primary's tracer is dark — the context
            // is still echoed so the follower's tree stays causal).
            if let Some(started) = ctx.and_then(|c| server.tracer().begin(Some(c))) {
                trace::install(started);
            }
            let chain = server.middleware();
            let response = match server.admission_refusal(&chain, &message) {
                Some(refused) => Some(refused.to_bytes()),
                None => server
                    .dispatch_deduped(&chain, message, &mut None, transcript, rng)
                    .map(|reply| reply.to_bytes()),
            };
            let spans = trace::take()
                .map(|finished| server.tracer().finish(finished).export_wire_spans())
                .unwrap_or_default();
            match response {
                Some(response) => ReplicationFrame::Reply { response, ctx, spans },
                None => ReplicationFrame::Denied { reason: "dispatch panicked".into() },
            }
        }
        ReplicationFrame::Redeem { token, mrenclave } => {
            let token = AttestationToken(token);
            let mrenclave = Measurement(Digest(mrenclave));
            match server.redeem_token(&token, &mrenclave) {
                Ok(common) => ReplicationFrame::RedeemOk { common: *common.as_bytes() },
                Err(e) => ReplicationFrame::Denied { reason: e.to_string() },
            }
        }
        _ => ReplicationFrame::Denied { reason: "unexpected replication frame".into() },
    }
}

/// How one connect-subscribe-replay attempt of the follower pump
/// ended.
enum PumpExit {
    /// The stop flag was raised; the pump shuts down.
    Stopped,
    /// The stream was lost (connect refused, partition, damaged
    /// frame, fence); the pump backs off and reconnects.
    Lost,
}

/// A running follower pump. Dropping the handle leaks the thread;
/// call [`FollowerHandle::stop`] to end it (the deployment does this
/// before promoting the replica).
pub struct FollowerHandle {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl FollowerHandle {
    /// Signals the pump to stop and joins it. After this returns the
    /// replica applies nothing further from the old stream — the
    /// precondition for [`CasServer::promote`](crate::CasServer::promote).
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// Starts the follower pump: connect to the primary at `addr`,
/// subscribe, adopt the baseline, and replay live batches — forever,
/// across stream losses, with `backoff` bounding the reconnect rate.
/// While the stream is down the replica keeps serving reads from its
/// last replayed state with the middleware degraded flag raised
/// (degraded-but-serving, not down).
#[must_use]
pub fn follow(
    server: Arc<CasServer>,
    network: Network,
    addr: String,
    seed: u64,
    backoff: Backoff,
) -> FollowerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    // Shutdown on the follower raises this flag too, so the pump
    // unsubscribes cleanly instead of racing the drained server.
    server.register_drain_stop(&stop);
    let pump_stop = stop.clone();
    let handle = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut backoff = backoff;
        server.set_following(true);
        while !pump_stop.load(Ordering::Relaxed) {
            match pump_once(&server, &network, &addr, &mut rng, &pump_stop, &mut backoff) {
                PumpExit::Stopped => break,
                PumpExit::Lost => {
                    server.middleware().set_degraded(true);
                    server.stats.replication_reconnects.fetch_add(1, Ordering::Relaxed);
                    sleep_interruptible(&pump_stop, backoff.next_delay());
                }
            }
        }
        server.set_following(false);
    });
    FollowerHandle { stop, handle }
}

/// One connect-subscribe-replay attempt.
fn pump_once(
    server: &Arc<CasServer>,
    network: &Network,
    addr: &str,
    rng: &mut StdRng,
    stop: &AtomicBool,
    backoff: &mut Backoff,
) -> PumpExit {
    let Ok(conn) = network.connect(addr) else { return PumpExit::Lost };
    let Ok(mut chan) = SecureChannel::client_connect(conn, rng) else { return PumpExit::Lost };
    // Fleet binding: the whole fleet shares one channel key, so the
    // primary's fingerprint is our own. A peer presenting any other
    // key is a hijacker terminating the channel with their own key —
    // drop before sending the hello, let alone adopting a baseline.
    if chan.server_key_fingerprint() != server.channel_key.public_key().fingerprint() {
        server.stats.replication_frames_rejected.fetch_add(1, Ordering::Relaxed);
        return PumpExit::Lost;
    }
    chan.set_recv_timeout(Some(PUMP_POLL));
    let hello = ReplicationFrame::Hello {
        role: ReplicaRole::Subscribe,
        last_seq: server.journal_sequence(),
        fence: server.fence_ceiling(),
    };
    if chan.send(&hello.to_bytes()).is_err() {
        return PumpExit::Lost;
    }
    let raw = loop {
        if stop.load(Ordering::Relaxed) {
            return PumpExit::Stopped;
        }
        match chan.recv() {
            Ok(raw) => break raw,
            Err(NetError::Timeout) => {}
            Err(_) => return PumpExit::Lost,
        }
    };
    match ReplicationFrame::from_bytes(&raw) {
        Ok(ReplicationFrame::Baseline { fence, high_seq: _, baseline_seq, snapshot, chunks }) => {
            if server.adopt_baseline(fence, baseline_seq, &snapshot, &chunks).is_err() {
                return PumpExit::Lost;
            }
        }
        Ok(ReplicationFrame::Fenced { fence }) => {
            server.observe_fence(fence);
            return PumpExit::Lost;
        }
        Ok(_) => return PumpExit::Lost,
        Err(_) => {
            server.stats.replication_frames_rejected.fetch_add(1, Ordering::Relaxed);
            return PumpExit::Lost;
        }
    }
    // Caught up: the stream is healthy again.
    server.middleware().set_degraded(false);
    backoff.reset();
    loop {
        if stop.load(Ordering::Relaxed) {
            return PumpExit::Stopped;
        }
        let raw = match chan.recv() {
            Ok(raw) => raw,
            Err(NetError::Timeout) => continue, // idle poll tick
            Err(_) => return PumpExit::Lost,
        };
        match ReplicationFrame::from_bytes(&raw) {
            Ok(ReplicationFrame::Records { fence, batch }) => {
                // A batch stamped below our fence comes from a stream
                // that outlived its authority; drop the session.
                if fence < server.fence() {
                    return PumpExit::Lost;
                }
                if server.apply_replicated_batch(&batch).is_err() {
                    return PumpExit::Lost;
                }
                server.note_stream_progress(None);
            }
            Ok(ReplicationFrame::Heartbeat { fence: _, high_seq }) => {
                server.note_stream_progress(Some(high_seq));
            }
            Ok(ReplicationFrame::Fenced { fence }) => {
                server.observe_fence(fence);
                return PumpExit::Lost;
            }
            Ok(_) => return PumpExit::Lost,
            Err(_) => {
                server.stats.replication_frames_rejected.fetch_add(1, Ordering::Relaxed);
                return PumpExit::Lost;
            }
        }
    }
}

/// Sleeps up to `total`, waking early if `stop` is raised.
fn sleep_interruptible(stop: &AtomicBool, total: Duration) {
    let mut remaining = total;
    while !stop.load(Ordering::Relaxed) && remaining > Duration::ZERO {
        let step = remaining.min(Duration::from_millis(5));
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// A follower's write-forwarding session to the primary: one secure
/// channel, one request–response round-trip at a time, lazily
/// (re)connected. A send that never reached the primary is retried on
/// a fresh session; a round-trip that died *after* the send is
/// reported as an error instead — blindly retrying a redemption whose
/// first attempt may have committed would turn a lost ack into a
/// spurious "token spent" refusal for the real reply.
pub struct ForwardLink {
    network: Network,
    addr: String,
    /// The primary's channel-key fingerprint: every session is pinned
    /// to it, so a hijacker on the path cannot terminate the link with
    /// their own key and answer forwarded writes.
    pin: Digest,
    session: parking_lot::Mutex<(Option<SecureChannel>, StdRng)>,
}

impl ForwardLink {
    /// A link to the primary's replication address, pinned to the
    /// fleet channel key's fingerprint `pin`. No connection is made
    /// until the first forwarded write.
    #[must_use]
    pub fn new(network: Network, addr: &str, pin: Digest, seed: u64) -> Arc<Self> {
        Arc::new(ForwardLink {
            network,
            addr: addr.to_owned(),
            pin,
            session: parking_lot::Mutex::new((None, StdRng::seed_from_u64(seed))),
        })
    }

    /// Forwards a whole client request (a grant) and returns the
    /// primary's reply to relay verbatim, plus any spans the primary
    /// exported for `ctx` (empty when untraced or the primary's
    /// tracer is dark) so the caller can merge them into its trace.
    ///
    /// # Errors
    ///
    /// Returns the refusal reason — primary unreachable, fenced, or a
    /// protocol-level denial.
    pub fn forward(
        &self,
        request: &Message,
        ctx: Option<TraceContext>,
    ) -> Result<(Message, Vec<WireSpan>), String> {
        let frame = ReplicationFrame::Forward { request: request.to_bytes(), ctx };
        match self.roundtrip(&frame)? {
            ReplicationFrame::Reply { response, ctx: _, spans } => Message::from_bytes(&response)
                .map(|reply| (reply, spans))
                .map_err(|_| "malformed primary reply".to_owned()),
            ReplicationFrame::Fenced { .. } => Err("primary fenced".into()),
            ReplicationFrame::Denied { reason } => Err(reason),
            _ => Err("unexpected primary reply".into()),
        }
    }

    /// Linearizes one exactly-once token redemption through the
    /// primary, returning the common measurement bound at grant time.
    ///
    /// # Errors
    ///
    /// Returns the refusal reason (unknown/spent token, fenced or
    /// unreachable primary, journal failure).
    pub fn redeem(
        &self,
        token: &AttestationToken,
        mrenclave: &Measurement,
    ) -> Result<Measurement, String> {
        let frame =
            ReplicationFrame::Redeem { token: *token.as_bytes(), mrenclave: *mrenclave.as_bytes() };
        match self.roundtrip(&frame)? {
            ReplicationFrame::RedeemOk { common } => Ok(Measurement(Digest(common))),
            ReplicationFrame::Fenced { .. } => Err("primary fenced".into()),
            ReplicationFrame::Denied { reason } => Err(reason),
            _ => Err("unexpected primary reply".into()),
        }
    }

    fn roundtrip(&self, frame: &ReplicationFrame) -> Result<ReplicationFrame, String> {
        let mut slot = self.session.lock();
        for _attempt in 0..2 {
            if slot.0.is_none() {
                let (session, rng) = &mut *slot;
                *session = Self::connect(&self.network, &self.addr, &self.pin, rng);
            }
            let Some(chan) = slot.0.as_mut() else { continue };
            if chan.send(&frame.to_bytes()).is_err() {
                // Never reached the primary: safe to retry fresh.
                slot.0 = None;
                continue;
            }
            match chan.recv().ok().and_then(|raw| ReplicationFrame::from_bytes(&raw).ok()) {
                Some(reply) => return Ok(reply),
                None => {
                    // The request may have reached the primary; do
                    // not blindly retry a write that may have
                    // committed.
                    slot.0 = None;
                    return Err("primary connection lost mid-request".into());
                }
            }
        }
        Err("primary unreachable".into())
    }

    fn connect(
        network: &Network,
        addr: &str,
        pin: &Digest,
        rng: &mut StdRng,
    ) -> Option<SecureChannel> {
        let conn = network.connect(addr).ok()?;
        let mut chan = SecureChannel::client_connect(conn, rng).ok()?;
        if chan.server_key_fingerprint() != *pin {
            return None; // hijacker terminating the link with their own key
        }
        chan.set_recv_timeout(Some(FORWARD_TIMEOUT));
        let hello = ReplicationFrame::Hello { role: ReplicaRole::Forward, last_seq: 0, fence: 0 };
        chan.send(&hello.to_bytes()).ok()?;
        let ack = chan.recv().ok()?;
        match ReplicationFrame::from_bytes(&ack).ok()? {
            // The hello ack; anything else (fenced, denied) means
            // this peer cannot linearize writes for us.
            ReplicationFrame::Heartbeat { .. } => Some(chan),
            _ => None,
        }
    }
}
