//! Fixed-bucket atomic latency histograms for the operability plane.
//!
//! The status wire (see [`crate::status`]) reports per-stage latency
//! for the CAS serving paths. The recorder must sit on the hot path —
//! inside `handle_connection`'s writer thread and the reactor's
//! compute workers — so it is built from plain atomics: recording a
//! sample is three relaxed read-modify-writes and never takes a lock,
//! allocates, or syscalls. Quantiles are computed on the (cold) read
//! side from the bucket counts.
//!
//! Buckets are log₂-spaced over nanoseconds: bucket *i* covers
//! samples whose duration in nanoseconds has `ilog2() == i`, i.e.
//! `[2^i, 2^(i+1))` ns, with bucket 0 also absorbing sub-2ns samples.
//! 64 buckets cover every representable `u64` nanosecond count, so no
//! sample is ever clamped or dropped. Reported quantiles are the
//! *upper bound* of the bucket holding the requested rank —
//! conservative (never under-reports) and within 2× of the true
//! value, which is plenty for "how slow is the sign path right now".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets — one per possible `u64::ilog2` result.
const BUCKETS: usize = 64;

/// A lock-free fixed-bucket latency histogram.
///
/// Writers call [`Histogram::record`]; readers take a [`HistogramView`]
/// snapshot via [`Histogram::view`]. Counters are updated with relaxed
/// ordering: a view is not an atomic cut across buckets, which is fine
/// for monitoring (each bucket is individually monotone).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; safe from any thread.
    pub fn record(&self, sample: Duration) {
        let nanos = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        let bucket = nanos.max(1).ilog2() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Takes a read-side snapshot for rendering and assertions.
    #[must_use]
    pub fn view(&self) -> HistogramView {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramView {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s counters.
#[derive(Clone, Copy, Debug)]
pub struct HistogramView {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_nanos: u64,
    max_nanos: u64,
}

impl HistogramView {
    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (for mean computation by the reader).
    #[must_use]
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos)
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The quantile `q` (in `[0, 1]`), reported as the upper bound of
    /// the log₂ bucket holding that rank. Returns zero on an empty
    /// histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        // Rank of the requested quantile, 1-based, clamped into range.
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1 ns (saturated
                // at the top bucket), tightened by the observed max —
                // both are valid upper bounds for the true quantile.
                let bound =
                    if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)).saturating_sub(1) };
                return Duration::from_nanos(bound.min(self.max_nanos));
            }
        }
        self.max()
    }

    /// Median (upper-bound of the bucket holding the 50th percentile).
    #[must_use]
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    #[must_use]
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    #[must_use]
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(lower_bound_nanos, upper_bound_nanos,
    /// count)` rows, for the status wire's histogram view.
    #[must_use]
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower = if i == 0 { 0 } else { 1u64 << i };
                let upper = if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                (lower, upper, n)
            })
            .collect()
    }
}

/// One histogram per instrumented serving stage, shared by the worker
/// pool and the reactor so both paths report through the same place.
#[derive(Debug, Default)]
pub struct StageHistograms {
    /// Quote/SigStruct verification inside the issuer (cache-aware:
    /// warm hits record here too, which is the point — the operator
    /// sees the *served* latency, not the cold-path latency).
    pub verify: Histogram,
    /// RSA signing of the on-demand SigStruct.
    pub sign: Histogram,
    /// Sealing and writing a reply frame onto the channel.
    pub seal: Histogram,
    /// The journal group-commit flush (leader batches only).
    pub journal_flush: Histogram,
    /// End-to-end request latency: raw frame received → reply written.
    pub request: Histogram,
    /// Dedup-cache replays: time to look up and decode a cached reply.
    /// Kept as its own stage so retry storms served from the cache
    /// don't silently skew the end-to-end p50 low without attribution.
    pub dedup_replay: Histogram,
}

impl StageHistograms {
    /// The stages as `(name, histogram)` pairs, in reporting order.
    #[must_use]
    pub fn named(&self) -> [(&'static str, &Histogram); 6] {
        [
            ("verify", &self.verify),
            ("sign", &self.sign),
            ("seal", &self.seal),
            ("journal_flush", &self.journal_flush),
            ("request", &self.request),
            ("dedup_replay", &self.dedup_replay),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        let v = h.view();
        assert_eq!(v.count(), 0);
        assert_eq!(v.p50(), Duration::ZERO);
        assert_eq!(v.p99(), Duration::ZERO);
        assert_eq!(v.max(), Duration::ZERO);
        assert!(v.rows().is_empty());
    }

    #[test]
    fn quantiles_are_ordered_and_bound_the_samples() {
        let h = Histogram::new();
        for micros in [1u64, 5, 10, 50, 100, 500, 1000, 5000, 10000] {
            h.record(Duration::from_micros(micros));
        }
        let v = h.view();
        assert_eq!(v.count(), 9);
        assert!(v.p50() <= v.p95());
        assert!(v.p95() <= v.p99());
        assert!(v.p99() <= v.max().max(v.p99()));
        // Upper-bound semantics: p50 covers the median sample.
        assert!(v.p50() >= Duration::from_micros(100));
        assert_eq!(v.max(), Duration::from_millis(10));
    }

    #[test]
    fn extreme_samples_do_not_panic() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(u64::MAX / 1_000_000_000));
        let v = h.view();
        assert_eq!(v.count(), 3);
        assert!(v.p99() >= v.p50());
    }

    #[test]
    fn buckets_are_log2_spaced() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(7)); // bucket 2: [4, 8)
        h.record(Duration::from_nanos(1024)); // bucket 10: [1024, 2048)
        let rows = h.view().rows();
        assert_eq!(rows, vec![(4, 7, 1), (1024, 2047, 1)]);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(i + 1));
                    }
                });
            }
        });
        assert_eq!(h.view().count(), 4000);
    }
}
