//! Group commit for the sealed redemption journal.
//!
//! Every acked redemption (and grant) must be durable in the journal
//! *before* its reply leaves the server. Paying one sealed volume
//! append per event would serialize the sharded worker pool behind
//! the volume lock; the classic fix — QASM-style batched state-delta
//! commits, as in group-committing databases — is to let one thread
//! flush while everyone else queues:
//!
//! 1. a committer takes the pipe lock, claims the next sequence
//!    number, and queues its record;
//! 2. if no flush is in flight it becomes the **leader**: it takes
//!    the whole pending queue (its own record plus everything that
//!    accumulated while the previous leader was writing), seals the
//!    batch as *one* journal append, and wakes the waiters;
//! 3. otherwise it waits — by the time the current leader finishes,
//!    this record is either already durable (it rode along) or the
//!    committer becomes the next leader for the accumulated batch.
//!
//! Under concurrency, N redemptions cost ~1 sealed append instead of
//! N; with one client the batch degenerates to a single record and
//! the cost is exactly the honest fsync-per-redemption lower bound
//! ([`crate::server::JournalMode::PerRecord`] pins that ablation by
//! never coalescing). Replies are held until the covering batch is
//! sealed — that ack-latency-for-throughput trade is the documented
//! batching window.
//!
//! Failure is fail-closed: if the leader's append errors, every
//! record in that batch reports failure to its committer and the
//! reply is denied — the in-memory state may be ahead of the journal
//! (a consumed token stays consumed; nothing is ever *un*-redeemed),
//! which can refuse service but can never widen trust.

use crate::server::CasStats;
use sinclave::journal_record::{encode_batch, JournalRecord, SequencedRecord};
use sinclave::SinclaveError;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex, PoisonError};

/// A flushed batch whose append failed, kept until every committer
/// waiting on it has read the verdict. Needed because a *later* batch
/// can succeed after an earlier one failed: "my ticket is below the
/// completed watermark" alone would then misreport the failed records
/// as durable — exactly the ack-without-record outcome the pipe
/// exists to prevent.
struct FailedBatch {
    /// First ticket the failed append covered.
    first: u64,
    /// Last ticket the failed append covered.
    last: u64,
    /// Committers that still have to observe the failure (every
    /// record has exactly one synchronous committer). The entry is
    /// dropped when this reaches zero, so the list stays bounded by
    /// the number of concurrently waiting threads.
    waiters: usize,
}

/// The committers' shared state.
///
/// Enqueued records are tracked by *ticket* (admission order); the
/// on-disk *sequence numbers* are assigned by the leader at flush
/// time, continuing from the last **successful** append. A failed
/// append therefore consumes no sequence numbers: the journal's
/// sequence stays dense on disk through transient write failures, so
/// the replayer's gap check remains what it claims to be — proof of a
/// deleted committed record, never a false tamper alarm. (This relies
/// on the volume's append contract: an errored append wrote nothing.
/// A device that may land uncertain writes would need write fencing
/// before sequence reuse.)
struct PipeState {
    /// Next admission ticket to hand out.
    next_ticket: u64,
    /// Records queued for the next flush, in ticket order.
    pending: Vec<(u64, JournalRecord)>,
    /// Whether a leader is currently writing a batch.
    flushing: bool,
    /// Highest ticket covered by a finished flush. Batches flush in
    /// ticket order, so `completed >= ticket` means that ticket's
    /// batch is done — successfully unless it is recorded in `failed`.
    completed: u64,
    /// Last sequence number durably on disk (successful appends only).
    durable_seq: u64,
    /// Batches whose append failed, pending verdict pickup.
    failed: Vec<FailedBatch>,
}

/// The group-commit pipe: sequences records and batches concurrent
/// commits into shared sealed appends.
pub(crate) struct CommitPipe {
    state: Mutex<PipeState>,
    flushed: Condvar,
}

impl CommitPipe {
    /// A pipe whose first durable record gets sequence number 1.
    pub fn new() -> Self {
        CommitPipe {
            state: Mutex::new(PipeState {
                next_ticket: 1,
                pending: Vec::new(),
                flushing: false,
                completed: 0,
                durable_seq: 0,
                failed: Vec::new(),
            }),
            flushed: Condvar::new(),
        }
    }

    /// Continues the sequence after a journal replay: the next durable
    /// record gets `last_replayed + 1`. Call before any commit.
    pub fn resume_after(&self, last_replayed: u64) {
        // Recovering a poisoned guard is sound here: the sequence
        // cursor is overwritten wholesale, not read-modify-written.
        self.state.lock().unwrap_or_else(PoisonError::into_inner).durable_seq = last_replayed;
    }

    /// The last sequence number durably on disk. Deployments witness
    /// this alongside the restore generation so
    /// [`crate::server::CasServer::check_rollback`] can detect a host
    /// deleting the journal's committed tail — which would otherwise
    /// be indistinguishable from a clean journal end.
    pub fn sequence(&self) -> u64 {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).durable_seq
    }

    /// The verdict for `ticket` once its batch has completed:
    /// `Some(Ok)` if the covering append succeeded, `Some(Err)`
    /// (consuming one failure-waiter slot) if it failed, `None` while
    /// still pending.
    fn verdict(state: &mut PipeState, ticket: u64) -> Option<Result<(), SinclaveError>> {
        if let Some(pos) =
            state.failed.iter().position(|batch| batch.first <= ticket && ticket <= batch.last)
        {
            state.failed[pos].waiters -= 1;
            if state.failed[pos].waiters == 0 {
                state.failed.swap_remove(pos);
            }
            return Some(Err(SinclaveError::JournalInvalid { context: "journal append failed" }));
        }
        (state.completed >= ticket).then_some(Ok(()))
    }

    /// Commits one record: returns once the batch containing it has
    /// been appended durably (`append` is the sealed-volume write).
    /// With `coalesce`, the leader flushes everything pending as one
    /// batch; without it, strictly one record per append (the
    /// fsync-per-redemption ablation).
    ///
    /// Successful and failed appends are counted into
    /// `stats.journal_appended` / `stats.journal_append_failed` by
    /// whichever committer led the flush.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::JournalInvalid`] if the append
    /// covering this record failed — the caller must not ack.
    pub fn commit(
        &self,
        coalesce: bool,
        record: JournalRecord,
        stats: &CasStats,
        append: impl Fn(&[u8]) -> Result<(), SinclaveError>,
    ) -> Result<(), SinclaveError> {
        // A poisoned pipe degrades to a refused commit: the caller
        // reports it to the middleware chain, the circuit breaker
        // opens, and the server sheds load instead of aborting.
        let mut state = self
            .state
            .lock()
            .map_err(|_| SinclaveError::JournalInvalid { context: "commit pipe poisoned" })?;
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.pending.push((ticket, record));
        loop {
            if let Some(verdict) = Self::verdict(&mut state, ticket) {
                return verdict;
            }
            if state.flushing {
                state = self.flushed.wait(state).map_err(|_| SinclaveError::JournalInvalid {
                    context: "commit pipe poisoned",
                })?;
                continue;
            }
            // Become the leader for whatever has accumulated. In
            // per-record mode the front record may not be our own; we
            // keep leading until our own verdict is in.
            state.flushing = true;
            let batch: Vec<(u64, JournalRecord)> = if coalesce {
                std::mem::take(&mut state.pending)
            } else {
                state.pending.drain(..1).collect()
            };
            // Sequence numbers are assigned now, continuing from the
            // last *successful* append — see the PipeState docs.
            let first_seq = state.durable_seq + 1;
            let records: Vec<SequencedRecord> = batch
                .iter()
                .enumerate()
                .map(|(i, &(_, record))| SequencedRecord { seq: first_seq + i as u64, record })
                .collect();
            drop(state);
            let result = append(&encode_batch(&records));
            // lint: allow(panic) — batch holds at least the leader's own record
            let (first, last) = (batch[0].0, batch.last().expect("non-empty batch").0);
            // Re-locking must not bail out early: `flushing` is ours to
            // clear and the waiters are ours to wake, so recover the
            // guard even if another thread poisoned the mutex.
            state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.flushing = false;
            state.completed = last;
            if result.is_ok() {
                state.durable_seq = first_seq + batch.len() as u64 - 1;
                stats.journal_appended.fetch_add(batch.len() as u64, Ordering::Relaxed);
            } else {
                stats.journal_append_failed.fetch_add(batch.len() as u64, Ordering::Relaxed);
                // Everyone in the batch except (possibly) ourselves
                // still has to pick up the failure.
                let own = usize::from(first <= ticket && ticket <= last);
                if batch.len() > own {
                    state.failed.push(FailedBatch { first, last, waiters: batch.len() - own });
                }
                if own == 1 {
                    self.flushed.notify_all();
                    return Err(SinclaveError::JournalInvalid { context: "journal append failed" });
                }
            }
            self.flushed.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64};
    use std::sync::Barrier;

    fn record(fill: u8) -> JournalRecord {
        JournalRecord::TokenRedeemed { token: [fill; 32] }
    }

    #[test]
    fn failed_batch_is_not_acked_by_a_later_success() {
        // The regression this structure exists for: batch 1 fails,
        // batch 2 succeeds. The committer of batch 1's record must see
        // the failure even though the pipe has since moved past its
        // sequence number.
        let pipe = CommitPipe::new();
        let stats = CasStats::default();
        let fail = AtomicBool::new(true);
        let durable = Mutex::new(Vec::new());
        let append = |payload: &[u8]| {
            if fail.load(Ordering::Relaxed) {
                Err(SinclaveError::JournalInvalid { context: "injected" })
            } else {
                durable.lock().unwrap().extend_from_slice(payload);
                Ok(())
            }
        };
        assert!(pipe.commit(true, record(1), &stats, append).is_err());
        fail.store(false, Ordering::Relaxed);
        assert!(pipe.commit(true, record(2), &stats, append).is_ok());
        assert_eq!(stats.journal_appended.load(Ordering::Relaxed), 1);
        assert_eq!(stats.journal_append_failed.load(Ordering::Relaxed), 1);
        assert!(pipe.state.lock().unwrap().failed.is_empty(), "verdicts all consumed");
        // A failed append consumes no sequence numbers: what is on
        // disk is dense, so a transient write failure can never read
        // as a tamper-gap to the replayer.
        let on_disk = sinclave::journal_record::decode_batch(&durable.lock().unwrap());
        assert_eq!(on_disk.damaged, None);
        assert_eq!(on_disk.records.len(), 1);
        assert_eq!(on_disk.records[0].seq, 1, "failed append left a sequence hole");
        assert_eq!(pipe.sequence(), 1);
    }

    #[test]
    fn concurrent_commits_share_appends_and_all_ack() {
        let pipe = CommitPipe::new();
        let stats = CasStats::default();
        let appends = AtomicU64::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for i in 0..8u8 {
                let (pipe, stats, appends, barrier) = (&pipe, &stats, &appends, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    pipe.commit(true, record(i), stats, |payload| {
                        appends.fetch_add(1, Ordering::Relaxed);
                        // A tiny stall lets arrivals coalesce.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        assert!(!payload.is_empty());
                        Ok(())
                    })
                    .expect("commit");
                });
            }
        });
        assert_eq!(stats.journal_appended.load(Ordering::Relaxed), 8, "every record durable");
        assert!(appends.load(Ordering::Relaxed) <= 8, "never more appends than records");
        assert_eq!(pipe.sequence(), 8);
    }

    #[test]
    fn concurrent_commits_with_failures_each_get_their_own_verdict() {
        // Mixed outcomes under concurrency: every committer must get
        // the verdict of *its own* batch, and the failure list must
        // drain completely.
        let pipe = CommitPipe::new();
        let stats = CasStats::default();
        let calls = AtomicU64::new(0);
        let barrier = Barrier::new(8);
        let (ok, failed): (Vec<_>, Vec<_>) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u8)
                .map(|i| {
                    let (pipe, stats, calls, barrier) = (&pipe, &stats, &calls, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        pipe.commit(true, record(i), stats, |_| {
                            // Every other append fails.
                            if calls.fetch_add(1, Ordering::Relaxed) % 2 == 0 {
                                std::thread::sleep(std::time::Duration::from_micros(100));
                                Err(SinclaveError::JournalInvalid { context: "injected" })
                            } else {
                                std::thread::sleep(std::time::Duration::from_micros(100));
                                Ok(())
                            }
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("thread")).partition(Result::is_ok)
        });
        assert_eq!(ok.len() + failed.len(), 8);
        assert_eq!(
            stats.journal_appended.load(Ordering::Relaxed),
            ok.len() as u64,
            "acked exactly the records whose batch succeeded"
        );
        assert_eq!(stats.journal_append_failed.load(Ordering::Relaxed), failed.len() as u64);
        assert!(pipe.state.lock().unwrap().failed.is_empty(), "failure verdicts all consumed");
    }
}
