//! A sealed monotonic rollback witness.
//!
//! PR 5's `check_rollback` compares the restored snapshot's
//! `(generation, sequence)` against a witness counter — but until now
//! the witness lived in the test harness's memory, standing in for
//! "a counter the host cannot roll back with the disk". This module
//! makes it a real artifact: a tiny counter sealed into its **own**
//! encrypted [`Volume`], separate from the CAS database. Separation is
//! the point — a host that rolls back the CAS volume image must also
//! roll back the witness volume to fool the check, and the deployment
//! story (paper §2.3: SGX monotonic counters, a TPM NV index, or a
//! quorum of peers) is exactly that the witness medium is *different*
//! from the database disk. Here both are in-process `Volume`s, but the
//! harness can now roll back one without the other and watch the alarm
//! fire — which the test-held integer could never exercise through the
//! real persistence path.
//!
//! The counter only moves forward ([`SealedWitness::advance`] takes a
//! max), and reads come from the sealed file, so a stale witness image
//! is itself detectable by comparing against live state.

use sinclave::SinclaveError;
use sinclave_crypto::aead::AeadKey;
use sinclave_fs::Volume;

/// Path of the witness counter inside its volume: generation then
/// sequence, 16 big-endian bytes.
const WITNESS_PATH: &str = "witness/counter";

/// A `(generation, journal sequence)` pair the witness has attested.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WitnessMark {
    /// Highest snapshot restore generation witnessed.
    pub generation: u64,
    /// Highest journal sequence witnessed.
    pub sequence: u64,
}

/// A monotonic `(generation, sequence)` counter sealed in its own
/// encrypted volume.
pub struct SealedWitness {
    volume: Volume,
    key: AeadKey,
}

impl SealedWitness {
    /// Creates a fresh witness volume, starting at `(0, 0)`.
    #[must_use]
    pub fn create(key: AeadKey) -> Self {
        SealedWitness { volume: Volume::format(&key, "cas-witness"), key }
    }

    /// Reopens a witness from its volume image.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] if the key does not
    /// open the volume.
    pub fn open(volume: Volume, key: AeadKey) -> Result<Self, SinclaveError> {
        let witness = SealedWitness { volume, key };
        witness.volume.verify_key(&witness.key).map_err(|_| SinclaveError::ProtocolDecode)?;
        Ok(witness)
    }

    /// The highest mark witnessed so far; `(0, 0)` for a fresh volume.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] if the counter file
    /// exists but is unreadable or malformed — the caller fails closed
    /// (treating an unreadable witness as "no witness" would let a
    /// tampering host silence the alarm by corrupting it).
    pub fn read(&self) -> Result<WitnessMark, SinclaveError> {
        match self.volume.read_file(&self.key, WITNESS_PATH) {
            Ok(bytes) => {
                let raw: [u8; 16] =
                    bytes.as_slice().try_into().map_err(|_| SinclaveError::ProtocolDecode)?;
                Ok(WitnessMark {
                    generation: u64::from_be_bytes(
                        raw[..8].try_into().map_err(|_| SinclaveError::ProtocolDecode)?,
                    ),
                    sequence: u64::from_be_bytes(
                        raw[8..].try_into().map_err(|_| SinclaveError::ProtocolDecode)?,
                    ),
                })
            }
            Err(sinclave_fs::FsError::NotFound { .. }) => Ok(WitnessMark::default()),
            Err(_) => Err(SinclaveError::ProtocolDecode),
        }
    }

    /// Advances the witness to at least `(generation, sequence)`
    /// (component-wise max — the counter never regresses) and returns
    /// the stored mark.
    ///
    /// # Errors
    ///
    /// Propagates read failures and volume write failures as
    /// [`SinclaveError::ProtocolDecode`].
    pub fn advance(
        &mut self,
        generation: u64,
        sequence: u64,
    ) -> Result<WitnessMark, SinclaveError> {
        let current = self.read()?;
        let mark = WitnessMark {
            generation: current.generation.max(generation),
            sequence: current.sequence.max(sequence),
        };
        if mark != current {
            let mut raw = [0u8; 16];
            raw[..8].copy_from_slice(&mark.generation.to_be_bytes());
            raw[8..].copy_from_slice(&mark.sequence.to_be_bytes());
            self.volume
                .write_file(&self.key, WITNESS_PATH, &raw)
                .map_err(|_| SinclaveError::ProtocolDecode)?;
        }
        Ok(mark)
    }

    /// The witness volume image (for host persistence — and for the
    /// fault harness to roll back independently of the CAS volume).
    #[must_use]
    pub fn volume(&self) -> Volume {
        self.volume.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_only_moves_forward() {
        let mut w = SealedWitness::create(AeadKey::new([1; 32]));
        assert_eq!(w.read().unwrap(), WitnessMark::default());
        assert_eq!(w.advance(3, 10).unwrap(), WitnessMark { generation: 3, sequence: 10 });
        // A lower mark cannot regress the counter.
        assert_eq!(w.advance(1, 4).unwrap(), WitnessMark { generation: 3, sequence: 10 });
        // Components advance independently (a snapshot bumps the
        // generation; journal appends bump the sequence).
        assert_eq!(w.advance(2, 25).unwrap(), WitnessMark { generation: 3, sequence: 25 });
        assert_eq!(w.read().unwrap(), WitnessMark { generation: 3, sequence: 25 });
    }

    #[test]
    fn survives_volume_image_roundtrip() {
        let key = AeadKey::new([2; 32]);
        let mut w = SealedWitness::create(key.clone());
        w.advance(5, 77).unwrap();
        let image = w.volume().to_disk_image();
        let reopened =
            SealedWitness::open(Volume::from_disk_image(&image).unwrap(), key.clone()).unwrap();
        assert_eq!(reopened.read().unwrap(), WitnessMark { generation: 5, sequence: 77 });
        assert!(SealedWitness::open(w.volume(), AeadKey::new([3; 32])).is_err(), "wrong key");
    }
}
