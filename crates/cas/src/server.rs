//! The network-facing CAS service loop.
//!
//! One [`CasServer`] is the *trusted verifier* of the paper's system
//! model: the user provisions it with policies; enclaves (and, with
//! SinClave, starters) talk to it over secure channels. Its channel
//! key's fingerprint is CAS's cryptographic identity — the value
//! SinClave bakes into instance pages.
//!
//! # Concurrency model: two serving paths
//!
//! **The worker pool** ([`CasServer::serve`] /
//! [`CasServer::serve_with_workers`]): one thread per connection slot,
//! capped by [`CasServer::default_workers`]. The workers share one
//! listener; each claims the next connection slot from an atomic
//! counter, accepts, and drives that connection's handshake and
//! message loop to completion — so a slow or stalled attester occupies
//! one worker instead of stalling every connection behind it, and up
//! to `workers` retrievals proceed in parallel. Within one connection
//! the message loop is *pipelined*: the secure channel is split into
//! halves and a writer thread seals and sends reply `N` while the
//! dispatcher already decodes request `N + 1` (see
//! [`CasServer::handle_connection`]); replies stay in request order
//! and dispatch stays sequential, so determinism is unchanged.
//!
//! **The reactor** ([`CasServer::serve_reactor`], in
//! [`crate::reactor`]): a small, connection-count-independent number
//! of event-loop threads multiplex *all* connections through the
//! bus's readiness API (`net::Poller`), driving handshakes and message
//! framing as per-connection state machines and offloading CPU-heavy
//! work (SigStruct verification, grant signing, reply sealing, journal
//! group-commit waits) to a compute pool whose completions re-enqueue
//! the connection. A thousand mostly-idle attesters cost a thousand
//! parked connections, not a thousand threads. Per connection at most
//! one request is in flight at a time — dispatch order is receive
//! order — so the bytes a client observes are identical on both paths
//! (the `ablation/reactor` bench gates this bit-for-bit).
//!
//! Both paths consult the same **admission-control middleware chain**
//! ([`crate::middleware`], [`CasServer::set_middleware`]), evaluated
//! per request in fixed order: timeouts (slow-loris defense, at the
//! connection layer), per-identity token-bucket rate limiting, then
//! quotas, then panic isolation around dispatch, with a circuit
//! breaker at the journal/volume append boundary that sheds
//! journaling requests with a clean refusal while storage is failing.
//! The default chain disables every layer, and a disabled chain is
//! never consulted on the reply path — serving stays bit-identical to
//! the unprotected loop.
//!
//! The state the workers touch is sharded so parallel requests do not
//! contend on a single lock:
//!
//! * the policy store caches decoded [`SessionPolicy`]s as
//!   `Arc`s sharded by config id (see [`CasStore`]) — retrieval is a
//!   shard read-lock plus a pointer bump;
//! * the [`SingletonIssuer`] shards both its prepared-midstate cache
//!   (by base-hash encoding) and its token table (by token bytes), so
//!   concurrent grants for different enclaves and redemptions of
//!   different tokens take different locks, while exactly-once
//!   redemption still holds because one token always maps to one
//!   shard;
//! * service counters ([`CasStats`]) are atomics.
//!
//! # Durable state
//!
//! Two mechanisms share the policy store's encrypted volume:
//!
//! * **Snapshots** — the issuer's verified-SigStruct cache and token
//!   table, sealed as a versioned snapshot
//!   ([`CasServer::persist_state`], on a configurable grant/redemption
//!   cadence and at graceful shutdown) and restored at construction,
//!   so a restarted CAS serves its first repeat grant without
//!   re-running the ~0.4 ms RSA SigStruct verification. Snapshot
//!   writes are skipped while the durable state is unchanged since the
//!   last persist (a dirty-epoch check; counted in
//!   [`CasStats::snapshot_skipped_clean`]), so read-heavy workloads
//!   pay no volume churn.
//! * **The sealed redemption journal** — an append-only write-ahead
//!   log of token deltas ([`sinclave::journal_record`]) under the
//!   snapshot. Every grant and every redemption is appended **before
//!   its reply is acknowledged**; restore replays the journal suffix
//!   on top of the latest snapshot; each persisted snapshot writes a
//!   checkpoint and truncates the epochs it covers, so the log stays
//!   bounded.
//!
//! Exactly-once token redemption is therefore **crash-absolute**, not
//! snapshot-relative: a token whose redemption was acked is never
//! redeemable again, on any machine restored from this volume, no
//! matter where the crash fell. The price is the group-commit batching
//! window: concurrent redemptions coalesce into one sealed append
//! (see [`crate::commit`]), and each redeem reply is *held until its
//! batch seals* — one append's latency, amortized across every record
//! that rode along. The per-record mode ([`JournalMode::PerRecord`])
//! is the honest no-batching ablation; disabling the journal entirely
//! ([`JournalMode::Disabled`]) re-opens the documented
//! crash-reuse window that snapshots alone leave.
//!
//! Every failure degrades safely and observably. A refused snapshot is
//! counted in [`CasStats::snapshot_rejected`] and the server starts
//! cold — worse latency, never wider trust. A journal whose tail was
//! torn by a crash restores to the last complete record (the torn
//! append was never acked; counted in [`CasStats::journal_rejected`]).
//! Journal damage a crash cannot produce — corruption *before*
//! committed records — and a detected whole-disk-image rollback
//! ([`CasServer::check_rollback`], against a `(generation, journal
//! sequence)` witness the deployment keeps outside the volume; the
//! sequence half catches a host deleting the journal's committed
//! tail, which storage alone cannot distinguish from a clean end)
//! additionally quarantine all outstanding tokens
//! ([`CasStats::tokens_quarantined`]): grants must be re-requested,
//! but no token can ever be redeemed twice.
//!
//! # RNG seed derivation
//!
//! Each connection slot `i` gets its own deterministic generator
//! seeded with `seed.wrapping_add(i)` — the same derivation the
//! sequential loop used, so single-worker runs are bit-identical to
//! the old behavior and multi-worker runs remain seed-stable: the set
//! of per-connection seeds depends only on (`seed`, `connections`),
//! never on thread scheduling. (Which dialing peer lands on which slot
//! follows arrival order, as it would on a real listening socket.)

use crate::commit::CommitPipe;
use crate::histogram::StageHistograms;
use crate::middleware::{MiddlewareChain, MiddlewareConfig, Refusal};
use crate::policy::{PolicyMode, SessionPolicy};
use crate::replica::{ForwardLink, ReplicationHub};
use crate::store::CasStore;
use crate::trace::{self, SpanOutcome, Tracer};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sinclave::journal_record::{decode_batch, encode_batch, JournalRecord};
use sinclave::protocol::Message;
use sinclave::snapshot::IssuerSnapshot;
use sinclave::verifier::SingletonIssuer;
use sinclave::{AttestationToken, BaseEnclaveHash, SinclaveError};
use sinclave_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use sinclave_crypto::sha256::Digest;
use sinclave_fs::journal::JournalDamage;
use sinclave_net::{Connection, NetError, Network, Readiness, SecureChannel};
use sinclave_sgx::measurement::Measurement;
use sinclave_sgx::quote::Quote;
use sinclave_sgx::report::ReportBody;
use sinclave_sgx::sigstruct::SigStruct;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::sync::Weak;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Defines [`CasStats`] (the live atomics) and [`StatsSnapshot`] (its
/// coherent read-side copy) from a single field list, so the status
/// exporter and [`CasStats::snapshot`] can never silently miss a
/// counter added later — a new counter is one entry here and it shows
/// up in the struct, the snapshot, and the metrics view at once.
macro_rules! cas_counters {
    ($($(#[$doc:meta])* $field:ident,)*) => {
        /// Service counters (observability + test assertions).
        #[derive(Debug, Default)]
        pub struct CasStats {
            $($(#[$doc])* pub $field: AtomicU64,)*
        }

        /// A point-in-time copy of every [`CasStats`] counter, taken
        /// by [`CasStats::snapshot`]. Plain `u64`s: tests assert on
        /// whole snapshots instead of scattering per-field atomic
        /// loads, and the status wire renders one of these.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $field: u64,)*
        }

        impl CasStats {
            /// Reads every counter at once (relaxed loads — each field
            /// is individually monotone, which is all monitoring and
            /// test assertions need).
            #[must_use]
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)*
                }
            }
        }

        impl StatsSnapshot {
            /// Every counter as a `(name, value)` row in declaration
            /// order — the backing of the status wire's metrics view.
            #[must_use]
            pub fn named(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field),)*]
            }
        }
    };
}

cas_counters! {
    /// Singleton grants issued.
    grants_issued,
    /// Configurations delivered.
    configs_delivered,
    /// Requests denied.
    denials,
    /// Secure-channel records that failed authentication (tampered,
    /// replayed or reordered). A clean peer disconnect is *not* a
    /// rejected record; this counter moving on a production box means
    /// someone is modifying traffic.
    records_rejected,
    /// Singleton tokens redeemed (exactly-once consumptions). Drives
    /// the redemption half of the snapshot cadence.
    tokens_redeemed,
    /// Durable-state snapshots written to the encrypted volume
    /// (cadence-triggered and explicit [`CasServer::persist_state`]
    /// calls).
    snapshot_persisted,
    /// Snapshot writes that failed. Cadence-triggered persists cannot
    /// surface an error to any caller, so this counter is the signal
    /// that durability has silently stopped: it moving (or
    /// `snapshot_persisted` stalling against `grants_issued`) means
    /// the volume is refusing writes and the next restart will fall
    /// back to an old snapshot.
    snapshot_persist_failed,
    /// Snapshots successfully restored at construction — at most 1 per
    /// server lifetime; `0` with `snapshot_rejected == 0` means a cold
    /// volume.
    snapshot_restored,
    /// Snapshots refused at construction (unreadable file, bad
    /// framing/checksum/version, or identity mismatch). The server
    /// starts cold instead; this counter moving on a production box
    /// means the volume was tampered with or rolled back.
    snapshot_rejected,
    /// Snapshot writes skipped because the durable state was unchanged
    /// since the last persist (the dirty-epoch check) — expected to
    /// move on read-heavy workloads; each skip is a volume rewrite
    /// saved.
    snapshot_skipped_clean,
    /// Journal records made durable (each one covered an acked grant
    /// or redemption; batches of concurrent commits count per record).
    journal_appended,
    /// Journal records whose covering append failed — the reply was
    /// denied, the event is not durable. This moving means the volume
    /// refuses writes; redemption service is failing closed.
    journal_append_failed,
    /// State-mutating journal records (grants, redemptions) replayed
    /// onto the restored snapshot at construction. Checkpoint and
    /// fence records adjust metadata but do not count: a *clean*
    /// shutdown's journal holds nothing but its final checkpoint, and
    /// this counter staying zero is how a restart proves the stop was
    /// clean.
    journal_replayed,
    /// Journal damage events at construction: a torn tail degraded to
    /// the last complete record, or corruption/sequence damage that
    /// additionally quarantined outstanding tokens.
    journal_rejected,
    /// Whole-disk-image rollbacks detected by
    /// [`CasServer::check_rollback`].
    rollback_detected,
    /// Outstanding tokens dropped by fail-closed quarantine (journal
    /// corruption or detected rollback). Holders must re-request
    /// grants; no token is ever redeemable twice.
    tokens_quarantined,
    /// Connections dropped by a configured handshake or read deadline
    /// (the slow-loris defense; see
    /// [`MiddlewareConfig::handshake_timeout`] /
    /// [`MiddlewareConfig::idle_timeout`]). Only deadlines the
    /// middleware configured count here — the transport's own default
    /// timeout firing is a clean close, as before.
    connections_timed_out,
    /// Requests refused by the per-identity token-bucket rate limiter.
    requests_rate_limited,
    /// Requests refused by the absolute per-identity quota.
    requests_quota_denied,
    /// Journaling requests shed by the open circuit breaker (storage
    /// is refusing appends; the refusal never touched the volume).
    requests_shed,
    /// Dispatch panics contained by panic isolation: the connection
    /// was closed, the serving thread survived.
    panics_isolated,
    /// Retried grant requests answered from the request-dedup cache
    /// (byte-identical to a recent request; the cached reply was
    /// replayed, no second token was issued).
    dedup_hits,
    /// Writes refused because this server's fence is outranked (a
    /// failover promoted a replica past it). Each one is a
    /// double-redemption the fencing rule prevented.
    writes_fenced,
    /// Times a peer presented a fencing generation above the highest
    /// previously seen (the observation is persisted; see
    /// [`CasServer::observe_fence`]).
    fences_observed,
    /// Writes (grants, redemptions) this replica forwarded to the
    /// primary for linearization.
    forwarded_writes,
    /// Sealed record batches published to live replication
    /// subscribers (counted once per committed batch, not per
    /// subscriber).
    replication_batches_streamed,
    /// Journal records this replica applied from the replication
    /// stream (baseline suffix + live batches).
    replication_records_replayed,
    /// Replication payloads refused by the frame or batch codec
    /// (damaged, torn, or tampered) — the stream is dropped and
    /// resynced, never partially applied.
    replication_frames_rejected,
    /// Times the follower pump lost its stream and scheduled a
    /// reconnect (bounded backoff; the replica keeps serving reads
    /// as degraded in between).
    replication_reconnects,
}

/// Replies the pipelined per-connection loop may buffer ahead of the
/// writer thread. Clients of this protocol run request–response
/// lockstep, so a small bound suffices; it exists so a stalled
/// transport applies backpressure to dispatching instead of queueing
/// unbounded sealed replies.
const PIPELINE_DEPTH: usize = 4;

/// How the sealed redemption journal is driven (see the module docs'
/// durability section; `ablation/journal` measures all three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalMode {
    /// No journaling: exactly-once across crashes falls back to being
    /// snapshot-relative (the pre-journal behavior, kept as the
    /// bench baseline and an explicit opt-out).
    Disabled,
    /// One sealed append per record — the honest fsync-per-redemption
    /// ablation: maximal durability granularity, no batching window,
    /// worst throughput.
    PerRecord,
    /// Group commit (the default): concurrent commits coalesce into
    /// one sealed append; replies are held until their batch seals.
    GroupCommit,
}

impl JournalMode {
    fn from_u8(value: u8) -> JournalMode {
        match value {
            0 => JournalMode::Disabled,
            1 => JournalMode::PerRecord,
            _ => JournalMode::GroupCommit,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            JournalMode::Disabled => 0,
            JournalMode::PerRecord => 1,
            JournalMode::GroupCommit => 2,
        }
    }
}

/// The CAS service.
pub struct CasServer {
    pub(crate) channel_key: RsaPrivateKey,
    issuer: SingletonIssuer,
    attestation_root: RsaPublicKey,
    /// Policy store; internally sharded and safe for concurrent use
    /// (retrieval is a shard read-lock plus an `Arc` bump).
    store: CasStore,
    /// Persist the issuer snapshot after every this many grants;
    /// `0` disables cadence-triggered snapshots (explicit
    /// [`CasServer::persist_state`] still works).
    snapshot_cadence: AtomicU64,
    /// Group-commit pipe sequencing journal records.
    pipe: CommitPipe,
    /// Serializes [`CasServer::persist_state`]: two interleaved
    /// persists (e.g. concurrent cadence triggers on worker threads)
    /// could otherwise truncate a journal epoch holding a record whose
    /// redemption a stale, about-to-be-written snapshot does not cover
    /// — losing an acked event. Held across rotate → checkpoint →
    /// export → write → truncate; the journal commit path never takes
    /// it, so redemptions are not serialized behind persists.
    persist_lock: parking_lot::Mutex<()>,
    /// Encoded [`JournalMode`].
    journal_mode: AtomicU8,
    /// Monotonic restore generation: the value of the last persisted
    /// snapshot/checkpoint (restored at construction, bumped per
    /// persist). Compared against an externally kept witness by
    /// [`CasServer::check_rollback`].
    generation: AtomicU64,
    /// The issuer mutation epoch covered by the on-disk snapshot;
    /// persists are skipped while the live epoch still matches.
    persisted_epoch: AtomicU64,
    /// The journal sequence the restored snapshot was current through
    /// — the continuity baseline journal replay enforces gap-freedom
    /// above.
    journal_baseline: AtomicU64,
    /// Whether the volume currently holds a restorable snapshot (set
    /// by a successful restore or persist) — a clean epoch only
    /// justifies skipping the write when there is something on disk.
    snapshot_on_disk: AtomicBool,
    /// The admission-control stack both serving paths consult
    /// (default: every layer off). Swapped whole by
    /// [`CasServer::set_middleware`].
    middleware: parking_lot::RwLock<Arc<MiddlewareChain>>,
    /// Time-based snapshot cadence in microseconds (`0` = off): the
    /// reactor's timer tick persists when this much time has passed
    /// since the last persist, so *idle* workloads still bound the
    /// journal-replay window. The event-count cadence
    /// ([`CasServer::set_snapshot_cadence`]) remains the floor under
    /// load.
    snapshot_interval_micros: AtomicU64,
    /// Test instrumentation for the panic-isolation layer: when set,
    /// the next dispatched `Ping` panics (see
    /// [`CasServer::set_dispatch_panic_for_tests`]).
    panic_on_next_ping: AtomicBool,
    /// This server's own fencing generation: the highest fence it has
    /// *committed under* (restored from the snapshot stamp and from
    /// replayed [`JournalRecord::Fence`] records; bumped by
    /// [`CasServer::promote`]).
    fence: AtomicU64,
    /// The highest fencing generation observed fleet-wide — always at
    /// least [`CasServer::fence`]; strictly above it exactly when this
    /// server is deposed ([`CasServer::is_fenced`]). Persisted through
    /// the store so a deposed primary restarting from a pre-failover
    /// disk image comes back fenced.
    fence_ceiling: AtomicU64,
    /// Set while this server is a live replication subscriber: local
    /// writes are refused (they would collide with the primary's
    /// sequence numbers) and checkpoints are deferred to promotion.
    following: AtomicBool,
    /// A follower's write-forwarding link to the primary; `None` on a
    /// primary (and on a read-only follower, which refuses writes
    /// outright).
    forward: parking_lot::RwLock<Option<Arc<ForwardLink>>>,
    /// The hub live commit batches are published to while replication
    /// serving is up ([`crate::replica::serve_replication`]).
    replication: parking_lot::RwLock<Option<Arc<ReplicationHub>>>,
    /// Counters.
    pub stats: CasStats,
    /// Per-stage latency histograms, shared by both serving paths and
    /// (via the issuer's stage observer) the verify/sign stages. In an
    /// `Arc` so the observer closure can hold it without borrowing the
    /// server.
    latency: Arc<StageHistograms>,
    /// The per-request tracing control plane (see [`crate::trace`]):
    /// trace-id minting, tail-sampling classification, and the span
    /// flight recorder behind the `trace` status view. Dark by
    /// default — serving stays byte-identical until an operator lights
    /// it ([`Tracer::set_enabled`]).
    tracer: Tracer,
    /// Construction time — the status views' `uptime_seconds` gauge.
    started: Instant,
    /// The primary's high journal sequence as last heard over the
    /// replication stream (heartbeats carry it): the follower half of
    /// the `trace` view's replication-lag gauge.
    replication_high_seq: AtomicU64,
    /// Trace-clock nanoseconds of the last replication-stream
    /// activity this follower observed (batch applied or heartbeat
    /// heard); `0` until the stream first speaks.
    replication_stream_ns: AtomicU64,
    /// Consecutive [`CasServer::persist_state`] failures — the
    /// health verdict's durability signal. Reset by the next
    /// successful (non-skipped) persist; `> 0` flags the server
    /// Degraded, which is how cadence- and tick-triggered persists
    /// (whose callers can only discard the error) surface failures.
    persist_failures: AtomicU64,
    /// Set by [`CasServer::shutdown`]: serving paths stop accepting,
    /// finish in-flight requests, and exit.
    draining: AtomicBool,
    /// Wakeup handles of parked reactor event loops, signaled at
    /// shutdown so a loop waiting out its (up to 60 s) poll tick
    /// notices the drain immediately.
    drain_wakers: parking_lot::Mutex<Vec<Weak<Readiness>>>,
    /// Stop flags of follower pumps attached to this server, raised at
    /// shutdown so followers unsubscribe cleanly.
    drain_stops: parking_lot::Mutex<Vec<Weak<AtomicBool>>>,
    /// Live serving threads (worker pool, reactor, replication
    /// listener). [`CasServer::shutdown`] waits for this to reach
    /// zero before persisting.
    active_serves: AtomicU64,
    /// The `journal_append_failed` count the last health probe saw —
    /// the probe reports Degraded while the counter moves between
    /// probes (appends failing *now*), not forever after one historic
    /// failure (each failed append already failed its request closed).
    health_journal_failed_seen: AtomicU64,
}

impl fmt::Debug for CasServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CasServer")
            .field("identity", &self.identity().to_hex()[..12].to_owned())
            .finish()
    }
}

/// How often drain-aware accept loops poll for new connections — the
/// upper bound on how long a parked acceptor takes to notice
/// [`CasServer::shutdown`]. Matches the follower pump's poll interval.
pub(crate) const DRAIN_POLL: Duration = Duration::from_millis(20);

/// RAII registration of one serving thread with its server. The count
/// is taken in [`ServeGuard::register`] — *before* the serving thread
/// spawns, so a [`CasServer::shutdown`] racing the spawn still waits
/// for it — and released when the serving body ends, panics included.
pub(crate) struct ServeGuard {
    server: Arc<CasServer>,
}

impl ServeGuard {
    /// Registers one serving thread; move the guard into that thread.
    pub(crate) fn register(server: &Arc<CasServer>) -> ServeGuard {
        server.active_serves.fetch_add(1, Ordering::SeqCst);
        ServeGuard { server: Arc::clone(server) }
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        self.server.active_serves.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Drop for CasServer {
    fn drop(&mut self) {
        // A server dropped without an explicit [`CasServer::shutdown`]
        // used to lose its in-memory dirty window (everything since
        // the last cadence persist) to journal-replay-on-restart.
        // Best-effort persist on the last owner's drop: errors are
        // deliberately discarded — there is no caller to report to,
        // and the journal still covers every acked event — and clean
        // epochs skip the write entirely. Followers and fenced
        // ex-primaries hold no authoritative state to seal.
        if !self.following.load(Ordering::Relaxed) && !self.is_fenced() {
            let _ = self.persist_state();
        }
    }
}

impl CasServer {
    /// Creates a CAS from its channel key, the application signer key
    /// it guards, the attestation root it trusts, and a policy store.
    ///
    /// If the store's volume carries a durable-state snapshot (a
    /// previous instance called [`CasServer::persist_state`]), the
    /// issuer is rehydrated from it, and the sealed redemption journal
    /// is then replayed on top — the restarted CAS comes up with its
    /// verify cache warm and its token table exactly as of the last
    /// *acked* event, not just the last snapshot. Any unreadable,
    /// corrupt, wrong-version or wrong-identity snapshot is counted in
    /// [`CasStats::snapshot_rejected`] and the server starts cold
    /// (journal replay still applies); journal damage is classified
    /// and counted per the module docs. A bad volume can degrade
    /// performance or quarantine outstanding tokens, never widen
    /// trust, and never prevents the CAS from starting.
    #[must_use]
    pub fn new(
        channel_key: RsaPrivateKey,
        signer_key: RsaPrivateKey,
        attestation_root: RsaPublicKey,
        store: CasStore,
    ) -> Arc<Self> {
        let identity = channel_key.public_key().fingerprint();
        let latency = Arc::new(StageHistograms::default());
        let tracer = Tracer::new(Arc::clone(&latency));
        let server = CasServer {
            channel_key,
            issuer: SingletonIssuer::new(signer_key, identity),
            attestation_root,
            store,
            snapshot_cadence: AtomicU64::new(0),
            pipe: CommitPipe::new(),
            persist_lock: parking_lot::Mutex::new(()),
            journal_mode: AtomicU8::new(JournalMode::GroupCommit.as_u8()),
            generation: AtomicU64::new(0),
            persisted_epoch: AtomicU64::new(0),
            journal_baseline: AtomicU64::new(0),
            snapshot_on_disk: AtomicBool::new(false),
            middleware: parking_lot::RwLock::new(Arc::new(MiddlewareChain::default())),
            snapshot_interval_micros: AtomicU64::new(0),
            panic_on_next_ping: AtomicBool::new(false),
            fence: AtomicU64::new(0),
            fence_ceiling: AtomicU64::new(0),
            following: AtomicBool::new(false),
            forward: parking_lot::RwLock::new(None),
            replication: parking_lot::RwLock::new(None),
            stats: CasStats::default(),
            latency,
            tracer,
            started: Instant::now(),
            replication_high_seq: AtomicU64::new(0),
            replication_stream_ns: AtomicU64::new(0),
            persist_failures: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            drain_wakers: parking_lot::Mutex::new(Vec::new()),
            drain_stops: parking_lot::Mutex::new(Vec::new()),
            active_serves: AtomicU64::new(0),
            health_journal_failed_seen: AtomicU64::new(0),
        };
        // Feed the issuer's verify/sign stage latencies into the
        // shared histograms (set-once; absent observers cost nothing).
        let latency = Arc::clone(&server.latency);
        server.issuer.set_stage_observer(move |stage, elapsed| match stage {
            sinclave::verifier::IssueStage::Verify => {
                latency.verify.record(elapsed);
                trace::record_elapsed("verify", elapsed, SpanOutcome::Ok);
            }
            sinclave::verifier::IssueStage::Sign => {
                latency.sign.record(elapsed);
                trace::record_elapsed("sign", elapsed, SpanOutcome::Ok);
            }
        });
        server.restore_state();
        // The on-disk snapshot covers exactly the state restored so
        // far; journal replay below dirties the epoch again if it
        // applies anything beyond the snapshot.
        server.persisted_epoch.store(server.issuer.mutation_epoch(), Ordering::Relaxed);
        server.replay_journal();
        // The persisted fence ceiling outlives snapshots and journal
        // replay: a deposed primary restarting from its pre-failover
        // disk image must come back fenced, even though nothing in
        // that image's snapshot or journal carries the newer fence.
        let own = server.fence.load(Ordering::Relaxed);
        let ceiling = match server.store.restore_fence() {
            Ok(Some(ceiling)) => ceiling.max(own),
            Ok(None) => own,
            // Fail closed: an unreadable ceiling could be hiding a
            // deposition, so assume one until an operator promotes.
            Err(_) => own + 1,
        };
        server.fence_ceiling.store(ceiling, Ordering::Relaxed);
        Arc::new(server)
    }

    /// CAS's cryptographic identity (channel-key fingerprint).
    #[must_use]
    pub fn identity(&self) -> Digest {
        self.channel_key.public_key().fingerprint()
    }

    /// The singleton issuer (exposed for offline grant issuance in
    /// benchmarks).
    #[must_use]
    pub fn issuer(&self) -> &SingletonIssuer {
        &self.issuer
    }

    /// Registers (or replaces) a session policy.
    ///
    /// # Errors
    ///
    /// Propagates database failures.
    pub fn add_policy(&self, policy: SessionPolicy) -> Result<(), SinclaveError> {
        self.store.put_policy(&policy)
    }

    /// The policy store (exposed for lifecycle management: a restart
    /// harness snapshots `store().volume()` and reopens it).
    #[must_use]
    pub fn store(&self) -> &CasStore {
        &self.store
    }

    // ---- Durable state lifecycle -----------------------------------------

    /// Writes the issuer's durable state (verify-cache keys + token
    /// table) into the encrypted volume, crash-safely: the volume
    /// stages the new snapshot under a fresh file id and flips the
    /// manifest as the single commit point, so a crash mid-persist
    /// leaves the previous good snapshot readable.
    ///
    /// If the durable state is unchanged since the last persist (and a
    /// snapshot is on disk), the write is skipped and counted in
    /// [`CasStats::snapshot_skipped_clean`] — identical snapshots are
    /// pure volume churn.
    ///
    /// A real persist is also the journal's checkpoint: the journal
    /// rotates to a fresh epoch *first*, a checkpoint record carrying
    /// the new restore generation is committed, the snapshot (which by
    /// then covers everything in the retired epochs) is written, and
    /// only then are the retired epochs deleted. A crash at any point
    /// leaves either the old snapshot plus the full journal or the new
    /// snapshot plus a replayable (idempotent) suffix — never a lost
    /// acked event.
    ///
    /// Call this at graceful shutdown; [`CasServer::set_snapshot_cadence`]
    /// additionally persists on a grant/redemption cadence.
    ///
    /// Every failure — this method's callers included — is counted in
    /// [`CasStats::snapshot_persist_failed`], so cadence-triggered
    /// persists that have no caller to report to still leave a signal.
    ///
    /// # Errors
    ///
    /// Propagates volume failures.
    pub fn persist_state(&self) -> Result<(), SinclaveError> {
        // A live subscriber must not checkpoint: the checkpoint record
        // would take a fresh local sequence number and collide with
        // the primary's stream. Promotion clears the flag.
        if self.following.load(Ordering::Relaxed) {
            return Err(SinclaveError::JournalInvalid {
                context: "replica does not checkpoint while following",
            });
        }
        let _persisting = self.persist_lock.lock();
        let epoch = self.issuer.mutation_epoch();
        if self.snapshot_on_disk.load(Ordering::Relaxed)
            && epoch == self.persisted_epoch.load(Ordering::Relaxed)
        {
            self.stats.snapshot_skipped_clean.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let fail = |e| {
            self.stats.snapshot_persist_failed.fetch_add(1, Ordering::Relaxed);
            // The consecutive-failure count is what flips the health
            // verdict to Degraded: cadence- and reactor-tick-triggered
            // persists have no caller to report to, so the failure is
            // routed into [`CasServer::health`] here, at the source.
            self.persist_failures.fetch_add(1, Ordering::Relaxed);
            Err(e)
        };
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let journaling = self.journal_mode() != JournalMode::Disabled;
        let retired = if journaling {
            match self.store.rotate_journal() {
                Ok(retired) => retired,
                Err(e) => return fail(e),
            }
        } else {
            Vec::new()
        };
        if journaling {
            if let Err(e) = self.commit_record(JournalRecord::Checkpoint { generation }) {
                return fail(e);
            }
        }
        // The snapshot is current through every journal record whose
        // commit completed before this point (their in-memory
        // mutations strictly precede their commits, and the export
        // below reads after this): stamp that sequence as the replay
        // continuity baseline.
        let journal_sequence = self.pipe.sequence();
        let mut snapshot = self.issuer.export_snapshot();
        snapshot.generation = generation;
        snapshot.journal_sequence = journal_sequence;
        snapshot.fence = self.fence.load(Ordering::Relaxed);
        if let Err(e) = self.store.persist_state(&snapshot.to_bytes()) {
            return fail(e);
        }
        self.generation.store(generation, Ordering::Relaxed);
        self.persisted_epoch.store(epoch, Ordering::Relaxed);
        self.snapshot_on_disk.store(true, Ordering::Relaxed);
        self.stats.snapshot_persisted.fetch_add(1, Ordering::Relaxed);
        // Durability is proven healthy again: clear the Degraded flag.
        self.persist_failures.store(0, Ordering::Relaxed);
        if journaling {
            // Truncation is best-effort: a failure leaves extra epochs
            // whose replay over the new snapshot is an idempotent
            // no-op; the next persist retires them again.
            let _ = self.store.remove_journal_epochs(&retired);
        }
        Ok(())
    }

    /// Persist the durable state automatically after every
    /// `every_events` issued grants and after every `every_events`
    /// redeemed tokens (`0` disables the cadence). Both halves matter:
    /// the grant cadence bounds how much cache warmth a crash loses,
    /// the redemption cadence bounds the token-reuse window a crash
    /// reopens (see the module docs). The write happens on the serving
    /// connection's thread after the reply is dispatched to the
    /// pipeline, under the store's volume lock — registration-rate,
    /// not retrieval-rate, so it never contends with the hot path.
    pub fn set_snapshot_cadence(&self, every_events: u64) {
        self.snapshot_cadence.store(every_events, Ordering::Relaxed);
    }

    /// Cadence check shared by the grant and redemption paths:
    /// persists when `count` (the just-incremented event counter) hits
    /// a multiple of the configured cadence. Failures are counted
    /// inside [`CasServer::persist_state`].
    fn persist_on_cadence(&self, count: u64) {
        let cadence = self.snapshot_cadence.load(Ordering::Relaxed);
        if cadence != 0 && count.is_multiple_of(cadence) {
            // The discarded error is not silent: persist_state counts
            // it and bumps the consecutive-failure gauge that flips
            // [`CasServer::health`] to Degraded.
            let _ = self.persist_state();
        }
    }

    // ---- Operability: health, latency, graceful shutdown -----------------

    /// The per-stage latency histograms both serving paths feed (see
    /// [`crate::histogram`]); rendered by the status wire's
    /// `histograms` view.
    #[must_use]
    pub fn latency(&self) -> &StageHistograms {
        &self.latency
    }

    /// The tracing control plane (see [`crate::trace`]). Dark by
    /// default; `tracer().set_enabled(true)` lights it up, and the
    /// `trace` status view renders what the flight recorder kept.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Time since this server object was constructed — rendered as
    /// `uptime_seconds` by the `health` and `metrics` status views.
    #[must_use]
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The health verdict the status wire serves (see
    /// [`crate::status::Health`] for what each level means and
    /// `docs/operations.md` for the runbook):
    ///
    /// * **FailClosed** — fenced (a failover outranked this server) or
    ///   the append circuit breaker is open. Writes are refused.
    /// * **Degraded** — still serving, but durability or replication
    ///   is impaired: a cadence/tick persist has failed and not yet
    ///   succeeded again, journal appends failed since the previous
    ///   probe, or a follower lost its replication stream.
    /// * **Healthy** — none of the above.
    pub fn health(&self) -> crate::status::Health {
        if self.is_fenced() || self.middleware().breaker_open() {
            return crate::status::Health::FailClosed;
        }
        let journal_failed = self.stats.journal_append_failed.load(Ordering::Relaxed);
        let seen = self.health_journal_failed_seen.swap(journal_failed, Ordering::Relaxed);
        if self.persist_failures.load(Ordering::Relaxed) > 0
            || journal_failed > seen
            || self.middleware().is_degraded()
        {
            return crate::status::Health::Degraded;
        }
        crate::status::Health::Healthy
    }

    /// Whether [`CasServer::shutdown`] has begun: serving loops check
    /// this at their drain points and exit instead of taking new work.
    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Registers a parked event loop's wakeup handle so shutdown can
    /// interrupt its poll wait (weak: a finished loop's handle just
    /// fails to upgrade).
    pub(crate) fn register_drain_waker(&self, waker: &Arc<Readiness>) {
        self.drain_wakers.lock().push(Arc::downgrade(waker));
    }

    /// Registers a follower pump's stop flag so shutdown makes it
    /// unsubscribe cleanly (weak: a stopped pump's flag just fails to
    /// upgrade).
    pub(crate) fn register_drain_stop(&self, stop: &Arc<AtomicBool>) {
        self.drain_stops.lock().push(Arc::downgrade(stop));
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests on
    /// every serving path (worker pool, reactor, replication
    /// listener), stop follower pumps, then persist the durable state
    /// — so a clean stop restores from the snapshot with **zero**
    /// journal replay instead of leaning on recovery.
    ///
    /// The commit pipe needs no separate flush: commits are
    /// synchronous within request handling, so once the serving
    /// threads have drained there is nothing in flight to seal.
    ///
    /// Idempotent; callers typically join their serve handles after
    /// this returns. On a follower (or a fenced ex-primary) the
    /// persist is skipped — checkpoints are deferred to promotion, and
    /// a deposed server's state is no longer authoritative — and the
    /// drain alone is the shutdown.
    ///
    /// # Errors
    ///
    /// Propagates the final persist's volume failure (the drain itself
    /// cannot fail; serving threads that outlive the drain deadline
    /// are abandoned to their own timeouts).
    pub fn shutdown(&self) -> Result<(), SinclaveError> {
        let was_following = self.following.load(Ordering::Relaxed);
        self.draining.store(true, Ordering::SeqCst);
        // Wake parked reactor loops (they may be in a poll wait of up
        // to 60 s) so the drain is noticed now, not at the next tick.
        for waker in self.drain_wakers.lock().iter() {
            if let Some(waker) = waker.upgrade() {
                waker.signal();
            }
        }
        // Followers unsubscribe cleanly: raise the pump stop flags.
        for stop in self.drain_stops.lock().iter() {
            if let Some(stop) = stop.upgrade() {
                stop.store(true, Ordering::SeqCst);
            }
        }
        // Wait (bounded) for the serving threads to finish in-flight
        // requests and exit their accept loops.
        let deadline = Instant::now() + sinclave_net::bus::RECV_TIMEOUT;
        while self.active_serves.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if was_following || self.is_fenced() {
            return Ok(());
        }
        self.persist_state()
    }

    /// Attempts to rehydrate the issuer from the store's snapshot at
    /// construction time. Never fails the construction: a cold volume
    /// is a no-op, and every rejection path (unreadable file, bad
    /// framing, identity mismatch) counts into
    /// [`CasStats::snapshot_rejected`] and leaves the issuer exactly
    /// as cold as a fresh one — restore is all-or-nothing.
    fn restore_state(&self) {
        let bytes = match self.store.restore_state() {
            Ok(Some(bytes)) => bytes,
            Ok(None) => return, // cold volume: nothing to restore
            Err(_) => {
                self.stats.snapshot_rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let restored = IssuerSnapshot::from_bytes(&bytes).and_then(|snapshot| {
            self.issuer.restore_snapshot(&snapshot)?;
            Ok((snapshot.generation, snapshot.journal_sequence, snapshot.fence))
        });
        match restored {
            Ok((generation, journal_sequence, fence)) => {
                self.generation.store(generation, Ordering::Relaxed);
                self.journal_baseline.store(journal_sequence, Ordering::Relaxed);
                self.fence.store(fence, Ordering::Relaxed);
                self.snapshot_on_disk.store(true, Ordering::Relaxed);
                self.stats.snapshot_restored.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats.snapshot_rejected.fetch_add(1, Ordering::Relaxed);
            }
        };
    }

    /// Replays the sealed redemption journal on top of whatever the
    /// snapshot restore produced, at construction time. Never fails
    /// the construction:
    ///
    /// * every record in the clean prefix is applied idempotently;
    ///   the state-mutating ones are counted in
    ///   [`CasStats::journal_replayed`];
    /// * a torn tail (the one damage shape a crash can produce; its
    ///   append was never acked) is counted in
    ///   [`CasStats::journal_rejected`] and the state stands at the
    ///   last complete record;
    /// * damage a crash cannot produce — corruption before committed
    ///   records, an unreadable journal, a sequence gap or regression
    ///   — is also counted, and additionally quarantines every
    ///   outstanding token: fail closed, never honor state the log
    ///   cannot vouch for.
    fn replay_journal(&self) {
        let recovery = match self.store.recover_journal() {
            Ok(recovery) => recovery,
            Err(_) => {
                self.stats.journal_rejected.fetch_add(1, Ordering::Relaxed);
                self.quarantine("journal unreadable");
                return;
            }
        };
        let baseline = self.journal_baseline.load(Ordering::Relaxed);
        let mut generation = self.generation.load(Ordering::Relaxed);
        let mut fence = self.fence.load(Ordering::Relaxed);
        let mut last_seq = 0u64;
        let mut torn = matches!(recovery.damage, Some(JournalDamage::TornTail { .. }));
        let mut corrupt = matches!(recovery.damage, Some(JournalDamage::Corrupt { .. }));
        let chunk_count = recovery.chunks.len();
        'replay: for (pos, chunk) in recovery.chunks.iter().enumerate() {
            let batch = decode_batch(&chunk.payload);
            for sequenced in &batch.records {
                if sequenced.seq <= last_seq {
                    // Appends are sequenced strictly forward; a
                    // regression or repeat is tampering, not a crash.
                    corrupt = true;
                    break 'replay;
                }
                if sequenced.seq > baseline && sequenced.seq != last_seq.max(baseline) + 1 {
                    // Above the snapshot's baseline the sequence must
                    // be gap-free: every missing number is an acked
                    // record the snapshot does not cover — a host
                    // deleting a span of committed chunks (or a whole
                    // epoch) looks exactly like this, and storage
                    // alone cannot tell it from a clean end. (Below
                    // the baseline, gaps are safe: those records'
                    // effects are already in the snapshot.)
                    corrupt = true;
                    break 'replay;
                }
                last_seq = sequenced.seq;
                match sequenced.record {
                    // Metadata records are absorbed, not counted: a
                    // clean stop leaves exactly one checkpoint behind,
                    // and `journal_replayed == 0` after a restart is
                    // the observable proof the stop was clean.
                    JournalRecord::Checkpoint { generation: g } => generation = generation.max(g),
                    JournalRecord::Fence { fence: f } => fence = fence.max(f),
                    _ => {
                        self.issuer.apply_record(&sequenced.record);
                        self.stats.journal_replayed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            if batch.damaged.is_some() {
                // Record-level damage inside a committed chunk: benign
                // only as the very tail of the journal (a torn batch
                // whose suffix was never acked); anywhere else it is
                // corruption.
                if pos == chunk_count - 1 && recovery.damage.is_none() {
                    torn = true;
                } else {
                    corrupt = true;
                }
                break;
            }
        }
        self.generation.store(generation, Ordering::Relaxed);
        self.fence.store(fence, Ordering::Relaxed);
        self.pipe.resume_after(last_seq.max(baseline));
        if torn || corrupt {
            self.stats.journal_rejected.fetch_add(1, Ordering::Relaxed);
        }
        if corrupt {
            self.quarantine("journal corrupt");
        }
    }

    /// Fail-closed quarantine: drops every outstanding token (each
    /// becomes "unknown", which is refused) and counts them. `reason`
    /// documents the call sites; the counters carry the signal.
    fn quarantine(&self, reason: &'static str) {
        let _ = reason;
        let dropped = self.issuer.quarantine_outstanding();
        self.stats.tokens_quarantined.fetch_add(dropped as u64, Ordering::Relaxed);
    }

    /// The current restore generation (monotonic across persists).
    /// Deployments record this *outside* the volume — together with
    /// [`CasServer::journal_sequence`] — after each graceful persist
    /// and hand both back to [`CasServer::check_rollback`] after a
    /// restore.
    #[must_use]
    pub fn restore_generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The highest journal record sequence number this server has
    /// committed (after a restore: the last sequence replayed). The
    /// second half of the rollback witness: generations only move at
    /// snapshots, so they cannot see a host deleting the journal's
    /// committed *tail* — which is indistinguishable from a clean
    /// journal end at the storage layer. The sequence can.
    #[must_use]
    pub fn journal_sequence(&self) -> u64 {
        self.pipe.sequence()
    }

    /// Compares the restored state against an externally kept witness
    /// `(generation, journal sequence)`. A volume whose snapshot *and*
    /// checkpoints are older than the witnessed generation, or whose
    /// replayed journal ends before the witnessed sequence, can only
    /// be a replayed older disk image or a truncated journal: the
    /// rollback is counted in [`CasStats::rollback_detected`] and
    /// every outstanding token is quarantined — the rolled-back table
    /// may resurrect tokens redeemed (and acked) on the newer image,
    /// so none of them may be honored. Returns whether a rollback was
    /// detected.
    ///
    /// Residual honesty: events acked *after* the witness was last
    /// refreshed are not covered — deleting exactly that suffix is
    /// undetectable by any periodically refreshed witness. Refreshing
    /// per persist bounds the exposure to one checkpoint window; a
    /// platform monotonic counter updated per append would close it
    /// entirely (see ROADMAP).
    pub fn check_rollback(&self, witness_generation: u64, witness_sequence: u64) -> bool {
        if self.generation.load(Ordering::Relaxed) >= witness_generation
            && self.pipe.sequence() >= witness_sequence
        {
            return false;
        }
        self.stats.rollback_detected.fetch_add(1, Ordering::Relaxed);
        self.quarantine("disk image rollback");
        true
    }

    /// Selects how redemption journaling is driven (default:
    /// [`JournalMode::GroupCommit`]). Exposed for the
    /// `ablation/journal` bench and for deployments that accept the
    /// documented crash window in exchange for zero append cost.
    pub fn set_journal_mode(&self, mode: JournalMode) {
        self.journal_mode.store(mode.as_u8(), Ordering::Relaxed);
    }

    /// The current journal mode.
    #[must_use]
    pub fn journal_mode(&self) -> JournalMode {
        JournalMode::from_u8(self.journal_mode.load(Ordering::Relaxed))
    }

    // ---- Replication & fencing -------------------------------------------

    /// This server's own fencing generation — the highest fence it has
    /// committed under.
    #[must_use]
    pub fn fence(&self) -> u64 {
        self.fence.load(Ordering::Relaxed)
    }

    /// The highest fencing generation observed fleet-wide (always at
    /// least [`CasServer::fence`]).
    #[must_use]
    pub fn fence_ceiling(&self) -> u64 {
        self.fence_ceiling.load(Ordering::Relaxed)
    }

    /// Whether this server is deposed: a fence above its own has been
    /// observed (a failover promoted a replica past it). A fenced
    /// server refuses every write — grants, redemptions, checkpoints —
    /// while read-only service (policy retrieval, baseline
    /// attestation) continues.
    #[must_use]
    pub fn is_fenced(&self) -> bool {
        self.fence_ceiling.load(Ordering::Relaxed) > self.fence.load(Ordering::Relaxed)
    }

    /// Records a fencing generation observed from a peer. A fence
    /// above the highest previously seen is counted
    /// ([`CasStats::fences_observed`]) and persisted through the
    /// store, so restarting from this volume stays fenced. Returns
    /// whether the server is now fenced.
    pub fn observe_fence(&self, peer_fence: u64) -> bool {
        let previous = self.fence_ceiling.fetch_max(peer_fence, Ordering::Relaxed);
        if peer_fence > previous {
            self.stats.fences_observed.fetch_add(1, Ordering::Relaxed);
            // Best-effort durability: even if the write fails, the
            // live process stays fenced; only a crash-restart of this
            // exact volume could forget the observation.
            let _ = self.store.persist_fence(peer_fence);
        }
        self.is_fenced()
    }

    /// Promotes this replica to primary under a fresh fencing
    /// generation: one above everything it has ever seen. The bump is
    /// committed durably as a [`JournalRecord::Fence`] record —
    /// continuing the primary's sequence numbering, so the promoted
    /// journal is a strict suffix extension — and persisted as the
    /// fence ceiling. Any still-running old primary that hears this
    /// fence (over a replication session) refuses all further writes.
    ///
    /// The caller must have stopped this replica's follower pump
    /// first; promotion clears the following flag and drops the
    /// forward link, so writes are served locally from here on.
    ///
    /// # Errors
    ///
    /// Propagates journal/volume failures; the promotion is not
    /// durable and must not be announced.
    pub fn promote(&self) -> Result<u64, SinclaveError> {
        let new_fence =
            self.fence.load(Ordering::Relaxed).max(self.fence_ceiling.load(Ordering::Relaxed)) + 1;
        self.following.store(false, Ordering::Relaxed);
        *self.forward.write() = None;
        self.fence.store(new_fence, Ordering::Relaxed);
        self.fence_ceiling.store(new_fence, Ordering::Relaxed);
        self.commit_record(JournalRecord::Fence { fence: new_fence })?;
        self.store.persist_fence(new_fence)?;
        Ok(new_fence)
    }

    /// Marks this server as a live replication subscriber (set by the
    /// follower pump). While following, local writes are refused and
    /// checkpoints are deferred — every durable record must come from
    /// the primary's stream so sequence numbers stay primary-owned.
    pub fn set_following(&self, following: bool) {
        self.following.store(following, Ordering::Relaxed);
    }

    /// Whether this server is currently a live replication subscriber.
    #[must_use]
    pub fn is_following(&self) -> bool {
        self.following.load(Ordering::Relaxed)
    }

    /// Installs (or clears) the write-forwarding link a follower uses
    /// to linearize grants and redemptions through the primary.
    pub fn set_forward_link(&self, link: Option<Arc<ForwardLink>>) {
        *self.forward.write() = link;
    }

    fn forward_link(&self) -> Option<Arc<ForwardLink>> {
        self.forward.read().clone()
    }

    /// Installs (or clears) the hub committed batches are published
    /// to; set by [`crate::replica::serve_replication`].
    pub(crate) fn set_replication_hub(&self, hub: Option<Arc<ReplicationHub>>) {
        *self.replication.write() = hub;
    }

    /// The live replication hub, if this server is serving
    /// subscribers — the primary half of the `trace` view's
    /// replication-lag gauges.
    pub(crate) fn replication_hub(&self) -> Option<Arc<ReplicationHub>> {
        self.replication.read().clone()
    }

    /// Follower-side stream bookkeeping: stamps the last time the
    /// replication stream spoke (a batch applied or a heartbeat
    /// heard) and, when the frame carried it, the primary's high
    /// journal sequence. Called by the follower pump; feeds
    /// [`CasServer::follower_lag`].
    pub(crate) fn note_stream_progress(&self, primary_high_seq: Option<u64>) {
        self.replication_stream_ns.store(trace::now_ns(), Ordering::Relaxed);
        if let Some(high) = primary_high_seq {
            self.replication_high_seq.fetch_max(high, Ordering::Relaxed);
        }
    }

    /// A follower's replication-lag gauges as `(local_seq,
    /// primary_seq, stream_age_ns)`; `None` on a server that is not
    /// following. `primary_seq` trails reality by at most one
    /// heartbeat interval, so `primary_seq - local_seq` is the acked
    /// sequence delta an operator reads as "how far behind".
    pub(crate) fn follower_lag(&self) -> Option<(u64, u64, u64)> {
        if !self.is_following() {
            return None;
        }
        let last = self.replication_stream_ns.load(Ordering::Relaxed);
        let age = if last == 0 { 0 } else { trace::now_ns().saturating_sub(last) };
        Some((self.journal_sequence(), self.replication_high_seq.load(Ordering::Relaxed), age))
    }

    /// Adopts a primary's bootstrap baseline: raw snapshot bytes plus
    /// the sealed journal suffix, exactly what the primary's own
    /// restart would replay.
    ///
    /// A replica already at or past `baseline_seq` skips the snapshot
    /// and applies only the suffix (records at or below its own high
    /// sequence are skipped idempotently) — the reconnect catch-up
    /// path. A cold replica adopts the snapshot wholesale and persists
    /// it before replaying the suffix. A *warm* replica that has
    /// fallen behind the snapshot cannot catch up by suffix alone and
    /// is refused — the deployment re-provisions it from a fresh
    /// store.
    ///
    /// Returns the replica's high journal sequence after adoption.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ReplicationInvalid`] on a malformed or
    /// inconsistent baseline, or when this replica is too stale;
    /// propagates volume failures.
    pub fn adopt_baseline(
        &self,
        fence: u64,
        baseline_seq: u64,
        snapshot: &[u8],
        chunks: &[Vec<u8>],
    ) -> Result<u64, SinclaveError> {
        let last = self.pipe.sequence();
        if last < baseline_seq {
            if last != 0 || self.snapshot_on_disk.load(Ordering::Relaxed) {
                return Err(SinclaveError::ReplicationInvalid {
                    context: "replica too stale for suffix catch-up",
                });
            }
            if snapshot.is_empty() {
                return Err(SinclaveError::ReplicationInvalid {
                    context: "baseline sequence without snapshot",
                });
            }
            let parsed = IssuerSnapshot::from_bytes(snapshot)
                .map_err(|_| SinclaveError::ReplicationInvalid { context: "baseline snapshot" })?;
            if parsed.journal_sequence != baseline_seq {
                return Err(SinclaveError::ReplicationInvalid {
                    context: "baseline sequence mismatch",
                });
            }
            self.issuer
                .restore_snapshot(&parsed)
                .map_err(|_| SinclaveError::ReplicationInvalid { context: "baseline snapshot" })?;
            // Durable bootstrap: persist the adopted snapshot bytes
            // verbatim, so this replica's own restart replays from
            // the same baseline instead of coming up cold.
            self.store.persist_state(snapshot)?;
            self.generation.store(parsed.generation, Ordering::Relaxed);
            self.journal_baseline.store(baseline_seq, Ordering::Relaxed);
            self.persisted_epoch.store(self.issuer.mutation_epoch(), Ordering::Relaxed);
            self.snapshot_on_disk.store(true, Ordering::Relaxed);
            self.stats.snapshot_restored.fetch_add(1, Ordering::Relaxed);
            self.pipe.resume_after(baseline_seq);
        }
        // Operate under the primary's fence: the follower is in-sync
        // authority-wise, not deposed, so both halves rise together.
        self.fence.fetch_max(fence, Ordering::Relaxed);
        self.fence_ceiling.fetch_max(fence, Ordering::Relaxed);
        let _ = self.store.persist_fence(self.fence_ceiling.load(Ordering::Relaxed));
        for chunk in chunks {
            self.apply_replicated_batch(chunk)?;
        }
        Ok(self.pipe.sequence())
    }

    /// Applies one sealed record batch from the replication stream:
    /// journal it locally first (write-ahead, preserving the
    /// primary's sequence numbers), then replay it through the same
    /// idempotent [`SingletonIssuer::apply_record`] path restart
    /// recovery uses. Records at or below the replica's high sequence
    /// are skipped — re-delivery after a reconnect is a no-op — and a
    /// gap above it refuses the whole batch, forcing a baseline
    /// resync.
    ///
    /// Returns the replica's high journal sequence after the batch.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ReplicationInvalid`] on a damaged
    /// batch or a sequence gap (counted in
    /// [`CasStats::replication_frames_rejected`] for damage);
    /// propagates append failures.
    // invariant: journal-before-ack
    pub fn apply_replicated_batch(&self, payload: &[u8]) -> Result<u64, SinclaveError> {
        let batch = decode_batch(payload);
        if batch.damaged.is_some() {
            self.stats.replication_frames_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SinclaveError::ReplicationInvalid { context: "damaged record batch" });
        }
        let mut last = self.pipe.sequence();
        let mut fresh = Vec::new();
        for sequenced in &batch.records {
            if sequenced.seq <= last {
                continue;
            }
            if sequenced.seq != last + 1 {
                return Err(SinclaveError::ReplicationInvalid {
                    context: "replication sequence gap",
                });
            }
            last = sequenced.seq;
            fresh.push(*sequenced);
        }
        if fresh.is_empty() {
            return Ok(last);
        }
        // Write-ahead: durable before visible, same as the primary's
        // commit path. A crash between the append and the in-memory
        // replay below loses nothing — restart replays the journal.
        if self.journal_mode() != JournalMode::Disabled {
            self.store.append_journal(&encode_batch(&fresh))?;
        }
        for sequenced in &fresh {
            match sequenced.record {
                JournalRecord::Checkpoint { generation } => {
                    self.generation.fetch_max(generation, Ordering::Relaxed);
                }
                JournalRecord::Fence { fence } => {
                    self.fence.fetch_max(fence, Ordering::Relaxed);
                    self.fence_ceiling.fetch_max(fence, Ordering::Relaxed);
                }
                _ => {
                    self.issuer.apply_record(&sequenced.record);
                }
            }
            self.stats.replication_records_replayed.fetch_add(1, Ordering::Relaxed);
        }
        self.pipe.resume_after(last);
        Ok(last)
    }

    // ---- Admission-control middleware ------------------------------------

    /// Installs the admission-control stack (see [`crate::middleware`]
    /// for the layers and their fixed order). Replaces the previous
    /// chain whole — limiter buckets, quota counters and breaker state
    /// start fresh. The default chain (every layer off) serves
    /// bit-identically to the unprotected loop.
    pub fn set_middleware(&self, config: MiddlewareConfig) {
        *self.middleware.write() = Arc::new(MiddlewareChain::new(config));
    }

    /// The currently installed middleware chain.
    #[must_use]
    pub fn middleware(&self) -> Arc<MiddlewareChain> {
        self.middleware.read().clone()
    }

    /// Persist the durable state whenever `interval` has passed since
    /// the last persist (`None` disables the tick). Driven by the
    /// reactor's timer wheel, so it only fires on the reactor serving
    /// path; the event-count cadence
    /// ([`CasServer::set_snapshot_cadence`]) stays as the floor under
    /// load, this tick bounds the replay window when *idle*.
    pub fn set_snapshot_interval(&self, interval: Option<Duration>) {
        let micros =
            interval.map_or(0, |i| u64::try_from(i.as_micros()).unwrap_or(u64::MAX).max(1));
        self.snapshot_interval_micros.store(micros, Ordering::Relaxed);
    }

    /// The configured time-based snapshot cadence, if any.
    #[must_use]
    pub fn snapshot_interval(&self) -> Option<Duration> {
        match self.snapshot_interval_micros.load(Ordering::Relaxed) {
            0 => None,
            micros => Some(Duration::from_micros(micros)),
        }
    }

    /// The stable identity the rate-limit and quota layers charge a
    /// request to: the SigStruct signer for grants (one key pair per
    /// application vendor), the config id for attestations. Control
    /// messages (ping, challenge) carry no identity and are never
    /// charged.
    fn request_identity(message: &Message) -> Option<Digest> {
        match message {
            Message::GrantRequest { common_sigstruct, .. } => {
                SigStruct::from_bytes(common_sigstruct).ok().map(|s| s.mrsigner())
            }
            Message::AttestRequest { config_id, .. }
            | Message::BaselineAttestRequest { config_id, .. } => {
                Some(sinclave_crypto::sha256::digest_parts(&[config_id.as_bytes()]))
            }
            _ => None,
        }
    }

    /// Whether dispatching `message` will need a journal append (and
    /// therefore must pass the circuit breaker while journaling is
    /// enabled): grants journal their token delta, singleton
    /// attestations journal the redemption.
    fn needs_journal_append(message: &Message) -> bool {
        matches!(message, Message::GrantRequest { .. } | Message::AttestRequest { .. })
    }

    /// Runs the per-request admission layers in fixed order (rate
    /// limit → quota → breaker); returns the refusal reply if any
    /// layer refuses, `None` to proceed to dispatch. Shared verbatim
    /// by both serving paths.
    pub(crate) fn admission_refusal(
        &self,
        chain: &MiddlewareChain,
        message: &Message,
    ) -> Option<Message> {
        let admitting = Instant::now();
        let refusal = match Self::request_identity(message) {
            Some(identity) => chain.admit(&identity).err(),
            None => None,
        }
        .or_else(|| {
            if Self::needs_journal_append(message) && self.journal_mode() != JournalMode::Disabled {
                chain.admit_journaling().err()
            } else {
                None
            }
        });
        let Some(refusal) = refusal else {
            trace::record_elapsed("admission", admitting.elapsed(), SpanOutcome::Ok);
            return None;
        };
        match refusal {
            Refusal::RateLimited => &self.stats.requests_rate_limited,
            Refusal::QuotaExceeded => &self.stats.requests_quota_denied,
            Refusal::LoadShed => &self.stats.requests_shed,
        }
        .fetch_add(1, Ordering::Relaxed);
        // Two spans: the decision span names the refusing layer, the
        // admission span prices the whole chain walk. Refused spans
        // pin the trace (tail sampling keeps every shed request).
        trace::record_elapsed(refusal.trace_stage(), admitting.elapsed(), SpanOutcome::Refused);
        trace::record_elapsed("admission", admitting.elapsed(), SpanOutcome::Refused);
        // The caller counts the Denied reply in `denials` like any
        // other refusal; here only the per-layer counter moves.
        Some(Message::Denied { reason: refusal.reason().into() })
    }

    /// Dispatches under the panic-isolation layer: a panic anywhere in
    /// request handling is contained ([`CasStats::panics_isolated`])
    /// and reported as `None`, upon which the caller closes the
    /// connection — one poisoned request cannot take down a serving
    /// thread or an event loop.
    pub(crate) fn dispatch_isolated(
        &self,
        message: Message,
        outstanding_nonce: &mut Option<[u8; 16]>,
        transcript: &Digest,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Option<Message> {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.dispatch(message, outstanding_nonce, transcript, rng)
        }));
        match caught {
            Ok(reply) => Some(reply),
            Err(_) => {
                self.stats.panics_isolated.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Test instrumentation for the panic-isolation layer: arms a
    /// one-shot panic in the next dispatched `Ping`. Hidden because it
    /// exists only so integration tests can prove a dispatch panic is
    /// contained; it has no production use.
    #[doc(hidden)]
    pub fn set_dispatch_panic_for_tests(&self) {
        self.panic_on_next_ping.store(true, Ordering::Relaxed);
    }

    /// Commits one record through the group-commit pipe (see
    /// [`crate::commit`]); returns once it is durable. In
    /// [`JournalMode::Disabled`] this is a no-op. Every real append
    /// outcome feeds the middleware circuit breaker — this is the
    /// storage boundary the breaker guards, shared by both serving
    /// paths and by [`CasServer::persist_state`]'s checkpoint.
    /// This is also the **fencing boundary**: a server whose fence is
    /// outranked (a failover promoted a replica past it) refuses every
    /// commit here, so a deposed primary that kept serving through a
    /// partition cannot make a write durable — and therefore cannot
    /// ack it.
    // invariant: journal-before-ack
    fn commit_record(&self, record: JournalRecord) -> Result<(), SinclaveError> {
        if self.is_fenced() {
            self.stats.writes_fenced.fetch_add(1, Ordering::Relaxed);
            return Err(SinclaveError::JournalInvalid { context: "journal fenced" });
        }
        if self.following.load(Ordering::Relaxed) {
            return Err(SinclaveError::JournalInvalid { context: "journal following" });
        }
        let mode = self.journal_mode();
        if mode == JournalMode::Disabled {
            return Ok(());
        }
        let hub = self.replication.read().clone();
        let result =
            self.pipe.commit(mode == JournalMode::GroupCommit, record, &self.stats, |payload| {
                let flushing = Instant::now();
                self.store.append_journal(payload)?;
                // One sample per sealed batch (the group-commit flush
                // the paper's durability trade-off is priced in), not
                // per record that rode along. The span lands on the
                // leader's trace only — the requests that rode along
                // paid the wait, not the flush.
                self.latency.journal_flush.record(flushing.elapsed());
                trace::record_elapsed("journal_flush", flushing.elapsed(), SpanOutcome::Ok);
                // Publish exactly the sealed batch that landed on
                // disk. Flushes are serialized by the pipe, so
                // subscribers observe batches in sequence order.
                if let Some(hub) = &hub {
                    hub.publish(payload);
                    self.stats.replication_batches_streamed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            });
        self.middleware.read().record_commit(result.is_ok());
        result
    }

    /// Redeems a token durably: the in-memory exactly-once transition
    /// first, then the journal append — the reply (and therefore the
    /// ack the caller builds from it) must not exist before the record
    /// does. On append failure the token stays consumed in memory and
    /// the call errors: the service fails closed rather than acking an
    /// event a crash could forget.
    ///
    /// # Errors
    ///
    /// * [`SinclaveError::TokenNotRedeemable`] — unknown, reused, or
    ///   measurement-mismatched token.
    /// * [`SinclaveError::JournalInvalid`] — the durable append
    ///   failed; the redemption must not be acked.
    // invariant: journal-before-ack
    pub fn redeem_token(
        &self,
        token: &AttestationToken,
        attested_mrenclave: &Measurement,
    ) -> Result<Measurement, SinclaveError> {
        // Fencing is checked *before* the in-memory transition: a
        // deposed primary must not even consume the token locally,
        // because the promoted replica owns the authoritative table
        // now and may legitimately honor it.
        if self.is_fenced() {
            self.stats.writes_fenced.fetch_add(1, Ordering::Relaxed);
            return Err(SinclaveError::JournalInvalid { context: "journal fenced" });
        }
        let common = self.issuer.redeem(token, attested_mrenclave)?;
        self.commit_record(SingletonIssuer::redemption_record(token))?;
        let redeemed = self.stats.tokens_redeemed.fetch_add(1, Ordering::Relaxed) + 1;
        self.persist_on_cadence(redeemed);
        Ok(common)
    }

    /// Default worker-pool width: one worker per core, capped at 8
    /// (CAS is crypto-bound; more workers than cores only adds
    /// scheduling noise).
    #[must_use]
    pub fn default_workers() -> usize {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8)
    }

    /// Serves `connections` connections on `addr` from a background
    /// worker pool of [`CasServer::default_workers`] threads (see the
    /// module docs for the concurrency model).
    #[must_use]
    pub fn serve(
        self: &Arc<Self>,
        network: &Network,
        addr: &str,
        connections: usize,
        seed: u64,
    ) -> JoinHandle<()> {
        self.serve_with_workers(network, addr, connections, seed, Self::default_workers())
    }

    /// [`CasServer::serve`] with an explicit worker count; `1`
    /// reproduces the strictly sequential accept loop of the paper's
    /// single CAS instance (the Fig. 7c baseline).
    ///
    /// The returned handle joins once all `connections` slots have
    /// been served (or their accepts timed out).
    #[must_use]
    pub fn serve_with_workers(
        self: &Arc<Self>,
        network: &Network,
        addr: &str,
        connections: usize,
        seed: u64,
        workers: usize,
    ) -> JoinHandle<()> {
        let listener = Arc::new(network.listen(addr));
        let server = self.clone();
        let guard = ServeGuard::register(self);
        let workers = workers.clamp(1, connections.max(1));
        std::thread::spawn(move || {
            let _serving = guard;
            let next_slot = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        // Claim the next connection slot before
                        // accepting so exactly `connections` accepts
                        // happen across the pool, each with its own
                        // deterministic per-slot generator.
                        let slot = next_slot.fetch_add(1, Ordering::Relaxed);
                        if slot >= connections as u64 {
                            return;
                        }
                        let Some(conn) = server.accept_drainable(&listener) else { return };
                        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(slot));
                        // A failed handshake or protocol error only
                        // affects that one connection.
                        let _ = server.handle_connection(conn, &mut rng);
                    });
                }
            });
        })
    }

    /// Accepts one connection with drain awareness: the transport's
    /// default accept budget ([`sinclave_net::bus::RECV_TIMEOUT`]) is
    /// spent in [`DRAIN_POLL`] slices so a worker parked in accept
    /// notices [`CasServer::shutdown`] within one slice instead of the
    /// full budget. `None` means stop serving — draining, or the
    /// budget timed out with no dialer.
    pub(crate) fn accept_drainable(&self, listener: &sinclave_net::Listener) -> Option<Connection> {
        let deadline = Instant::now() + sinclave_net::bus::RECV_TIMEOUT;
        loop {
            if self.is_draining() {
                return None;
            }
            match listener.accept_timeout(DRAIN_POLL) {
                Ok(conn) => return Some(conn),
                Err(NetError::Timeout) if Instant::now() < deadline => {}
                Err(_) => return None,
            }
        }
    }

    /// Handles one connection: secure-channel handshake, then a
    /// **pipelined** message loop until the peer disconnects.
    ///
    /// The channel is split into its halves: a writer thread owns the
    /// sending half and drains a bounded in-order reply queue
    /// (serializing and AEAD-sealing reply *N*) while this thread
    /// already receives, decodes and dispatches request *N + 1*. Reply
    /// order is the queue order, i.e. request order; and because all
    /// dispatching — everything that touches `rng` or per-connection
    /// state — stays on this one thread in receive order, the bytes a
    /// client observes are bit-identical to the old strictly
    /// sequential loop (the per-slot seed derivation of
    /// [`CasServer::serve_with_workers`] holds unchanged at 1 worker).
    ///
    /// # Errors
    ///
    /// Returns transport/handshake failures; protocol-level rejections
    /// (middleware refusals included) are answered with
    /// [`Message::Denied`] instead. A peer that simply goes away
    /// (disconnect/timeout) ends the loop cleanly with `Ok(())`; a
    /// record that fails authentication is counted in
    /// [`CasStats::records_rejected`] and surfaces as
    /// [`NetError::RecordCorrupt`] — a tampered transport must be
    /// distinguishable from a polite hang-up. A *configured* handshake
    /// or idle deadline firing is counted in
    /// [`CasStats::connections_timed_out`]: with deadlines on, a
    /// stalled client costs one bounded wait instead of pinning the
    /// worker for the transport default.
    pub fn handle_connection(
        &self,
        conn: Connection,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<(), NetError> {
        let chain = self.middleware();
        conn.set_recv_timeout(chain.config().handshake_timeout);
        let chan = match SecureChannel::server_accept(conn, &self.channel_key, rng) {
            Ok(chan) => chan,
            Err(e) => {
                if e == NetError::Timeout && chain.config().handshake_timeout.is_some() {
                    self.stats.connections_timed_out.fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        };
        chan.set_recv_timeout(chain.config().idle_timeout);
        let transcript = chan.transcript();
        let (mut sender, mut receiver) = chan.split();
        let mut outstanding_nonce: Option<[u8; 16]> = None;
        std::thread::scope(|scope| {
            // Replies travel with the Instant their raw request frame
            // arrived — so the writer thread can price the full
            // received→written span (the `request` histogram) after it
            // times its own sealing work — and with the request's
            // active trace (if lit), which the writer completes after
            // the reply bytes are on the wire.
            let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel::<(
                Message,
                Instant,
                Option<Box<trace::ActiveTrace>>,
            )>(PIPELINE_DEPTH);
            let latency = Arc::clone(&self.latency);
            let tracer = &self.tracer;
            let writer = scope.spawn(move || -> Result<(), NetError> {
                for (reply, received_at, active) in reply_rx {
                    let sealing = Instant::now();
                    // Only a request that itself carried a trace
                    // context gets it echoed on the reply — a plain
                    // client's bytes are untouched even with tracing
                    // lit, and with it dark `active` is always `None`.
                    let echo = active.as_ref().filter(|t| t.inherited()).map(|t| t.context());
                    sender.send(&reply.to_bytes_traced(echo.as_ref()))?;
                    latency.seal.record(sealing.elapsed());
                    latency.request.record(received_at.elapsed());
                    if let Some(mut active) = active {
                        active.record_elapsed("seal", sealing.elapsed(), SpanOutcome::Ok);
                        tracer.finish(active);
                    }
                }
                Ok(())
            });
            let received = loop {
                let raw = match receiver.recv() {
                    Ok(raw) => raw,
                    Err(NetError::Timeout) => {
                        // A configured read deadline firing is the
                        // slow-loris defense doing its job; the
                        // transport default firing is a clean close.
                        if chain.config().idle_timeout.is_some() {
                            self.stats.connections_timed_out.fetch_add(1, Ordering::Relaxed);
                        }
                        break Ok(());
                    }
                    // Transport close: the peer is done with us.
                    Err(NetError::Disconnected) => break Ok(()),
                    Err(e) => {
                        if e == NetError::RecordCorrupt {
                            self.stats.records_rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        break Err(e);
                    }
                };
                let received_at = Instant::now();
                let (reply, active) = match Message::from_bytes_traced(&raw) {
                    Ok((message, inherited)) => {
                        // The trace begins at admission and rides the
                        // thread-local while this thread dispatches,
                        // so deep call sites (issuer observer, commit
                        // flush, admission decisions) record spans
                        // without signature churn.
                        if let Some(started) = self.tracer.begin(inherited) {
                            trace::install(started);
                        }
                        match self.admission_refusal(&chain, &message) {
                            Some(refused) => (refused, trace::take()),
                            None => match self.dispatch_deduped(
                                &chain,
                                message,
                                &mut outstanding_nonce,
                                &transcript,
                                rng,
                            ) {
                                Some(reply) => (reply, trace::take()),
                                // Contained panic: close this
                                // connection, keep the worker — and
                                // pin the trace as errored so the
                                // flight recorder keeps the evidence.
                                None => {
                                    if let Some(mut orphan) = trace::take() {
                                        orphan.mark_errored();
                                        self.tracer.finish(orphan);
                                    }
                                    break Ok(());
                                }
                            },
                        }
                    }
                    Err(_) => (Message::Denied { reason: "malformed message".into() }, None),
                };
                if matches!(reply, Message::Denied { .. }) {
                    self.stats.denials.fetch_add(1, Ordering::Relaxed);
                }
                // A closed queue means the writer already failed on a
                // transport error; fall through and report that.
                if reply_tx.send((reply, received_at, active)).is_err() {
                    break Ok(());
                }
                // Drain point: the in-flight request was answered (the
                // writer flushes everything queued before exiting), so
                // a draining server closes here rather than take the
                // next request.
                if self.is_draining() {
                    break Ok(());
                }
            };
            drop(reply_tx);
            // A panicked writer thread is reported as a transport
            // failure on this connection, not an abort of the server.
            let written = writer.join().unwrap_or(Err(NetError::Disconnected));
            received.and(written)
        })
    }

    /// Dispatch wrapped in the request-dedup layer (between
    /// admission and panic isolation; see [`crate::middleware`]): a
    /// byte-identical retried grant replays the cached reply instead
    /// of issuing a second token. Shared verbatim by both serving
    /// paths. Returns `None` on a contained dispatch panic (the
    /// caller closes the connection).
    pub(crate) fn dispatch_deduped(
        &self,
        chain: &MiddlewareChain,
        message: Message,
        outstanding_nonce: &mut Option<[u8; 16]>,
        transcript: &Digest,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Option<Message> {
        // Only grants are deduplicated: they are the one request whose
        // retry mints fresh durable state (a second token). Attested
        // retrievals are read-mostly, and a redemption retry must be
        // *refused*, not replayed — exactly-once is the product.
        let key = (chain.config().dedup.is_some()
            && matches!(message, Message::GrantRequest { .. }))
        .then(|| sinclave_crypto::sha256::digest(&message.to_bytes()));
        if let Some(key) = &key {
            let replaying = Instant::now();
            if let Some(cached) = chain.dedup_lookup(key) {
                if let Ok(reply) = Message::from_bytes(&cached) {
                    self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    // Replays get their own latency stage and span so
                    // a retry storm served from the cache stays
                    // attributable instead of silently pulling the
                    // end-to-end p50 down.
                    self.latency.dedup_replay.record(replaying.elapsed());
                    trace::record_elapsed("dedup_hit", replaying.elapsed(), SpanOutcome::Ok);
                    return Some(reply);
                }
            }
        }
        let reply = if chain.config().isolate_panics {
            self.dispatch_isolated(message, outstanding_nonce, transcript, rng)?
        } else {
            self.dispatch(message, outstanding_nonce, transcript, rng)
        };
        if let Some(key) = key {
            if matches!(reply, Message::GrantResponse { .. }) {
                chain.dedup_store(&key, reply.to_bytes());
            }
        }
        Some(reply)
    }

    pub(crate) fn dispatch(
        &self,
        message: Message,
        outstanding_nonce: &mut Option<[u8; 16]>,
        transcript: &Digest,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Message {
        // Write routing: a follower linearizes grants through the
        // primary; a fenced (deposed) primary refuses them outright.
        // Reads — ping, challenge, attested retrieval — stay local on
        // every replica.
        if matches!(message, Message::GrantRequest { .. }) {
            if let Some(link) = self.forward_link() {
                self.stats.forwarded_writes.fetch_add(1, Ordering::Relaxed);
                // The trace context travels on the Forward frame with
                // hop + 1; the primary's spans come back on the Reply
                // and are rebased into the forward span's start, so
                // one causal tree spans both nodes.
                let ctx = trace::map_active(|t| t.forward_context());
                let forward_start = trace::now_ns();
                return match link.forward(&message, ctx) {
                    Ok((reply, spans)) => {
                        trace::with_active(|t| {
                            t.record("forward", forward_start, trace::now_ns(), SpanOutcome::Ok);
                            t.absorb_remote(&spans, forward_start);
                        });
                        reply
                    }
                    Err(reason) => {
                        trace::with_active(|t| {
                            t.record("forward", forward_start, trace::now_ns(), SpanOutcome::Error);
                        });
                        Message::Denied { reason }
                    }
                };
            }
            if self.following.load(Ordering::Relaxed) {
                return Message::Denied { reason: "read-only replica".into() };
            }
            if self.is_fenced() {
                self.stats.writes_fenced.fetch_add(1, Ordering::Relaxed);
                return Message::Denied { reason: "server fenced".into() };
            }
        }
        match message {
            Message::Ping => {
                if self.panic_on_next_ping.swap(false, Ordering::Relaxed) {
                    // lint: allow(panic) — test hook, armed only by crash-recovery tests
                    panic!("test-armed dispatch panic");
                }
                Message::Pong
            }
            Message::ChallengeRequest => {
                let mut nonce = [0u8; 16];
                rng.fill_bytes(&mut nonce);
                *outstanding_nonce = Some(nonce);
                Message::Challenge { nonce }
            }
            Message::GrantRequest { common_sigstruct, base_hash } => {
                self.handle_grant(&common_sigstruct, &base_hash, rng)
            }
            Message::AttestRequest { quote, token, config_id } => {
                self.handle_attest(&quote, Some(token), &config_id, outstanding_nonce, transcript)
            }
            Message::BaselineAttestRequest { quote, config_id } => {
                self.handle_attest(&quote, None, &config_id, outstanding_nonce, transcript)
            }
            // The operability probe: read-only, identity-less, never
            // journaled — answered even fenced or following, because
            // an operator must be able to ask a sick server how sick
            // it is.
            Message::StatusRequest { view } => match crate::status::status_body(self, &view) {
                Some(body) => Message::StatusResponse { body },
                None => Message::Denied { reason: "unknown status view".into() },
            },
            _ => Message::Denied { reason: "unexpected message".into() },
        }
    }

    fn handle_grant(
        &self,
        common_sigstruct: &[u8],
        base_hash: &[u8],
        rng: &mut (impl RngCore + ?Sized),
    ) -> Message {
        let Ok(sigstruct) = SigStruct::from_bytes(common_sigstruct) else {
            return Message::Denied { reason: "sigstruct malformed".into() };
        };
        let Ok(base_hash) = BaseEnclaveHash::decode(base_hash) else {
            return Message::Denied { reason: "base hash malformed".into() };
        };
        // The issuer keeps a prepared midstate *and* a verified-
        // SigStruct cache per registered enclave, so repeat grants for
        // the same binary skip both the instance-page re-hashing and
        // the ~0.4 ms RSA verification — the two cacheable components
        // of Fig. 7c's retrieval cost.
        match self.issuer.issue(rng, &sigstruct, &base_hash) {
            Ok(grant) => {
                // Durability ordering: the grant delta is journaled
                // before the reply exists, so a crash after the ack
                // cannot forget a token the starter is about to
                // redeem. (Without the record the token would come
                // back unknown — refused, i.e. failing closed — but
                // the legitimate singleton would be unable to attest.)
                if let Some(record) = self.issuer.grant_record(&grant) {
                    if self.commit_record(record).is_err() {
                        // The denied token never leaves the server;
                        // withdrawing it keeps the table from leaking
                        // a forever-Issued entry per failed append.
                        // (A cadence snapshot racing this window can
                        // still capture the token as Issued; the
                        // withdrawal dirties the epoch so the next
                        // persist corrects it, and until then a crash
                        // restores an unredeemable entry — fails
                        // closed, never honors it.)
                        self.issuer.withdraw_token(&grant.token);
                        return Message::Denied { reason: "journal append failed".into() };
                    }
                }
                let issued = self.stats.grants_issued.fetch_add(1, Ordering::Relaxed) + 1;
                // Cadence-triggered durability: every Nth grant seals
                // the issuer's state into the volume, bounding how
                // much cache warmth a crash loses.
                self.persist_on_cadence(issued);
                Message::GrantResponse {
                    token: grant.token,
                    verifier_identity: *grant.verifier_identity.as_bytes(),
                    sigstruct: grant.sigstruct.to_bytes(),
                }
            }
            Err(e) => Message::Denied { reason: e.to_string() },
        }
    }

    fn handle_attest(
        &self,
        quote_bytes: &[u8],
        token: Option<sinclave::AttestationToken>,
        config_id: &str,
        outstanding_nonce: &mut Option<[u8; 16]>,
        transcript: &Digest,
    ) -> Message {
        // Freshness: a challenge must have been requested on this
        // connection, and it is single-use.
        let Some(nonce) = outstanding_nonce.take() else {
            return Message::Denied { reason: "no outstanding challenge".into() };
        };
        let Ok(quote) = Quote::from_bytes(quote_bytes) else {
            return Message::Denied { reason: "quote malformed".into() };
        };
        let body = match quote.verify(&self.attestation_root, &nonce) {
            Ok(body) => body,
            Err(e) => return Message::Denied { reason: e.to_string() },
        };

        // Channel binding: the quote must name *this* channel.
        if &body.report_data.0[..32] != transcript.as_bytes() {
            return Message::Denied { reason: "channel binding mismatch".into() };
        }

        // A shard read-lock plus an `Arc` bump: concurrent retrievals
        // never serialize on the store, and a slow connection cannot
        // hold registration out.
        let Some(policy) = self.store.get_policy(config_id) else {
            return Message::Denied { reason: "unknown config id".into() };
        };

        if let Err(reason) = self.check_identity(body, &policy, token.as_ref()) {
            return Message::Denied { reason };
        }

        self.stats.configs_delivered.fetch_add(1, Ordering::Relaxed);
        Message::ConfigResponse { config: policy.config.to_bytes() }
    }

    /// The redemption half of a follower's split attestation flow:
    /// quote verification, channel binding and policy checks all ran
    /// locally, but the exactly-once token consumption must linearize
    /// through the primary — only one token table in the fleet is
    /// authoritative for writes.
    fn redeem_or_forward(
        &self,
        token: &AttestationToken,
        mrenclave: &Measurement,
    ) -> Result<Measurement, String> {
        if let Some(link) = self.forward_link() {
            self.stats.forwarded_writes.fetch_add(1, Ordering::Relaxed);
            // Redeem forwards ride a compact token frame that carries
            // no trace context; the local forward span still prices
            // the hop, without remote detail.
            let forwarding = Instant::now();
            let result = link.redeem(token, mrenclave);
            let out = if result.is_ok() { SpanOutcome::Ok } else { SpanOutcome::Error };
            trace::record_elapsed("forward", forwarding.elapsed(), out);
            return result;
        }
        if self.following.load(Ordering::Relaxed) {
            return Err("read-only replica".into());
        }
        self.redeem_token(token, mrenclave).map_err(|e| e.to_string())
    }

    fn check_identity(
        &self,
        body: &ReportBody,
        policy: &SessionPolicy,
        token: Option<&sinclave::AttestationToken>,
    ) -> Result<(), String> {
        if body.is_debug() && !policy.allow_debug {
            return Err("debug enclaves not allowed".into());
        }
        if body.mrsigner != policy.expected_mrsigner {
            return Err("unexpected signer identity".into());
        }
        if body.isv_svn < policy.min_isv_svn {
            return Err("security version too old".into());
        }
        match (token, policy.mode) {
            (None, PolicyMode::Singleton) => Err("policy requires singleton attestation".into()),
            (Some(_), PolicyMode::Baseline) => {
                Err("policy does not accept singleton attestation".into())
            }
            (None, PolicyMode::Baseline | PolicyMode::Either) => {
                if body.mrenclave == policy.expected_common {
                    Ok(())
                } else {
                    Err("unexpected enclave measurement".into())
                }
            }
            (Some(token), PolicyMode::Singleton | PolicyMode::Either) => {
                // Exactly-once token redemption, bound to the attested
                // measurement — and made *durable* (journaled) before
                // this arm returns, so the reply acking it cannot
                // outlive a crash the redemption does not. Then bind
                // the singleton to *this* application via its common
                // measurement.
                let common = self.redeem_or_forward(token, &body.mrenclave)?;
                if common == policy.expected_common {
                    Ok(())
                } else {
                    Err("singleton belongs to a different binary".into())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinclave::layout::EnclaveLayout;
    use sinclave::signer::{sign_enclave, SignerConfig};
    use sinclave::AppConfig;
    use sinclave_crypto::aead::AeadKey;
    use sinclave_sgx::measurement::Measurement;

    fn server(seed: u64) -> (Arc<CasServer>, RsaPrivateKey, RsaPublicKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let attestation_root_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let store = CasStore::create(AeadKey::new([7; 32]));
        let cas = CasServer::new(
            channel_key,
            signer_key.clone(),
            attestation_root_key.public_key().clone(),
            store,
        );
        (cas, signer_key, attestation_root_key.public_key().clone())
    }

    #[test]
    fn ping_pong_over_channel() {
        let (cas, _, _) = server(1);
        let network = Network::new();
        let handle = cas.serve(&network, "cas:443", 1, 10);
        let conn = network.connect("cas:443").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
        chan.send(&Message::Ping.to_bytes()).unwrap();
        assert_eq!(Message::from_bytes(&chan.recv().unwrap()).unwrap(), Message::Pong);
        drop(chan);
        handle.join().unwrap();
    }

    #[test]
    fn grant_flow_over_network() {
        let (cas, signer_key, _) = server(3);
        let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
        let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).unwrap();

        let network = Network::new();
        let handle = cas.serve(&network, "cas:443", 1, 30);
        let conn = network.connect("cas:443").unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
        chan.send(
            &Message::GrantRequest {
                common_sigstruct: signed.common_sigstruct.to_bytes(),
                base_hash: signed.base_hash.encode().to_vec(),
            }
            .to_bytes(),
        )
        .unwrap();
        let reply = Message::from_bytes(&chan.recv().unwrap()).unwrap();
        let Message::GrantResponse { verifier_identity, sigstruct, .. } = reply else {
            panic!("expected grant, got {reply:?}");
        };
        assert_eq!(Digest(verifier_identity), cas.identity());
        SigStruct::from_bytes(&sigstruct).unwrap().verify().unwrap();
        assert_eq!(cas.stats.grants_issued.load(Ordering::Relaxed), 1);
        drop(chan);
        handle.join().unwrap();
    }

    #[test]
    fn repeat_grants_share_one_prepared_midstate() {
        let (cas, signer_key, _) = server(11);
        let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
        let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..3 {
            cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        }
        assert_eq!(cas.issuer().prepared_cache_len(), 1);
    }

    #[test]
    fn grant_denied_for_foreign_signer() {
        let (cas, _, _) = server(5);
        let mut rng = StdRng::seed_from_u64(6);
        let foreign = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
        let signed = sign_enclave(&layout, &foreign, &SignerConfig::default()).unwrap();

        let network = Network::new();
        let handle = cas.serve(&network, "cas:443", 1, 60);
        let conn = network.connect("cas:443").unwrap();
        let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
        chan.send(
            &Message::GrantRequest {
                common_sigstruct: signed.common_sigstruct.to_bytes(),
                base_hash: signed.base_hash.encode().to_vec(),
            }
            .to_bytes(),
        )
        .unwrap();
        let reply = Message::from_bytes(&chan.recv().unwrap()).unwrap();
        assert!(matches!(reply, Message::Denied { .. }));
        assert_eq!(cas.stats.denials.load(Ordering::Relaxed), 1);
        drop(chan);
        handle.join().unwrap();
    }

    #[test]
    fn attest_without_challenge_denied() {
        let (cas, _, _) = server(7);
        let network = Network::new();
        let handle = cas.serve(&network, "cas:443", 1, 70);
        let conn = network.connect("cas:443").unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
        chan.send(
            &Message::BaselineAttestRequest { quote: vec![0; 8], config_id: "x".into() }.to_bytes(),
        )
        .unwrap();
        let reply = Message::from_bytes(&chan.recv().unwrap()).unwrap();
        assert!(
            matches!(&reply, Message::Denied { reason } if reason.contains("challenge")),
            "got {reply:?}"
        );
        drop(chan);
        handle.join().unwrap();
    }

    #[test]
    fn tampered_record_counted_and_distinguished_from_close() {
        use sinclave_net::channel::{ClientHello, ServerHello};
        use sinclave_net::wire::{Decode, Encode};

        let (cas, _, _) = server(20);
        let network = Network::new();
        let handle = cas.serve(&network, "cas:443", 2, 200);

        // Connection 1: handshake by hand (the hello types are public
        // exactly for adversarial tests like this), then inject a
        // garbage record straight on the transport.
        let conn = network.connect("cas:443").unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut client_nonce = [0u8; 32];
        rng.fill_bytes(&mut client_nonce);
        conn.send(ClientHello { version: 1, client_nonce }.encode()).unwrap();
        let server_hello = ServerHello::decode_all(&conn.recv().unwrap()).unwrap();
        let server_key = RsaPublicKey::from_bytes(&server_hello.server_key).unwrap();
        let (kem_ct, _shared) = server_key.kem_encapsulate(&mut rng).unwrap();
        conn.send(kem_ct.encode()).unwrap();
        conn.send(vec![0u8; 48]).unwrap(); // fails AEAD authentication
        assert_eq!(conn.recv(), Err(sinclave_net::NetError::Disconnected));

        // Connection 2: a well-behaved client that simply hangs up.
        let conn = network.connect("cas:443").unwrap();
        let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
        chan.send(&Message::Ping.to_bytes()).unwrap();
        assert_eq!(Message::from_bytes(&chan.recv().unwrap()).unwrap(), Message::Pong);
        drop(chan);
        handle.join().unwrap();

        // Exactly the tampered record was counted; the polite
        // disconnect was not.
        assert_eq!(cas.stats.records_rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pipelined_loop_is_seed_stable_at_one_worker() {
        // Two servers built from the same seed, each serving one
        // connection with one worker, must answer an identical request
        // sequence with bit-identical reply bytes: the pipelined loop
        // keeps all rng consumption in receive order.
        let run = |addr: &str| {
            let (cas, signer_key, _) = server(30);
            let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
            let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).unwrap();
            let network = Network::new();
            let handle = cas.serve_with_workers(&network, addr, 1, 123, 1);
            let conn = network.connect(addr).unwrap();
            let mut rng = StdRng::seed_from_u64(31);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
            let mut replies = Vec::new();
            for _ in 0..3 {
                chan.send(
                    &Message::GrantRequest {
                        common_sigstruct: signed.common_sigstruct.to_bytes(),
                        base_hash: signed.base_hash.encode().to_vec(),
                    }
                    .to_bytes(),
                )
                .unwrap();
                replies.push(chan.recv().unwrap());
            }
            chan.send(&Message::ChallengeRequest.to_bytes()).unwrap();
            replies.push(chan.recv().unwrap());
            drop(chan);
            handle.join().unwrap();
            replies
        };
        assert_eq!(run("cas:pipe-a"), run("cas:pipe-b"));
    }

    #[test]
    fn repeat_grants_share_one_verified_sigstruct() {
        let (cas, signer_key, _) = server(32);
        let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
        let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..3 {
            cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        }
        assert_eq!(cas.issuer().verified_cache_len(), 1);
    }

    /// Builds a server with a caller-provided store, reusing one key
    /// set across "restarts" (same seed → same keys).
    fn server_with_store(seed: u64, store: CasStore) -> (Arc<CasServer>, RsaPrivateKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let attestation_root_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let cas = CasServer::new(
            channel_key,
            signer_key.clone(),
            attestation_root_key.public_key().clone(),
            store,
        );
        (cas, signer_key)
    }

    #[test]
    fn restart_restores_verify_cache_and_token_table() {
        let store_key = AeadKey::new([9; 32]);
        let (cas, signer_key) = server_with_store(40, CasStore::create(store_key.clone()));
        let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
        let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let grant =
            cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let kept =
            cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        cas.issuer().redeem(&grant.token, &grant.expected_mrenclave).unwrap();
        cas.persist_state().unwrap();
        assert_eq!(cas.stats.snapshot_persisted.load(Ordering::Relaxed), 1);

        // "Restart": rebuild the server from the same volume bytes.
        let volume = cas.store().volume();
        drop(cas);
        let (restarted, _) = server_with_store(40, CasStore::open(volume, store_key).unwrap());
        assert_eq!(restarted.stats.snapshot_restored.load(Ordering::Relaxed), 1);
        assert_eq!(restarted.stats.snapshot_rejected.load(Ordering::Relaxed), 0);
        // Warm before any grant: the first repeat grant skips the RSA
        // verify.
        assert_eq!(restarted.issuer().verified_cache_len(), 1);
        // Exactly-once across the restart, both directions.
        assert!(restarted.issuer().redeem(&grant.token, &grant.expected_mrenclave).is_err());
        restarted.issuer().redeem(&kept.token, &kept.expected_mrenclave).unwrap();
    }

    #[test]
    fn corrupted_snapshot_degrades_to_cold_start() {
        let store_key = AeadKey::new([10; 32]);
        let (cas, signer_key) = server_with_store(42, CasStore::create(store_key.clone()));
        let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
        let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        cas.issuer().issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        cas.persist_state().unwrap();

        // Corrupt every ciphertext chunk of the snapshot file (the
        // only file in this volume).
        let mut volume = cas.store().volume();
        for id in volume.raw_chunk_ids() {
            volume.corrupt_chunk(id);
        }
        let (restarted, _) = server_with_store(42, CasStore::open(volume, store_key).unwrap());
        assert_eq!(restarted.stats.snapshot_rejected.load(Ordering::Relaxed), 1);
        assert_eq!(restarted.stats.snapshot_restored.load(Ordering::Relaxed), 0);
        assert_eq!(restarted.issuer().verified_cache_len(), 0, "cold after rejection");
        assert_eq!(restarted.issuer().outstanding_tokens(), 0);
    }

    #[test]
    fn snapshot_cadence_persists_during_serving() {
        let (cas, signer_key, _) = server(44);
        cas.set_snapshot_cadence(2);
        let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
        let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).unwrap();
        let network = Network::new();
        let handle = cas.serve(&network, "cas:443", 1, 440);
        let conn = network.connect("cas:443").unwrap();
        let mut rng = StdRng::seed_from_u64(45);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
        for _ in 0..5 {
            chan.send(
                &Message::GrantRequest {
                    common_sigstruct: signed.common_sigstruct.to_bytes(),
                    base_hash: signed.base_hash.encode().to_vec(),
                }
                .to_bytes(),
            )
            .unwrap();
            let reply = Message::from_bytes(&chan.recv().unwrap()).unwrap();
            assert!(matches!(reply, Message::GrantResponse { .. }), "got {reply:?}");
        }
        drop(chan);
        handle.join().unwrap();
        // Grants 2 and 4 hit the cadence; grant 5 did not.
        assert_eq!(cas.stats.snapshot_persisted.load(Ordering::Relaxed), 2);
        // The persisted snapshot is the real, restorable article.
        let bytes = cas.store().restore_state().unwrap().unwrap();
        sinclave::snapshot::IssuerSnapshot::from_bytes(&bytes).unwrap();
    }

    #[test]
    fn policy_crud_via_server() {
        let (cas, _, _) = server(9);
        let policy = SessionPolicy {
            config_id: "svc".into(),
            expected_common: Measurement(Digest([1; 32])),
            expected_mrsigner: Digest([2; 32]),
            min_isv_svn: 0,
            allow_debug: false,
            mode: PolicyMode::Either,
            config: AppConfig::default(),
        };
        cas.add_policy(policy).unwrap();
        assert_eq!(cas.store.list_policies().unwrap(), vec!["svc".to_owned()]);
        assert_eq!(cas.store.get_policy("svc").unwrap().config_id, "svc");
    }
}
