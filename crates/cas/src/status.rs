//! The operability plane's status wire (see `docs/operations.md`).
//!
//! Two transports serve the same four views:
//!
//! * the [`sinclave::protocol::Message::StatusRequest`] opcode on the
//!   regular secure-channel protocol (handled in dispatch), for
//!   clients that already hold a channel;
//! * a small **plaintext status listener** ([`serve_status`]) in the
//!   spirit of an enclave runtime's `/healthz` endpoint: no handshake,
//!   no identity, read-only — a probe (load balancer, fleet
//!   controller, test harness) sends a view name as one raw frame and
//!   receives the rendered view as one raw frame.
//!
//! The four views:
//!
//! * **`health`** — the fail-closed verdict ([`Health`]) plus the
//!   signals feeding it, one `key: value` per line, topped with the
//!   build identity and uptime.
//! * **`metrics`** — every [`crate::server::CasStats`] counter in
//!   Prometheus text exposition format (`cas_<counter> <value>`), plus
//!   the `cas_uptime_seconds` and `cas_build_info` gauges.
//! * **`histograms`** — the per-stage latency histograms
//!   ([`crate::histogram::StageHistograms`]): count, p50/p95/p99, max
//!   and the non-empty log₂ buckets per stage.
//! * **`trace`** — the tracing layer ([`crate::trace`]): recorder
//!   counters, per-follower replication-lag gauges, and the most
//!   recent pinned traces rendered as indented span trees.
//!
//! Rendering reads only atomics, the breaker's state mutex and the
//! flight recorder's ring locks (all off the hot path) — a probe never
//! touches the volume, the journal, or the issuer's shards.

use crate::server::{CasServer, ServeGuard, DRAIN_POLL};
use crate::trace::{CompletedTrace, Span};
use sinclave_net::{NetError, Network};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// The health verdict the status wire serves (computed by
/// [`CasServer::health`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Serving normally; durability and replication are keeping up.
    Healthy,
    /// Still serving, but impaired: persists are failing, journal
    /// appends failed since the last probe, or a follower lost its
    /// replication stream. Dependents should expect worse recovery
    /// windows and page an operator.
    Degraded,
    /// Writes are refused: the server is fenced (a failover outranked
    /// it) or the append circuit breaker is open. Dependents must not
    /// drive writes at this server.
    FailClosed,
}

impl Health {
    /// The wire spelling of the verdict.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::FailClosed => "fail-closed",
        }
    }
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Renders one status view, or `None` for an unknown view name. The
/// single renderer behind both the plaintext listener and the
/// `StatusRequest` opcode — the two transports can never drift.
#[must_use]
pub fn status_body(server: &CasServer, view: &str) -> Option<String> {
    match view {
        "health" => Some(render_health(server)),
        "metrics" => Some(render_metrics(server)),
        "histograms" => Some(render_histograms(server)),
        "trace" => Some(render_trace(server)),
        _ => None,
    }
}

/// The build identity: crate version plus the git description captured
/// at build time (version alone when built outside a checkout).
fn build_info() -> String {
    match option_env!("SINCLAVE_GIT_DESCRIBE") {
        Some(describe) => format!("{} ({describe})", env!("CARGO_PKG_VERSION")),
        None => env!("CARGO_PKG_VERSION").to_owned(),
    }
}

/// The `health` view: verdict first, then every signal feeding it.
fn render_health(server: &CasServer) -> String {
    let stats = server.stats.snapshot();
    let chain = server.middleware();
    let mut out = String::new();
    out.push_str(&format!("status: {}\n", server.health()));
    out.push_str(&format!("build: {}\n", build_info()));
    out.push_str(&format!("uptime_seconds: {}\n", server.uptime().as_secs()));
    out.push_str(&format!("fenced: {}\n", server.is_fenced()));
    out.push_str(&format!("following: {}\n", server.is_following()));
    out.push_str(&format!("breaker_open: {}\n", chain.breaker_open()));
    out.push_str(&format!("replication_degraded: {}\n", chain.is_degraded()));
    out.push_str(&format!("snapshot_persist_failed: {}\n", stats.snapshot_persist_failed));
    out.push_str(&format!("journal_append_failed: {}\n", stats.journal_append_failed));
    out.push_str(&format!("writes_fenced: {}\n", stats.writes_fenced));
    out
}

/// The `metrics` view: Prometheus text exposition, one counter per
/// `cas_<name>` line, in [`crate::server::StatsSnapshot`] declaration
/// order.
fn render_metrics(server: &CasServer) -> String {
    let mut out = String::new();
    for (name, value) in server.stats.snapshot().named() {
        out.push_str(&format!("# TYPE cas_{name} counter\ncas_{name} {value}\n"));
    }
    out.push_str(&format!(
        "# TYPE cas_uptime_seconds gauge\ncas_uptime_seconds {}\n",
        server.uptime().as_secs()
    ));
    out.push_str(&format!(
        "# TYPE cas_build_info gauge\ncas_build_info{{build=\"{}\"}} 1\n",
        build_info()
    ));
    out
}

/// The `histograms` view: per stage, a summary line plus the
/// non-empty log₂ buckets.
fn render_histograms(server: &CasServer) -> String {
    let mut out = String::new();
    for (name, histogram) in server.latency().named() {
        let view = histogram.view();
        out.push_str(&format!(
            "{name} count={} p50_ns={} p95_ns={} p99_ns={} max_ns={}\n",
            view.count(),
            view.p50().as_nanos(),
            view.p95().as_nanos(),
            view.p99().as_nanos(),
            view.max().as_nanos(),
        ));
        for (lower, upper, count) in view.rows() {
            out.push_str(&format!("{name} bucket {lower} {upper} {count}\n"));
        }
    }
    out
}

/// How many recent pinned traces the `trace` view renders per probe.
const TRACE_VIEW_LIMIT: usize = 8;

/// The `trace` view: tracer and recorder state, replication-lag
/// gauges (per follower on a primary, per stream on a follower), then
/// the most recent pinned traces as indented span trees. Reads
/// atomics, the hub's gauge snapshots and the recorder rings — never
/// the journal or the volume.
fn render_trace(server: &CasServer) -> String {
    let tracer = server.tracer();
    let stats = tracer.recorder().stats();
    let mut out = String::new();
    out.push_str(&format!("tracing: {}\n", if tracer.is_enabled() { "lit" } else { "dark" }));
    out.push_str(&format!("sample_every: {}\n", tracer.sample_every()));
    out.push_str(&format!(
        "recorder: pinned={} sampled={} discarded={} dropped={}\n",
        stats.pinned, stats.sampled, stats.discarded, stats.dropped
    ));
    if let Some(hub) = server.replication_hub() {
        // Primary: one gauge line per subscribed follower. `lag` is
        // the last-acked sequence delta against the local journal.
        let high = server.journal_sequence();
        for (index, (sent_seq, queued, age_ns)) in hub.peer_gauges().into_iter().enumerate() {
            out.push_str(&format!(
                "follower {index}: sent_seq={sent_seq} lag={} queued_batches={queued} \
                 stream_age_ms={}\n",
                high.saturating_sub(sent_seq),
                age_ns / 1_000_000,
            ));
        }
    }
    if let Some((applied, primary_high, age_ns)) = server.follower_lag() {
        // Follower: how far behind the primary's advertised high
        // sequence, and how stale the stream is.
        out.push_str(&format!(
            "replication: applied_seq={applied} primary_high_seq={primary_high} lag={} \
             stream_age_ms={}\n",
            primary_high.saturating_sub(applied),
            age_ns / 1_000_000,
        ));
    }
    // Pinned traces (slow / errored / shed) lead; recent healthy
    // samples follow so the view is useful when nothing is pinned.
    for trace in tracer.recorder().recent_pinned(TRACE_VIEW_LIMIT) {
        render_span_tree(&mut out, &trace);
    }
    for trace in tracer.recorder().recent_sampled(TRACE_VIEW_LIMIT) {
        render_span_tree(&mut out, &trace);
    }
    out
}

/// One trace as an indented span tree: spans sorted by start (ties
/// broken longest-first), each span indented under any earlier span
/// whose interval contains its start. Forwarded requests read as
/// `request` → `forward` → the primary's absorbed remote spans, each
/// tagged with its hop.
fn render_span_tree(out: &mut String, trace: &CompletedTrace) {
    out.push_str(&format!(
        "trace {} reason={} total_ns={} spans={}{}\n",
        trace.id_hex(),
        trace.reason.label(),
        trace.total_ns(),
        trace.spans().len(),
        if trace.truncated { " truncated" } else { "" },
    ));
    let mut spans: Vec<&Span> = trace.spans().iter().collect();
    spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns)));
    let mut enclosing: Vec<u64> = Vec::new();
    for span in spans {
        while enclosing.last().is_some_and(|&end| span.start_ns >= end) {
            enclosing.pop();
        }
        let indent = "  ".repeat(enclosing.len() + 1);
        out.push_str(&format!(
            "{indent}{} hop={} start_ns={} dur_ns={} {}\n",
            span.stage,
            span.hop,
            span.start_ns.saturating_sub(trace.begin_ns),
            span.duration_ns(),
            span.outcome.label(),
        ));
        enclosing.push(span.end_ns);
    }
    for (name, value) in trace.notes() {
        out.push_str(&format!("  note {name}={value}\n"));
    }
}

/// Serves the plaintext status endpoint on `addr`: up to `probes`
/// probe connections, each a loop of raw view-name frames answered
/// with rendered view frames (unknown views answer `error: unknown
/// view`). Drain-aware like every serving path — [`CasServer::shutdown`]
/// stops the accept loop within one [`DRAIN_POLL`] slice, and the
/// returned handle then joins.
#[must_use]
pub fn serve_status(
    server: &Arc<CasServer>,
    network: &Network,
    addr: &str,
    probes: usize,
) -> JoinHandle<()> {
    let listener = network.listen(addr);
    let server = Arc::clone(server);
    let guard = ServeGuard::register(&server);
    std::thread::spawn(move || {
        let _serving = guard;
        // Each served probe renews the accept budget; only a stretch
        // of transport-default silence retires the listener early.
        let mut deadline = Instant::now() + sinclave_net::bus::RECV_TIMEOUT;
        let mut served = 0;
        while served < probes {
            if server.is_draining() {
                return;
            }
            let conn = match listener.accept_timeout(DRAIN_POLL) {
                Ok(conn) => {
                    deadline = Instant::now() + sinclave_net::bus::RECV_TIMEOUT;
                    conn
                }
                Err(NetError::Timeout) if Instant::now() < deadline => continue,
                Err(_) => return,
            };
            served += 1;
            // One probe at a time: rendering is microseconds of atomic
            // reads, so a sequential loop cannot back up, and a probe
            // fleet cannot fan threads out of the status plane.
            conn.set_recv_timeout(Some(DRAIN_POLL));
            let mut last_activity = Instant::now();
            loop {
                if server.is_draining() {
                    return;
                }
                let raw = match conn.recv() {
                    Ok(raw) => {
                        last_activity = Instant::now();
                        raw
                    }
                    // An idle-but-connected probe must not starve the
                    // next one forever: transport-default idle hangs up.
                    Err(NetError::Timeout)
                        if last_activity.elapsed() < sinclave_net::bus::RECV_TIMEOUT =>
                    {
                        continue
                    }
                    Err(_) => break, // probe hung up (or idled out)
                };
                let view = String::from_utf8_lossy(&raw);
                let body = status_body(&server, view.as_ref())
                    .unwrap_or_else(|| "error: unknown view\n".to_owned());
                if conn.send(body.into_bytes()).is_err() {
                    break;
                }
            }
        }
    })
}
