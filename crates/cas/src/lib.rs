//! The Configuration and Attestation Service (CAS) — the paper's
//! trusted verifier (§2.3, §4.4, Fig. 7c).
//!
//! CAS stores per-application *session policies* (expected enclave
//! identity plus the configuration/secrets to hand out) in an
//! encrypted database, verifies attestation quotes against the
//! attestation service's root key, and — with SinClave enabled — runs
//! the singleton machinery: issuing one-time tokens, computing
//! expected singleton measurements from base enclave hashes, and
//! signing on-demand SigStructs.
//!
//! * [`policy`] — session policies and binary registrations.
//! * [`store`] — the encrypted policy database (the "loading and
//!   parsing of the configuration details from the encrypted
//!   database" that dominates Fig. 7c's miscellaneous time).
//! * [`server`] — the network-facing service loop.
//! * [`commit`] — group commit for the sealed redemption journal
//!   (batched durability; what makes exactly-once crash-absolute
//!   without a volume write per event).
//! * [`middleware`] — the fixed-order admission-control stack (rate
//!   limits, quotas, timeouts, panic isolation, circuit breaker) both
//!   serving paths consult.
//! * [`reactor`] — the readiness-driven serving path: a few event
//!   loops multiplex every connection, offloading crypto to a compute
//!   pool.
//! * [`replica`] — the replicated fleet: a primary streams its sealed
//!   journal to followers, followers serve read-mostly traffic
//!   locally and forward writes, and failover is fenced by a
//!   monotonic generation so a deposed primary can never double-spend
//!   a token (see that module's docs for the topology, the fencing
//!   rules, and the honest consistency story).
//! * [`witness`] — the sealed monotonic rollback witness
//!   [`CasServer::check_rollback`] compares restored state against,
//!   kept in its own encrypted volume.
//! * [`histogram`] — fixed-bucket atomic latency histograms, the
//!   recorders behind the per-stage latency views.
//! * [`status`] — the operability plane's status wire: the health
//!   verdict, the counter dump, and the latency histograms, over a
//!   plaintext probe listener and a protocol opcode.
//! * [`trace`] — per-request causal tracing: trace ids propagated
//!   across fleet hops, span records for every instrumented stage,
//!   and the tail-sampling flight recorder behind the `trace` status
//!   view.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod histogram;
pub mod middleware;
pub mod policy;
pub mod reactor;
pub mod replica;
pub mod server;
pub mod status;
pub mod store;
pub mod trace;
pub mod witness;

pub use histogram::{Histogram, HistogramView, StageHistograms};
pub use middleware::{BreakerConfig, DedupConfig, MiddlewareConfig, RateLimitConfig, Refusal};
pub use policy::{PolicyMode, SessionPolicy};
pub use replica::{follow, serve_replication, FollowerHandle, ForwardLink};
pub use server::{CasServer, JournalMode, StatsSnapshot};
pub use status::{serve_status, status_body, Health};
pub use trace::{
    ActiveTrace, CompletedTrace, FlightRecorder, PinReason, Span, SpanOutcome, Tracer,
};
pub use witness::{SealedWitness, WitnessMark};
