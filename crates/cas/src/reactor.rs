//! The readiness-driven CAS serving path.
//!
//! The worker pool in [`crate::server`] burns one thread per live
//! connection: at production fan-in (thousands of mostly-idle
//! attesters holding sessions open) the pool is the ceiling — every
//! parked connection pins a stack, and the pool cap turns into a
//! queue. This module serves the same protocol from a **reactor**:
//!
//! * a small, connection-count-independent number of **event loops**
//!   each own a [`Poller`] and multiplex their share of all
//!   connections through the bus's readiness API — an idle connection
//!   costs one watch registration, not a thread;
//! * each connection is a **state machine** (`Handshake → Idle ⇄
//!   Busy`): handshake flights and message framing are driven
//!   nonblockingly on the loop, while CPU-heavy request handling —
//!   SigStruct verification, grant signing, reply sealing, journal
//!   group-commit waits — is offloaded to a **compute pool** whose
//!   completion re-enqueues the connection via the loop's inbox;
//! * **at most one request per connection is in flight** at a time:
//!   dispatch order is receive order, the per-connection RNG and
//!   record sequence advance exactly as on the pooled path, so a
//!   client sees bit-identical bytes from either path (gated by the
//!   `ablation/reactor` bench);
//! * the loop's **timer wheel** enforces the middleware chain's
//!   handshake/idle deadlines (a slow-loris peer costs one table entry
//!   until its deadline, never a thread), and loop 0 additionally
//!   drives the time-based snapshot tick
//!   ([`CasServer::set_snapshot_interval`]) so idle workloads still
//!   bound the journal-replay window.
//!
//! Admission control runs *on the loop*, before a request is allowed
//! to occupy a compute slot: rate-limit and quota refusals are sealed
//! and sent inline from the idle session (a refused request costs the
//! refuser a table lookup, not a compute slot). Panic isolation wraps
//! dispatch on the compute workers; the circuit breaker is consulted
//! pre-dispatch and fed at the commit boundary exactly as on the
//! pooled path.

use crate::middleware::{MiddlewareChain, MiddlewareConfig};
use crate::server::{CasServer, ServeGuard};
use crate::trace::{self, SpanOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sinclave::protocol::Message;
use sinclave_crypto::sha256::Digest;
use sinclave_net::bus::RECV_TIMEOUT;
use sinclave_net::{
    ChannelReceiver, ChannelSender, Connection, Listener, NetError, Network, Poller, Readiness,
    ServerHandshake,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An established session: everything request handling needs, checked
/// out *whole* to a compute worker while a request is in flight (the
/// `Busy` phase) and returned on completion. Keeping the RNG inside
/// preserves the pooled path's per-connection RNG consumption order.
struct Session {
    sender: ChannelSender,
    receiver: ChannelReceiver,
    transcript: Digest,
    outstanding_nonce: Option<[u8; 16]>,
    rng: StdRng,
}

/// Per-connection state machine phase.
enum Phase {
    /// Driving the secure-channel handshake; the RNG lives here until
    /// the session exists.
    Handshake { machine: ServerHandshake, rng: StdRng },
    /// Established, no request in flight; the session is on the loop.
    Idle(Box<Session>),
    /// One request is in flight on the compute pool (which holds the
    /// session); further readiness events are deferred until the
    /// completion re-enqueues the connection.
    Busy,
}

struct ConnState {
    conn: Arc<Connection>,
    phase: Phase,
    /// The readiness handle watching `conn`, kept so the loop can read
    /// how long the event it is servicing sat queued
    /// ([`Readiness::since_signal`] — the traced `queue` leg).
    ready: Arc<Readiness>,
    /// When the last client flight was received (or the connection
    /// accepted); the base for the phase's inactivity deadline.
    last_activity: Instant,
}

/// The inactivity deadline a connection's phase is subject to, if any.
fn phase_timeout(phase: &Phase, config: &MiddlewareConfig) -> Option<Duration> {
    match phase {
        Phase::Handshake { .. } => config.handshake_timeout,
        Phase::Idle(_) => config.idle_timeout,
        // In flight on the compute pool: its completion is the wakeup,
        // not a timer.
        Phase::Busy => None,
    }
}

/// Cross-thread messages into an event loop, paired with a control
/// [`Readiness`] signal so a parked loop wakes to process them.
enum LoopMsg {
    /// Loop 0 routed a freshly accepted connection here.
    NewConn { slot: u64, conn: Connection },
    /// A compute worker finished a request for connection `token`.
    /// `session` is `None` when the connection must close (transport
    /// failure or contained panic).
    Completed { token: u64, session: Option<Box<Session>> },
}

/// A unit of offloaded work: one decoded request plus the session it
/// belongs to.
struct Job {
    loop_id: usize,
    token: u64,
    message: Message,
    session: Box<Session>,
    /// When the request's raw frame was read off the connection — the
    /// start of the end-to-end `request` latency sample the compute
    /// worker records after sending the reply.
    received: Instant,
    /// The admitted request's trace, checked out alongside the session
    /// (`None` when tracing is dark). The compute worker installs it
    /// for dispatch and finishes it after the reply is sent.
    trace: Option<Box<trace::ActiveTrace>>,
}

/// Control token: the loop's inbox has messages.
const TOKEN_CONTROL: u64 = 0;
/// Loop 0 only: the listener has queued connections.
const TOKEN_LISTENER: u64 = 1;
/// First connection token; connection `i` in a loop's table is
/// `TOKEN_CONN0 + i`.
const TOKEN_CONN0: u64 = 2;

impl CasServer {
    /// Default event-loop count: 2 — one would serialize handshakes
    /// behind timers, many would waste wakeups; the loops only shuffle
    /// bytes and run admission, the compute pool does the real work.
    #[must_use]
    pub fn default_event_loops() -> usize {
        2
    }

    /// Serves `connections` connections on `addr` from a background
    /// reactor with [`CasServer::default_event_loops`] event loops and
    /// [`CasServer::default_workers`] compute workers (see the module
    /// docs for the model).
    #[must_use]
    pub fn serve_reactor(
        self: &Arc<Self>,
        network: &Network,
        addr: &str,
        connections: usize,
        seed: u64,
    ) -> JoinHandle<()> {
        self.serve_reactor_with(
            network,
            addr,
            connections,
            seed,
            Self::default_event_loops(),
            Self::default_workers(),
        )
    }

    /// [`CasServer::serve_reactor`] with explicit event-loop and
    /// compute-worker counts. `1` loop and `1` compute worker is the
    /// fully serialized configuration that must serve bit-identically
    /// to `serve_with_workers(.., 1)` (the determinism gate).
    ///
    /// Connection slot `i` (accept order) is seeded
    /// `seed.wrapping_add(i)` — the same derivation as the pool — and
    /// handled by loop `i % loops`. The returned handle joins once all
    /// `connections` slots have been served (or accepting timed out
    /// after [`RECV_TIMEOUT`] without a dial) and every accepted
    /// connection has closed.
    #[must_use]
    pub fn serve_reactor_with(
        self: &Arc<Self>,
        network: &Network,
        addr: &str,
        connections: usize,
        seed: u64,
        loops: usize,
        compute_workers: usize,
    ) -> JoinHandle<()> {
        let listener = network.listen(addr);
        let server = self.clone();
        let guard = ServeGuard::register(self);
        let loops = loops.clamp(1, connections.max(1));
        let compute_workers = compute_workers.max(1);
        std::thread::spawn(move || {
            let _serving = guard;
            run_reactor(&server, listener, connections, seed, loops, compute_workers);
        })
    }
}

/// Everything one event loop needs; built on the loop's own thread
/// except the shared parts.
struct EventLoop<'a> {
    id: usize,
    server: &'a CasServer,
    chain: Arc<MiddlewareChain>,
    poller: Poller,
    inbox: Arc<parking_lot::Mutex<VecDeque<LoopMsg>>>,
    jobs: crossbeam::channel::Sender<Job>,
    /// Connection table; the token of entry `i` is `TOKEN_CONN0 + i`.
    /// Closed entries become `None` (tokens are never reused within a
    /// serve run).
    conns: Vec<Option<ConnState>>,
    live: usize,
    /// Loop 0 only: the accept side.
    listener: Option<Listener>,
    accepted: u64,
    last_accept: Instant,
    /// Shared flag: all `connections` slots are accepted (or accepting
    /// timed out); loops may exit once drained.
    accepting_done: Arc<AtomicBool>,
    /// Every loop's control readiness, for loop 0 to broadcast the
    /// accepting-done wakeup.
    all_controls: Vec<Arc<Readiness>>,
    /// Routing: the other loops' inboxes (indexed by loop id).
    all_inboxes: Vec<Arc<parking_lot::Mutex<VecDeque<LoopMsg>>>>,
    connections: usize,
    seed: u64,
    loops: usize,
    /// Loop 0 only: last time-based snapshot tick.
    last_snapshot_tick: Instant,
}

fn run_reactor(
    server: &Arc<CasServer>,
    listener: Listener,
    connections: usize,
    seed: u64,
    loops: usize,
    compute_workers: usize,
) {
    let chain = server.middleware();
    let pollers: Vec<Poller> = (0..loops).map(|_| Poller::new()).collect();
    let controls: Vec<Arc<Readiness>> =
        pollers.iter().map(|p| p.readiness(TOKEN_CONTROL)).collect();
    let inboxes: Vec<Arc<parking_lot::Mutex<VecDeque<LoopMsg>>>> =
        (0..loops).map(|_| Arc::new(parking_lot::Mutex::new(VecDeque::new()))).collect();
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();
    let job_rx = Arc::new(job_rx);
    let accepting_done = Arc::new(AtomicBool::new(false));
    // A parked loop can wait out up to 60 s between timer events;
    // registering the control handles lets shutdown() wake every loop
    // the moment the drain begins.
    for control in &controls {
        server.register_drain_waker(control);
    }

    std::thread::scope(|scope| {
        for _ in 0..compute_workers {
            let job_rx = job_rx.clone();
            let server = &**server;
            let chain = chain.clone();
            let inboxes = inboxes.clone();
            let controls = controls.clone();
            scope.spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let completion =
                        run_job(server, &chain, job.message, job.received, job.session, job.trace);
                    inboxes[job.loop_id]
                        .lock()
                        .push_back(LoopMsg::Completed { token: job.token, session: completion });
                    controls[job.loop_id].signal();
                }
            });
        }

        let mut listener = Some(listener);
        let mut pollers = pollers.into_iter();
        for id in 0..loops {
            let mut event_loop = EventLoop {
                id,
                server,
                chain: chain.clone(),
                // lint: allow(panic) — pollers was constructed with exactly `loops` elements
                poller: pollers.next().expect("one poller per loop"),
                inbox: inboxes[id].clone(),
                jobs: job_tx.clone(),
                conns: Vec::new(),
                live: 0,
                listener: if id == 0 { listener.take() } else { None },
                accepted: 0,
                last_accept: Instant::now(),
                accepting_done: accepting_done.clone(),
                all_controls: controls.clone(),
                all_inboxes: inboxes.clone(),
                connections,
                seed,
                loops,
                last_snapshot_tick: Instant::now(),
            };
            scope.spawn(move || event_loop.run());
        }
        // The loops and compute workers hold the only live senders and
        // receivers now; dropping ours lets the compute pool drain and
        // exit once every loop has finished.
        drop(job_tx);
    });
}

/// Runs one offloaded request on a compute worker: admission already
/// passed on the loop; here the request is dispatched (under panic
/// isolation when configured), the reply sealed and sent. Returns the
/// session to re-enqueue, or `None` when the connection must close.
fn run_job(
    server: &CasServer,
    chain: &MiddlewareChain,
    message: Message,
    received: Instant,
    mut session: Box<Session>,
    active: Option<Box<trace::ActiveTrace>>,
) -> Option<Box<Session>> {
    if let Some(active) = active {
        trace::install(active);
    }
    let Some(reply) = server.dispatch_deduped(
        chain,
        message,
        &mut session.outstanding_nonce,
        &session.transcript,
        &mut session.rng,
    ) else {
        // Contained dispatch panic: the connection closes; pin the
        // orphaned trace as errored so the flight recorder keeps it.
        if let Some(mut orphan) = trace::take() {
            orphan.mark_errored();
            server.tracer().finish(orphan);
        }
        return None;
    };
    if matches!(reply, Message::Denied { .. }) {
        server.stats.denials.fetch_add(1, Ordering::Relaxed);
    }
    let active = trace::take();
    // The trace context is echoed only when the request carried one:
    // untraced clients see the exact bytes of the untraced build.
    let echo = active.as_ref().filter(|t| t.inherited()).map(|t| t.context());
    // A send failure means the peer went away mid-request; close.
    let sealing = Instant::now();
    if session.sender.send(&reply.to_bytes_traced(echo.as_ref())).is_err() {
        if let Some(mut orphan) = active {
            orphan.mark_errored();
            server.tracer().finish(orphan);
        }
        return None;
    }
    // The same instrumentation points as the pooled path's writer
    // thread: sealing cost, then the full received→written span.
    server.latency().seal.record(sealing.elapsed());
    server.latency().request.record(received.elapsed());
    if let Some(mut active) = active {
        active.record_elapsed("seal", sealing.elapsed(), SpanOutcome::Ok);
        server.tracer().finish(active);
    }
    Some(session)
}

impl EventLoop<'_> {
    fn run(&mut self) {
        if let Some(listener) = &self.listener {
            listener.watch(&self.poller.readiness(TOKEN_LISTENER));
        }
        loop {
            self.drain_inbox();
            if self.server.is_draining() {
                // Shutdown: stop accepting and shed every connection
                // without a request in flight; Busy connections close
                // at their completion (see `complete`). Checked after
                // the inbox drain so a routed NewConn is registered,
                // then immediately shed here.
                self.begin_drain();
            }
            if self.id == 0 {
                self.drain_accepts();
                self.snapshot_tick();
            }
            self.enforce_deadlines();
            if self.done() {
                return;
            }
            let timeout = self.next_wait();
            for token in self.poller.wait(timeout) {
                match token {
                    TOKEN_CONTROL => {}  // inbox drained at loop top
                    TOKEN_LISTENER => {} // accepts drained at loop top
                    token => self.drain_conn(token),
                }
            }
        }
    }

    /// All slots served and every local connection closed.
    fn done(&self) -> bool {
        self.accepting_done.load(Ordering::Acquire)
            && self.live == 0
            && self.inbox.lock().is_empty()
    }

    /// How long to park: bounded by the accept deadline (loop 0, while
    /// accepting), the nearest handshake/idle deadline, and the
    /// snapshot tick. An unbounded park would miss timer-only events;
    /// everything else arrives as a readiness signal.
    fn next_wait(&self) -> Duration {
        let mut wait = Duration::from_secs(60);
        if self.id == 0 && !self.accepting_done.load(Ordering::Relaxed) {
            let deadline = self.last_accept + RECV_TIMEOUT;
            wait = wait.min(deadline.saturating_duration_since(Instant::now()));
        }
        if self.id == 0 {
            if let Some(interval) = self.server.snapshot_interval() {
                let tick = self.last_snapshot_tick + interval;
                wait = wait.min(tick.saturating_duration_since(Instant::now()));
            }
        }
        let config = self.chain.config();
        let now = Instant::now();
        for state in self.conns.iter().flatten() {
            let deadline = phase_timeout(&state.phase, config).map(|t| state.last_activity + t);
            if let Some(deadline) = deadline {
                wait = wait.min(deadline.saturating_duration_since(now));
            }
        }
        wait.max(Duration::from_millis(1))
    }

    fn drain_inbox(&mut self) {
        loop {
            // Take one message at a time so the lock is never held
            // across connection handling.
            let msg = self.inbox.lock().pop_front();
            match msg {
                None => return,
                Some(LoopMsg::NewConn { slot, conn }) => self.register(slot, conn),
                Some(LoopMsg::Completed { token, session }) => self.complete(token, session),
            }
        }
    }

    /// Loop 0: accept every queued connection (up to the budget) and
    /// route each to its slot's loop.
    fn drain_accepts(&mut self) {
        if self.listener.is_none() {
            return;
        }
        while self.accepted < self.connections as u64 {
            let queued = self.listener.as_ref().map(Listener::try_accept);
            let Some(Ok(conn)) = queued else { break };
            let slot = self.accepted;
            self.accepted += 1;
            self.last_accept = Instant::now();
            let target = (slot as usize) % self.loops;
            if target == self.id {
                self.register(slot, conn);
            } else {
                self.all_inboxes[target].lock().push_back(LoopMsg::NewConn { slot, conn });
                self.all_controls[target].signal();
            }
        }
        let timed_out =
            self.accepted < self.connections as u64 && self.last_accept.elapsed() >= RECV_TIMEOUT;
        if self.accepted == self.connections as u64 || timed_out {
            // Budget served (or dials dried up): tell every loop it
            // may exit once its connections drain.
            self.accepting_done.store(true, Ordering::Release);
            self.listener = None;
            for control in &self.all_controls {
                control.signal();
            }
        }
    }

    /// Adds a connection to the table in the `Handshake` phase with
    /// its slot-derived RNG, and watches it on this loop's poller (the
    /// registration's catch-up signal covers anything the client
    /// already sent).
    fn register(&mut self, slot: u64, conn: Connection) {
        let conn = Arc::new(conn);
        let token = TOKEN_CONN0 + self.conns.len() as u64;
        let ready = self.poller.readiness(token);
        conn.watch(&ready);
        self.conns.push(Some(ConnState {
            conn,
            phase: Phase::Handshake {
                machine: ServerHandshake::new(),
                rng: StdRng::seed_from_u64(self.seed.wrapping_add(slot)),
            },
            ready,
            last_activity: Instant::now(),
        }));
        self.live += 1;
    }

    /// A compute completion: return the session (Busy → Idle) and
    /// immediately drain anything that arrived while busy, or close.
    /// While draining, the in-flight request this completion answers
    /// was the connection's last — close instead of going Idle.
    fn complete(&mut self, token: u64, session: Option<Box<Session>>) {
        match session {
            Some(session) => {
                if self.server.is_draining() {
                    return self.close(token);
                }
                let Some(state) = conn_mut(&mut self.conns, token) else { return };
                state.phase = Phase::Idle(session);
                state.last_activity = Instant::now();
                self.drain_conn(token);
            }
            None => self.close(token),
        }
    }

    fn close(&mut self, token: u64) {
        let Some(index) = token.checked_sub(TOKEN_CONN0).and_then(|i| usize::try_from(i).ok())
        else {
            return;
        };
        if let Some(entry) = self.conns.get_mut(index) {
            if entry.take().is_some() {
                self.live -= 1;
            }
        }
    }

    /// Drives one connection's state machine as far as its queued
    /// input allows: handshake flights inline, then at most one
    /// decoded request offloaded to the compute pool.
    fn drain_conn(&mut self, token: u64) {
        loop {
            // The connection borrow must end before `close` below, so
            // each step reports its outcome instead of acting on self.
            let step =
                step_conn(&mut self.conns, token, self.server, &self.chain, &self.jobs, self.id);
            match step {
                Step::Continue => {}
                Step::Drained => return,
                Step::Close => return self.close(token),
            }
        }
    }

    /// The timer wheel: close handshakes and idle sessions whose
    /// client has been *inactive* (no flight received) past the
    /// configured deadline. `Busy` connections are exempt — a request
    /// in flight is activity, not a stall. A connection only counts as
    /// stalled if it is past its deadline *and* draining it yields
    /// nothing: the client may have sent bytes this loop hasn't read
    /// yet (e.g. while the thread was decapsulating another
    /// connection's handshake), and queued input is activity.
    fn enforce_deadlines(&mut self) {
        let config = *self.chain.config();
        if config.handshake_timeout.is_none() && config.idle_timeout.is_none() {
            return;
        }
        for index in 0..self.conns.len() {
            let token = TOKEN_CONN0 + index as u64;
            let overdue = |state: Option<&ConnState>| {
                state.is_some_and(|state| {
                    phase_timeout(&state.phase, &config)
                        .is_some_and(|t| state.last_activity.elapsed() >= t)
                })
            };
            if !overdue(self.conns[index].as_ref()) {
                continue;
            }
            self.drain_conn(token);
            if overdue(self.conns[index].as_ref()) {
                self.server.stats.connections_timed_out.fetch_add(1, Ordering::Relaxed);
                self.close(token);
            }
        }
    }

    /// Loop 0: the time-based snapshot cadence — persist when the
    /// configured interval has passed, so an *idle* CAS still bounds
    /// its journal-replay window (the event-count cadence only fires
    /// under load).
    fn snapshot_tick(&mut self) {
        let Some(interval) = self.server.snapshot_interval() else { return };
        if self.last_snapshot_tick.elapsed() >= interval {
            // The discarded error is not silent: persist_state counts
            // it and bumps the consecutive-failure gauge that flips
            // the health verdict to Degraded within this one tick.
            let _ = self.server.persist_state();
            self.last_snapshot_tick = Instant::now();
        }
    }

    /// Shutdown (every loop, once [`CasServer::shutdown`] set the
    /// drain flag): loop 0 performs the same stop-accepting broadcast
    /// as an exhausted accept budget, and every connection without a
    /// request in flight closes now. Busy connections finish on the
    /// compute pool and close in `complete`, so in-flight replies are
    /// never dropped.
    fn begin_drain(&mut self) {
        if self.id == 0 && self.listener.is_some() {
            self.accepting_done.store(true, Ordering::Release);
            self.listener = None;
            for control in &self.all_controls {
                control.signal();
            }
        }
        for index in 0..self.conns.len() {
            let busy =
                self.conns[index].as_ref().is_some_and(|state| matches!(state.phase, Phase::Busy));
            if self.conns[index].is_some() && !busy {
                self.close(TOKEN_CONN0 + index as u64);
            }
        }
    }
}

/// Outcome of one connection state-machine step.
enum Step {
    /// Progress was made; step again.
    Continue,
    /// The connection's input is drained (or a request was offloaded);
    /// stop stepping until the next readiness event or completion.
    Drained,
    /// The connection must close.
    Close,
}

fn conn_mut(conns: &mut [Option<ConnState>], token: u64) -> Option<&mut ConnState> {
    let index = usize::try_from(token.checked_sub(TOKEN_CONN0)?).ok()?;
    conns.get_mut(index)?.as_mut()
}

/// One step of a connection's state machine (free function so the
/// caller's borrow of the connection table stays disjoint from the
/// loop's other fields): handshake flights run inline, an admitted
/// request checks the session out to the compute pool, refusals and
/// malformed messages are answered inline from the idle session.
fn step_conn(
    conns: &mut [Option<ConnState>],
    token: u64,
    server: &CasServer,
    chain: &MiddlewareChain,
    jobs: &crossbeam::channel::Sender<Job>,
    loop_id: usize,
) -> Step {
    let Some(state) = conn_mut(conns, token) else { return Step::Drained };
    match &mut state.phase {
        // A request is in flight; its completion resumes the drain.
        Phase::Busy => Step::Drained,
        Phase::Handshake { .. } => {
            let raw = match state.conn.try_recv() {
                Ok(raw) => raw,
                Err(NetError::Timeout) => return Step::Drained,
                Err(_) => return Step::Close,
            };
            state.last_activity = Instant::now();
            // lint: allow(panic) — phase variant pinned by the enclosing match arm
            let Phase::Handshake { machine, rng } = &mut state.phase else { unreachable!() };
            // Handshake flights stay on the loop: KEM decapsulation is
            // micro-scale next to the RSA work the compute pool
            // exists for.
            match machine.on_message(&state.conn, &raw, &server.channel_key, rng) {
                Ok(None) => Step::Continue,
                Ok(Some(channel)) => {
                    let transcript = channel.transcript();
                    let (sender, receiver) = channel.split();
                    let Phase::Handshake { rng, .. } =
                        std::mem::replace(&mut state.phase, Phase::Busy)
                    else {
                        // lint: allow(panic) — phase variant pinned by the enclosing match arm
                        unreachable!()
                    };
                    state.phase = Phase::Idle(Box::new(Session {
                        sender,
                        receiver,
                        transcript,
                        outstanding_nonce: None,
                        rng,
                    }));
                    Step::Continue
                }
                Err(_) => Step::Close,
            }
        }
        Phase::Idle(session) => {
            let raw = match session.receiver.try_recv() {
                Ok(raw) => raw,
                Err(NetError::Timeout) => return Step::Drained,
                Err(NetError::RecordCorrupt) => {
                    server.stats.records_rejected.fetch_add(1, Ordering::Relaxed);
                    return Step::Close;
                }
                Err(_) => return Step::Close,
            };
            state.last_activity = Instant::now();
            let queued_for = state.ready.since_signal();
            let reply = match Message::from_bytes_traced(&raw) {
                Ok((message, inherited)) => {
                    if let Some(mut started) = server.tracer().begin(inherited) {
                        // How long the frame's readiness signal sat
                        // before this loop serviced it: the reactor's
                        // `queue` leg. Coarse (see `since_signal`) but
                        // exactly the wait admission control cannot see.
                        if let Some(waited) = queued_for {
                            started.record_elapsed("queue", waited, SpanOutcome::Ok);
                        }
                        trace::install(started);
                    }
                    match server.admission_refusal(chain, &message) {
                        // Admitted: check the session out to the compute
                        // pool and stop draining — at most one request in
                        // flight per connection keeps dispatch order equal
                        // to receive order.
                        None => {
                            let Phase::Idle(session) =
                                std::mem::replace(&mut state.phase, Phase::Busy)
                            else {
                                // lint: allow(panic) — phase variant pinned by the enclosing match arm
                                unreachable!()
                            };
                            // `last_activity` was stamped when this raw
                            // frame was read — it is the request's receive
                            // instant for the end-to-end latency sample.
                            let received = state.last_activity;
                            let trace = trace::take();
                            return if jobs
                                .send(Job { loop_id, token, message, session, received, trace })
                                .is_err()
                            {
                                Step::Close
                            } else {
                                Step::Drained
                            };
                        }
                        Some(refused) => refused,
                    }
                }
                Err(_) => Message::Denied { reason: "malformed message".into() },
            };
            // Refusals and malformed messages are answered inline from
            // the idle session: they must not cost a compute slot. A
            // refused trace still completes (and tail sampling pins it).
            server.stats.denials.fetch_add(1, Ordering::Relaxed);
            let active = trace::take();
            let echo = active.as_ref().filter(|t| t.inherited()).map(|t| t.context());
            if session.sender.send(&reply.to_bytes_traced(echo.as_ref())).is_err() {
                if let Some(mut orphan) = active {
                    orphan.mark_errored();
                    server.tracer().finish(orphan);
                }
                return Step::Close;
            }
            if let Some(finished) = active {
                server.tracer().finish(finished);
            }
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::policy::{PolicyMode, SessionPolicy};
    use crate::server::CasServer;
    use crate::store::CasStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sinclave::layout::EnclaveLayout;
    use sinclave::protocol::Message;
    use sinclave::signer::{sign_enclave, SignerConfig};
    use sinclave::AppConfig;
    use sinclave_crypto::aead::AeadKey;
    use sinclave_crypto::rsa::RsaPrivateKey;
    use sinclave_crypto::sha256::Digest;
    use sinclave_net::{Network, SecureChannel};
    use sinclave_sgx::measurement::Measurement;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    fn server(seed: u64) -> (Arc<CasServer>, RsaPrivateKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        let channel_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let attestation_root_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let store = CasStore::create(AeadKey::new([7; 32]));
        let cas = CasServer::new(
            channel_key,
            signer_key.clone(),
            attestation_root_key.public_key().clone(),
            store,
        );
        (cas, signer_key)
    }

    #[test]
    fn ping_pong_over_reactor() {
        let (cas, _) = server(1);
        let network = Network::new();
        let handle = cas.serve_reactor(&network, "cas:443", 1, 10);
        let conn = network.connect("cas:443").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
        chan.send(&Message::Ping.to_bytes()).unwrap();
        assert_eq!(Message::from_bytes(&chan.recv().unwrap()).unwrap(), Message::Pong);
        drop(chan);
        handle.join().unwrap();
    }

    /// The determinism gate in unit form: a single-loop single-worker
    /// reactor with middleware off must answer the same request
    /// sequence with the same bytes as the 1-worker pool.
    #[test]
    fn reactor_single_loop_matches_pool_bytes() {
        let run = |addr: &str, reactor: bool| {
            let (cas, signer_key) = server(30);
            let layout = EnclaveLayout::for_program(b"app", 2).unwrap();
            let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).unwrap();
            let network = Network::new();
            let handle = if reactor {
                cas.serve_reactor_with(&network, addr, 1, 123, 1, 1)
            } else {
                cas.serve_with_workers(&network, addr, 1, 123, 1)
            };
            let conn = network.connect(addr).unwrap();
            let mut rng = StdRng::seed_from_u64(31);
            let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
            let mut replies = Vec::new();
            for _ in 0..3 {
                chan.send(
                    &Message::GrantRequest {
                        common_sigstruct: signed.common_sigstruct.to_bytes(),
                        base_hash: signed.base_hash.encode().to_vec(),
                    }
                    .to_bytes(),
                )
                .unwrap();
                replies.push(chan.recv().unwrap());
            }
            chan.send(&Message::ChallengeRequest.to_bytes()).unwrap();
            replies.push(chan.recv().unwrap());
            chan.send(&Message::Ping.to_bytes()).unwrap();
            replies.push(chan.recv().unwrap());
            drop(chan);
            handle.join().unwrap();
            replies
        };
        assert_eq!(run("cas:pool", false), run("cas:react", true));
    }

    #[test]
    fn reactor_serves_many_concurrent_sessions_with_two_loops() {
        let (cas, _) = server(40);
        let network = Network::new();
        let clients = 24;
        let handle = cas.serve_reactor_with(&network, "cas:443", clients, 400, 2, 2);
        std::thread::scope(|scope| {
            for i in 0..clients {
                let network = network.clone();
                scope.spawn(move || {
                    let conn = network.connect("cas:443").unwrap();
                    let mut rng = StdRng::seed_from_u64(500 + i as u64);
                    let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
                    for _ in 0..3 {
                        chan.send(&Message::Ping.to_bytes()).unwrap();
                        assert_eq!(
                            Message::from_bytes(&chan.recv().unwrap()).unwrap(),
                            Message::Pong
                        );
                    }
                });
            }
        });
        handle.join().unwrap();
    }

    #[test]
    fn reactor_policy_attest_denied_reasons_match_pool() {
        // An attestation without a challenge must produce the same
        // refusal on both paths (dispatch is shared).
        let (cas, signer_key) = server(50);
        cas.add_policy(SessionPolicy {
            config_id: "svc".into(),
            expected_common: Measurement(Digest([1; 32])),
            expected_mrsigner: signer_key.public_key().fingerprint(),
            min_isv_svn: 0,
            allow_debug: false,
            mode: PolicyMode::Either,
            config: AppConfig::default(),
        })
        .unwrap();
        let network = Network::new();
        let handle = cas.serve_reactor(&network, "cas:443", 1, 60);
        let conn = network.connect("cas:443").unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let mut chan = SecureChannel::client_connect(conn, &mut rng).unwrap();
        chan.send(
            &Message::BaselineAttestRequest { quote: vec![0; 8], config_id: "svc".into() }
                .to_bytes(),
        )
        .unwrap();
        let reply = Message::from_bytes(&chan.recv().unwrap()).unwrap();
        assert!(
            matches!(&reply, Message::Denied { reason } if reason.contains("challenge")),
            "got {reply:?}"
        );
        drop(chan);
        handle.join().unwrap();
        assert_eq!(cas.stats.denials.load(Ordering::Relaxed), 1);
    }
}
