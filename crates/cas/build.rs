//! Captures the git description at build time so the status plane can
//! report exactly which build is serving (`build:` in the `health`
//! view, `cas_build_info` in `metrics`). Builds outside a git checkout
//! simply omit the description — the views fall back to the crate
//! version alone.

use std::process::Command;

fn main() {
    // Re-describe when HEAD moves (commit, checkout, tag).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    let describe = Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|raw| raw.trim().to_owned())
        .filter(|described| !described.is_empty());
    if let Some(describe) = describe {
        println!("cargo:rustc-env=SINCLAVE_GIT_DESCRIBE={describe}");
    }
}
