//! Encrypted, integrity-protected filesystem substrate.
//!
//! SCONE transparently encrypts file content before the host OS
//! persists it and verifies integrity on reads (§1 of the paper);
//! SGX-LKL boots from an encrypted disk image (§3.3.2). Both are
//! modeled by [`volume::Volume`]: a host-visible bag of ciphertext the
//! adversary can copy, replay, or corrupt — but not read or undetectably
//! modify without the volume key.
//!
//! The security-relevant property for the paper's attack: volume
//! *content* (the application's Python code, configuration, model
//! files …) is **not** part of `MRENCLAVE`. The runtime verifies it
//! with a key received via attested configuration — which is exactly
//! the delegation the reuse attack exploits (§3.3.1: "this delegation
//! is precisely the exploitable culprit").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod journal;
pub mod volume;

pub use error::FsError;
pub use journal::Journal;
pub use volume::Volume;
