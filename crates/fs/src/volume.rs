//! Encrypted volumes: a host-visible bag of ciphertext with an
//! AEAD-protected manifest.
//!
//! Layout:
//!
//! * **Superblock** — the encrypted manifest (`path → file id, length,
//!   chunk count`), sealed with nonce domain 0 and a monotonically
//!   increasing manifest version as AEAD counter + associated data.
//! * **Chunks** — file content in 4 KiB chunks, each sealed with a
//!   per-file unique id as nonce domain and the chunk index as
//!   counter; the path, file length, and chunk index are associated
//!   data, so chunks cannot be swapped between files or positions.
//!
//! File ids are never reused (monotonic counter), so rewriting a file
//! never reuses an AEAD nonce. The host sees ciphertext sizes, chunk
//! counts and access patterns — as with any encrypted filesystem —
//! but any content or structure tampering is detected on read.
//!
//! # Crash safety
//!
//! [`Volume::write_file`] is ordered so that a crash at *any* point
//! leaves the volume readable with the file's **previous** content:
//!
//! 1. the new content is sealed into chunks under a **fresh** file id
//!    (never reusing a nonce, never touching the old chunks),
//! 2. the manifest is flipped to reference the new file id — the
//!    single atomic commit point,
//! 3. only then are the old file id's chunks reclaimed.
//!
//! A crash before step 2 leaves the manifest referencing the old,
//! fully intact chunks; the new chunks are unreferenced *orphans*
//! (reclaimable via [`Volume::sweep_orphans`]). A crash after step 2
//! at worst leaks the old chunks as orphans. [`Volume::remove_file`]
//! orders itself the same way (manifest flip first, reclaim after),
//! so across every mutation there is no window in which the manifest
//! references missing or partial content.
//! [`Volume::write_file_interrupted`] exposes the pre-commit crash
//! states for fault-injection tests.

use crate::error::FsError;
use rand::RngCore;
use sinclave_crypto::aead::{self, AeadKey, Nonce};
use std::collections::BTreeMap;
use std::fmt;

/// Chunk size for file content.
pub const CHUNK_SIZE: usize = 4096;

/// Maximum path length accepted.
pub const MAX_PATH: usize = 4096;

#[derive(Clone, Debug, PartialEq, Eq)]
struct FileMeta {
    file_id: u64,
    len: u64,
}

/// An encrypted volume as the host sees it: opaque superblock bytes
/// plus opaque chunks. `Clone` is intentionally cheap semantics-wise:
/// the adversary can always copy a disk image.
#[derive(Clone)]
pub struct Volume {
    superblock: Vec<u8>,
    manifest_version: u64,
    chunks: BTreeMap<(u64, u32), Vec<u8>>,
    next_file_id: u64,
    /// Modeled block-device flush latency per committed write, in
    /// microseconds (see [`Volume::set_flush_latency_micros`]).
    /// Runtime knob, not on-disk state: zero by default and not part
    /// of the disk image.
    flush_latency_micros: u64,
    /// Fault-injection knob (see [`Volume::set_file_write_failure`]):
    /// while set, whole-file writes fail as a sick device would make
    /// them fail. Runtime-only, like `flush_latency_micros` — never
    /// part of the disk image.
    fail_file_writes: bool,
    /// Human-readable label (host-visible, unauthenticated — like a
    /// partition label).
    pub label: String,
}

impl fmt::Debug for Volume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Volume")
            .field("label", &self.label)
            .field("chunks", &self.chunks.len())
            .field("manifest_version", &self.manifest_version)
            .finish()
    }
}

fn encode_manifest(files: &BTreeMap<String, FileMeta>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(files.len() as u32).to_be_bytes());
    for (path, meta) in files {
        out.extend_from_slice(&(path.len() as u32).to_be_bytes());
        out.extend_from_slice(path.as_bytes());
        out.extend_from_slice(&meta.file_id.to_be_bytes());
        out.extend_from_slice(&meta.len.to_be_bytes());
    }
    out
}

fn decode_manifest(bytes: &[u8]) -> Option<BTreeMap<String, FileMeta>> {
    let mut files = BTreeMap::new();
    let count = u32::from_be_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let mut pos = 4;
    for _ in 0..count {
        let path_len = u32::from_be_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let path = String::from_utf8(bytes.get(pos..pos + path_len)?.to_vec()).ok()?;
        pos += path_len;
        let file_id = u64::from_be_bytes(bytes.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        let len = u64::from_be_bytes(bytes.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        files.insert(path, FileMeta { file_id, len });
    }
    if pos != bytes.len() {
        return None;
    }
    Some(files)
}

impl Volume {
    /// Formats a fresh empty volume protected by `key`.
    #[must_use]
    pub fn format(key: &AeadKey, label: &str) -> Self {
        let mut v = Volume {
            superblock: Vec::new(),
            manifest_version: 0,
            chunks: BTreeMap::new(),
            next_file_id: 1,
            flush_latency_micros: 0,
            fail_file_writes: false,
            label: label.to_owned(),
        };
        v.write_manifest(key, &BTreeMap::new());
        v
    }

    /// Models the host block device's flush latency: every committed
    /// write — a staged chunk, a manifest flip, a log-chunk append —
    /// additionally costs this many microseconds, the way a real
    /// `fsync` does. Zero (the default) keeps the volume a pure
    /// in-memory model; benchmarks set it so that durability
    /// trade-offs (group commit vs. fsync-per-event vs. full snapshot
    /// writes) are costed like hardware would cost them instead of
    /// all rounding to free.
    pub fn set_flush_latency_micros(&mut self, micros: u64) {
        self.flush_latency_micros = micros;
    }

    /// Fault injection for degradation drills: while set, every
    /// [`Volume::write_file`] fails with
    /// [`FsError::BadKeyOrCorruptSuperblock`] before touching any
    /// state — the way a device returning write errors makes snapshot
    /// exports fail — while log-chunk appends keep succeeding (the
    /// journal lives on, so the failure degrades durability rather
    /// than stopping the world). Runtime-only; cleared on restore.
    pub fn set_file_write_failure(&mut self, fail: bool) {
        self.fail_file_writes = fail;
    }

    /// One modeled device flush (no-op at zero latency).
    fn device_flush(&self) {
        if self.flush_latency_micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.flush_latency_micros));
        }
    }

    /// Formats a fresh volume with a random key; returns both.
    #[must_use]
    pub fn format_random<R: RngCore + ?Sized>(rng: &mut R, label: &str) -> (Self, AeadKey) {
        let mut key_bytes = [0u8; 32];
        rng.fill_bytes(&mut key_bytes);
        let key = AeadKey::new(key_bytes);
        (Self::format(&key, label), key)
    }

    fn write_manifest(&mut self, key: &AeadKey, files: &BTreeMap<String, FileMeta>) {
        self.device_flush();
        self.manifest_version += 1;
        let nonce = Nonce::from_parts(0, self.manifest_version);
        self.superblock = aead::seal(
            key,
            nonce,
            manifest_aad(self.manifest_version).as_slice(),
            &encode_manifest(files),
        );
    }

    fn read_manifest(&self, key: &AeadKey) -> Result<BTreeMap<String, FileMeta>, FsError> {
        let nonce = Nonce::from_parts(0, self.manifest_version);
        let plain = aead::open(
            key,
            nonce,
            manifest_aad(self.manifest_version).as_slice(),
            &self.superblock,
        )
        .map_err(|_| FsError::BadKeyOrCorruptSuperblock)?;
        decode_manifest(&plain).ok_or(FsError::BadKeyOrCorruptSuperblock)
    }

    /// Checks that `key` opens this volume.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadKeyOrCorruptSuperblock`] otherwise.
    pub fn verify_key(&self, key: &AeadKey) -> Result<(), FsError> {
        self.read_manifest(key).map(|_| ())
    }

    /// Lists all file paths.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadKeyOrCorruptSuperblock`] for a wrong key.
    pub fn list(&self, key: &AeadKey) -> Result<Vec<String>, FsError> {
        Ok(self.read_manifest(key)?.keys().cloned().collect())
    }

    /// Whether `path` exists.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadKeyOrCorruptSuperblock`] for a wrong key.
    pub fn contains(&self, key: &AeadKey, path: &str) -> Result<bool, FsError> {
        Ok(self.read_manifest(key)?.contains_key(path))
    }

    /// Writes (or replaces) a file, crash-safely.
    ///
    /// New content goes to a fresh file id first, the manifest flip is
    /// the single commit point, and the replaced file's chunks are
    /// reclaimed only afterwards (see the module docs on crash
    /// safety): interrupting this write at any point leaves the
    /// previous content readable.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::InvalidPath`] for empty/over-long paths and
    /// [`FsError::BadKeyOrCorruptSuperblock`] for a wrong key.
    pub fn write_file(&mut self, key: &AeadKey, path: &str, data: &[u8]) -> Result<(), FsError> {
        if path.is_empty() || path.len() > MAX_PATH {
            return Err(FsError::InvalidPath);
        }
        if self.fail_file_writes {
            // Injected device failure (see `set_file_write_failure`):
            // refuse before staging anything so the volume is left
            // exactly as it was.
            return Err(FsError::BadKeyOrCorruptSuperblock);
        }
        let mut files = self.read_manifest(key)?; // also the key check
        let (file_id, _) = self.stage_chunks(key, path, data);
        let old = files.insert(path.to_owned(), FileMeta { file_id, len: data.len() as u64 });
        // Commit point: from here on, reads see the new content.
        self.write_manifest(key, &files);
        if let Some(old) = old {
            self.remove_chunks(old.file_id);
        }
        Ok(())
    }

    /// Seals `data` into chunks under a freshly allocated file id
    /// without touching the manifest or any existing chunks. Returns
    /// the new id and the chunk count. Infallible: callers validate
    /// the path and key (one manifest read serves both) first.
    fn stage_chunks(&mut self, key: &AeadKey, path: &str, data: &[u8]) -> (u64, usize) {
        let file_id = self.next_file_id;
        self.next_file_id += 1;
        let chunk_count = data.len().div_ceil(CHUNK_SIZE).max(1);
        for idx in 0..chunk_count {
            self.device_flush();
            let start = idx * CHUNK_SIZE;
            let end = (start + CHUNK_SIZE).min(data.len());
            let chunk_plain = &data[start.min(data.len())..end];
            let nonce = chunk_nonce(file_id, idx as u32);
            let aad = chunk_aad(path, data.len() as u64, idx as u32);
            let sealed = aead::seal(key, nonce, &aad, chunk_plain);
            self.chunks.insert((file_id, idx as u32), sealed);
        }
        (file_id, chunk_count)
    }

    /// Fault injection: performs the chunk-staging phase of
    /// [`Volume::write_file`] but "crashes" after `chunks_written`
    /// chunks — before the manifest flip — leaving exactly the on-disk
    /// state a power loss mid-write would. The manifest still
    /// references the previous content (if any), which stays fully
    /// readable; the partial chunks are unreferenced orphans. The file
    /// id is still consumed, as a real write-ahead allocation would
    /// be, so a retry never reuses a nonce.
    ///
    /// # Errors
    ///
    /// Same as [`Volume::write_file`].
    pub fn write_file_interrupted(
        &mut self,
        key: &AeadKey,
        path: &str,
        data: &[u8],
        chunks_written: usize,
    ) -> Result<(), FsError> {
        if path.is_empty() || path.len() > MAX_PATH {
            return Err(FsError::InvalidPath);
        }
        self.read_manifest(key)?; // key check; a crashed write never flips the manifest
        let (file_id, chunk_count) = self.stage_chunks(key, path, data);
        // Undo the tail the crash never got to write.
        for idx in chunks_written.min(chunk_count)..chunk_count {
            self.chunks.remove(&(file_id, idx as u32));
        }
        Ok(())
    }

    /// Reclaims chunks whose file id is not referenced by the
    /// manifest — the debris interrupted writes leave behind (see the
    /// module docs on crash safety). Returns the number of chunks
    /// removed. Orphans are unreachable through every read path, so
    /// sweeping is purely a space reclaim; callers typically run it
    /// once after opening a volume that may have seen a crash.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadKeyOrCorruptSuperblock`] for a wrong key.
    pub fn sweep_orphans(&mut self, key: &AeadKey) -> Result<usize, FsError> {
        let live: std::collections::BTreeSet<u64> =
            self.read_manifest(key)?.values().map(|meta| meta.file_id).collect();
        let orphaned: Vec<(u64, u32)> =
            self.chunks.keys().copied().filter(|(id, _)| !live.contains(id)).collect();
        let swept = orphaned.len();
        for id in orphaned {
            self.chunks.remove(&id);
        }
        Ok(swept)
    }

    // ---- Append-only log files -------------------------------------------
    //
    // Regular files are rewritten whole (fresh file id, manifest flip);
    // a write-ahead log cannot afford that — every append would reseal
    // the manifest and every old chunk's AAD (which binds the total
    // file length) would go stale. Log files therefore commit at chunk
    // granularity: registering the log is a manifest flip, but each
    // append seals one variable-sized chunk at the next index and the
    // chunk's presence *is* the commit (the model of a single
    // block-device write + flush). Log chunks use their own AAD domain
    // ("logchunk", no length binding) so they can never masquerade as
    // regular file chunks or vice versa, and the per-(file id, index)
    // nonce is never reused because appenders only move forward —
    // recovering from a torn tail rolls to a fresh log (fresh file id)
    // instead of overwriting the torn index (see [`journal`]).
    //
    // [`journal`]: crate::journal

    /// Registers an empty append-only log at `path` (manifest flip).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::InvalidPath`] for empty/over-long paths or a
    /// path that already exists, [`FsError::BadKeyOrCorruptSuperblock`]
    /// for a wrong key.
    pub fn create_log(&mut self, key: &AeadKey, path: &str) -> Result<(), FsError> {
        if path.is_empty() || path.len() > MAX_PATH {
            return Err(FsError::InvalidPath);
        }
        let mut files = self.read_manifest(key)?;
        if files.contains_key(path) {
            return Err(FsError::InvalidPath);
        }
        let file_id = self.next_file_id;
        self.next_file_id += 1;
        files.insert(path.to_owned(), FileMeta { file_id, len: 0 });
        self.write_manifest(key, &files);
        Ok(())
    }

    /// Appends one sealed chunk to a log file and returns its index.
    /// The chunk write is the commit point — no manifest rewrite, so
    /// an append costs one seal instead of a full-volume-metadata
    /// write. A crash mid-append leaves at worst a torn (unopenable)
    /// chunk at the new index, which readers classify as the log's
    /// damaged tail.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the log was never created;
    /// [`FsError::BadKeyOrCorruptSuperblock`] for a wrong key.
    pub fn append_log_chunk(
        &mut self,
        key: &AeadKey,
        path: &str,
        payload: &[u8],
    ) -> Result<u32, FsError> {
        let (file_id, idx) = self.next_log_slot(key, path)?;
        self.append_log_chunk_at(key, path, file_id, idx, payload);
        Ok(idx)
    }

    /// Fault injection: performs [`Volume::append_log_chunk`] but
    /// "crashes" after only `keep_bytes` of the sealed chunk reached
    /// the disk — the torn-tail state a power loss mid-append leaves.
    ///
    /// # Errors
    ///
    /// Same as [`Volume::append_log_chunk`].
    pub fn append_log_chunk_torn(
        &mut self,
        key: &AeadKey,
        path: &str,
        payload: &[u8],
        keep_bytes: usize,
    ) -> Result<u32, FsError> {
        let (file_id, idx) = self.next_log_slot(key, path)?;
        let mut sealed =
            aead::seal(key, chunk_nonce(file_id, idx), &log_chunk_aad(path, idx), payload);
        sealed.truncate(keep_bytes);
        self.chunks.insert((file_id, idx), sealed);
        Ok(idx)
    }

    /// Resolves a log file's id and its next append index.
    ///
    /// Exposed to [`crate::journal`] so an open journal can cache the
    /// slot and append without re-opening the sealed manifest on the
    /// hot path (see [`Volume::append_log_chunk_at`]).
    pub(crate) fn next_log_slot(&self, key: &AeadKey, path: &str) -> Result<(u64, u32), FsError> {
        let files = self.read_manifest(key)?;
        let meta = files.get(path).ok_or_else(|| FsError::NotFound { path: path.to_owned() })?;
        let idx = self
            .chunks
            .range((meta.file_id, 0)..=(meta.file_id, u32::MAX))
            .next_back()
            .map_or(0, |((_, i), _)| i + 1);
        Ok((meta.file_id, idx))
    }

    /// Hot-path append for an already-resolved log slot: seals the
    /// payload and inserts the chunk — no manifest open, the chunk
    /// write is the commit (the model of one block write + flush).
    /// Callers ([`crate::journal`]) resolve the slot once per epoch
    /// via [`Volume::next_log_slot`] and advance the index themselves;
    /// the epoch's file id is theirs alone, so no other writer can
    /// race the nonce.
    pub(crate) fn append_log_chunk_at(
        &mut self,
        key: &AeadKey,
        path: &str,
        file_id: u64,
        idx: u32,
        payload: &[u8],
    ) {
        self.device_flush();
        let sealed = aead::seal(key, chunk_nonce(file_id, idx), &log_chunk_aad(path, idx), payload);
        self.chunks.insert((file_id, idx), sealed);
    }

    /// Reads one log chunk. `Ok(None)` means the index was never
    /// written (the log's clean end).
    ///
    /// # Errors
    ///
    /// * [`FsError::IntegrityViolation`] — the chunk exists but fails
    ///   authentication (torn append or tampering).
    /// * [`FsError::NotFound`] / [`FsError::BadKeyOrCorruptSuperblock`]
    ///   — missing log / wrong key.
    pub fn read_log_chunk(
        &self,
        key: &AeadKey,
        path: &str,
        idx: u32,
    ) -> Result<Option<Vec<u8>>, FsError> {
        let files = self.read_manifest(key)?;
        let meta = files.get(path).ok_or_else(|| FsError::NotFound { path: path.to_owned() })?;
        self.read_log_chunk_at(key, path, meta.file_id, idx)
    }

    /// [`Volume::read_log_chunk`] with the manifest lookup already
    /// done: recovery ([`crate::journal`]) resolves a log's file id
    /// once per epoch instead of re-opening the sealed manifest for
    /// every chunk it replays.
    pub(crate) fn read_log_chunk_at(
        &self,
        key: &AeadKey,
        path: &str,
        file_id: u64,
        idx: u32,
    ) -> Result<Option<Vec<u8>>, FsError> {
        let Some(sealed) = self.chunks.get(&(file_id, idx)) else {
            return Ok(None);
        };
        aead::open(key, chunk_nonce(file_id, idx), &log_chunk_aad(path, idx), sealed)
            .map(Some)
            .map_err(|_| FsError::IntegrityViolation { path: path.to_owned() })
    }

    /// The chunk indices present for a log file, ascending. Presence
    /// says nothing about readability — a torn append is present but
    /// unopenable.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::BadKeyOrCorruptSuperblock`].
    pub fn log_chunk_indices(&self, key: &AeadKey, path: &str) -> Result<Vec<u32>, FsError> {
        Ok(self.chunk_indices_of(self.log_file_id(key, path)?))
    }

    /// Resolves a log path to its file id (one sealed-manifest open).
    pub(crate) fn log_file_id(&self, key: &AeadKey, path: &str) -> Result<u64, FsError> {
        let files = self.read_manifest(key)?;
        let meta = files.get(path).ok_or_else(|| FsError::NotFound { path: path.to_owned() })?;
        Ok(meta.file_id)
    }

    /// The chunk indices present under a file id, ascending.
    pub(crate) fn chunk_indices_of(&self, file_id: u64) -> Vec<u32> {
        self.chunks.range((file_id, 0)..=(file_id, u32::MAX)).map(|((_, i), _)| *i).collect()
    }

    /// Discards one log chunk (recovery reclaiming a torn tail after
    /// classifying it). Returns whether the chunk existed.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::BadKeyOrCorruptSuperblock`].
    pub fn remove_log_chunk(
        &mut self,
        key: &AeadKey,
        path: &str,
        idx: u32,
    ) -> Result<bool, FsError> {
        let files = self.read_manifest(key)?;
        let meta = files.get(path).ok_or_else(|| FsError::NotFound { path: path.to_owned() })?;
        Ok(self.chunks.remove(&(meta.file_id, idx)).is_some())
    }

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// * [`FsError::NotFound`] — no such path.
    /// * [`FsError::IntegrityViolation`] — ciphertext tampered.
    /// * [`FsError::BadKeyOrCorruptSuperblock`] — wrong key.
    pub fn read_file(&self, key: &AeadKey, path: &str) -> Result<Vec<u8>, FsError> {
        let files = self.read_manifest(key)?;
        let meta = files.get(path).ok_or_else(|| FsError::NotFound { path: path.to_owned() })?;
        let chunk_count = (meta.len as usize).div_ceil(CHUNK_SIZE).max(1);
        let mut out = Vec::with_capacity(meta.len as usize);
        for idx in 0..chunk_count {
            let sealed = self
                .chunks
                .get(&(meta.file_id, idx as u32))
                .ok_or_else(|| FsError::IntegrityViolation { path: path.to_owned() })?;
            let nonce = chunk_nonce(meta.file_id, idx as u32);
            let aad = chunk_aad(path, meta.len, idx as u32);
            let plain = aead::open(key, nonce, &aad, sealed)
                .map_err(|_| FsError::IntegrityViolation { path: path.to_owned() })?;
            out.extend_from_slice(&plain);
        }
        if out.len() as u64 != meta.len {
            return Err(FsError::IntegrityViolation { path: path.to_owned() });
        }
        Ok(out)
    }

    /// Removes a file, crash-safely: the manifest flip commits the
    /// removal first, the chunks are reclaimed after. A crash in
    /// between leaves sweepable orphans, never a manifest pointing at
    /// missing chunks.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent, [`FsError::BadKeyOrCorruptSuperblock`]
    /// for a wrong key.
    pub fn remove_file(&mut self, key: &AeadKey, path: &str) -> Result<(), FsError> {
        let mut files = self.read_manifest(key)?;
        let meta = files.remove(path).ok_or_else(|| FsError::NotFound { path: path.to_owned() })?;
        self.write_manifest(key, &files);
        self.remove_chunks(meta.file_id);
        Ok(())
    }

    fn remove_chunks(&mut self, file_id: u64) {
        let keys: Vec<_> =
            self.chunks.range((file_id, 0)..=(file_id, u32::MAX)).map(|(k, _)| *k).collect();
        for k in keys {
            self.chunks.remove(&k);
        }
    }

    // ---- Host / adversary surface ----------------------------------------

    /// Host view: total ciphertext bytes on disk.
    #[must_use]
    pub fn size_on_disk(&self) -> usize {
        self.superblock.len() + self.chunks.values().map(Vec::len).sum::<usize>()
    }

    /// Host view: ids of all ciphertext chunks.
    #[must_use]
    pub fn raw_chunk_ids(&self) -> Vec<(u64, u32)> {
        self.chunks.keys().copied().collect()
    }

    /// Adversary: flip a byte in a ciphertext chunk.
    ///
    /// Returns whether the chunk existed.
    pub fn corrupt_chunk(&mut self, id: (u64, u32)) -> bool {
        match self.chunks.get_mut(&id) {
            Some(c) if !c.is_empty() => {
                c[0] ^= 0x1;
                true
            }
            _ => false,
        }
    }

    /// Adversary: remove a ciphertext chunk entirely (hosts control
    /// the block device and can delete what they cannot read).
    /// Returns whether the chunk existed.
    pub fn delete_chunk(&mut self, id: (u64, u32)) -> bool {
        self.chunks.remove(&id).is_some()
    }

    /// Adversary: truncate a ciphertext chunk to its first
    /// `keep_bytes` bytes (the torn-write shape a power loss leaves on
    /// a real disk). Returns whether the chunk existed.
    pub fn corrupt_chunk_truncate(&mut self, id: (u64, u32), keep_bytes: usize) -> bool {
        match self.chunks.get_mut(&id) {
            Some(c) => {
                c.truncate(keep_bytes);
                true
            }
            None => false,
        }
    }

    /// Host view: the ciphertext chunk ids belonging to one path
    /// (regular file or log), ascending by index.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::BadKeyOrCorruptSuperblock`].
    pub fn chunk_ids_for(&self, key: &AeadKey, path: &str) -> Result<Vec<(u64, u32)>, FsError> {
        let files = self.read_manifest(key)?;
        let meta = files.get(path).ok_or_else(|| FsError::NotFound { path: path.to_owned() })?;
        Ok(self
            .chunks
            .range((meta.file_id, 0)..=(meta.file_id, u32::MAX))
            .map(|(k, _)| *k)
            .collect())
    }

    /// Adversary: flip a byte in the superblock.
    pub fn corrupt_superblock(&mut self) {
        if let Some(b) = self.superblock.first_mut() {
            *b ^= 0x1;
        }
    }

    /// File length in bytes, without reading the content.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent; [`FsError::BadKeyOrCorruptSuperblock`]
    /// for a wrong key.
    pub fn file_len(&self, key: &AeadKey, path: &str) -> Result<u64, FsError> {
        self.read_manifest(key)?
            .get(path)
            .map(|meta| meta.len)
            .ok_or_else(|| FsError::NotFound { path: path.to_owned() })
    }

    /// Serializes the whole volume to a portable disk image — the
    /// artifact SGX-LKL deployments ship around and adversaries copy.
    #[must_use]
    pub fn to_disk_image(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SINVOL1\0");
        let put = |out: &mut Vec<u8>, bytes: &[u8]| {
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(bytes);
        };
        put(&mut out, self.label.as_bytes());
        out.extend_from_slice(&self.manifest_version.to_be_bytes());
        out.extend_from_slice(&self.next_file_id.to_be_bytes());
        put(&mut out, &self.superblock);
        out.extend_from_slice(&(self.chunks.len() as u32).to_be_bytes());
        for ((file_id, idx), data) in &self.chunks {
            out.extend_from_slice(&file_id.to_be_bytes());
            out.extend_from_slice(&idx.to_be_bytes());
            put(&mut out, data);
        }
        out
    }

    /// Parses a disk image produced by [`Volume::to_disk_image`].
    ///
    /// No key is needed: the image is host-visible ciphertext. Opening
    /// the *content* still requires the volume key, and any tampering
    /// with the image is detected at read time exactly as for a live
    /// volume.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::InvalidPath`] (the closest structural error)
    /// for malformed images.
    pub fn from_disk_image(bytes: &[u8]) -> Result<Self, FsError> {
        fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], FsError> {
            if cursor.len() < n {
                return Err(FsError::InvalidPath);
            }
            let (head, rest) = cursor.split_at(n);
            *cursor = rest;
            Ok(head)
        }
        fn get<'a>(cursor: &mut &'a [u8]) -> Result<&'a [u8], FsError> {
            let len =
                u32::from_be_bytes(take(cursor, 4)?.try_into().map_err(|_| FsError::InvalidPath)?)
                    as usize;
            take(cursor, len)
        }
        let mut cursor = bytes;
        if take(&mut cursor, 8)? != b"SINVOL1\0" {
            return Err(FsError::InvalidPath);
        }
        let label =
            String::from_utf8(get(&mut cursor)?.to_vec()).map_err(|_| FsError::InvalidPath)?;
        let manifest_version =
            u64::from_be_bytes(take(&mut cursor, 8)?.try_into().map_err(|_| FsError::InvalidPath)?);
        let next_file_id =
            u64::from_be_bytes(take(&mut cursor, 8)?.try_into().map_err(|_| FsError::InvalidPath)?);
        let superblock = get(&mut cursor)?.to_vec();
        let chunk_count =
            u32::from_be_bytes(take(&mut cursor, 4)?.try_into().map_err(|_| FsError::InvalidPath)?)
                as usize;
        let mut chunks = BTreeMap::new();
        for _ in 0..chunk_count {
            let file_id = u64::from_be_bytes(
                take(&mut cursor, 8)?.try_into().map_err(|_| FsError::InvalidPath)?,
            );
            let idx = u32::from_be_bytes(
                take(&mut cursor, 4)?.try_into().map_err(|_| FsError::InvalidPath)?,
            );
            let data = get(&mut cursor)?.to_vec();
            chunks.insert((file_id, idx), data);
        }
        if !cursor.is_empty() {
            return Err(FsError::InvalidPath);
        }
        Ok(Volume {
            superblock,
            manifest_version,
            chunks,
            next_file_id,
            flush_latency_micros: 0,
            fail_file_writes: false,
            label,
        })
    }
}

fn chunk_nonce(file_id: u64, idx: u32) -> Nonce {
    // Domain 1.. reserved for files; fold the 64-bit file id into the
    // 32-bit domain and 64-bit counter: domain = high bits + 1, counter
    // = low 32 bits of id << 32 | chunk idx. File ids are sequential
    // and far below 2^32 in practice; the fold keeps uniqueness for
    // ids < 2^63.
    let domain = 1u32.wrapping_add((file_id >> 32) as u32);
    let counter = (file_id << 32) | idx as u64;
    Nonce::from_parts(domain, counter)
}

fn chunk_aad(path: &str, len: u64, idx: u32) -> Vec<u8> {
    let mut aad = Vec::with_capacity(path.len() + 16);
    aad.extend_from_slice(b"chunk");
    aad.extend_from_slice(&len.to_be_bytes());
    aad.extend_from_slice(&idx.to_be_bytes());
    aad.extend_from_slice(path.as_bytes());
    aad
}

fn log_chunk_aad(path: &str, idx: u32) -> Vec<u8> {
    // Distinct prefix from `chunk_aad` ("chunk") and no length binding:
    // a log grows in place, so only the position and the path pin a
    // chunk down. Log chunks and file chunks can never be swapped for
    // one another — the AAD domains differ.
    let mut aad = Vec::with_capacity(path.len() + 12);
    aad.extend_from_slice(b"logchunk");
    aad.extend_from_slice(&idx.to_be_bytes());
    aad.extend_from_slice(path.as_bytes());
    aad
}

fn manifest_aad(version: u64) -> Vec<u8> {
    let mut aad = b"manifest".to_vec();
    aad.extend_from_slice(&version.to_be_bytes());
    aad
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(fill: u8) -> AeadKey {
        AeadKey::new([fill; 32])
    }

    #[test]
    fn write_read_roundtrip_various_sizes() {
        let k = key(1);
        let mut v = Volume::format(&k, "test");
        for size in [0usize, 1, CHUNK_SIZE - 1, CHUNK_SIZE, CHUNK_SIZE + 1, 3 * CHUNK_SIZE + 17] {
            let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            v.write_file(&k, &format!("f{size}"), &data).unwrap();
            assert_eq!(v.read_file(&k, &format!("f{size}")).unwrap(), data, "size {size}");
        }
    }

    #[test]
    fn overwrite_replaces_content() {
        let k = key(2);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "a", b"old content").unwrap();
        v.write_file(&k, "a", b"new").unwrap();
        assert_eq!(v.read_file(&k, "a").unwrap(), b"new");
        assert_eq!(v.list(&k).unwrap(), vec!["a".to_owned()]);
    }

    #[test]
    fn remove_and_not_found() {
        let k = key(3);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "a", b"x").unwrap();
        v.remove_file(&k, "a").unwrap();
        assert!(matches!(v.read_file(&k, "a"), Err(FsError::NotFound { .. })));
        assert!(matches!(v.remove_file(&k, "a"), Err(FsError::NotFound { .. })));
        assert_eq!(v.raw_chunk_ids().len(), 0, "chunks reclaimed");
    }

    #[test]
    fn wrong_key_rejected_everywhere() {
        let k = key(4);
        let wrong = key(5);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "a", b"secret").unwrap();
        assert_eq!(v.verify_key(&wrong), Err(FsError::BadKeyOrCorruptSuperblock));
        assert!(v.read_file(&wrong, "a").is_err());
        assert!(v.list(&wrong).is_err());
        assert!(v.clone().write_file(&wrong, "b", b"x").is_err());
    }

    #[test]
    fn ciphertext_does_not_leak_plaintext() {
        let k = key(6);
        let mut v = Volume::format(&k, "test");
        let secret = b"very secret plaintext content that must not appear on disk";
        v.write_file(&k, "s", secret).unwrap();
        // Scan every ciphertext byte string for the plaintext.
        for chunk in v.chunks.values() {
            assert!(!chunk.windows(secret.len().min(chunk.len())).any(|w| w == &secret[..w.len()]));
        }
    }

    #[test]
    fn chunk_corruption_detected() {
        let k = key(7);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "a", &vec![7u8; 3 * CHUNK_SIZE]).unwrap();
        let ids = v.raw_chunk_ids();
        assert!(v.corrupt_chunk(ids[1]));
        assert!(matches!(v.read_file(&k, "a"), Err(FsError::IntegrityViolation { .. })));
    }

    #[test]
    fn superblock_corruption_detected() {
        let k = key(8);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "a", b"x").unwrap();
        v.corrupt_superblock();
        assert_eq!(v.verify_key(&k), Err(FsError::BadKeyOrCorruptSuperblock));
    }

    #[test]
    fn chunks_cannot_be_swapped_between_files() {
        let k = key(9);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "a", &vec![1u8; CHUNK_SIZE]).unwrap();
        v.write_file(&k, "b", &vec![2u8; CHUNK_SIZE]).unwrap();
        let ids = v.raw_chunk_ids();
        // Swap the two files' ciphertexts.
        let ca = v.chunks[&ids[0]].clone();
        let cb = v.chunks[&ids[1]].clone();
        v.chunks.insert(ids[0], cb);
        v.chunks.insert(ids[1], ca);
        assert!(v.read_file(&k, "a").is_err());
        assert!(v.read_file(&k, "b").is_err());
    }

    #[test]
    fn chunks_cannot_be_reordered_within_file() {
        let k = key(10);
        let mut v = Volume::format(&k, "test");
        let mut data = vec![0u8; 2 * CHUNK_SIZE];
        data[0] = 1;
        data[CHUNK_SIZE] = 2;
        v.write_file(&k, "a", &data).unwrap();
        let ids = v.raw_chunk_ids();
        let c0 = v.chunks[&ids[0]].clone();
        let c1 = v.chunks[&ids[1]].clone();
        v.chunks.insert(ids[0], c1);
        v.chunks.insert(ids[1], c0);
        assert!(v.read_file(&k, "a").is_err());
    }

    #[test]
    fn adversary_can_copy_volume_but_it_stays_opaque() {
        let k = key(11);
        let mut v = Volume::format(&k, "user volume");
        v.write_file(&k, "app.py", b"print('hi')").unwrap();
        let stolen = v.clone();
        // The copy is byte-identical but useless without the key.
        assert_eq!(stolen.size_on_disk(), v.size_on_disk());
        assert!(stolen.read_file(&key(12), "app.py").is_err());
    }

    #[test]
    fn format_random_produces_usable_volume() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut v, k) = Volume::format_random(&mut rng, "r");
        v.write_file(&k, "x", b"data").unwrap();
        assert_eq!(v.read_file(&k, "x").unwrap(), b"data");
    }

    #[test]
    fn invalid_paths_rejected() {
        let k = key(13);
        let mut v = Volume::format(&k, "test");
        assert_eq!(v.write_file(&k, "", b"x"), Err(FsError::InvalidPath));
        let long = "p".repeat(MAX_PATH + 1);
        assert_eq!(v.write_file(&k, &long, b"x"), Err(FsError::InvalidPath));
    }

    #[test]
    fn file_len_without_read() {
        let k = key(15);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "a", &vec![0u8; 12345]).unwrap();
        assert_eq!(v.file_len(&k, "a").unwrap(), 12345);
        assert!(matches!(v.file_len(&k, "b"), Err(FsError::NotFound { .. })));
    }

    #[test]
    fn disk_image_roundtrip() {
        let k = key(16);
        let mut v = Volume::format(&k, "shipped");
        v.write_file(&k, "boot/entry", b"print hello").unwrap();
        v.write_file(&k, "data", &vec![9u8; 3 * CHUNK_SIZE + 1]).unwrap();
        let image = v.to_disk_image();
        let restored = Volume::from_disk_image(&image).unwrap();
        assert_eq!(restored.label, "shipped");
        assert_eq!(restored.read_file(&k, "boot/entry").unwrap(), b"print hello");
        assert_eq!(restored.read_file(&k, "data").unwrap(), vec![9u8; 3 * CHUNK_SIZE + 1]);
        // Continue writing to the restored volume (nonce counters must
        // have survived so no nonce is ever reused).
        let mut restored = restored;
        restored.write_file(&k, "more", b"post-restore").unwrap();
        assert_eq!(restored.read_file(&k, "more").unwrap(), b"post-restore");
    }

    #[test]
    fn disk_image_tampering_detected_after_restore() {
        let k = key(17);
        let mut v = Volume::format(&k, "t");
        v.write_file(&k, "f", b"payload").unwrap();
        let mut image = v.to_disk_image();
        let n = image.len();
        image[n - 2] ^= 1; // flip a ciphertext byte
        let restored = Volume::from_disk_image(&image).unwrap();
        assert!(restored.read_file(&k, "f").is_err());
    }

    #[test]
    fn disk_image_rejects_garbage() {
        assert!(Volume::from_disk_image(b"not an image").is_err());
        assert!(Volume::from_disk_image(&[]).is_err());
        let k = key(18);
        let v = Volume::format(&k, "t");
        let mut image = v.to_disk_image();
        image.push(0); // trailing junk
        assert!(Volume::from_disk_image(&image).is_err());
    }

    #[test]
    fn interrupted_overwrite_keeps_previous_content_at_every_crash_point() {
        let k = key(20);
        let old: Vec<u8> = (0..2 * CHUNK_SIZE + 7).map(|i| (i % 251) as u8).collect();
        let new = vec![0x5au8; 3 * CHUNK_SIZE + 1];
        let new_chunks = new.len().div_ceil(CHUNK_SIZE);
        for crash_after in 0..=new_chunks {
            let mut v = Volume::format(&k, "test");
            v.write_file(&k, "f", &old).unwrap();
            v.write_file_interrupted(&k, "f", &new, crash_after).unwrap();
            // The manifest still references the old content, intact.
            assert_eq!(v.read_file(&k, "f").unwrap(), old, "crash after {crash_after} chunks");
            assert_eq!(v.file_len(&k, "f").unwrap(), old.len() as u64);
            // Recovery sweep reclaims exactly the partial chunks.
            assert_eq!(v.sweep_orphans(&k).unwrap(), crash_after.min(new_chunks));
            assert_eq!(v.read_file(&k, "f").unwrap(), old);
            // The volume keeps working: a retried write succeeds and
            // never reuses the interrupted write's file id (nonces stay
            // unique).
            v.write_file(&k, "f", &new).unwrap();
            assert_eq!(v.read_file(&k, "f").unwrap(), new);
        }
    }

    #[test]
    fn interrupted_first_write_leaves_file_absent() {
        let k = key(21);
        let mut v = Volume::format(&k, "test");
        v.write_file_interrupted(&k, "f", &vec![1u8; CHUNK_SIZE + 1], 1).unwrap();
        assert!(matches!(v.read_file(&k, "f"), Err(FsError::NotFound { .. })));
        assert!(!v.contains(&k, "f").unwrap());
        assert_eq!(v.sweep_orphans(&k).unwrap(), 1);
        assert_eq!(v.raw_chunk_ids().len(), 0);
    }

    #[test]
    fn sweep_orphans_never_touches_live_files() {
        let k = key(22);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "a", &vec![1u8; 2 * CHUNK_SIZE]).unwrap();
        v.write_file(&k, "b", b"small").unwrap();
        assert_eq!(v.sweep_orphans(&k).unwrap(), 0);
        assert_eq!(v.read_file(&k, "a").unwrap(), vec![1u8; 2 * CHUNK_SIZE]);
        assert_eq!(v.read_file(&k, "b").unwrap(), b"small");
        assert!(v.sweep_orphans(&key(23)).is_err(), "sweep requires the key");
    }

    #[test]
    fn interrupted_write_survives_disk_image_roundtrip() {
        // A crash is exactly "the host still has the image": the
        // partially written state must round-trip and stay recoverable.
        let k = key(24);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "f", b"good snapshot").unwrap();
        v.write_file_interrupted(&k, "f", &vec![9u8; 2 * CHUNK_SIZE], 1).unwrap();
        let mut restored = Volume::from_disk_image(&v.to_disk_image()).unwrap();
        assert_eq!(restored.read_file(&k, "f").unwrap(), b"good snapshot");
        assert_eq!(restored.sweep_orphans(&k).unwrap(), 1);
        restored.write_file(&k, "f", b"retry").unwrap();
        assert_eq!(restored.read_file(&k, "f").unwrap(), b"retry");
    }

    #[test]
    fn log_append_read_roundtrip() {
        let k = key(30);
        let mut v = Volume::format(&k, "log");
        v.create_log(&k, "wal").unwrap();
        assert_eq!(v.read_log_chunk(&k, "wal", 0).unwrap(), None, "empty log ends at 0");
        for i in 0..5u32 {
            let payload = vec![i as u8; 10 + i as usize * 100];
            assert_eq!(v.append_log_chunk(&k, "wal", &payload).unwrap(), i);
        }
        for i in 0..5u32 {
            let got = v.read_log_chunk(&k, "wal", i).unwrap().unwrap();
            assert_eq!(got, vec![i as u8; 10 + i as usize * 100]);
        }
        assert_eq!(v.read_log_chunk(&k, "wal", 5).unwrap(), None);
        assert_eq!(v.log_chunk_indices(&k, "wal").unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn log_requires_creation_and_unique_path() {
        let k = key(31);
        let mut v = Volume::format(&k, "log");
        assert!(matches!(v.append_log_chunk(&k, "wal", b"x"), Err(FsError::NotFound { .. })));
        v.create_log(&k, "wal").unwrap();
        assert_eq!(v.create_log(&k, "wal"), Err(FsError::InvalidPath));
        assert!(v.contains(&k, "wal").unwrap());
    }

    #[test]
    fn log_survives_disk_image_roundtrip() {
        let k = key(32);
        let mut v = Volume::format(&k, "log");
        v.create_log(&k, "wal").unwrap();
        v.append_log_chunk(&k, "wal", b"first").unwrap();
        v.append_log_chunk(&k, "wal", b"second").unwrap();
        let restored = Volume::from_disk_image(&v.to_disk_image()).unwrap();
        assert_eq!(restored.read_log_chunk(&k, "wal", 0).unwrap().unwrap(), b"first");
        assert_eq!(restored.read_log_chunk(&k, "wal", 1).unwrap().unwrap(), b"second");
    }

    #[test]
    fn torn_log_append_is_detected_not_misread() {
        let k = key(33);
        let mut v = Volume::format(&k, "log");
        v.create_log(&k, "wal").unwrap();
        v.append_log_chunk(&k, "wal", b"durable").unwrap();
        v.append_log_chunk_torn(&k, "wal", b"torn away", 3).unwrap();
        assert_eq!(v.read_log_chunk(&k, "wal", 0).unwrap().unwrap(), b"durable");
        assert!(matches!(v.read_log_chunk(&k, "wal", 1), Err(FsError::IntegrityViolation { .. })));
        // Recovery reclaims the torn tail; the log keeps working.
        assert!(v.remove_log_chunk(&k, "wal", 1).unwrap());
        assert_eq!(v.log_chunk_indices(&k, "wal").unwrap(), vec![0]);
    }

    #[test]
    fn log_chunks_bound_to_path_and_position() {
        let k = key(34);
        let mut v = Volume::format(&k, "log");
        v.create_log(&k, "a").unwrap();
        v.create_log(&k, "b").unwrap();
        v.append_log_chunk(&k, "a", b"one").unwrap();
        v.append_log_chunk(&k, "a", b"two").unwrap();
        v.append_log_chunk(&k, "b", b"other").unwrap();
        let a_ids = v.chunk_ids_for(&k, "a").unwrap();
        let b_ids = v.chunk_ids_for(&k, "b").unwrap();
        // Swap a chunk between logs: both reads must fail.
        let ca = v.chunks[&a_ids[0]].clone();
        let cb = v.chunks[&b_ids[0]].clone();
        v.chunks.insert(a_ids[0], cb);
        v.chunks.insert(b_ids[0], ca);
        assert!(v.read_log_chunk(&k, "a", 0).is_err());
        assert!(v.read_log_chunk(&k, "b", 0).is_err());
        // Reorder within one log: detected too.
        let mut v2 = Volume::format(&k, "log");
        v2.create_log(&k, "a").unwrap();
        v2.append_log_chunk(&k, "a", b"one").unwrap();
        v2.append_log_chunk(&k, "a", b"two").unwrap();
        let ids = v2.chunk_ids_for(&k, "a").unwrap();
        let c0 = v2.chunks[&ids[0]].clone();
        let c1 = v2.chunks[&ids[1]].clone();
        v2.chunks.insert(ids[0], c1);
        v2.chunks.insert(ids[1], c0);
        assert!(v2.read_log_chunk(&k, "a", 0).is_err());
        assert!(v2.read_log_chunk(&k, "a", 1).is_err());
    }

    #[test]
    fn log_chunks_survive_orphan_sweep_and_removal() {
        let k = key(35);
        let mut v = Volume::format(&k, "log");
        v.create_log(&k, "wal").unwrap();
        v.append_log_chunk(&k, "wal", b"keep me").unwrap();
        assert_eq!(v.sweep_orphans(&k).unwrap(), 0, "live log chunks are not orphans");
        assert_eq!(v.read_log_chunk(&k, "wal", 0).unwrap().unwrap(), b"keep me");
        // remove_file reclaims a whole log, chunks included.
        v.remove_file(&k, "wal").unwrap();
        assert_eq!(v.raw_chunk_ids().len(), 0);
    }

    #[test]
    fn rollback_of_superblock_detected() {
        // Replaying an old superblock over a newer volume state fails
        // because the manifest version is bound into nonce and AAD.
        let k = key(14);
        let mut v = Volume::format(&k, "test");
        v.write_file(&k, "a", b"v1").unwrap();
        let old_superblock = v.superblock.clone();
        v.write_file(&k, "a", b"v2").unwrap();
        v.superblock = old_superblock;
        assert_eq!(v.verify_key(&k), Err(FsError::BadKeyOrCorruptSuperblock));
    }
}
