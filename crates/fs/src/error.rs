//! Error type for the encrypted filesystem.

use std::error::Error;
use std::fmt;

/// Errors raised by volume operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsError {
    /// The volume key is wrong or the superblock was tampered with.
    BadKeyOrCorruptSuperblock,
    /// A file's ciphertext failed integrity verification.
    IntegrityViolation {
        /// Path of the corrupt file.
        path: String,
    },
    /// The requested file does not exist.
    NotFound {
        /// The missing path.
        path: String,
    },
    /// A path was syntactically invalid (empty or over-long).
    InvalidPath,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::BadKeyOrCorruptSuperblock => {
                write!(f, "wrong volume key or corrupt superblock")
            }
            FsError::IntegrityViolation { path } => {
                write!(f, "integrity violation in file {path:?}")
            }
            FsError::NotFound { path } => write!(f, "file not found: {path:?}"),
            FsError::InvalidPath => write!(f, "invalid path"),
        }
    }
}

impl Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FsError::NotFound { path: "a/b".into() }.to_string().contains("a/b"));
        assert!(FsError::IntegrityViolation { path: "x".into() }.to_string().contains("integrity"));
    }
}
