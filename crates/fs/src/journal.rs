//! Sealed append-only write-ahead journal inside an encrypted volume.
//!
//! The journal stores opaque payloads (the CAS's group-commit batches
//! of `sinclave::journal_record` records) as sealed log chunks, and
//! guarantees exactly the property a write-ahead log needs: **once an
//! append returns, the payload survives any crash**, and a crash
//! *during* an append degrades to the journal as it was before — the
//! torn chunk is detected, classified, and reclaimed, never misread
//! and never a panic.
//!
//! # Layout: epochs of append-committed chunks
//!
//! A journal is a sequence of *epochs* — log files named
//! `<root>/epoch-<n>` — and each epoch is a run of sealed chunks
//! committed by their presence alone ([`Volume::append_log_chunk`]:
//! one seal per append, no manifest rewrite — this is what makes a
//! journaled redemption cheaper than a snapshot write). Epoch
//! *registration* is manifest-flipped, but epochs are created rarely:
//!
//! * [`Journal::recover`] (every open) starts a fresh epoch, so
//!   appends after a torn tail never rewrite a chunk index whose AEAD
//!   nonce was already consumed — nonce uniqueness holds across
//!   crashes without trusting the torn chunk's content;
//! * [`Journal::rotate`] (every snapshot checkpoint) starts a fresh
//!   epoch and hands back the retired ones so the caller can delete
//!   them once the snapshot is durable — the log stays bounded.
//!
//! # Damage classification
//!
//! Recovery walks epochs in order and chunks within each epoch from
//! index 0. Exactly one kind of damage is *expected* of a crash: an
//! unreadable or missing-then-resumed chunk can only be benign when it
//! is the **very tail** of the **final** epoch (the append that never
//! finished — by construction nothing was acked for it). That tail is
//! classified [`JournalDamage::TornTail`], reclaimed, and recovery
//! returns everything before it. Damage anywhere else — an unreadable
//! chunk with committed chunks after it, or in a non-final epoch —
//! cannot be produced by a crash against this write discipline and is
//! classified [`JournalDamage::Corrupt`] so the caller can fail closed
//! (the CAS quarantines outstanding tokens).

use crate::error::FsError;
use crate::volume::Volume;
use sinclave_crypto::aead::AeadKey;

/// One recovered journal chunk (a sealed group-commit payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredChunk {
    /// The epoch the chunk was read from.
    pub epoch: u64,
    /// Its index within the epoch.
    pub index: u32,
    /// The unsealed payload.
    pub payload: Vec<u8>,
}

/// Where and how recovery found the journal damaged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalDamage {
    /// The final epoch's very tail failed to open — the shape a crash
    /// mid-append leaves. Nothing after it existed; everything before
    /// it is intact. Benign: the interrupted append was never acked.
    TornTail {
        /// Epoch holding the torn chunk.
        epoch: u64,
        /// Index of the torn chunk.
        index: u32,
    },
    /// Damage a crash cannot produce: an unreadable or missing chunk
    /// with committed data after it, or in a non-final epoch. Only
    /// tampering (or a software bug) writes this shape; callers should
    /// fail closed.
    Corrupt {
        /// Epoch holding the first bad chunk.
        epoch: u64,
        /// Index of the first bad chunk.
        index: u32,
    },
}

/// What [`Journal::recover`] found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovery {
    /// Every cleanly readable chunk, in append order, up to the first
    /// damage (if any).
    pub chunks: Vec<RecoveredChunk>,
    /// The first damage encountered, if the journal was not clean.
    pub damage: Option<JournalDamage>,
}

/// An open journal: the handle appends go through. Reading happens
/// only at [`Journal::recover`] time — a write-ahead log is write-hot
/// and read-once. The active epoch's file id and next chunk index are
/// cached in the handle, so the append hot path is one seal and one
/// chunk insert — no sealed-manifest reopen per event (that cost is
/// exactly what the group-commit redemption path exists to avoid).
#[derive(Debug)]
pub struct Journal {
    root: String,
    active: u64,
    /// The active epoch's path (cached to avoid reformatting).
    active_path: String,
    /// The active epoch's volume file id (the AEAD nonce domain).
    active_file_id: u64,
    /// The next chunk index to seal; only this handle appends to the
    /// active epoch, so advancing it locally is race-free.
    next_index: u32,
}

fn epoch_path(root: &str, epoch: u64) -> String {
    format!("{root}/epoch-{epoch:016x}")
}

impl Journal {
    /// The epochs present under `root`, ascending.
    ///
    /// # Errors
    ///
    /// Propagates volume failures.
    pub fn epochs(volume: &Volume, key: &AeadKey, root: &str) -> Result<Vec<u64>, FsError> {
        let prefix = format!("{root}/epoch-");
        let mut epochs: Vec<u64> = volume
            .list(key)?
            .into_iter()
            .filter_map(|path| {
                path.strip_prefix(&prefix).and_then(|hex| u64::from_str_radix(hex, 16).ok())
            })
            .collect();
        epochs.sort_unstable();
        Ok(epochs)
    }

    /// Reads every committed chunk under `root` in append order
    /// **without mutating anything** — no torn-tail reclaim, no empty-
    /// epoch pruning, no fresh epoch. This is the replication export: a
    /// primary CAS streams exactly the chunks its own restart would
    /// replay, while its live `Journal` handle keeps appending (the
    /// scan takes `&Volume`, so it composes with a shared snapshot of
    /// the volume). Damage is classified identically to
    /// [`Journal::recover`].
    ///
    /// # Errors
    ///
    /// Propagates volume failures (wrong key, unreadable manifest).
    pub fn export_chunks(volume: &Volume, key: &AeadKey, root: &str) -> Result<Recovery, FsError> {
        let epochs = Self::epochs(volume, key, root)?;
        let mut chunks = Vec::new();
        let mut damage = None;
        'scan: for (pos, &epoch) in epochs.iter().enumerate() {
            let path = epoch_path(root, epoch);
            let file_id = volume.log_file_id(key, &path)?;
            let last_present = volume.chunk_indices_of(file_id).last().copied();
            let mut index = 0u32;
            loop {
                match volume.read_log_chunk_at(key, &path, file_id, index) {
                    Ok(Some(payload)) => {
                        chunks.push(RecoveredChunk { epoch, index, payload });
                        index += 1;
                    }
                    Ok(None) => {
                        if last_present.is_some_and(|last| last >= index) {
                            damage = Some(JournalDamage::Corrupt { epoch, index });
                            break 'scan;
                        }
                        break;
                    }
                    Err(FsError::IntegrityViolation { .. }) => {
                        let is_final_epoch = pos == epochs.len() - 1;
                        let nothing_after = last_present.is_none_or(|last| last <= index);
                        damage = if is_final_epoch && nothing_after {
                            Some(JournalDamage::TornTail { epoch, index })
                        } else {
                            Some(JournalDamage::Corrupt { epoch, index })
                        };
                        break 'scan;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(Recovery { chunks, damage })
    }

    /// Opens the journal under `root`: reads every committed chunk in
    /// order, classifies any damage, reclaims a benign torn tail, and
    /// starts a fresh epoch for subsequent appends.
    ///
    /// # Errors
    ///
    /// Propagates volume failures (wrong key, unreadable manifest).
    pub fn recover(
        volume: &mut Volume,
        key: &AeadKey,
        root: &str,
    ) -> Result<(Journal, Recovery), FsError> {
        let epochs = Self::epochs(volume, key, root)?;
        let Recovery { chunks, damage } = Self::export_chunks(volume, key, root)?;
        if let Some(JournalDamage::TornTail { epoch, index }) = damage {
            // Reclaim the torn chunk now: later recoveries then see a
            // clean end instead of re-classifying (and the chunk's
            // index is never re-sealed — appends go to a new epoch).
            volume.remove_log_chunk(key, &epoch_path(root, epoch), index)?;
        }
        if damage.is_none() {
            // Prune epochs that ended up with no chunks at all — every
            // open creates a fresh epoch, so a restart loop without
            // appends would otherwise grow the manifest one empty
            // epoch per restart, forever. (Left in place when the scan
            // found damage: evidence should outlive classification.)
            for &epoch in &epochs {
                let path = epoch_path(root, epoch);
                if volume.chunk_indices_of(volume.log_file_id(key, &path)?).is_empty() {
                    volume.remove_file(key, &path)?;
                }
            }
        }
        let active = epochs.last().map_or(0, |last| last + 1);
        let active_path = epoch_path(root, active);
        volume.create_log(key, &active_path)?;
        let (active_file_id, next_index) = volume.next_log_slot(key, &active_path)?;
        Ok((
            Journal { root: root.to_owned(), active, active_path, active_file_id, next_index },
            Recovery { chunks, damage },
        ))
    }

    /// The epoch new appends go to.
    #[must_use]
    pub fn active_epoch(&self) -> u64 {
        self.active
    }

    /// Appends one sealed payload chunk; returning `Ok` is the
    /// durability point. One seal, one chunk insert — the slot was
    /// resolved when the epoch was opened.
    pub fn append(&mut self, volume: &mut Volume, key: &AeadKey, payload: &[u8]) {
        volume.append_log_chunk_at(
            key,
            &self.active_path,
            self.active_file_id,
            self.next_index,
            payload,
        );
        self.next_index += 1;
    }

    /// Fault injection: an append torn after `keep_bytes` sealed bytes
    /// (the crash-mid-append state; nothing was acked for it).
    ///
    /// # Errors
    ///
    /// Propagates volume failures.
    pub fn append_torn(
        &mut self,
        volume: &mut Volume,
        key: &AeadKey,
        payload: &[u8],
        keep_bytes: usize,
    ) -> Result<(), FsError> {
        volume.append_log_chunk_torn(key, &self.active_path, payload, keep_bytes)?;
        self.next_index += 1;
        Ok(())
    }

    /// Starts a fresh epoch (for a snapshot checkpoint) and returns
    /// the retired epochs, oldest first. The caller deletes them with
    /// [`Journal::remove_epochs`] once the snapshot covering them is
    /// durable; a crash in between leaves both — harmless, since
    /// replay over the snapshot is idempotent.
    ///
    /// # Errors
    ///
    /// Propagates volume failures.
    pub fn rotate(&mut self, volume: &mut Volume, key: &AeadKey) -> Result<Vec<u64>, FsError> {
        let retired: Vec<u64> = Self::epochs(volume, key, &self.root)?
            .into_iter()
            .filter(|&e| e <= self.active)
            .collect();
        let next = self.active + 1;
        let next_path = epoch_path(&self.root, next);
        volume.create_log(key, &next_path)?;
        let (file_id, index) = volume.next_log_slot(key, &next_path)?;
        self.active = next;
        self.active_path = next_path;
        self.active_file_id = file_id;
        self.next_index = index;
        Ok(retired)
    }

    /// Deletes retired epochs (journal truncation). Epochs already
    /// gone are skipped — a crashed earlier truncation half-done is
    /// fine to finish.
    ///
    /// # Errors
    ///
    /// Propagates volume failures other than absence.
    pub fn remove_epochs(
        &self,
        volume: &mut Volume,
        key: &AeadKey,
        epochs: &[u64],
    ) -> Result<(), FsError> {
        for &epoch in epochs {
            match volume.remove_file(key, &epoch_path(&self.root, epoch)) {
                Ok(()) | Err(FsError::NotFound { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> AeadKey {
        AeadKey::new([0x5a; 32])
    }

    #[test]
    fn recover_empty_then_append_then_recover() {
        let k = key();
        let mut v = Volume::format(&k, "wal");
        let (mut journal, recovery) = Journal::recover(&mut v, &k, "journal").unwrap();
        assert!(recovery.chunks.is_empty());
        assert_eq!(recovery.damage, None);
        journal.append(&mut v, &k, b"alpha");
        journal.append(&mut v, &k, b"beta");

        let (_, recovery) = Journal::recover(&mut v, &k, "journal").unwrap();
        assert_eq!(recovery.damage, None);
        let payloads: Vec<&[u8]> = recovery.chunks.iter().map(|c| c.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"alpha".as_slice(), b"beta".as_slice()]);
    }

    #[test]
    fn appends_span_epochs_in_order() {
        let k = key();
        let mut v = Volume::format(&k, "wal");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        journal.append(&mut v, &k, b"one");
        // A restart (recover) rolls the epoch; older chunks stay.
        let (mut journal, recovery) = Journal::recover(&mut v, &k, "journal").unwrap();
        assert_eq!(recovery.chunks.len(), 1);
        journal.append(&mut v, &k, b"two");
        let (_, recovery) = Journal::recover(&mut v, &k, "journal").unwrap();
        let payloads: Vec<&[u8]> = recovery.chunks.iter().map(|c| c.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"one".as_slice(), b"two".as_slice()]);
        // Epoch order is reflected in the recovered chunks.
        assert!(recovery.chunks[0].epoch < recovery.chunks[1].epoch);
    }

    #[test]
    fn torn_tail_at_every_byte_degrades_to_committed_prefix() {
        let k = key();
        let torn_payload = b"never acked, torn away";
        let sealed_len = torn_payload.len() + 16; // payload + AEAD tag
        for keep in 0..sealed_len {
            let mut v = Volume::format(&k, "wal");
            let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
            journal.append(&mut v, &k, b"acked-1");
            journal.append(&mut v, &k, b"acked-2");
            journal.append_torn(&mut v, &k, torn_payload, keep).unwrap();

            let (mut recovered_journal, recovery) =
                Journal::recover(&mut v, &k, "journal").unwrap();
            let payloads: Vec<&[u8]> =
                recovery.chunks.iter().map(|c| c.payload.as_slice()).collect();
            assert_eq!(payloads, vec![b"acked-1".as_slice(), b"acked-2".as_slice()], "keep {keep}");
            assert!(
                matches!(recovery.damage, Some(JournalDamage::TornTail { .. })),
                "keep {keep}: {:?}",
                recovery.damage
            );
            // The torn chunk was reclaimed: a second recovery is clean
            // and new appends land safely.
            recovered_journal.append(&mut v, &k, b"post-crash");
            let (_, recovery) = Journal::recover(&mut v, &k, "journal").unwrap();
            assert_eq!(recovery.damage, None, "keep {keep}");
            assert_eq!(recovery.chunks.len(), 3);
        }
    }

    #[test]
    fn corruption_before_committed_data_is_not_a_torn_tail() {
        let k = key();
        let mut v = Volume::format(&k, "wal");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        journal.append(&mut v, &k, b"first");
        journal.append(&mut v, &k, b"second");
        journal.append(&mut v, &k, b"third");
        // Tamper with the middle chunk: committed data follows it.
        let path = epoch_path("journal", journal.active_epoch());
        let ids = v.chunk_ids_for(&k, &path).unwrap();
        assert!(v.corrupt_chunk(ids[1]));
        let (_, recovery) = Journal::recover(&mut v, &k, "journal").unwrap();
        assert_eq!(recovery.chunks.len(), 1);
        assert!(matches!(recovery.damage, Some(JournalDamage::Corrupt { index: 1, .. })));
    }

    #[test]
    fn damage_in_a_non_final_epoch_is_corrupt() {
        let k = key();
        let mut v = Volume::format(&k, "wal");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        let early_epoch = journal.active_epoch();
        journal.append(&mut v, &k, b"old epoch data");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        journal.append(&mut v, &k, b"new epoch data");
        // Even tearing the *tail* of the old epoch is corruption: a
        // crash could never commit a later epoch after it.
        let path = epoch_path("journal", early_epoch);
        let ids = v.chunk_ids_for(&k, &path).unwrap();
        assert!(v.corrupt_chunk_truncate(ids[0], 2));
        let (_, recovery) = Journal::recover(&mut v, &k, "journal").unwrap();
        assert!(matches!(recovery.damage, Some(JournalDamage::Corrupt { .. })));
        assert!(recovery.chunks.is_empty());
    }

    #[test]
    fn rotate_and_remove_bound_the_log() {
        let k = key();
        let mut v = Volume::format(&k, "wal");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        journal.append(&mut v, &k, b"pre-checkpoint");
        let retired = journal.rotate(&mut v, &k).unwrap();
        assert_eq!(retired.len(), 1);
        journal.append(&mut v, &k, b"post-checkpoint");
        // Until removal, both epochs replay (idempotence covers the
        // crash between snapshot commit and truncation).
        let before = Journal::epochs(&v, &k, "journal").unwrap().len();
        journal.remove_epochs(&mut v, &k, &retired).unwrap();
        let after = Journal::epochs(&v, &k, "journal").unwrap().len();
        assert_eq!(before - after, 1);
        // Removing again is a no-op, not an error.
        journal.remove_epochs(&mut v, &k, &retired).unwrap();
        let (_, recovery) = Journal::recover(&mut v, &k, "journal").unwrap();
        let payloads: Vec<&[u8]> = recovery.chunks.iter().map(|c| c.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"post-checkpoint".as_slice()]);
    }

    #[test]
    fn empty_epochs_are_pruned_on_recovery() {
        let k = key();
        let mut v = Volume::format(&k, "wal");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        journal.append(&mut v, &k, b"keep");
        // A restart loop with no appends: each open adds an epoch,
        // each subsequent open prunes the previous empty one.
        for _ in 0..5 {
            let (_, recovery) = Journal::recover(&mut v, &k, "journal").unwrap();
            assert_eq!(recovery.chunks.len(), 1, "committed chunk must survive pruning");
            assert_eq!(recovery.damage, None);
            assert!(
                Journal::epochs(&v, &k, "journal").unwrap().len() <= 2,
                "empty epochs accumulated"
            );
        }
    }

    #[test]
    fn export_matches_recover_and_mutates_nothing() {
        let k = key();
        let mut v = Volume::format(&k, "wal");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        journal.append(&mut v, &k, b"one");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        journal.append(&mut v, &k, b"two");

        // Export sees exactly what a restart would replay — including
        // appends made through the still-live handle afterwards.
        let export = Journal::export_chunks(&v, &k, "journal").unwrap();
        assert_eq!(export.damage, None);
        let payloads: Vec<&[u8]> = export.chunks.iter().map(|c| c.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"one".as_slice(), b"two".as_slice()]);
        journal.append(&mut v, &k, b"three");
        let export = Journal::export_chunks(&v, &k, "journal").unwrap();
        assert_eq!(export.chunks.len(), 3);

        // Non-mutating: the epoch set is untouched (no pruning, no
        // fresh epoch), so repeated exports are stable.
        let epochs_before = Journal::epochs(&v, &k, "journal").unwrap();
        assert_eq!(Journal::export_chunks(&v, &k, "journal").unwrap().chunks.len(), 3);
        assert_eq!(Journal::epochs(&v, &k, "journal").unwrap(), epochs_before);
    }

    #[test]
    fn export_classifies_torn_tail_without_reclaiming_it() {
        let k = key();
        let mut v = Volume::format(&k, "wal");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        journal.append(&mut v, &k, b"acked");
        journal.append_torn(&mut v, &k, b"torn away", 3).unwrap();

        let export = Journal::export_chunks(&v, &k, "journal").unwrap();
        assert_eq!(export.chunks.len(), 1);
        assert!(matches!(export.damage, Some(JournalDamage::TornTail { .. })));
        // The torn chunk is still there: a second export re-classifies
        // it identically (reclaim belongs to recover, which owns the
        // journal's mutation lifecycle).
        let again = Journal::export_chunks(&v, &k, "journal").unwrap();
        assert_eq!(again, export);
    }

    #[test]
    fn journal_survives_disk_image_roundtrip() {
        let k = key();
        let mut v = Volume::format(&k, "wal");
        let (mut journal, _) = Journal::recover(&mut v, &k, "journal").unwrap();
        journal.append(&mut v, &k, b"persisted");
        let mut restored = Volume::from_disk_image(&v.to_disk_image()).unwrap();
        let (_, recovery) = Journal::recover(&mut restored, &k, "journal").unwrap();
        assert_eq!(recovery.chunks.len(), 1);
        assert_eq!(recovery.chunks[0].payload, b"persisted");
    }
}
