//! Lock-shard selection shared across the stack.
//!
//! The canonical fold lives in [`sinclave_crypto::shard`] (the lowest
//! layer every sharded consumer depends on — the sgx verification
//! cache cannot reach up into this crate); this module re-exports it
//! so existing `crate::shard::fnv1a_index` callers keep working.

pub use sinclave_crypto::shard::fnv1a_index;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_shared_fold() {
        assert_eq!(
            fnv1a_index(b"config-id", 8),
            sinclave_crypto::shard::fnv1a_index(b"config-id", 8)
        );
    }
}
