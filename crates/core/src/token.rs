//! One-time attestation tokens (§4.4).
//!
//! A token is 32 bytes of verifier-chosen randomness. It individualizes
//! the singleton's `MRENCLAVE` (via the instance page) and serves as
//! the verifier's freshness handle: each token is redeemable exactly
//! once, so each singleton enclave is attested exactly once.

use rand::RngCore;
use std::fmt;

/// Length of an attestation token in bytes.
pub const TOKEN_LEN: usize = 32;

/// A one-time attestation token.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttestationToken(pub [u8; TOKEN_LEN]);

impl AttestationToken {
    /// Samples a fresh random token.
    #[must_use]
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; TOKEN_LEN];
        rng.fill_bytes(&mut bytes);
        AttestationToken(bytes)
    }

    /// The token bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; TOKEN_LEN] {
        &self.0
    }

    /// Lowercase hex rendering.
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Whether the token is all zeros (the common enclave's marker —
    /// never issued by a verifier).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; TOKEN_LEN]
    }
}

impl fmt::Debug for AttestationToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttestationToken({}…)", &self.to_hex()[..12])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_tokens_are_unique_and_nonzero() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = AttestationToken::generate(&mut rng);
        let b = AttestationToken::generate(&mut rng);
        assert_ne!(a, b);
        assert!(!a.is_zero());
    }

    #[test]
    fn zero_detection() {
        assert!(AttestationToken([0; 32]).is_zero());
        assert!(!AttestationToken([1; 32]).is_zero());
    }

    #[test]
    fn hex_rendering() {
        let t = AttestationToken([0xab; 32]);
        assert_eq!(t.to_hex().len(), 64);
        assert!(t.to_hex().starts_with("abab"));
        assert!(format!("{t:?}").contains("abab"));
    }
}
