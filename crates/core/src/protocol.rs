//! Wire messages of the SinClave flows (Fig. 7c and §4.4).
//!
//! Self-contained binary encoding (no dependency on the network crate
//! to keep layering clean: `runtime` and `cas` both speak this
//! protocol over whatever transport they use).
//!
//! Flows:
//!
//! * **Grant** (starter → verifier, before `EINIT`): present the
//!   common SigStruct and base hash, receive token + verifier identity
//!   + on-demand SigStruct.
//! * **Attest** (enclave → verifier, right after entry): present the
//!   quote and token over a secure channel, receive the configuration.
//! * **BaselineAttest** — the paper's baseline (SCONE-style) flow,
//!   kept for the attack demonstration and Fig. 8/9 baselines: quote
//!   only, no token.

use crate::error::SinclaveError;
use crate::token::{AttestationToken, TOKEN_LEN};

/// A protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Starter requests a singleton grant.
    GrantRequest {
        /// Serialized common [`sinclave_sgx::sigstruct::SigStruct`].
        common_sigstruct: Vec<u8>,
        /// Encoded [`crate::BaseEnclaveHash`].
        base_hash: Vec<u8>,
    },
    /// Verifier's grant.
    GrantResponse {
        /// The one-time token.
        token: AttestationToken,
        /// Verifier identity to pin.
        verifier_identity: [u8; 32],
        /// Serialized on-demand SigStruct.
        sigstruct: Vec<u8>,
    },
    /// Singleton enclave attests with quote + token.
    AttestRequest {
        /// Serialized [`sinclave_sgx::quote::Quote`].
        quote: Vec<u8>,
        /// The token from the instance page.
        token: AttestationToken,
        /// Which configuration/session is requested.
        config_id: String,
    },
    /// Baseline (tokenless) attestation, as in unmodified SCONE.
    BaselineAttestRequest {
        /// Serialized quote.
        quote: Vec<u8>,
        /// Which configuration/session is requested.
        config_id: String,
    },
    /// Configuration delivery.
    ConfigResponse {
        /// Serialized configuration payload.
        config: Vec<u8>,
    },
    /// Nonce challenge from the verifier (sent before quotes are
    /// produced so the verifier controls freshness of the *quote*).
    Challenge {
        /// 16-byte quote nonce.
        nonce: [u8; 16],
    },
    /// Request for a challenge.
    ChallengeRequest,
    /// The verifier refused.
    Denied {
        /// Human-readable reason (no secrets).
        reason: String,
    },
    /// Trivial liveness probe (used by the Fig. 7c connect benchmark).
    Ping,
    /// Liveness response.
    Pong,
    /// A quote, sent by an enclave acting as attestation *server*
    /// (the SGX-LKL flow, §3.3.2).
    QuoteResponse {
        /// Serialized quote.
        quote: Vec<u8>,
    },
    /// Proof that the connecting client is the verifier pinned in the
    /// instance page (SinClave-hardened SGX-LKL flow): the verifier's
    /// public key and a signature over the channel transcript.
    VerifierAuth {
        /// Serialized verifier public key.
        pubkey: Vec<u8>,
        /// Signature over the channel transcript hash.
        signature: Vec<u8>,
    },
    /// Operability probe: asks the server for one of its status views
    /// (`"health"`, `"metrics"`, or `"histograms"`). Read-only and
    /// identity-less — it touches no durable state and is never
    /// journaled.
    StatusRequest {
        /// Which view to render.
        view: String,
    },
    /// The rendered status view (plain text; see `docs/operations.md`
    /// for the format of each view).
    StatusResponse {
        /// Rendered view body.
        body: String,
    },
}

/// Marker byte introducing an appended trace-context trailer on a
/// traced frame. Chosen outside the tag range so a traced frame can
/// never be confused with a second concatenated message.
const TRACE_MARKER: u8 = 0xC7;

/// Per-request causal trace context, carried as an optional trailer
/// after a [`Message`]'s own encoding (see [`Message::to_bytes_traced`]).
///
/// Absent context means "untraced": a frame without the trailer
/// decodes exactly as before, so mixed-version fleets interoperate —
/// an old node simply never sees (or emits) the trailer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// 16-byte causal trace id, minted once at first admission and
    /// preserved across every forward hop.
    pub trace_id: [u8; 16],
    /// Hop counter: 0 at the minting node, incremented per forward.
    pub hop: u8,
    /// Reserved flag bits (always 0 today; decoders must tolerate any
    /// value so the field can gain meaning without a version bump).
    pub flags: u8,
}

impl TraceContext {
    /// Encoded size of the context itself (the wire trailer adds one
    /// marker byte in front).
    pub const ENCODED_LEN: usize = 18;

    /// Fixed-size encoding: trace id, hop, flags.
    #[must_use]
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[..16].copy_from_slice(&self.trace_id);
        out[16] = self.hop;
        out[17] = self.flags;
        out
    }

    /// Decodes an [`TraceContext::ENCODED_LEN`]-byte encoding.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] when `bytes` is not
    /// exactly [`TraceContext::ENCODED_LEN`] long.
    pub fn decode(bytes: &[u8]) -> Result<Self, SinclaveError> {
        if bytes.len() != Self::ENCODED_LEN {
            return Err(SinclaveError::ProtocolDecode);
        }
        let trace_id: [u8; 16] =
            bytes[..16].try_into().map_err(|_| SinclaveError::ProtocolDecode)?;
        Ok(TraceContext { trace_id, hop: bytes[16], flags: bytes[17] })
    }

    /// Renders the trace id as lowercase hex (for status views and
    /// logs; the id is not secret).
    #[must_use]
    pub fn id_hex(&self) -> String {
        let mut out = String::with_capacity(32);
        for byte in &self.trace_id {
            out.push_str(&format!("{byte:02x}"));
        }
        out
    }
}

const TAG_GRANT_REQ: u8 = 1;
const TAG_GRANT_RESP: u8 = 2;
const TAG_ATTEST_REQ: u8 = 3;
const TAG_BASELINE_ATTEST_REQ: u8 = 4;
const TAG_CONFIG_RESP: u8 = 5;
const TAG_CHALLENGE: u8 = 6;
const TAG_CHALLENGE_REQ: u8 = 7;
const TAG_DENIED: u8 = 8;
const TAG_PING: u8 = 9;
const TAG_PONG: u8 = 10;
const TAG_QUOTE_RESP: u8 = 11;
const TAG_VERIFIER_AUTH: u8 = 12;
const TAG_STATUS_REQ: u8 = 13;
const TAG_STATUS_RESP: u8 = 14;

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn get_bytes(cursor: &mut &[u8]) -> Result<Vec<u8>, SinclaveError> {
    let len_bytes = take(cursor, 4)?;
    let len = u32::from_be_bytes(len_bytes.try_into().map_err(|_| SinclaveError::ProtocolDecode)?)
        as usize;
    Ok(take(cursor, len)?.to_vec())
}

fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], SinclaveError> {
    if cursor.len() < n {
        return Err(SinclaveError::ProtocolDecode);
    }
    let (head, rest) = cursor.split_at(n);
    *cursor = rest;
    Ok(head)
}

impl Message {
    /// Serializes the message.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::GrantRequest { common_sigstruct, base_hash } => {
                out.push(TAG_GRANT_REQ);
                put_bytes(&mut out, common_sigstruct);
                put_bytes(&mut out, base_hash);
            }
            Message::GrantResponse { token, verifier_identity, sigstruct } => {
                out.push(TAG_GRANT_RESP);
                out.extend_from_slice(token.as_bytes());
                out.extend_from_slice(verifier_identity);
                put_bytes(&mut out, sigstruct);
            }
            Message::AttestRequest { quote, token, config_id } => {
                out.push(TAG_ATTEST_REQ);
                put_bytes(&mut out, quote);
                out.extend_from_slice(token.as_bytes());
                put_bytes(&mut out, config_id.as_bytes());
            }
            Message::BaselineAttestRequest { quote, config_id } => {
                out.push(TAG_BASELINE_ATTEST_REQ);
                put_bytes(&mut out, quote);
                put_bytes(&mut out, config_id.as_bytes());
            }
            Message::ConfigResponse { config } => {
                out.push(TAG_CONFIG_RESP);
                put_bytes(&mut out, config);
            }
            Message::Challenge { nonce } => {
                out.push(TAG_CHALLENGE);
                out.extend_from_slice(nonce);
            }
            Message::ChallengeRequest => out.push(TAG_CHALLENGE_REQ),
            Message::Denied { reason } => {
                out.push(TAG_DENIED);
                put_bytes(&mut out, reason.as_bytes());
            }
            Message::Ping => out.push(TAG_PING),
            Message::Pong => out.push(TAG_PONG),
            Message::QuoteResponse { quote } => {
                out.push(TAG_QUOTE_RESP);
                put_bytes(&mut out, quote);
            }
            Message::VerifierAuth { pubkey, signature } => {
                out.push(TAG_VERIFIER_AUTH);
                put_bytes(&mut out, pubkey);
                put_bytes(&mut out, signature);
            }
            Message::StatusRequest { view } => {
                out.push(TAG_STATUS_REQ);
                put_bytes(&mut out, view.as_bytes());
            }
            Message::StatusResponse { body } => {
                out.push(TAG_STATUS_RESP);
                put_bytes(&mut out, body.as_bytes());
            }
        }
        out
    }

    /// Serializes the message with an optional trace-context trailer.
    ///
    /// With `ctx == None` the output is byte-identical to
    /// [`Message::to_bytes`] — tracing dark adds nothing to the wire.
    #[must_use]
    pub fn to_bytes_traced(&self, ctx: Option<&TraceContext>) -> Vec<u8> {
        let mut out = self.to_bytes();
        if let Some(ctx) = ctx {
            out.push(TRACE_MARKER);
            out.extend_from_slice(&ctx.encode());
        }
        out
    }

    /// Parses a message.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SinclaveError> {
        let (message, rest) = Self::decode_prefix(bytes)?;
        if !rest.is_empty() {
            return Err(SinclaveError::ProtocolDecode);
        }
        Ok(message)
    }

    /// Parses a message plus its optional trace-context trailer.
    ///
    /// An exhausted buffer after the message body means "untraced"
    /// (`None`) — frames from nodes that predate tracing decode
    /// unchanged. Anything trailing that is not exactly one
    /// well-formed trailer is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] for malformed input.
    pub fn from_bytes_traced(bytes: &[u8]) -> Result<(Self, Option<TraceContext>), SinclaveError> {
        let (message, rest) = Self::decode_prefix(bytes)?;
        if rest.is_empty() {
            return Ok((message, None));
        }
        if rest.len() == 1 + TraceContext::ENCODED_LEN && rest[0] == TRACE_MARKER {
            let ctx = TraceContext::decode(&rest[1..])?;
            return Ok((message, Some(ctx)));
        }
        Err(SinclaveError::ProtocolDecode)
    }

    /// Decodes one message from the front of `bytes`, returning the
    /// unconsumed remainder for the caller to police.
    fn decode_prefix(bytes: &[u8]) -> Result<(Self, &[u8]), SinclaveError> {
        let mut cursor = bytes;
        let tag = take(&mut cursor, 1)?[0];
        let message = match tag {
            TAG_GRANT_REQ => Message::GrantRequest {
                common_sigstruct: get_bytes(&mut cursor)?,
                base_hash: get_bytes(&mut cursor)?,
            },
            TAG_GRANT_RESP => {
                let token_bytes: [u8; TOKEN_LEN] = take(&mut cursor, TOKEN_LEN)?
                    .try_into()
                    .map_err(|_| SinclaveError::ProtocolDecode)?;
                let verifier_identity: [u8; 32] =
                    take(&mut cursor, 32)?.try_into().map_err(|_| SinclaveError::ProtocolDecode)?;
                Message::GrantResponse {
                    token: AttestationToken(token_bytes),
                    verifier_identity,
                    sigstruct: get_bytes(&mut cursor)?,
                }
            }
            TAG_ATTEST_REQ => {
                let quote = get_bytes(&mut cursor)?;
                let token_bytes: [u8; TOKEN_LEN] = take(&mut cursor, TOKEN_LEN)?
                    .try_into()
                    .map_err(|_| SinclaveError::ProtocolDecode)?;
                let config_id = String::from_utf8(get_bytes(&mut cursor)?)
                    .map_err(|_| SinclaveError::ProtocolDecode)?;
                Message::AttestRequest { quote, token: AttestationToken(token_bytes), config_id }
            }
            TAG_BASELINE_ATTEST_REQ => Message::BaselineAttestRequest {
                quote: get_bytes(&mut cursor)?,
                config_id: String::from_utf8(get_bytes(&mut cursor)?)
                    .map_err(|_| SinclaveError::ProtocolDecode)?,
            },
            TAG_CONFIG_RESP => Message::ConfigResponse { config: get_bytes(&mut cursor)? },
            TAG_CHALLENGE => Message::Challenge {
                nonce: take(&mut cursor, 16)?
                    .try_into()
                    .map_err(|_| SinclaveError::ProtocolDecode)?,
            },
            TAG_CHALLENGE_REQ => Message::ChallengeRequest,
            TAG_DENIED => Message::Denied {
                reason: String::from_utf8(get_bytes(&mut cursor)?)
                    .map_err(|_| SinclaveError::ProtocolDecode)?,
            },
            TAG_PING => Message::Ping,
            TAG_PONG => Message::Pong,
            TAG_QUOTE_RESP => Message::QuoteResponse { quote: get_bytes(&mut cursor)? },
            TAG_VERIFIER_AUTH => Message::VerifierAuth {
                pubkey: get_bytes(&mut cursor)?,
                signature: get_bytes(&mut cursor)?,
            },
            TAG_STATUS_REQ => Message::StatusRequest {
                view: String::from_utf8(get_bytes(&mut cursor)?)
                    .map_err(|_| SinclaveError::ProtocolDecode)?,
            },
            TAG_STATUS_RESP => Message::StatusResponse {
                body: String::from_utf8(get_bytes(&mut cursor)?)
                    .map_err(|_| SinclaveError::ProtocolDecode)?,
            },
            _ => return Err(SinclaveError::ProtocolDecode),
        };
        Ok((message, cursor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let bytes = m.to_bytes();
        assert_eq!(Message::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::GrantRequest {
            common_sigstruct: vec![1, 2, 3],
            base_hash: vec![4; 56],
        });
        roundtrip(Message::GrantResponse {
            token: AttestationToken([5; 32]),
            verifier_identity: [6; 32],
            sigstruct: vec![7, 8],
        });
        roundtrip(Message::AttestRequest {
            quote: vec![9; 100],
            token: AttestationToken([1; 32]),
            config_id: "python-app".to_owned(),
        });
        roundtrip(Message::BaselineAttestRequest {
            quote: vec![2; 64],
            config_id: "nodejs".to_owned(),
        });
        roundtrip(Message::ConfigResponse { config: vec![] });
        roundtrip(Message::Challenge { nonce: [3; 16] });
        roundtrip(Message::ChallengeRequest);
        roundtrip(Message::Denied { reason: "token reuse".to_owned() });
        roundtrip(Message::Ping);
        roundtrip(Message::Pong);
        roundtrip(Message::QuoteResponse { quote: vec![1; 32] });
        roundtrip(Message::VerifierAuth { pubkey: vec![2; 16], signature: vec![3; 128] });
        roundtrip(Message::StatusRequest { view: "health".to_owned() });
        roundtrip(Message::StatusResponse { body: "status: healthy\n".to_owned() });
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Message::from_bytes(&[]).is_err());
        assert!(Message::from_bytes(&[99]).is_err());
        let mut truncated = Message::ConfigResponse { config: vec![1, 2, 3] }.to_bytes();
        truncated.pop();
        assert!(Message::from_bytes(&truncated).is_err());
        let mut padded = Message::Ping.to_bytes();
        padded.push(0);
        assert!(Message::from_bytes(&padded).is_err());
    }

    fn ctx() -> TraceContext {
        TraceContext { trace_id: [0xAB; 16], hop: 2, flags: 0 }
    }

    #[test]
    fn traced_roundtrip_carries_context() {
        let m = Message::GrantRequest { common_sigstruct: vec![1, 2, 3], base_hash: vec![4; 56] };
        let bytes = m.to_bytes_traced(Some(&ctx()));
        let (back, got) = Message::from_bytes_traced(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(got, Some(ctx()));
    }

    #[test]
    fn untraced_frames_decode_as_none() {
        let m = Message::Ping;
        let (back, got) = Message::from_bytes_traced(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
        assert_eq!(got, None);
    }

    #[test]
    fn dark_traced_encoding_is_byte_identical() {
        let m = Message::StatusRequest { view: "health".to_owned() };
        assert_eq!(m.to_bytes_traced(None), m.to_bytes());
    }

    #[test]
    fn strict_decode_rejects_trace_trailer() {
        // `from_bytes` stays strict: a traced frame is trailing bytes.
        let bytes = Message::Ping.to_bytes_traced(Some(&ctx()));
        assert!(Message::from_bytes(&bytes).is_err());
    }

    #[test]
    fn mangled_trailer_rejected() {
        let mut bytes = Message::Ping.to_bytes_traced(Some(&ctx()));
        bytes.pop(); // truncated trailer
        assert!(Message::from_bytes_traced(&bytes).is_err());
        let mut wrong_marker = Message::Ping.to_bytes_traced(Some(&ctx()));
        let marker_at = wrong_marker.len() - 1 - TraceContext::ENCODED_LEN;
        wrong_marker[marker_at] ^= 0xFF;
        assert!(Message::from_bytes_traced(&wrong_marker).is_err());
    }

    #[test]
    fn context_codec_roundtrip() {
        let c = ctx();
        assert_eq!(TraceContext::decode(&c.encode()).unwrap(), c);
        assert!(TraceContext::decode(&[0; 17]).is_err());
        assert_eq!(c.id_hex(), "ab".repeat(16));
    }
}
