//! The **base enclave hash** (§4.4, "Verifiable Enclave Extension").
//!
//! An interrupted `MRENCLAVE` computation captured after all regular
//! pages but *before* the instance page. From it, anyone can compute:
//!
//! * the **common** measurement — finalize after appending a *zeroed*
//!   instance page (the freely-distributable, many-instance enclave);
//! * a **singleton** measurement — finalize after appending a concrete
//!   instance page carrying a token and verifier identity.
//!
//! Only 40 bytes of hash state plus geometry travel between signer and
//! verifier; the enclave binary itself never needs to be re-measured.

use crate::error::SinclaveError;
use crate::instance_page::InstancePage;
use sinclave_crypto::sha256::Sha256State;
use sinclave_sgx::measurement::{Measurement, MeasurementBuilder};
use sinclave_sgx::secinfo::SecInfo;
use sinclave_sgx::PAGE_SIZE;
use std::fmt;

/// The serialized size of a [`BaseEnclaveHash`].
pub const ENCODED_LEN: usize = 40 + 8 + 8;

/// An exported measurement state plus the geometry needed to finalize
/// it: enclave size and instance-page offset.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct BaseEnclaveHash {
    state: Sha256State,
    enclave_size: u64,
    instance_page_offset: u64,
}

impl fmt::Debug for BaseEnclaveHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BaseEnclaveHash")
            .field("measured_bytes", &self.state.byte_len())
            .field("enclave_size", &self.enclave_size)
            .finish()
    }
}

impl BaseEnclaveHash {
    /// Wraps an exported state with its geometry.
    #[must_use]
    pub fn new(state: Sha256State, enclave_size: u64, instance_page_offset: u64) -> Self {
        BaseEnclaveHash { state, enclave_size, instance_page_offset }
    }

    /// The raw hash state.
    #[must_use]
    pub fn state(&self) -> Sha256State {
        self.state
    }

    /// The enclave size the measurement was started with.
    #[must_use]
    pub fn enclave_size(&self) -> u64 {
        self.enclave_size
    }

    /// Offset at which the instance page is appended.
    #[must_use]
    pub fn instance_page_offset(&self) -> u64 {
        self.instance_page_offset
    }

    /// Finalizes with the given raw page content at the instance-page
    /// slot — one `EADD` plus the page's `EEXTEND`s, then the SHA-256
    /// finalization (the constant-time step measured in Fig. 6).
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::Sgx`] if the stored geometry is
    /// inconsistent (offset outside the enclave).
    pub fn finalize_with_page_bytes(
        &self,
        page: &[u8; PAGE_SIZE],
    ) -> Result<Measurement, SinclaveError> {
        let mut m = MeasurementBuilder::resume(self.state, self.enclave_size);
        m.add_page(self.instance_page_offset, page, SecInfo::read_only(), true)?;
        Ok(m.finalize())
    }

    /// The **common** enclave's measurement: zeroed instance page.
    ///
    /// # Errors
    ///
    /// Same as [`BaseEnclaveHash::finalize_with_page_bytes`].
    pub fn common_measurement(&self) -> Result<Measurement, SinclaveError> {
        self.finalize_with_page_bytes(&InstancePage::common_page())
    }

    /// A **singleton**'s measurement for a concrete instance page.
    ///
    /// This is the verifier's "calculate the expected `MRENCLAVE`"
    /// step (§4.4) — constant-time regardless of enclave size.
    ///
    /// # Errors
    ///
    /// Same as [`BaseEnclaveHash::finalize_with_page_bytes`].
    pub fn singleton_measurement(&self, page: &InstancePage) -> Result<Measurement, SinclaveError> {
        self.finalize_with_page_bytes(&page.to_page_bytes())
    }

    /// Precomputes the measurement midstate after the instance-page
    /// `EADD` record.
    ///
    /// The `EADD` record depends only on the geometry stored here —
    /// never on the token — so a verifier that predicts many singleton
    /// measurements for the same enclave can absorb it once and start
    /// every prediction from the returned [`PreparedBaseHash`],
    /// hashing only the 16 `EEXTEND` record runs plus finalization per
    /// grant.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::Sgx`] if the stored geometry is
    /// inconsistent (offset outside the enclave).
    pub fn prepare(&self) -> Result<PreparedBaseHash, SinclaveError> {
        let mut m = MeasurementBuilder::resume(self.state, self.enclave_size);
        m.eadd(self.instance_page_offset, SecInfo::read_only())?;
        Ok(PreparedBaseHash {
            state_after_eadd: m.export_state(),
            instance_page_offset: self.instance_page_offset,
        })
    }

    /// Serializes to the 56-byte wire encoding.
    #[must_use]
    pub fn encode(&self) -> [u8; ENCODED_LEN] {
        let mut out = [0u8; ENCODED_LEN];
        out[..40].copy_from_slice(&self.state.encode());
        out[40..48].copy_from_slice(&self.enclave_size.to_be_bytes());
        out[48..56].copy_from_slice(&self.instance_page_offset.to_be_bytes());
        out
    }

    /// Parses the wire encoding.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] for malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, SinclaveError> {
        if bytes.len() != ENCODED_LEN {
            return Err(SinclaveError::ProtocolDecode);
        }
        let state = Sha256State::decode(&bytes[..40]).map_err(|_| SinclaveError::ProtocolDecode)?;
        let enclave_size = u64::from_be_bytes(
            bytes[40..48].try_into().map_err(|_| SinclaveError::ProtocolDecode)?,
        );
        let instance_page_offset = u64::from_be_bytes(
            bytes[48..56].try_into().map_err(|_| SinclaveError::ProtocolDecode)?,
        );
        Ok(BaseEnclaveHash { state, enclave_size, instance_page_offset })
    }
}

/// A [`BaseEnclaveHash`] with the instance-page `EADD` record already
/// absorbed — the verifier-side midstate cache.
///
/// Produced by [`BaseEnclaveHash::prepare`]. Finalization from here is
/// infallible: the geometry was validated when the `EADD` record was
/// absorbed, and `EEXTEND` record runs cannot fail.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PreparedBaseHash {
    state_after_eadd: Sha256State,
    instance_page_offset: u64,
}

impl fmt::Debug for PreparedBaseHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedBaseHash")
            .field("measured_bytes", &self.state_after_eadd.byte_len())
            .field("instance_page_offset", &self.instance_page_offset)
            .finish()
    }
}

impl PreparedBaseHash {
    /// Finalizes with raw page content: one contiguous run of the 16
    /// `EEXTEND` records plus the SHA-256 finalization — nothing else.
    #[must_use]
    pub fn finalize_with_page_bytes(&self, page: &[u8; PAGE_SIZE]) -> Measurement {
        // The enclave size no longer matters: the only offset-checked
        // operation (the EADD) is already inside the midstate. Any
        // value covering the page keeps the resumed builder valid.
        let mut m = MeasurementBuilder::resume(
            self.state_after_eadd,
            self.instance_page_offset + PAGE_SIZE as u64,
        );
        m.eextend_page(self.instance_page_offset, page);
        m.finalize()
    }

    /// The **common** enclave's measurement: zeroed instance page.
    #[must_use]
    pub fn common_measurement(&self) -> Measurement {
        self.finalize_with_page_bytes(&InstancePage::common_page())
    }

    /// A **singleton**'s measurement for a concrete instance page.
    #[must_use]
    pub fn singleton_measurement(&self, page: &InstancePage) -> Measurement {
        self.finalize_with_page_bytes(&page.to_page_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EnclaveLayout;
    use crate::token::AttestationToken;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sinclave_crypto::sha256::Digest;

    fn base_hash() -> BaseEnclaveHash {
        let layout = EnclaveLayout::for_program(b"the program", 2).unwrap();
        let m = layout.measure_base().unwrap();
        BaseEnclaveHash::new(m.export_state(), layout.enclave_size, layout.instance_page_offset())
    }

    fn instance(seed: u64) -> InstancePage {
        let mut rng = StdRng::seed_from_u64(seed);
        InstancePage::new(AttestationToken::generate(&mut rng), Digest([9; 32]))
    }

    #[test]
    fn common_vs_singleton_measurements_differ() {
        let bh = base_hash();
        let common = bh.common_measurement().unwrap();
        let singleton = bh.singleton_measurement(&instance(1)).unwrap();
        assert_ne!(common, singleton);
    }

    #[test]
    fn each_token_yields_unique_mrenclave() {
        let bh = base_hash();
        let m1 = bh.singleton_measurement(&instance(1)).unwrap();
        let m2 = bh.singleton_measurement(&instance(2)).unwrap();
        assert_ne!(m1, m2, "token individualizes MRENCLAVE");
    }

    #[test]
    fn verifier_identity_influences_mrenclave() {
        let bh = base_hash();
        let mut rng = StdRng::seed_from_u64(3);
        let token = AttestationToken::generate(&mut rng);
        let a = bh.singleton_measurement(&InstancePage::new(token, Digest([1; 32]))).unwrap();
        let b = bh.singleton_measurement(&InstancePage::new(token, Digest([2; 32]))).unwrap();
        assert_ne!(a, b, "verifier identity is part of the measurement");
    }

    #[test]
    fn prediction_matches_full_measurement() {
        // The central correctness property: verifier-side prediction from the
        // base hash equals a from-scratch measurement of the full
        // enclave including the instance page.
        let layout = EnclaveLayout::for_program(b"the program", 2).unwrap();
        let page = instance(4);

        let bh = base_hash();
        let predicted = bh.singleton_measurement(&page).unwrap();

        let mut direct = layout.measure_base().unwrap();
        direct
            .add_page(
                layout.instance_page_offset(),
                &page.to_page_bytes(),
                SecInfo::read_only(),
                true,
            )
            .unwrap();
        assert_eq!(predicted, direct.finalize());
    }

    #[test]
    fn prepared_equals_cold_path() {
        // The midstate cache is a pure optimization: predictions from
        // the prepared state must be bit-identical to the cold path
        // for singleton pages and for the common page.
        let bh = base_hash();
        let prepared = bh.prepare().unwrap();
        assert_eq!(prepared.common_measurement(), bh.common_measurement().unwrap());
        for seed in 1..5 {
            let page = instance(seed);
            assert_eq!(
                prepared.singleton_measurement(&page),
                bh.singleton_measurement(&page).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn prepare_rejects_broken_geometry() {
        let bh = base_hash();
        let broken = BaseEnclaveHash::new(bh.state(), bh.enclave_size(), bh.enclave_size());
        assert!(broken.prepare().is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let bh = base_hash();
        let decoded = BaseEnclaveHash::decode(&bh.encode()).unwrap();
        assert_eq!(decoded, bh);
        assert!(BaseEnclaveHash::decode(&[0u8; 10]).is_err());
    }

    #[test]
    fn decode_rejects_unaligned_state() {
        let mut bytes = base_hash().encode();
        bytes[39] = 1; // byte counter no longer block-aligned
        assert!(BaseEnclaveHash::decode(&bytes).is_err());
    }
}
