//! Application configuration — the secrets the whole story is about.
//!
//! In the paper's system model (§2.3), "the enclave needs a
//! configuration to run and secrets to, e.g., authenticate to other
//! services or decrypt sealed file system content", delivered only
//! after successful attestation. This is that object: entry point,
//! arguments, environment, volume keys, and named secrets. Stealing a
//! serialized `AppConfig` is the attacker's goal in §3; SinClave's job
//! is to make that impossible.

use crate::error::SinclaveError;

/// Configuration provisioned to an attested enclave.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AppConfig {
    /// Path (on the application volume) of the entry-point script.
    pub entry: String,
    /// Program arguments.
    pub args: Vec<String>,
    /// Environment variables.
    pub env: Vec<(String, String)>,
    /// Key for the application's encrypted volume, if any.
    pub volume_key: Option<[u8; 32]>,
    /// Named application secrets (API keys, DB credentials, …).
    pub secrets: Vec<(String, Vec<u8>)>,
}

impl AppConfig {
    /// Looks up a secret by name.
    #[must_use]
    pub fn secret(&self, name: &str) -> Option<&[u8]> {
        self.secrets.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_slice())
    }

    /// Looks up an environment variable.
    #[must_use]
    pub fn env_var(&self, name: &str) -> Option<&str> {
        self.env.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Serializes the configuration.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put(out: &mut Vec<u8>, bytes: &[u8]) {
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(bytes);
        }
        let mut out = Vec::new();
        put(&mut out, self.entry.as_bytes());
        out.extend_from_slice(&(self.args.len() as u32).to_be_bytes());
        for a in &self.args {
            put(&mut out, a.as_bytes());
        }
        out.extend_from_slice(&(self.env.len() as u32).to_be_bytes());
        for (k, v) in &self.env {
            put(&mut out, k.as_bytes());
            put(&mut out, v.as_bytes());
        }
        match &self.volume_key {
            None => out.push(0),
            Some(k) => {
                out.push(1);
                out.extend_from_slice(k);
            }
        }
        out.extend_from_slice(&(self.secrets.len() as u32).to_be_bytes());
        for (k, v) in &self.secrets {
            put(&mut out, k.as_bytes());
            put(&mut out, v);
        }
        out
    }

    /// Parses a serialized configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ProtocolDecode`] for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SinclaveError> {
        fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], SinclaveError> {
            if cursor.len() < n {
                return Err(SinclaveError::ProtocolDecode);
            }
            let (head, rest) = cursor.split_at(n);
            *cursor = rest;
            Ok(head)
        }
        fn get(cursor: &mut &[u8]) -> Result<Vec<u8>, SinclaveError> {
            let len = u32::from_be_bytes(
                take(cursor, 4)?.try_into().map_err(|_| SinclaveError::ProtocolDecode)?,
            ) as usize;
            Ok(take(cursor, len)?.to_vec())
        }
        fn get_string(cursor: &mut &[u8]) -> Result<String, SinclaveError> {
            String::from_utf8(get(cursor)?).map_err(|_| SinclaveError::ProtocolDecode)
        }
        fn get_count(cursor: &mut &[u8]) -> Result<usize, SinclaveError> {
            Ok(u32::from_be_bytes(
                take(cursor, 4)?.try_into().map_err(|_| SinclaveError::ProtocolDecode)?,
            ) as usize)
        }

        let mut cursor = bytes;
        let entry = get_string(&mut cursor)?;
        let mut args = Vec::new();
        for _ in 0..get_count(&mut cursor)? {
            args.push(get_string(&mut cursor)?);
        }
        let mut env = Vec::new();
        for _ in 0..get_count(&mut cursor)? {
            env.push((get_string(&mut cursor)?, get_string(&mut cursor)?));
        }
        let volume_key = match take(&mut cursor, 1)?[0] {
            0 => None,
            1 => {
                Some(take(&mut cursor, 32)?.try_into().map_err(|_| SinclaveError::ProtocolDecode)?)
            }
            _ => return Err(SinclaveError::ProtocolDecode),
        };
        let mut secrets = Vec::new();
        for _ in 0..get_count(&mut cursor)? {
            secrets.push((get_string(&mut cursor)?, get(&mut cursor)?));
        }
        if !cursor.is_empty() {
            return Err(SinclaveError::ProtocolDecode);
        }
        Ok(AppConfig { entry, args, env, volume_key, secrets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AppConfig {
        AppConfig {
            entry: "app.py".to_owned(),
            args: vec!["--mode".to_owned(), "prod".to_owned()],
            env: vec![("PYTHONPATH".to_owned(), "/lib".to_owned())],
            volume_key: Some([9; 32]),
            secrets: vec![("db-password".to_owned(), b"hunter2".to_vec())],
        }
    }

    #[test]
    fn roundtrip() {
        let c = config();
        assert_eq!(AppConfig::from_bytes(&c.to_bytes()).unwrap(), c);
        let empty = AppConfig::default();
        assert_eq!(AppConfig::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn lookups() {
        let c = config();
        assert_eq!(c.secret("db-password"), Some(b"hunter2".as_slice()));
        assert_eq!(c.secret("missing"), None);
        assert_eq!(c.env_var("PYTHONPATH"), Some("/lib"));
        assert_eq!(c.env_var("HOME"), None);
    }

    #[test]
    fn malformed_rejected() {
        assert!(AppConfig::from_bytes(&[1, 2, 3]).is_err());
        let mut bytes = config().to_bytes();
        bytes.push(0);
        assert!(AppConfig::from_bytes(&bytes).is_err());
    }
}
