//! Platform-independent enclave memory layouts.
//!
//! Signer, starter and verifier must all compute the *same* measurement
//! from the same program (Fig. 5's memory picture: executable,
//! libraries, heap, then the instance page at the top of `ERANGE`). A
//! [`EnclaveLayout`] captures that picture once so every party derives
//! measurements from identical inputs.

use crate::error::SinclaveError;
use sinclave_sgx::attributes::Attributes;
use sinclave_sgx::enclave::EnclaveBuilder;
use sinclave_sgx::measurement::MeasurementBuilder;
use sinclave_sgx::platform::Platform;
use sinclave_sgx::secinfo::SecInfo;
use sinclave_sgx::PAGE_SIZE;
use std::sync::Arc;

/// One measured (or unmeasured) region of the enclave image.
#[derive(Clone, Debug)]
pub struct LayoutSegment {
    /// Page-aligned start offset.
    pub offset: u64,
    /// Raw bytes; zero-padded to whole pages when applied.
    pub data: Vec<u8>,
    /// Page type/permissions for every page of the segment.
    pub secinfo: SecInfo,
    /// Whether page content is `EEXTEND`ed into the measurement.
    pub measured: bool,
}

impl LayoutSegment {
    /// Number of pages the segment occupies.
    #[must_use]
    pub fn page_count(&self) -> u64 {
        (self.data.len().max(1) as u64).div_ceil(PAGE_SIZE as u64)
    }
}

/// The complete memory picture of an application enclave, *excluding*
/// the instance page (which system software appends last).
#[derive(Clone, Debug)]
pub struct EnclaveLayout {
    /// Total enclave size (`ERANGE`), including the instance page slot.
    pub enclave_size: u64,
    /// Code/data segments in `EADD` order.
    pub segments: Vec<LayoutSegment>,
    /// Offset of the first heap page.
    pub heap_offset: u64,
    /// Number of zeroed, unmeasured heap pages.
    pub heap_pages: u64,
}

impl EnclaveLayout {
    /// Builds a layout: segments at the bottom, heap above them, and
    /// one reserved page at the very top for the instance page.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::LayoutInvalid`] when pieces do not fit
    /// or overlap.
    pub fn new(
        enclave_size: u64,
        segments: Vec<LayoutSegment>,
        heap_offset: u64,
        heap_pages: u64,
    ) -> Result<Self, SinclaveError> {
        if enclave_size == 0 || !enclave_size.is_multiple_of(PAGE_SIZE as u64) {
            return Err(SinclaveError::LayoutInvalid { reason: "size not page aligned" });
        }
        let layout = EnclaveLayout { enclave_size, segments, heap_offset, heap_pages };
        layout.validate()?;
        Ok(layout)
    }

    /// Convenience constructor: a single measured code segment at
    /// offset 0, heap after it, instance page at the top.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::LayoutInvalid`] when pieces do not fit.
    pub fn for_program(code: &[u8], heap_pages: u64) -> Result<Self, SinclaveError> {
        let code_pages = (code.len().max(1) as u64).div_ceil(PAGE_SIZE as u64);
        let heap_offset = code_pages * PAGE_SIZE as u64;
        let total_pages = code_pages + heap_pages + 1; // +1 instance page
        let enclave_size = total_pages * PAGE_SIZE as u64;
        EnclaveLayout::new(
            enclave_size,
            vec![LayoutSegment {
                offset: 0,
                data: code.to_vec(),
                secinfo: SecInfo::code(),
                measured: true,
            }],
            heap_offset,
            heap_pages,
        )
    }

    fn validate(&self) -> Result<(), SinclaveError> {
        let instance_offset = self.instance_page_offset();
        let mut occupied: Vec<(u64, u64)> = Vec::new(); // (start, end)
        for seg in &self.segments {
            if !seg.offset.is_multiple_of(PAGE_SIZE as u64) {
                return Err(SinclaveError::LayoutInvalid { reason: "segment not page aligned" });
            }
            let end = seg.offset + seg.page_count() * PAGE_SIZE as u64;
            if end > instance_offset {
                return Err(SinclaveError::LayoutInvalid {
                    reason: "segment overlaps instance page or exceeds enclave",
                });
            }
            occupied.push((seg.offset, end));
        }
        if self.heap_pages > 0 {
            if !self.heap_offset.is_multiple_of(PAGE_SIZE as u64) {
                return Err(SinclaveError::LayoutInvalid { reason: "heap not page aligned" });
            }
            let heap_end = self.heap_offset + self.heap_pages * PAGE_SIZE as u64;
            if heap_end > instance_offset {
                return Err(SinclaveError::LayoutInvalid {
                    reason: "heap overlaps instance page or exceeds enclave",
                });
            }
            occupied.push((self.heap_offset, heap_end));
        }
        occupied.sort_unstable();
        for pair in occupied.windows(2) {
            if pair[0].1 > pair[1].0 {
                return Err(SinclaveError::LayoutInvalid { reason: "regions overlap" });
            }
        }
        Ok(())
    }

    /// Offset of the instance page: the topmost page of the enclave.
    #[must_use]
    pub fn instance_page_offset(&self) -> u64 {
        self.enclave_size - PAGE_SIZE as u64
    }

    /// Runs the `ECREATE`/`EADD`/`EEXTEND` sequence for everything
    /// *below* the instance page into a measurement builder.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors (cannot happen for a validated
    /// layout).
    pub fn measure_base(&self) -> Result<MeasurementBuilder, SinclaveError> {
        let mut m = MeasurementBuilder::ecreate(EnclaveBuilder::SSA_FRAME_SIZE, self.enclave_size);
        for seg in &self.segments {
            for (i, chunk) in seg.data.chunks(PAGE_SIZE).enumerate() {
                let mut page = [0u8; PAGE_SIZE];
                page[..chunk.len()].copy_from_slice(chunk);
                m.add_page(seg.offset + (i * PAGE_SIZE) as u64, &page, seg.secinfo, seg.measured)?;
            }
            if seg.data.is_empty() {
                m.add_page(seg.offset, &[0u8; PAGE_SIZE], seg.secinfo, seg.measured)?;
            }
        }
        let zero = [0u8; PAGE_SIZE];
        for i in 0..self.heap_pages {
            m.add_page(self.heap_offset + i * PAGE_SIZE as u64, &zero, SecInfo::data(), false)?;
        }
        Ok(m)
    }

    /// Constructs the enclave (all segments + heap, *without* the
    /// instance page) on a platform. The starter then appends either a
    /// zeroed common page or a singleton instance page and calls
    /// `einit`.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (EPC exhaustion etc.).
    pub fn build(
        &self,
        platform: Arc<Platform>,
        attributes: Attributes,
    ) -> Result<EnclaveBuilder, SinclaveError> {
        let mut b = EnclaveBuilder::new(platform, self.enclave_size, attributes);
        for seg in &self.segments {
            if seg.data.is_empty() {
                b.add_page(seg.offset, &[0u8; PAGE_SIZE], seg.secinfo, seg.measured)?;
            } else {
                b.add_bytes(seg.offset, &seg.data, seg.secinfo, seg.measured)?;
            }
        }
        if self.heap_pages > 0 {
            b.add_heap(self.heap_offset, self.heap_pages)?;
        }
        Ok(b)
    }

    /// Total number of pages the built enclave will occupy.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.segments.iter().map(LayoutSegment::page_count).sum::<u64>() + self.heap_pages + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn for_program_layout_geometry() {
        let layout = EnclaveLayout::for_program(&[1u8; 5000], 3).unwrap();
        // 2 code pages + 3 heap + 1 instance page.
        assert_eq!(layout.enclave_size, 6 * PAGE_SIZE as u64);
        assert_eq!(layout.instance_page_offset(), 5 * PAGE_SIZE as u64);
        assert_eq!(layout.heap_offset, 2 * PAGE_SIZE as u64);
        assert_eq!(layout.total_pages(), 6);
    }

    #[test]
    fn measure_base_matches_platform_build() {
        // The signer's offline measurement and the starter's actual
        // construction must agree bit for bit.
        let layout = EnclaveLayout::for_program(b"some program code", 2).unwrap();
        let offline = layout.measure_base().unwrap();

        let mut rng = StdRng::seed_from_u64(1);
        let platform = Arc::new(Platform::new(&mut rng));
        let built = layout.build(platform, Attributes::production()).unwrap();

        assert_eq!(offline.export_state(), built.measurement_state());
    }

    #[test]
    fn rejects_overlapping_segments() {
        let seg = |offset| LayoutSegment {
            offset,
            data: vec![1; PAGE_SIZE + 1], // 2 pages
            secinfo: SecInfo::code(),
            measured: true,
        };
        let err = EnclaveLayout::new(0x10000, vec![seg(0), seg(0x1000)], 0x4000, 1);
        assert!(matches!(err, Err(SinclaveError::LayoutInvalid { .. })));
    }

    #[test]
    fn rejects_heap_overlapping_instance_page() {
        let err = EnclaveLayout::new(
            2 * PAGE_SIZE as u64,
            vec![],
            0,
            2, // heap would cover the instance page slot
        );
        assert!(matches!(err, Err(SinclaveError::LayoutInvalid { .. })));
    }

    #[test]
    fn rejects_unaligned_size() {
        assert!(EnclaveLayout::new(100, vec![], 0, 0).is_err());
    }

    #[test]
    fn empty_segment_occupies_one_page() {
        let seg = LayoutSegment {
            offset: 0,
            data: vec![],
            secinfo: SecInfo::read_only(),
            measured: true,
        };
        assert_eq!(seg.page_count(), 1);
        let layout =
            EnclaveLayout::new(2 * PAGE_SIZE as u64, vec![seg], PAGE_SIZE as u64, 0).unwrap();
        assert!(layout.measure_base().is_ok());
    }

    #[test]
    fn different_programs_different_base_states() {
        let a = EnclaveLayout::for_program(b"program a", 1).unwrap();
        let b = EnclaveLayout::for_program(b"program b", 1).unwrap();
        assert_ne!(
            a.measure_base().unwrap().export_state(),
            b.measure_base().unwrap().export_state()
        );
    }
}
