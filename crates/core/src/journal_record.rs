//! The sealed redemption journal's record codec.
//!
//! PR 4's snapshots made the issuer's durable state restart-safe, but
//! exactly-once redemption stayed *snapshot-relative*: a crash
//! re-exposed every token redeemed since the last snapshot. The
//! journal closes that window: the CAS appends a record for every
//! trust-relevant token transition **before** acknowledging it, and a
//! restarted verifier replays the journal suffix on top of the latest
//! snapshot. This module defines what one journal record looks like;
//! where the sealed bytes live (append-only chunks in the encrypted
//! volume) is `sinclave_fs::journal`'s business, and the group-commit
//! batching policy is the CAS server's.
//!
//! # Wire format
//!
//! Every record is individually framed, versioned, **sequenced** and
//! checksummed:
//!
//! ```text
//! magic     4 bytes   "SJRL"
//! version   u16 BE    RECORD_VERSION
//! seq       u64 BE    monotonically increasing record sequence
//! body_len  u32 BE    exact length of the body that follows
//! body      body_len  tag byte + wire-codec fields
//! digest    32 bytes  SHA-256 over everything above
//! ```
//!
//! A group-commit batch is simply the concatenation of framed records;
//! [`decode_batch`] walks it front to back and stops at the first
//! record that fails any check, handing back the clean prefix plus the
//! reason — a torn tail degrades to the last complete record, never to
//! a half-parsed one and never to a panic. The sequence numbers let
//! the replayer prove it saw every record in order: a gap or
//! regression after damage can only mean tampering, not a crash.
//!
//! As with the snapshot codec, the trailing digest is not a security
//! boundary (the AEAD-sealed volume chunks provide tamper detection);
//! it turns "plausibly decodes to a different record" — a software
//! bug, a partial plaintext write — into a total, counted rejection.

use crate::error::SinclaveError;
use crate::token::TOKEN_LEN;
use sinclave_crypto::sha256;
use sinclave_net::wire::{Decode, Encode, Reader};

/// Magic bytes every journal record starts with.
pub const RECORD_MAGIC: [u8; 4] = *b"SJRL";

/// The record format version this build writes and accepts.
pub const RECORD_VERSION: u16 = 1;

/// Fixed framing before the body: magic + version + seq + body length.
const RECORD_HEADER_LEN: usize = 4 + 2 + 8 + 4;

/// Trailing SHA-256 over header and body.
const RECORD_CHECKSUM_LEN: usize = 32;

const TAG_GRANTED: u8 = 0;
const TAG_REDEEMED: u8 = 1;
const TAG_CHECKPOINT: u8 = 2;
const TAG_FENCE: u8 = 3;

/// One durable-state delta the issuer emits and the journal makes
/// crash-proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// A singleton grant was issued: the token now exists and is
    /// outstanding. Carried so a crash after the grant ack cannot
    /// forget a token the starter is about to redeem.
    TokenGranted {
        /// The issued token bytes.
        token: [u8; TOKEN_LEN],
        /// The `MRENCLAVE` predicted at issue time.
        expected: [u8; 32],
        /// The common measurement of the granted binary.
        common: [u8; 32],
    },
    /// A token was redeemed — the trust-critical transition. Appended
    /// (and made durable) before the redeem reply is acknowledged, so
    /// no acked redemption is ever replayable after a crash.
    TokenRedeemed {
        /// The redeemed token bytes.
        token: [u8; TOKEN_LEN],
    },
    /// A snapshot checkpoint: everything before this record is folded
    /// into the snapshot of the named restore generation, so replay of
    /// older records is an idempotent no-op and the log can be
    /// truncated behind it. The generation also feeds whole-disk-image
    /// rollback detection.
    Checkpoint {
        /// The monotonic restore generation of the snapshot.
        generation: u64,
    },
    /// A fencing-generation bump, written durably by a replica at
    /// promotion time. The journal boundary refuses appends from a
    /// server whose fence is below the highest one it has seen, so a
    /// deposed primary that comes back cannot commit (and therefore
    /// cannot ack) a redemption the new primary no longer knows about.
    Fence {
        /// The new fencing generation. Strictly greater than every
        /// fence the promoting replica has observed.
        fence: u64,
    },
}

impl Encode for JournalRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::TokenGranted { token, expected, common } => {
                out.push(TAG_GRANTED);
                token.encode_into(out);
                expected.encode_into(out);
                common.encode_into(out);
            }
            JournalRecord::TokenRedeemed { token } => {
                out.push(TAG_REDEEMED);
                token.encode_into(out);
            }
            JournalRecord::Checkpoint { generation } => {
                out.push(TAG_CHECKPOINT);
                generation.encode_into(out);
            }
            JournalRecord::Fence { fence } => {
                out.push(TAG_FENCE);
                fence.encode_into(out);
            }
        }
    }
}

impl Decode for JournalRecord {
    /// The smallest record body: a tag plus a u64 (checkpoint).
    const MIN_ENCODED_LEN: usize = 1 + 8;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, sinclave_net::NetError> {
        match u8::decode(reader)? {
            TAG_GRANTED => Ok(JournalRecord::TokenGranted {
                token: <[u8; TOKEN_LEN]>::decode(reader)?,
                expected: <[u8; 32]>::decode(reader)?,
                common: <[u8; 32]>::decode(reader)?,
            }),
            TAG_REDEEMED => {
                Ok(JournalRecord::TokenRedeemed { token: <[u8; TOKEN_LEN]>::decode(reader)? })
            }
            TAG_CHECKPOINT => Ok(JournalRecord::Checkpoint { generation: u64::decode(reader)? }),
            TAG_FENCE => Ok(JournalRecord::Fence { fence: u64::decode(reader)? }),
            _ => Err(sinclave_net::NetError::Decode { context: "journal record tag" }),
        }
    }
}

/// A journal record together with its position in the total order of
/// durable-state deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SequencedRecord {
    /// Monotonically increasing sequence number (starts at 1; survives
    /// checkpoints, so the whole journal history is totally ordered).
    pub seq: u64,
    /// The delta itself.
    pub record: JournalRecord,
}

impl SequencedRecord {
    /// Serializes the record with framing: magic, version, sequence,
    /// body length, body, trailing SHA-256.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.record.encode();
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + body.len() + RECORD_CHECKSUM_LEN);
        out.extend_from_slice(&RECORD_MAGIC);
        out.extend_from_slice(&RECORD_VERSION.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        let digest = sha256::digest(&out);
        out.extend_from_slice(digest.as_bytes());
        out
    }

    /// Parses one framed record from the front of `bytes`, returning
    /// it and the number of bytes consumed. Rejection is total: any
    /// framing, version, checksum or body failure yields an error and
    /// consumes nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::JournalInvalid`] naming the first
    /// check that failed.
    pub fn parse_prefix(bytes: &[u8]) -> Result<(Self, usize), SinclaveError> {
        let reject = |context| Err(SinclaveError::JournalInvalid { context });
        if bytes.len() < RECORD_HEADER_LEN + RECORD_CHECKSUM_LEN {
            return reject("truncated record header");
        }
        if bytes[..4] != RECORD_MAGIC {
            return reject("bad record magic");
        }
        let version =
            u16::from_be_bytes(bytes[4..6].try_into().map_err(|_| {
                SinclaveError::JournalInvalid { context: "truncated record header" }
            })?);
        if version != RECORD_VERSION {
            return reject("unsupported record version");
        }
        let seq =
            u64::from_be_bytes(bytes[6..14].try_into().map_err(|_| {
                SinclaveError::JournalInvalid { context: "truncated record header" }
            })?);
        let body_len =
            u32::from_be_bytes(bytes[14..18].try_into().map_err(|_| {
                SinclaveError::JournalInvalid { context: "truncated record header" }
            })?) as usize;
        let total = RECORD_HEADER_LEN
            .checked_add(body_len)
            .and_then(|n| n.checked_add(RECORD_CHECKSUM_LEN))
            .filter(|&n| n <= bytes.len());
        let Some(total) = total else {
            return reject("truncated record body");
        };
        let framed = &bytes[..total - RECORD_CHECKSUM_LEN];
        let checksum = &bytes[total - RECORD_CHECKSUM_LEN..total];
        if sha256::digest(framed).as_bytes() != checksum {
            return reject("record checksum mismatch");
        }
        let record = JournalRecord::decode_all(&framed[RECORD_HEADER_LEN..])
            .map_err(|_| SinclaveError::JournalInvalid { context: "record body" })?;
        Ok((SequencedRecord { seq, record }, total))
    }

    /// Parses exactly one record that must span the whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::JournalInvalid`] on any framing, body,
    /// or trailing-bytes failure.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SinclaveError> {
        let (record, consumed) = Self::parse_prefix(bytes)?;
        if consumed != bytes.len() {
            return Err(SinclaveError::JournalInvalid { context: "trailing bytes" });
        }
        Ok(record)
    }
}

/// Concatenates framed records into one group-commit batch payload.
#[must_use]
pub fn encode_batch(records: &[SequencedRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for record in records {
        out.extend_from_slice(&record.to_bytes());
    }
    out
}

/// What [`decode_batch`] recovered from one sealed batch payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchDecode {
    /// The clean prefix of records, in payload order.
    pub records: Vec<SequencedRecord>,
    /// `Some(reason)` if the payload ended in bytes that do not frame
    /// a complete valid record — a torn tail (or tampering, which the
    /// replayer distinguishes by position). The records before the
    /// damage are still good.
    pub damaged: Option<&'static str>,
}

/// Walks a batch payload front to back, recovering every complete
/// record up to the first damage. Never panics on any input.
#[must_use]
pub fn decode_batch(bytes: &[u8]) -> BatchDecode {
    let mut records = Vec::new();
    let mut rest = bytes;
    while !rest.is_empty() {
        match SequencedRecord::parse_prefix(rest) {
            Ok((record, consumed)) => {
                records.push(record);
                rest = &rest[consumed..];
            }
            Err(SinclaveError::JournalInvalid { context }) => {
                return BatchDecode { records, damaged: Some(context) };
            }
            Err(_) => return BatchDecode { records, damaged: Some("record") },
        }
    }
    BatchDecode { records, damaged: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<SequencedRecord> {
        vec![
            SequencedRecord {
                seq: 1,
                record: JournalRecord::TokenGranted {
                    token: [0x11; TOKEN_LEN],
                    expected: [0x22; 32],
                    common: [0x33; 32],
                },
            },
            SequencedRecord { seq: 2, record: JournalRecord::TokenRedeemed { token: [0x11; 32] } },
            SequencedRecord { seq: 3, record: JournalRecord::Checkpoint { generation: 7 } },
            SequencedRecord { seq: 4, record: JournalRecord::Fence { fence: 2 } },
        ]
    }

    #[test]
    fn single_record_roundtrip() {
        for record in samples() {
            let bytes = record.to_bytes();
            assert_eq!(SequencedRecord::from_bytes(&bytes).unwrap(), record);
            // Deterministic bytes for identical records.
            assert_eq!(record.to_bytes(), bytes);
        }
    }

    #[test]
    fn batch_roundtrip() {
        let records = samples();
        let decoded = decode_batch(&encode_batch(&records));
        assert_eq!(decoded.records, records);
        assert_eq!(decoded.damaged, None);
        // The empty batch is clean, not damaged.
        assert_eq!(decode_batch(&[]), BatchDecode { records: vec![], damaged: None });
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        for record in samples() {
            let bytes = record.to_bytes();
            for i in 0..bytes.len() {
                for bit in 0..8 {
                    let mut corrupt = bytes.clone();
                    corrupt[i] ^= 1 << bit;
                    assert!(
                        SequencedRecord::from_bytes(&corrupt).is_err(),
                        "flip of bit {bit} in byte {i} accepted"
                    );
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = samples()[0].to_bytes();
        for cut in 0..bytes.len() {
            assert!(SequencedRecord::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn torn_batch_degrades_to_complete_prefix() {
        let records = samples();
        let batch = encode_batch(&records);
        let boundaries: Vec<usize> = records
            .iter()
            .scan(0, |pos, r| {
                *pos += r.to_bytes().len();
                Some(*pos)
            })
            .collect();
        // Every byte-level tear recovers exactly the records whose
        // frames fit before the cut.
        for cut in 0..batch.len() {
            let decoded = decode_batch(&batch[..cut]);
            let complete = boundaries.iter().filter(|&&b| b <= cut).count();
            assert_eq!(decoded.records.len(), complete, "cut at {cut}");
            assert_eq!(decoded.records[..], records[..complete]);
            assert_eq!(decoded.damaged.is_some(), cut != 0 && !boundaries.contains(&cut));
        }
    }

    #[test]
    fn version_bump_with_valid_checksum_is_rejected() {
        let mut bytes = samples()[1].to_bytes();
        let framed = bytes.len() - RECORD_CHECKSUM_LEN;
        bytes[4..6].copy_from_slice(&(RECORD_VERSION + 1).to_be_bytes());
        let digest = sha256::digest(&bytes[..framed]);
        bytes[framed..].copy_from_slice(digest.as_bytes());
        assert_eq!(
            SequencedRecord::from_bytes(&bytes),
            Err(SinclaveError::JournalInvalid { context: "unsupported record version" })
        );
    }

    #[test]
    fn unknown_tag_rejected_even_with_valid_checksum() {
        let mut body = samples()[1].record.encode();
        body[0] = 9; // undefined tag
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&RECORD_MAGIC);
        bytes.extend_from_slice(&RECORD_VERSION.to_be_bytes());
        bytes.extend_from_slice(&4u64.to_be_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&body);
        let digest = sha256::digest(&bytes);
        bytes.extend_from_slice(digest.as_bytes());
        assert_eq!(
            SequencedRecord::from_bytes(&bytes),
            Err(SinclaveError::JournalInvalid { context: "record body" })
        );
    }

    #[test]
    fn hostile_body_length_rejected_without_panic() {
        let mut bytes = samples()[2].to_bytes();
        // Claim a body far past the end of the buffer (and near
        // usize::MAX, which must not overflow the total computation).
        bytes[14..18].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(SequencedRecord::from_bytes(&bytes).is_err());
    }
}
