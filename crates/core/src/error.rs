//! Error type for SinClave operations.

use std::error::Error;
use std::fmt;

/// Errors raised by SinClave signing, verification and the singleton
/// protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SinclaveError {
    /// A common SigStruct does not correspond to the claimed base
    /// enclave hash.
    BaseHashMismatch,
    /// The presented SigStruct failed signature verification.
    SigStructInvalid,
    /// The signer key requested for on-demand signing does not match
    /// the common SigStruct's signer.
    SignerMismatch,
    /// The attestation token was already redeemed (or never issued) —
    /// the freshness guarantee caught a reuse attempt.
    TokenNotRedeemable,
    /// The instance page bytes are malformed.
    InstancePageMalformed,
    /// A layout is structurally invalid (overlapping or out-of-range
    /// segments, missing room for the instance page…).
    LayoutInvalid {
        /// What is wrong with the layout.
        reason: &'static str,
    },
    /// A protocol message could not be decoded.
    ProtocolDecode,
    /// A durable state snapshot was refused (framing, checksum,
    /// version, or identity mismatch) — the caller falls back to a
    /// cold cache.
    SnapshotInvalid {
        /// Which check refused the snapshot.
        context: &'static str,
    },
    /// A redemption-journal record or append was refused (framing,
    /// checksum, version, sequencing, or a failed durable write) —
    /// replay degrades to the clean prefix, commits fail closed.
    JournalInvalid {
        /// Which check (or operation) refused the record.
        context: &'static str,
    },
    /// A replication frame was refused (framing, checksum, version,
    /// body decode, or a sequencing/fencing violation in the stream) —
    /// the receiving replica rejects the frame as a unit and counts it.
    ReplicationInvalid {
        /// Which check refused the frame.
        context: &'static str,
    },
    /// An underlying SGX operation failed.
    Sgx(sinclave_sgx::SgxError),
    /// An underlying cryptographic operation failed.
    Crypto(sinclave_crypto::CryptoError),
}

impl fmt::Display for SinclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinclaveError::BaseHashMismatch => {
                write!(f, "common sigstruct does not match base enclave hash")
            }
            SinclaveError::SigStructInvalid => write!(f, "sigstruct signature invalid"),
            SinclaveError::SignerMismatch => {
                write!(f, "on-demand signer key does not match common sigstruct signer")
            }
            SinclaveError::TokenNotRedeemable => {
                write!(f, "attestation token not redeemable (reused or unknown)")
            }
            SinclaveError::InstancePageMalformed => write!(f, "instance page malformed"),
            SinclaveError::LayoutInvalid { reason } => write!(f, "invalid layout: {reason}"),
            SinclaveError::ProtocolDecode => write!(f, "protocol message malformed"),
            SinclaveError::SnapshotInvalid { context } => {
                write!(f, "state snapshot refused: {context}")
            }
            SinclaveError::JournalInvalid { context } => {
                write!(f, "redemption journal refused: {context}")
            }
            SinclaveError::ReplicationInvalid { context } => {
                write!(f, "replication frame refused: {context}")
            }
            SinclaveError::Sgx(e) => write!(f, "sgx: {e}"),
            SinclaveError::Crypto(e) => write!(f, "crypto: {e}"),
        }
    }
}

impl Error for SinclaveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SinclaveError::Sgx(e) => Some(e),
            SinclaveError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sinclave_sgx::SgxError> for SinclaveError {
    fn from(e: sinclave_sgx::SgxError) -> Self {
        SinclaveError::Sgx(e)
    }
}

impl From<sinclave_crypto::CryptoError> for SinclaveError {
    fn from(e: sinclave_crypto::CryptoError) -> Self {
        SinclaveError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = SinclaveError::from(sinclave_sgx::SgxError::SigStructInvalid);
        assert!(e.to_string().contains("sgx"));
        assert!(e.source().is_some());
        assert!(SinclaveError::TokenNotRedeemable.source().is_none());
    }
}
