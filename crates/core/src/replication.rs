//! The replication wire protocol: sealed-journal streaming between a
//! primary CAS and its follower replicas.
//!
//! PR 5's journal is already a versioned, sequenced, tamper-evident
//! record stream; this module frames it for the wire so a primary can
//! ship it to followers over a `SecureChannel`. A replication session
//! opens with a [`ReplicationFrame::Hello`] declaring the peer's role:
//!
//! * **Subscribe** — the primary answers with one
//!   [`ReplicationFrame::Baseline`] (raw snapshot bytes plus the
//!   journal suffix, exactly what its own restart would replay) and
//!   then pushes [`ReplicationFrame::Records`] batches as commits
//!   happen. The stream is one-way after the baseline.
//! * **Forward** — a request/response session a follower uses to
//!   linearize writes through the primary: re-encoded grant requests
//!   ([`ReplicationFrame::Forward`]) and token redemptions
//!   ([`ReplicationFrame::Redeem`]).
//!
//! Every frame carries the sender's **fencing generation** where it
//! matters: a primary that observes a higher fence than its own in a
//! `Hello` answers [`ReplicationFrame::Fenced`] and refuses writes
//! from then on; a follower adopts the primary's fence from the
//! baseline. Fences only move forward.
//!
//! # Wire format
//!
//! Frames use the same framing discipline as the journal's
//! [`SequencedRecord`](crate::journal_record::SequencedRecord) — and
//! the same total-rejection bar, because a replication stream crosses
//! a network an adversary owns (§3):
//!
//! ```text
//! magic     4 bytes   "SRPL"
//! version   u16 BE    FRAME_VERSION
//! body_len  u32 BE    exact length of the body that follows
//! body      body_len  tag byte + wire-codec fields
//! digest    32 bytes  SHA-256 over everything above
//! ```
//!
//! [`ReplicationFrame::parse_prefix`] rejects any framing, version,
//! checksum or body failure as a unit and never panics on hostile
//! input. The trailing digest is not the security boundary (the
//! secure channel's AEAD is); like the journal codec's, it turns
//! "plausibly decodes to a different frame" into a counted refusal.

use crate::error::SinclaveError;
use crate::protocol::TraceContext;
use crate::token::TOKEN_LEN;
use sinclave_crypto::sha256;
use sinclave_net::wire::{Decode, Encode, Reader};
use sinclave_net::NetError;

/// Magic bytes every replication frame starts with.
pub const FRAME_MAGIC: [u8; 4] = *b"SRPL";

/// The replication frame version this build writes and accepts.
pub const FRAME_VERSION: u16 = 1;

/// Fixed framing before the body: magic + version + body length.
const FRAME_HEADER_LEN: usize = 4 + 2 + 4;

/// Trailing SHA-256 over header and body.
const FRAME_CHECKSUM_LEN: usize = 32;

const TAG_HELLO: u8 = 0;
const TAG_BASELINE: u8 = 1;
const TAG_RECORDS: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_FENCED: u8 = 4;
const TAG_REDEEM: u8 = 5;
const TAG_REDEEM_OK: u8 = 6;
const TAG_FORWARD: u8 = 7;
const TAG_REPLY: u8 = 8;
const TAG_DENIED: u8 = 9;

const ROLE_SUBSCRIBE: u8 = 0;
const ROLE_FORWARD: u8 = 1;

impl Encode for TraceContext {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&TraceContext::encode(self));
    }
}

impl Decode for TraceContext {
    const MIN_ENCODED_LEN: usize = TraceContext::ENCODED_LEN;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        let bytes = reader.take(TraceContext::ENCODED_LEN)?;
        TraceContext::decode(bytes).map_err(|_| NetError::Decode { context: "trace context" })
    }
}

/// One completed span exported across a fleet hop so the node that
/// minted the trace can render the remote side's latency breakdown in
/// a single causal tree. Times are nanoseconds on the *remote* node's
/// monotonic trace clock — consumers rebase them into the enclosing
/// forward span rather than comparing across nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSpan {
    /// Stage name (`"verify"`, `"sign"`, `"journal_flush"`, …).
    pub stage: String,
    /// Span start on the remote trace clock, in nanoseconds.
    pub start_ns: u64,
    /// Span end on the remote trace clock, in nanoseconds.
    pub end_ns: u64,
    /// Outcome discriminant: 0 = ok, 1 = error, 2 = refused. Unknown
    /// values decode (future-proofing) and render as errors.
    pub outcome: u8,
    /// Hop index the span was recorded at.
    pub hop: u8,
}

impl Encode for WireSpan {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.stage.encode_into(out);
        self.start_ns.encode_into(out);
        self.end_ns.encode_into(out);
        self.outcome.encode_into(out);
        self.hop.encode_into(out);
    }
}

impl Decode for WireSpan {
    /// Empty stage string (4-byte prefix) + two u64s + two u8s.
    const MIN_ENCODED_LEN: usize = 4 + 8 + 8 + 1 + 1;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(WireSpan {
            stage: String::decode(reader)?,
            start_ns: u64::decode(reader)?,
            end_ns: u64::decode(reader)?,
            outcome: u8::decode(reader)?,
            hop: u8::decode(reader)?,
        })
    }
}

/// What a replication session is for, declared in its opening
/// [`ReplicationFrame::Hello`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Receive the journal stream: baseline, then live record batches.
    Subscribe,
    /// Forward writes (grants, redemptions) to be linearized by the
    /// primary.
    Forward,
}

impl Encode for ReplicaRole {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ReplicaRole::Subscribe => ROLE_SUBSCRIBE,
            ReplicaRole::Forward => ROLE_FORWARD,
        });
    }
}

impl Decode for ReplicaRole {
    const MIN_ENCODED_LEN: usize = 1;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        match u8::decode(reader)? {
            ROLE_SUBSCRIBE => Ok(ReplicaRole::Subscribe),
            ROLE_FORWARD => Ok(ReplicaRole::Forward),
            _ => Err(NetError::Decode { context: "replica role" }),
        }
    }
}

/// One message of the replication protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicationFrame {
    /// Session opener: the connecting replica's role, the highest
    /// journal sequence it already holds, and the highest fence it has
    /// observed.
    Hello {
        /// What this session is for.
        role: ReplicaRole,
        /// Highest journal sequence durably applied by the sender
        /// (0 for a cold replica).
        last_seq: u64,
        /// Highest fencing generation the sender has observed.
        fence: u64,
    },
    /// The primary's bootstrap reply to a subscriber: its current
    /// fence, raw on-disk snapshot bytes (possibly empty for a cold
    /// primary) and the sealed journal-suffix chunks — exactly the
    /// state the primary's own restart would replay.
    Baseline {
        /// The primary's fencing generation; the follower adopts it.
        fence: u64,
        /// Highest journal sequence covered by snapshot + chunks.
        high_seq: u64,
        /// The snapshot's journal-sequence baseline (records at or
        /// below it are folded into the snapshot bytes).
        baseline_seq: u64,
        /// Raw `IssuerSnapshot` bytes as sealed on the primary's disk;
        /// empty when the primary has never persisted one.
        snapshot: Vec<u8>,
        /// The journal suffix: sealed batch payloads in epoch/index
        /// order, each a concatenation of framed `SequencedRecord`s.
        chunks: Vec<Vec<u8>>,
    },
    /// A live group-commit batch, pushed after the baseline in commit
    /// order.
    Records {
        /// The primary's fencing generation at commit time.
        fence: u64,
        /// One sealed batch payload (framed `SequencedRecord`s).
        batch: Vec<u8>,
    },
    /// Stream liveness + lag signal when no commits are flowing.
    Heartbeat {
        /// The primary's fencing generation.
        fence: u64,
        /// The primary's highest committed journal sequence.
        high_seq: u64,
    },
    /// Refusal: the receiver has observed a fence outranking the
    /// sender's. The sender is deposed and must stop writing.
    Fenced {
        /// The outranking fence the receiver holds.
        fence: u64,
    },
    /// A follower asks the primary to redeem a token it attested
    /// locally (the redemption must linearize through the primary).
    Redeem {
        /// The token to redeem.
        token: [u8; TOKEN_LEN],
        /// The attested `MRENCLAVE` the follower verified.
        mrenclave: [u8; 32],
    },
    /// The primary redeemed the token durably.
    RedeemOk {
        /// The common measurement recorded at grant time.
        common: [u8; 32],
    },
    /// A whole client request re-encoded for the primary to dispatch
    /// (grant requests; the reply goes back verbatim).
    ///
    /// The trace context is an optional *trailing* field: a frame
    /// without it encodes byte-identically to the pre-tracing format,
    /// and a decoder treats an exhausted body as "untraced" — so
    /// mixed-version fleets interoperate without a version bump.
    Forward {
        /// The client request's protocol-message bytes.
        request: Vec<u8>,
        /// The follower's trace context for the request, when traced.
        ctx: Option<TraceContext>,
    },
    /// The primary's reply to a forwarded request.
    ///
    /// Like [`ReplicationFrame::Forward`], the trace fields are an
    /// optional trailing extension (present only when `ctx` is
    /// `Some`): the primary echoes the context and exports the spans
    /// it recorded while serving the request, so the follower renders
    /// one causal span tree covering both hops.
    Reply {
        /// The protocol-message bytes to relay to the client.
        response: Vec<u8>,
        /// Echo of the forwarded trace context, when traced.
        ctx: Option<TraceContext>,
        /// The primary's spans for this request (empty when untraced).
        spans: Vec<WireSpan>,
    },
    /// The primary refused a forwarded write (fenced, journal failure,
    /// token not redeemable).
    Denied {
        /// Human-readable refusal reason.
        reason: String,
    },
}

impl Encode for ReplicationFrame {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ReplicationFrame::Hello { role, last_seq, fence } => {
                out.push(TAG_HELLO);
                role.encode_into(out);
                last_seq.encode_into(out);
                fence.encode_into(out);
            }
            ReplicationFrame::Baseline { fence, high_seq, baseline_seq, snapshot, chunks } => {
                out.push(TAG_BASELINE);
                fence.encode_into(out);
                high_seq.encode_into(out);
                baseline_seq.encode_into(out);
                snapshot.encode_into(out);
                chunks.encode_into(out);
            }
            ReplicationFrame::Records { fence, batch } => {
                out.push(TAG_RECORDS);
                fence.encode_into(out);
                batch.encode_into(out);
            }
            ReplicationFrame::Heartbeat { fence, high_seq } => {
                out.push(TAG_HEARTBEAT);
                fence.encode_into(out);
                high_seq.encode_into(out);
            }
            ReplicationFrame::Fenced { fence } => {
                out.push(TAG_FENCED);
                fence.encode_into(out);
            }
            ReplicationFrame::Redeem { token, mrenclave } => {
                out.push(TAG_REDEEM);
                token.encode_into(out);
                mrenclave.encode_into(out);
            }
            ReplicationFrame::RedeemOk { common } => {
                out.push(TAG_REDEEM_OK);
                common.encode_into(out);
            }
            ReplicationFrame::Forward { request, ctx } => {
                out.push(TAG_FORWARD);
                request.encode_into(out);
                // Trailing extension, not an Option prefix: absent
                // context must reproduce the old format byte for byte.
                if let Some(ctx) = ctx {
                    ctx.encode_into(out);
                }
            }
            ReplicationFrame::Reply { response, ctx, spans } => {
                out.push(TAG_REPLY);
                response.encode_into(out);
                if let Some(ctx) = ctx {
                    ctx.encode_into(out);
                    spans.encode_into(out);
                }
            }
            ReplicationFrame::Denied { reason } => {
                out.push(TAG_DENIED);
                reason.encode_into(out);
            }
        }
    }
}

impl Decode for ReplicationFrame {
    /// The smallest body: a tag plus a u64 (fenced).
    const MIN_ENCODED_LEN: usize = 1 + 8;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        match u8::decode(reader)? {
            TAG_HELLO => Ok(ReplicationFrame::Hello {
                role: ReplicaRole::decode(reader)?,
                last_seq: u64::decode(reader)?,
                fence: u64::decode(reader)?,
            }),
            TAG_BASELINE => Ok(ReplicationFrame::Baseline {
                fence: u64::decode(reader)?,
                high_seq: u64::decode(reader)?,
                baseline_seq: u64::decode(reader)?,
                snapshot: Vec::decode(reader)?,
                chunks: Vec::decode(reader)?,
            }),
            TAG_RECORDS => Ok(ReplicationFrame::Records {
                fence: u64::decode(reader)?,
                batch: Vec::decode(reader)?,
            }),
            TAG_HEARTBEAT => Ok(ReplicationFrame::Heartbeat {
                fence: u64::decode(reader)?,
                high_seq: u64::decode(reader)?,
            }),
            TAG_FENCED => Ok(ReplicationFrame::Fenced { fence: u64::decode(reader)? }),
            TAG_REDEEM => Ok(ReplicationFrame::Redeem {
                token: <[u8; TOKEN_LEN]>::decode(reader)?,
                mrenclave: <[u8; 32]>::decode(reader)?,
            }),
            TAG_REDEEM_OK => Ok(ReplicationFrame::RedeemOk { common: <[u8; 32]>::decode(reader)? }),
            TAG_FORWARD => {
                let request = Vec::decode(reader)?;
                let ctx = (reader.remaining() > 0)
                    .then(|| <TraceContext as Decode>::decode(reader))
                    .transpose()?;
                Ok(ReplicationFrame::Forward { request, ctx })
            }
            TAG_REPLY => {
                let response = Vec::decode(reader)?;
                let (ctx, spans) = if reader.remaining() > 0 {
                    (Some(<TraceContext as Decode>::decode(reader)?), Vec::decode(reader)?)
                } else {
                    (None, Vec::new())
                };
                Ok(ReplicationFrame::Reply { response, ctx, spans })
            }
            TAG_DENIED => Ok(ReplicationFrame::Denied { reason: String::decode(reader)? }),
            _ => Err(NetError::Decode { context: "replication frame tag" }),
        }
    }
}

impl ReplicationFrame {
    /// Serializes the frame with framing: magic, version, body length,
    /// body, trailing SHA-256.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.encode();
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len() + FRAME_CHECKSUM_LEN);
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&FRAME_VERSION.to_be_bytes());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        let digest = sha256::digest(&out);
        out.extend_from_slice(digest.as_bytes());
        out
    }

    /// Parses one framed frame from the front of `bytes`, returning it
    /// and the number of bytes consumed. Rejection is total: any
    /// framing, version, checksum or body failure yields an error and
    /// consumes nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ReplicationInvalid`] naming the first
    /// check that failed.
    pub fn parse_prefix(bytes: &[u8]) -> Result<(Self, usize), SinclaveError> {
        let reject = |context| Err(SinclaveError::ReplicationInvalid { context });
        if bytes.len() < FRAME_HEADER_LEN + FRAME_CHECKSUM_LEN {
            return reject("truncated frame header");
        }
        if bytes[..4] != FRAME_MAGIC {
            return reject("bad frame magic");
        }
        let version = u16::from_be_bytes(bytes[4..6].try_into().map_err(|_| {
            SinclaveError::ReplicationInvalid { context: "truncated frame header" }
        })?);
        if version != FRAME_VERSION {
            return reject("unsupported frame version");
        }
        let body_len =
            u32::from_be_bytes(bytes[6..10].try_into().map_err(|_| {
                SinclaveError::ReplicationInvalid { context: "truncated frame header" }
            })?) as usize;
        let total = FRAME_HEADER_LEN
            .checked_add(body_len)
            .and_then(|n| n.checked_add(FRAME_CHECKSUM_LEN))
            .filter(|&n| n <= bytes.len());
        let Some(total) = total else {
            return reject("truncated frame body");
        };
        let framed = &bytes[..total - FRAME_CHECKSUM_LEN];
        let checksum = &bytes[total - FRAME_CHECKSUM_LEN..total];
        if sha256::digest(framed).as_bytes() != checksum {
            return reject("frame checksum mismatch");
        }
        let frame = ReplicationFrame::decode_all(&framed[FRAME_HEADER_LEN..])
            .map_err(|_| SinclaveError::ReplicationInvalid { context: "frame body" })?;
        Ok((frame, total))
    }

    /// Parses exactly one frame that must span the whole buffer (the
    /// secure channel already delimits frames; trailing bytes mean a
    /// confused or hostile sender).
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::ReplicationInvalid`] on any framing,
    /// body, or trailing-bytes failure.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SinclaveError> {
        let (frame, consumed) = Self::parse_prefix(bytes)?;
        if consumed != bytes.len() {
            return Err(SinclaveError::ReplicationInvalid { context: "trailing bytes" });
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ReplicationFrame> {
        vec![
            ReplicationFrame::Hello { role: ReplicaRole::Subscribe, last_seq: 7, fence: 2 },
            ReplicationFrame::Hello { role: ReplicaRole::Forward, last_seq: 0, fence: 0 },
            ReplicationFrame::Baseline {
                fence: 3,
                high_seq: 12,
                baseline_seq: 9,
                snapshot: vec![0xaa; 40],
                chunks: vec![vec![0x01, 0x02], vec![], vec![0x03; 17]],
            },
            ReplicationFrame::Records { fence: 3, batch: vec![0x44; 66] },
            ReplicationFrame::Heartbeat { fence: 3, high_seq: 12 },
            ReplicationFrame::Fenced { fence: 4 },
            ReplicationFrame::Redeem { token: [0x55; TOKEN_LEN], mrenclave: [0x66; 32] },
            ReplicationFrame::RedeemOk { common: [0x77; 32] },
            ReplicationFrame::Forward { request: vec![0x88; 9], ctx: None },
            ReplicationFrame::Reply { response: vec![], ctx: None, spans: vec![] },
            ReplicationFrame::Forward { request: vec![0x99; 4], ctx: Some(sample_ctx(1)) },
            ReplicationFrame::Reply {
                response: vec![0xaa; 3],
                ctx: Some(sample_ctx(1)),
                spans: vec![
                    WireSpan {
                        stage: "verify".to_owned(),
                        start_ns: 100,
                        end_ns: 250,
                        outcome: 0,
                        hop: 1,
                    },
                    WireSpan {
                        stage: "journal_flush".to_owned(),
                        start_ns: 260,
                        end_ns: 900,
                        outcome: 0,
                        hop: 1,
                    },
                ],
            },
            ReplicationFrame::Denied { reason: "journal fenced".to_owned() },
        ]
    }

    fn sample_ctx(hop: u8) -> TraceContext {
        TraceContext { trace_id: [0x5a; 16], hop, flags: 0 }
    }

    #[test]
    fn roundtrip_is_deterministic() {
        for frame in samples() {
            let bytes = frame.to_bytes();
            assert_eq!(ReplicationFrame::from_bytes(&bytes).unwrap(), frame);
            assert_eq!(frame.to_bytes(), bytes);
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        for frame in samples() {
            let bytes = frame.to_bytes();
            for i in 0..bytes.len() {
                for bit in 0..8 {
                    let mut corrupt = bytes.clone();
                    corrupt[i] ^= 1 << bit;
                    assert!(
                        ReplicationFrame::from_bytes(&corrupt).is_err(),
                        "flip of bit {bit} in byte {i} accepted"
                    );
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        for frame in samples() {
            let bytes = frame.to_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    ReplicationFrame::from_bytes(&bytes[..cut]).is_err(),
                    "cut at {cut} accepted"
                );
            }
        }
    }

    #[test]
    fn version_bump_with_valid_checksum_is_rejected() {
        let mut bytes = samples()[0].to_bytes();
        let framed = bytes.len() - FRAME_CHECKSUM_LEN;
        bytes[4..6].copy_from_slice(&(FRAME_VERSION + 1).to_be_bytes());
        let digest = sha256::digest(&bytes[..framed]);
        bytes[framed..].copy_from_slice(digest.as_bytes());
        assert_eq!(
            ReplicationFrame::from_bytes(&bytes),
            Err(SinclaveError::ReplicationInvalid { context: "unsupported frame version" })
        );
    }

    #[test]
    fn unknown_tag_and_role_rejected_even_with_valid_checksum() {
        let reframe = |body: &[u8]| {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&FRAME_MAGIC);
            bytes.extend_from_slice(&FRAME_VERSION.to_be_bytes());
            bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
            bytes.extend_from_slice(body);
            let digest = sha256::digest(&bytes);
            bytes.extend_from_slice(digest.as_bytes());
            bytes
        };
        let mut body = samples()[5].encode();
        body[0] = 99; // undefined tag
        assert_eq!(
            ReplicationFrame::from_bytes(&reframe(&body)),
            Err(SinclaveError::ReplicationInvalid { context: "frame body" })
        );
        let mut body = samples()[0].encode();
        body[1] = 7; // undefined role
        assert_eq!(
            ReplicationFrame::from_bytes(&reframe(&body)),
            Err(SinclaveError::ReplicationInvalid { context: "frame body" })
        );
    }

    #[test]
    fn hostile_body_length_rejected_without_panic() {
        let mut bytes = samples()[3].to_bytes();
        bytes[6..10].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(ReplicationFrame::from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = samples()[4].to_bytes();
        bytes.extend_from_slice(&samples()[4].to_bytes());
        assert_eq!(
            ReplicationFrame::from_bytes(&bytes),
            Err(SinclaveError::ReplicationInvalid { context: "trailing bytes" })
        );
        // parse_prefix still recovers the first frame.
        let (frame, consumed) = ReplicationFrame::parse_prefix(&bytes).unwrap();
        assert_eq!(frame, samples()[4]);
        assert_eq!(consumed, bytes.len() / 2);
    }

    #[test]
    fn untraced_forward_and_reply_match_the_old_format() {
        // Hand-build the pre-tracing bodies: tag + length-prefixed
        // payload, nothing else. The new codec must emit exactly these
        // bytes when the trace fields are absent...
        let request = vec![0x88u8; 9];
        let mut old_forward = vec![TAG_FORWARD];
        request.encode_into(&mut old_forward);
        let new_forward = ReplicationFrame::Forward { request: request.clone(), ctx: None };
        assert_eq!(new_forward.encode(), old_forward);
        let response = vec![0x11u8, 0x22];
        let mut old_reply = vec![TAG_REPLY];
        response.encode_into(&mut old_reply);
        let new_reply =
            ReplicationFrame::Reply { response: response.clone(), ctx: None, spans: vec![] };
        assert_eq!(new_reply.encode(), old_reply);
        // ...and decode old-format bodies as untraced.
        assert_eq!(ReplicationFrame::decode_all(&old_forward).unwrap(), new_forward);
        assert_eq!(ReplicationFrame::decode_all(&old_reply).unwrap(), new_reply);
    }

    #[test]
    fn traced_forward_and_reply_roundtrip_context() {
        let forward = ReplicationFrame::Forward { request: vec![1, 2], ctx: Some(sample_ctx(3)) };
        assert_eq!(ReplicationFrame::from_bytes(&forward.to_bytes()).unwrap(), forward);
        let reply = ReplicationFrame::Reply {
            response: vec![4],
            ctx: Some(sample_ctx(3)),
            spans: vec![WireSpan {
                stage: "sign".to_owned(),
                start_ns: 5,
                end_ns: 9,
                outcome: 2,
                hop: 3,
            }],
        };
        assert_eq!(ReplicationFrame::from_bytes(&reply.to_bytes()).unwrap(), reply);
    }

    #[test]
    fn mangled_trace_tail_rejected() {
        // A truncated trace context after the request is a body error,
        // not silently "untraced".
        let traced = ReplicationFrame::Forward { request: vec![7; 3], ctx: Some(sample_ctx(0)) };
        let mut body = traced.encode();
        body.pop();
        assert!(ReplicationFrame::decode_all(&body).is_err());
    }
}
