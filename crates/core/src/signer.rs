//! The build-time signing tool (§4.4, Fig. 7a).
//!
//! SCONE embeds the SigStruct into the binary at compile time; the
//! SinClave signer additionally uses the *interruptible* SHA-256 so
//! that, besides the common SigStruct, it emits the [`BaseEnclaveHash`]
//! the verifier later finalizes per singleton.

use crate::base_hash::BaseEnclaveHash;
use crate::error::SinclaveError;
use crate::layout::EnclaveLayout;
use sinclave_crypto::rsa::RsaPrivateKey;
use sinclave_sgx::attributes::Attributes;
use sinclave_sgx::measurement::Measurement;
use sinclave_sgx::sigstruct::{SigStruct, SigStructBody};

/// Identity fields the signer assigns to a product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SignerConfig {
    /// Product id (`ISVPRODID`).
    pub isv_prod_id: u16,
    /// Security version (`ISVSVN`).
    pub isv_svn: u16,
    /// Build date as `YYYYMMDD`.
    pub date: u32,
    /// Required enclave attributes.
    pub attributes: Attributes,
    /// Enforced attribute mask.
    pub attributes_mask: Attributes,
}

impl Default for SignerConfig {
    fn default() -> Self {
        SignerConfig {
            isv_prod_id: 0,
            isv_svn: 1,
            date: 20230405,
            attributes: Attributes::production(),
            attributes_mask: Attributes { flags: u64::MAX, xfrm: u64::MAX },
        }
    }
}

/// Everything the signer ships with a binary: the layout, the base
/// enclave hash, and the *common* SigStruct. Freely distributable —
/// none of it is secret, none of it is machine-specific.
#[derive(Clone, Debug)]
pub struct SignedEnclave {
    /// The memory picture everyone measures.
    pub layout: EnclaveLayout,
    /// Interrupted measurement state over the layout.
    pub base_hash: BaseEnclaveHash,
    /// SigStruct for the common (zero-instance-page) enclave.
    pub common_sigstruct: SigStruct,
}

impl SignedEnclave {
    /// The common enclave's `MRENCLAVE`.
    #[must_use]
    pub fn common_measurement(&self) -> Measurement {
        self.common_sigstruct.body().enclave_hash
    }
}

/// Signs a layout the SinClave way: measure with the interruptible
/// hash, export the base hash, finalize the common measurement, sign.
///
/// # Errors
///
/// Propagates layout-measurement and signing failures.
pub fn sign_enclave(
    layout: &EnclaveLayout,
    signer_key: &RsaPrivateKey,
    config: &SignerConfig,
) -> Result<SignedEnclave, SinclaveError> {
    let base = layout.measure_base()?;
    let base_hash = BaseEnclaveHash::new(
        base.export_state(),
        layout.enclave_size,
        layout.instance_page_offset(),
    );
    let common = base_hash.common_measurement()?;
    let body = SigStructBody {
        enclave_hash: common,
        attributes: config.attributes,
        attributes_mask: config.attributes_mask,
        isv_prod_id: config.isv_prod_id,
        isv_svn: config.isv_svn,
        date: config.date,
        vendor: 0,
    };
    let common_sigstruct = SigStruct::sign(body, signer_key)?;
    Ok(SignedEnclave { layout: layout.clone(), base_hash, common_sigstruct })
}

/// Measures and signs many independent enclaves across a small thread
/// pool — the bulk-registration path (and the shape of Fig. 7a's
/// build-time signing for a whole fleet of binaries).
///
/// Each enclave's measurement is inherently sequential (one
/// interruptible SHA-256), but distinct enclaves share nothing, so
/// layouts are distributed over `min(#layouts, #cores, 8)` workers.
/// Results keep the input order and are bit-identical to sequential
/// [`sign_enclave`] calls. The signed outputs feed straight into the
/// verifier's vectored grant path
/// (`SingletonIssuer::issue_batch`).
///
/// # Errors
///
/// Propagates the first layout-measurement or signing failure.
pub fn sign_enclaves(
    layouts: &[EnclaveLayout],
    signer_key: &RsaPrivateKey,
    config: &SignerConfig,
) -> Result<Vec<SignedEnclave>, SinclaveError> {
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(layouts.len())
        .clamp(1, 8);
    if workers <= 1 {
        return layouts.iter().map(|l| sign_enclave(l, signer_key, config)).collect();
    }
    let chunk = layouts.len().div_ceil(workers);
    let chunks: Vec<Result<Vec<SignedEnclave>, SinclaveError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = layouts
            .chunks(chunk)
            .map(|chunk_layouts| {
                scope.spawn(move || {
                    chunk_layouts.iter().map(|l| sign_enclave(l, signer_key, config)).collect()
                })
            })
            .collect();
        // lint: allow(panic) — join() fails only if a worker panicked; propagating it is intended
        handles.into_iter().map(|h| h.join().expect("measurement worker")).collect()
    });
    let mut signed = Vec::with_capacity(layouts.len());
    for result in chunks {
        signed.extend(result?);
    }
    Ok(signed)
}

/// Signs a layout the *baseline* (SCONE) way: one straight measurement
/// of the full enclave including the zeroed instance page, no base
/// hash export. Functionally equivalent for the common enclave; the
/// distinction exists to benchmark Fig. 7a's compile-time comparison.
///
/// # Errors
///
/// Propagates layout-measurement and signing failures.
pub fn sign_enclave_baseline(
    layout: &EnclaveLayout,
    signer_key: &RsaPrivateKey,
    config: &SignerConfig,
) -> Result<SigStruct, SinclaveError> {
    let mut m = layout.measure_base()?;
    m.add_page(
        layout.instance_page_offset(),
        &crate::instance_page::InstancePage::common_page(),
        sinclave_sgx::secinfo::SecInfo::read_only(),
        true,
    )?;
    let body = SigStructBody {
        enclave_hash: m.finalize(),
        attributes: config.attributes,
        attributes_mask: config.attributes_mask,
        isv_prod_id: config.isv_prod_id,
        isv_svn: config.isv_svn,
        date: config.date,
        vendor: 0,
    };
    Ok(SigStruct::sign(body, signer_key)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> RsaPrivateKey {
        RsaPrivateKey::generate(&mut StdRng::seed_from_u64(seed), 1024).unwrap()
    }

    #[test]
    fn sinclave_and_baseline_agree_on_common_measurement() {
        let layout = EnclaveLayout::for_program(b"program", 2).unwrap();
        let k = key(1);
        let cfg = SignerConfig::default();
        let signed = sign_enclave(&layout, &k, &cfg).unwrap();
        let baseline = sign_enclave_baseline(&layout, &k, &cfg).unwrap();
        assert_eq!(
            signed.common_sigstruct.body().enclave_hash,
            baseline.body().enclave_hash,
            "interruptible and one-shot signing produce identical MRENCLAVE"
        );
        signed.common_sigstruct.verify().unwrap();
        baseline.verify().unwrap();
    }

    #[test]
    fn signed_enclave_is_self_consistent() {
        let layout = EnclaveLayout::for_program(b"another program", 1).unwrap();
        let signed = sign_enclave(&layout, &key(2), &SignerConfig::default()).unwrap();
        assert_eq!(signed.base_hash.common_measurement().unwrap(), signed.common_measurement());
        assert_eq!(signed.base_hash.enclave_size(), layout.enclave_size);
    }

    #[test]
    fn config_fields_land_in_sigstruct() {
        let layout = EnclaveLayout::for_program(b"p", 1).unwrap();
        let cfg = SignerConfig { isv_prod_id: 42, isv_svn: 7, ..SignerConfig::default() };
        let signed = sign_enclave(&layout, &key(3), &cfg).unwrap();
        assert_eq!(signed.common_sigstruct.body().isv_prod_id, 42);
        assert_eq!(signed.common_sigstruct.body().isv_svn, 7);
    }

    #[test]
    fn parallel_signing_matches_sequential() {
        // The thread pool is a pure throughput optimization: outputs
        // must keep input order and match sequential signing exactly.
        let layouts: Vec<EnclaveLayout> = (0u8..7)
            .map(|i| EnclaveLayout::for_program(&[i; 5000], u64::from(i) % 3 + 1).unwrap())
            .collect();
        let k = key(6);
        let cfg = SignerConfig::default();
        let parallel = sign_enclaves(&layouts, &k, &cfg).unwrap();
        assert_eq!(parallel.len(), layouts.len());
        for (layout, signed) in layouts.iter().zip(&parallel) {
            let sequential = sign_enclave(layout, &k, &cfg).unwrap();
            assert_eq!(signed.base_hash, sequential.base_hash);
            assert_eq!(signed.common_sigstruct.to_bytes(), sequential.common_sigstruct.to_bytes());
        }
    }

    #[test]
    fn different_signers_same_measurement_different_identity() {
        let layout = EnclaveLayout::for_program(b"p", 1).unwrap();
        let a = sign_enclave(&layout, &key(4), &SignerConfig::default()).unwrap();
        let b = sign_enclave(&layout, &key(5), &SignerConfig::default()).unwrap();
        assert_eq!(a.common_measurement(), b.common_measurement());
        assert_ne!(a.common_sigstruct.mrsigner(), b.common_sigstruct.mrsigner());
    }
}
