//! **SinClave** — hardware-assisted singleton enclaves.
//!
//! This crate implements the paper's contribution (§4): a protection
//! mechanism against remote-attestation *reuse* attacks that makes
//! every attested enclave provably **fresh** (attested exactly once)
//! and **bound to one verifier**, without giving up binary software
//! distribution.
//!
//! The moving parts:
//!
//! * [`base_hash`] — the *base enclave hash*: an interrupted SHA-256
//!   measurement state exported just before `EINIT` would finalize it.
//!   The signer publishes this instead of (or along with) a final
//!   `MRENCLAVE`.
//! * [`instance_page`] — the page system software appends during
//!   enclave construction, carrying a one-time *attestation token* and
//!   the verifier's cryptographic identity (Fig. 5).
//! * [`token`] — one-time attestation tokens.
//! * [`layout`] — a platform-independent description of an enclave's
//!   memory image, shared by signer, starter and verifier so all three
//!   compute identical measurements.
//! * [`signer`] — the build-time signing tool (Fig. 7a): measures a
//!   layout, produces the base hash and the *common* SigStruct.
//! * [`verifier`] — the verifier-side algebra: predict a singleton's
//!   `MRENCLAVE` from base hash + instance page, create the
//!   *on-demand* SigStruct (Fig. 7b/7c), enforce one-time tokens.
//! * [`protocol`] — wire messages of the singleton retrieval and
//!   attestation flows.
//! * [`snapshot`] — the versioned, checksummed codec for the
//!   verifier's durable state (verify-cache keys + token table), so a
//!   restarted verifier comes up warm without weakening any trust
//!   decision it cached.
//! * [`journal_record`] — the sealed redemption journal's record
//!   codec (token grants/redemptions + snapshot checkpoints), the
//!   deltas that make exactly-once redemption crash-absolute instead
//!   of snapshot-relative.
//! * [`replication`] — the replication wire protocol: the sealed
//!   journal framed for streaming from a primary CAS to follower
//!   replicas, plus the fencing handshake that makes failover safe.
//!
//! # The mechanism in one paragraph
//!
//! The verifier hands the starter a fresh token and an on-demand
//! SigStruct for `MRENCLAVE' = finalize(base_hash ‖ EADD/EEXTEND of
//! instance page(token, verifier_id))`. The starter builds the enclave
//! *with* that instance page; `EINIT` accepts because the SigStruct
//! matches. The enclave sees a non-zero instance page, so it attests
//! immediately — to the verifier identified *inside its own
//! measurement* — and the verifier accepts each token exactly once.
//! An adversary restarting or pre-configuring the enclave cannot
//! reproduce a fresh measurement: every `MRENCLAVE` is single-use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base_hash;
pub mod config;
pub mod error;
pub mod instance_page;
pub mod journal_record;
pub mod layout;
pub mod protocol;
pub mod replication;
pub mod shard;
pub mod signer;
pub mod snapshot;
pub mod token;
pub mod verifier;

pub use base_hash::{BaseEnclaveHash, PreparedBaseHash};
pub use config::AppConfig;
pub use error::SinclaveError;
pub use instance_page::InstancePage;
pub use token::AttestationToken;
