//! The instance (singleton) page (§4.4, Fig. 5).
//!
//! System software appends this page to the end of the enclave during
//! construction. It carries:
//!
//! * the **attestation token**, unique per singleton, and
//! * the **verifier's cryptographic identity** (hash of the verifier's
//!   channel key), which the runtime uses to ensure it only accepts
//!   configuration from *that* verifier.
//!
//! The *common* enclave carries a zeroed instance page at the same
//! offset, "such that the runtime can decide whether it requires
//! attestation or not" (paper, §4.4).

use crate::error::SinclaveError;
use crate::token::{AttestationToken, TOKEN_LEN};
use sinclave_crypto::sha256::Digest;
use sinclave_sgx::PAGE_SIZE;
use std::fmt;

const MAGIC: &[u8; 8] = b"SINCLAVE";

/// Parsed content of a non-zero instance page.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct InstancePage {
    /// The one-time attestation token.
    pub token: AttestationToken,
    /// Identity (key fingerprint) of the verifier that issued the
    /// token and that the enclave must exclusively attest to.
    pub verifier_identity: Digest,
}

impl fmt::Debug for InstancePage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstancePage")
            .field("token", &self.token)
            .field("verifier", &self.verifier_identity.to_hex()[..12].to_owned())
            .finish()
    }
}

impl InstancePage {
    /// Creates an instance page value.
    #[must_use]
    pub fn new(token: AttestationToken, verifier_identity: Digest) -> Self {
        InstancePage { token, verifier_identity }
    }

    /// Serializes to a full 4 KiB page: magic, token, verifier
    /// identity, zero padding.
    #[must_use]
    pub fn to_page_bytes(&self) -> [u8; PAGE_SIZE] {
        let mut page = [0u8; PAGE_SIZE];
        page[..8].copy_from_slice(MAGIC);
        page[8..8 + TOKEN_LEN].copy_from_slice(self.token.as_bytes());
        page[8 + TOKEN_LEN..8 + TOKEN_LEN + 32].copy_from_slice(self.verifier_identity.as_bytes());
        page
    }

    /// The all-zero page of a *common* enclave.
    #[must_use]
    pub fn common_page() -> [u8; PAGE_SIZE] {
        [0u8; PAGE_SIZE]
    }

    /// Parses a page.
    ///
    /// Returns `Ok(None)` for the zeroed common page, `Ok(Some(_))`
    /// for a well-formed singleton page.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::InstancePageMalformed`] for anything
    /// else (wrong magic, garbage in the padding).
    pub fn parse(page: &[u8; PAGE_SIZE]) -> Result<Option<Self>, SinclaveError> {
        if page.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        if &page[..8] != MAGIC {
            return Err(SinclaveError::InstancePageMalformed);
        }
        let mut token = [0u8; TOKEN_LEN];
        token.copy_from_slice(&page[8..8 + TOKEN_LEN]);
        let mut verifier = [0u8; 32];
        verifier.copy_from_slice(&page[8 + TOKEN_LEN..8 + TOKEN_LEN + 32]);
        if page[8 + TOKEN_LEN + 32..].iter().any(|&b| b != 0) {
            return Err(SinclaveError::InstancePageMalformed);
        }
        let parsed =
            InstancePage { token: AttestationToken(token), verifier_identity: Digest(verifier) };
        if parsed.token.is_zero() {
            // A "singleton" page with a zero token is not a valid
            // issuance; refuse rather than risk ambiguity with the
            // common page.
            return Err(SinclaveError::InstancePageMalformed);
        }
        Ok(Some(parsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn page() -> InstancePage {
        let mut rng = StdRng::seed_from_u64(5);
        InstancePage::new(AttestationToken::generate(&mut rng), Digest([7; 32]))
    }

    #[test]
    fn roundtrip() {
        let p = page();
        let bytes = p.to_page_bytes();
        let parsed = InstancePage::parse(&bytes).unwrap().unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn common_page_parses_to_none() {
        assert_eq!(InstancePage::parse(&InstancePage::common_page()).unwrap(), None);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = page().to_page_bytes();
        bytes[0] = b'X';
        assert_eq!(InstancePage::parse(&bytes), Err(SinclaveError::InstancePageMalformed));
    }

    #[test]
    fn garbage_in_padding_rejected() {
        let mut bytes = page().to_page_bytes();
        bytes[PAGE_SIZE - 1] = 1;
        assert!(InstancePage::parse(&bytes).is_err());
    }

    #[test]
    fn zero_token_rejected() {
        let p = InstancePage::new(AttestationToken([0; 32]), Digest([7; 32]));
        assert!(InstancePage::parse(&p.to_page_bytes()).is_err());
    }

    #[test]
    fn different_tokens_different_pages() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = InstancePage::new(AttestationToken::generate(&mut rng), Digest([7; 32]));
        let b = InstancePage::new(AttestationToken::generate(&mut rng), Digest([7; 32]));
        assert_ne!(a.to_page_bytes(), b.to_page_bytes());
    }
}
