//! Verifier-side SinClave: issuing singleton grants and enforcing
//! one-time attestation (§4.4).
//!
//! The verifier holds the enclave signer's private key (the paper's
//! "signer key never leaves the trusted verifier"). When a starter
//! asks to launch a singleton, the verifier:
//!
//! 1. checks the presented *common* SigStruct is one it signed and
//!    matches the presented base enclave hash,
//! 2. draws a fresh [`AttestationToken`],
//! 3. finalizes the base hash with the instance page (token +
//!    verifier identity) to predict the singleton `MRENCLAVE`,
//! 4. signs an **on-demand SigStruct** for exactly that measurement,
//! 5. later redeems the token at attestation time — exactly once, and
//!    only for the predicted measurement.

use crate::base_hash::{BaseEnclaveHash, PreparedBaseHash, ENCODED_LEN};
use crate::error::SinclaveError;
use crate::instance_page::InstancePage;
use crate::journal_record::JournalRecord;
use crate::snapshot::{IssuerSnapshot, TokenSnapshotEntry, TokenSnapshotState};
use crate::token::AttestationToken;
use parking_lot::Mutex;
use rand::RngCore;
use sinclave_crypto::rsa::RsaPrivateKey;
use sinclave_crypto::sha256::Digest;
use sinclave_sgx::measurement::Measurement;
use sinclave_sgx::sigstruct::{SigStruct, SigStructBody};
use sinclave_sgx::verify_cache::VerifyCache;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The issuing stages an installed stage observer is told about (the
/// CAS feeds these into its per-stage latency histograms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IssueStage {
    /// Request validation: SigStruct signature + signer pin + base
    /// hash check (cache-aware — warm hits report their real, short
    /// latency).
    Verify,
    /// One on-demand RSA SigStruct signature.
    Sign,
}

/// A callback observing per-stage issuing latency. Invoked from grant
/// paths, including batch signing workers, so it must be `Sync`.
type StageObserver = Box<dyn Fn(IssueStage, Duration) + Send + Sync>;

/// What the verifier returns to the starter: everything needed to
/// construct and `EINIT` one singleton enclave.
#[derive(Clone, Debug)]
pub struct SingletonGrant {
    /// The one-time token (goes into the instance page).
    pub token: AttestationToken,
    /// The verifier's identity (goes into the instance page).
    pub verifier_identity: Digest,
    /// On-demand SigStruct for the singleton's unique measurement.
    pub sigstruct: SigStruct,
    /// The measurement the verifier expects to see in the quote.
    pub expected_mrenclave: Measurement,
}

impl SingletonGrant {
    /// The instance page encoded in this grant.
    #[must_use]
    pub fn instance_page(&self) -> InstancePage {
        InstancePage::new(self.token, self.verifier_identity)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokenState {
    Issued { expected: Measurement, common: Measurement },
    Redeemed,
}

/// A cached per-enclave prediction state: the prepared midstate plus
/// the common measurement derived from it once.
#[derive(Clone, Copy, Debug)]
struct PreparedEntry {
    prepared: PreparedBaseHash,
    common: Measurement,
}

/// Upper bound on cached prepared midstates. Grant requests arrive
/// over the network with caller-supplied base hashes, so the cache
/// must not grow without bound; at most this many distinct enclaves
/// stay warm (far more than a CAS instance serves in practice).
const PREPARED_CACHE_CAPACITY: usize = 1024;

/// Number of independent lock shards for the token and midstate maps.
///
/// Both maps are keyed by uniformly distributed values (random tokens,
/// hash-state encodings), so a fixed power-of-two shard count spreads
/// concurrent grants and redemptions across locks: two connections
/// working on different enclaves (or different tokens) never contend.
const ISSUER_SHARDS: usize = 16;

/// Workers used to parallelize batched on-demand signing: one per
/// core, capped at 8 like every other pool in the stack (signing is
/// CPU-bound; more threads only add scheduling noise).
fn signing_workers(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(jobs)
        .clamp(1, 8)
}

/// One lock shard of the prepared-midstate cache.
type PreparedShard = Mutex<HashMap<[u8; ENCODED_LEN], PreparedEntry>>;

/// Redeemed tombstones retained per token shard. A redeemed token only
/// needs to stay visible long enough to make late replays land on a
/// tombstone instead of "unknown token" (both are refused); beyond
/// that, retention is pure memory growth — the pre-lifecycle table
/// kept every tombstone forever.
const TOMBSTONES_PER_SHARD: usize = 64;

/// One lock shard of the token table: live states plus a bounded ring
/// of redeemed tombstones in redemption order (the ring is the
/// eviction order — oldest tombstone leaves the table first).
#[derive(Default)]
struct TokenShard {
    states: HashMap<AttestationToken, TokenState>,
    tombstones: VecDeque<AttestationToken>,
}

impl TokenShard {
    /// Marks `token` redeemed and plants its tombstone in the bounded
    /// ring: once the ring is full, the oldest tombstone leaves the
    /// table entirely (a replay of it then fails as "unknown" instead
    /// of "redeemed" — refused either way). The one place the ring
    /// bound and eviction order live; live redemption, journal replay
    /// and snapshot restore all go through it, so the three paths can
    /// never disagree on the lifecycle. Callers must ensure `token` is
    /// not already in the ring and maintain the outstanding counter.
    fn plant_tombstone(&mut self, token: AttestationToken) {
        self.states.insert(token, TokenState::Redeemed);
        if self.tombstones.len() == TOMBSTONES_PER_SHARD {
            if let Some(expired) = self.tombstones.pop_front() {
                self.states.remove(&expired);
            }
        }
        self.tombstones.push_back(token);
    }
}

/// Shard index for a key (shared FNV-1a fold).
fn shard_of(bytes: &[u8]) -> usize {
    crate::shard::fnv1a_index(bytes, ISSUER_SHARDS)
}

/// The verifier-side singleton machinery.
pub struct SingletonIssuer {
    signer_key: RsaPrivateKey,
    verifier_identity: Digest,
    /// Token states, sharded by token bytes so concurrent redemptions
    /// of different tokens take different locks. A single token always
    /// maps to one shard, which preserves exactly-once redemption.
    /// Redeemed entries decay through each shard's bounded tombstone
    /// ring instead of accumulating forever.
    tokens: Box<[Mutex<TokenShard>]>,
    /// Issued-but-unredeemed token count, maintained at registration
    /// and redemption time so [`SingletonIssuer::outstanding_tokens`]
    /// is a load instead of an every-shard-locking O(n) scan.
    outstanding: AtomicUsize,
    /// Bumped on every durable-state mutation (token registered,
    /// redeemed, replayed, quarantined, snapshot restored). The CAS
    /// compares [`SingletonIssuer::mutation_epoch`] against the epoch
    /// it last persisted to skip snapshot writes when nothing changed.
    mutations: AtomicUsize,
    /// Verified-SigStruct cache: a (signer fingerprint, evidence
    /// digest) pair that already passed the RSA check is a sharded
    /// lookup on its next presentation, not a ~0.4 ms exponentiation.
    /// Only structures that passed the signer-identity pin reach the
    /// verification (and hence admission), so remote callers cannot
    /// occupy slots with foreign-signed structures.
    verified: VerifyCache,
    /// Midstate cache keyed by the base hash's wire encoding: each
    /// registered enclave pays the instance-page `EADD` absorption and
    /// the common-measurement prediction once, then every grant hashes
    /// only the 16 `EEXTEND` runs plus finalization (the QASM-style
    /// keep-the-state argument from the paper's related work, applied
    /// to measurement prefixes). Sharded by encoding so grants for
    /// different enclaves never serialize on one lock.
    prepared: Box<[PreparedShard]>,
    /// Optional set-once latency observer (see
    /// [`SingletonIssuer::set_stage_observer`]). When absent the grant
    /// paths take no timestamps at all — instrumentation costs nothing
    /// unless an operability plane is attached.
    stage_hook: OnceLock<StageObserver>,
}

impl fmt::Debug for SingletonIssuer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SingletonIssuer")
            .field("verifier", &self.verifier_identity.to_hex()[..12].to_owned())
            .field("tokens", &self.tokens.iter().map(|s| s.lock().states.len()).sum::<usize>())
            .finish()
    }
}

impl SingletonIssuer {
    /// Creates an issuer from the enclave signer's key and the
    /// verifier's public identity (e.g. the fingerprint of its channel
    /// key, which enclaves pin).
    #[must_use]
    pub fn new(signer_key: RsaPrivateKey, verifier_identity: Digest) -> Self {
        SingletonIssuer {
            signer_key,
            verifier_identity,
            tokens: (0..ISSUER_SHARDS).map(|_| Mutex::new(TokenShard::default())).collect(),
            outstanding: AtomicUsize::new(0),
            mutations: AtomicUsize::new(0),
            verified: VerifyCache::new(),
            prepared: (0..ISSUER_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            stage_hook: OnceLock::new(),
        }
    }

    /// Installs a per-stage latency observer. Set-once: the first
    /// observer wins and later calls are ignored, so the hook can be
    /// read without locking on the grant hot path.
    pub fn set_stage_observer(
        &self,
        observer: impl Fn(IssueStage, Duration) + Send + Sync + 'static,
    ) {
        let _ = self.stage_hook.set(Box::new(observer));
    }

    /// Runs `validate_request`, reporting its latency as
    /// [`IssueStage::Verify`] when an observer is installed.
    fn timed_validate(
        &self,
        common_sigstruct: &SigStruct,
        base_hash: &BaseEnclaveHash,
    ) -> Result<PreparedEntry, SinclaveError> {
        let Some(hook) = self.stage_hook.get() else {
            return self.validate_request(common_sigstruct, base_hash);
        };
        let started = Instant::now();
        let entry = self.validate_request(common_sigstruct, base_hash)?;
        hook(IssueStage::Verify, started.elapsed());
        Ok(entry)
    }

    /// Runs `grant_for_token`, reporting its latency as
    /// [`IssueStage::Sign`] when an observer is installed. Called from
    /// batch signing workers too — the observer sees every signature.
    fn timed_grant(
        &self,
        common_sigstruct: &SigStruct,
        entry: &PreparedEntry,
        token: AttestationToken,
    ) -> Result<SingletonGrant, SinclaveError> {
        let Some(hook) = self.stage_hook.get() else {
            return self.grant_for_token(common_sigstruct, entry, token);
        };
        let started = Instant::now();
        let grant = self.grant_for_token(common_sigstruct, entry, token)?;
        hook(IssueStage::Sign, started.elapsed());
        Ok(grant)
    }

    /// Returns the prediction state for `base_hash`: the cached entry
    /// when warm, otherwise freshly computed — **without** caching it.
    ///
    /// The hashing happens outside the lock (a cache miss must not
    /// stall concurrent warm grants), and insertion is deferred to
    /// [`SingletonIssuer::cache_entry`] so only base hashes that
    /// passed the sigstruct check ever occupy a slot — a remote
    /// caller spraying bogus base hashes pays the cold cost every
    /// time but cannot evict legitimate warm entries.
    fn prepared_entry(&self, base_hash: &BaseEnclaveHash) -> Result<PreparedEntry, SinclaveError> {
        let key = base_hash.encode();
        if let Some(entry) = self.prepared[shard_of(&key)].lock().get(&key) {
            return Ok(*entry);
        }
        let prepared = base_hash.prepare()?;
        Ok(PreparedEntry { prepared, common: prepared.common_measurement() })
    }

    /// Caches a validated prediction state. Racing inserts of the same
    /// key are harmless: the entry is a deterministic function of it.
    fn cache_entry(&self, key: [u8; ENCODED_LEN], entry: PreparedEntry) {
        let mut cache = self.prepared[shard_of(&key)].lock();
        if cache.len() >= PREPARED_CACHE_CAPACITY / ISSUER_SHARDS && !cache.contains_key(&key) {
            // Evict one arbitrary entry; hitting this at all means
            // many distinct signed enclaves hash into this shard.
            if let Some(evicted) = cache.keys().next().copied() {
                cache.remove(&evicted);
            }
        }
        cache.insert(key, entry);
    }

    /// Number of base hashes with a warm prepared midstate.
    #[must_use]
    pub fn prepared_cache_len(&self) -> usize {
        self.prepared.iter().map(|s| s.lock().len()).sum()
    }

    /// The identity baked into every instance page this issuer grants.
    #[must_use]
    pub fn verifier_identity(&self) -> Digest {
        self.verifier_identity
    }

    /// Issues a singleton grant (steps 1–4 above; the server-side work
    /// of Fig. 7c's "singleton page retrieval").
    ///
    /// # Errors
    ///
    /// * [`SinclaveError::SigStructInvalid`] — common SigStruct broken.
    /// * [`SinclaveError::SignerMismatch`] — signed by someone else.
    /// * [`SinclaveError::BaseHashMismatch`] — base hash does not
    ///   finalize to the common SigStruct's measurement.
    pub fn issue<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        common_sigstruct: &SigStruct,
        base_hash: &BaseEnclaveHash,
    ) -> Result<SingletonGrant, SinclaveError> {
        let entry = self.timed_validate(common_sigstruct, base_hash)?;
        let token = AttestationToken::generate(rng);
        let grant = self.timed_grant(common_sigstruct, &entry, token)?;
        self.register_token(token, grant.expected_mrenclave, entry.common);
        Ok(grant)
    }

    /// Issues `count` singleton grants for one enclave in a single
    /// call — the vectored fast path behind bulk registration.
    ///
    /// The per-request work of [`SingletonIssuer::issue`] (SigStruct
    /// verification, signer check, base-hash validation) happens once,
    /// tokens are drawn from `rng` in order (so the batch is
    /// bit-identical to `count` sequential [`issue`] calls with the
    /// same generator), and the dominant cost — the on-demand RSA
    /// SigStruct signatures — is fanned out over a small thread pool.
    ///
    /// [`issue`]: SingletonIssuer::issue
    ///
    /// # Errors
    ///
    /// Same as [`SingletonIssuer::issue`]; on error no token from the
    /// batch is registered.
    pub fn issue_batch<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        common_sigstruct: &SigStruct,
        base_hash: &BaseEnclaveHash,
        count: usize,
    ) -> Result<Vec<SingletonGrant>, SinclaveError> {
        let entry = self.timed_validate(common_sigstruct, base_hash)?;
        // Draw all tokens up front: the rng is consumed exactly as by
        // sequential issue() calls, keeping batches seed-stable.
        let tokens: Vec<AttestationToken> =
            (0..count).map(|_| AttestationToken::generate(rng)).collect();

        let workers = signing_workers(count);
        let chunk = count.div_ceil(workers.max(1)).max(1);
        let mut grants = Vec::with_capacity(count);
        if workers <= 1 {
            for &token in &tokens {
                grants.push(self.timed_grant(common_sigstruct, &entry, token)?);
            }
        } else {
            let chunks: Vec<Result<Vec<SingletonGrant>, SinclaveError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = tokens
                        .chunks(chunk)
                        .map(|chunk_tokens| {
                            scope.spawn(move || {
                                chunk_tokens
                                    .iter()
                                    .map(|&t| self.timed_grant(common_sigstruct, &entry, t))
                                    .collect()
                            })
                        })
                        .collect();
                    // lint: allow(panic) — join() fails only if a worker panicked; propagating it is intended
                    handles.into_iter().map(|h| h.join().expect("signing worker")).collect()
                });
            for result in chunks {
                grants.extend(result?);
            }
        }
        for grant in &grants {
            self.register_token(grant.token, grant.expected_mrenclave, entry.common);
        }
        Ok(grants)
    }

    /// The once-per-request validation shared by [`issue`] and
    /// [`issue_batch`]: SigStruct signature, signer identity, and the
    /// base hash finalizing to the signed common measurement.
    ///
    /// [`issue`]: SingletonIssuer::issue
    /// [`issue_batch`]: SingletonIssuer::issue_batch
    fn validate_request(
        &self,
        common_sigstruct: &SigStruct,
        base_hash: &BaseEnclaveHash,
    ) -> Result<PreparedEntry, SinclaveError> {
        // Signer identity before signature: adversaries can mint
        // validly signed SigStructs under their own keys, and checking
        // the pinned signer first keeps those out of the verification
        // cache entirely — its admission rule then mirrors the
        // prepared-midstate cache's ("only evidence this issuer
        // vouches for occupies a slot"), so spraying cannot evict
        // legitimate warm entries. Forging an admissible entry would
        // take a valid signature under *this* issuer's signer key.
        if common_sigstruct.signer_key() != self.signer_key.public_key() {
            return Err(SinclaveError::SignerMismatch);
        }
        common_sigstruct
            .verify_cached(&self.verified)
            .map_err(|_| SinclaveError::SigStructInvalid)?;
        // "The verifier ensures it matches the base enclave hash (if
        // instantiated for the common enclave)": only binaries the
        // signer already signed get singleton grants. The prepared
        // midstate makes repeat grants cheap: the instance-page EADD
        // and the common measurement are computed once per enclave,
        // and only validated base hashes are admitted to the cache.
        let entry = self.prepared_entry(base_hash)?;
        if entry.common != common_sigstruct.body().enclave_hash {
            return Err(SinclaveError::BaseHashMismatch);
        }
        self.cache_entry(base_hash.encode(), entry);
        Ok(entry)
    }

    /// The per-grant work: predict the singleton measurement for one
    /// token and sign its on-demand SigStruct. Pure (no issuer state
    /// is touched), so batches run it from several threads at once.
    fn grant_for_token(
        &self,
        common_sigstruct: &SigStruct,
        entry: &PreparedEntry,
        token: AttestationToken,
    ) -> Result<SingletonGrant, SinclaveError> {
        let page = InstancePage::new(token, self.verifier_identity);
        let expected = entry.prepared.singleton_measurement(&page);
        // On-demand SigStruct: identical body except the measurement.
        let body = SigStructBody { enclave_hash: expected, ..common_sigstruct.body().clone() };
        let sigstruct = SigStruct::sign(body, &self.signer_key)?;
        Ok(SingletonGrant {
            token,
            verifier_identity: self.verifier_identity,
            sigstruct,
            expected_mrenclave: expected,
        })
    }

    /// Records an issued token in its shard and bumps the outstanding
    /// counter.
    fn register_token(&self, token: AttestationToken, expected: Measurement, common: Measurement) {
        let mut shard = self.tokens[shard_of(token.as_bytes())].lock();
        match shard.states.insert(token, TokenState::Issued { expected, common }) {
            None => {
                self.outstanding.fetch_add(1, Ordering::Relaxed);
            }
            // 2^-256 random-token collisions, handled for correctness:
            // a re-issued redeemed token leaves the tombstone ring and
            // counts as outstanding again; re-registering a live token
            // keeps the count unchanged.
            Some(TokenState::Redeemed) => {
                shard.tombstones.retain(|t| t != &token);
                self.outstanding.fetch_add(1, Ordering::Relaxed);
            }
            Some(TokenState::Issued { .. }) => {}
        }
        // Epoch bump strictly *after* the insert (still under the
        // shard lock): bumping first would let a concurrent persist
        // read the new epoch, export a snapshot missing this token,
        // and then skip every later persist as "clean".
        self.mutations.fetch_add(1, Ordering::Relaxed);
    }

    /// Redeems a token presented during attestation: succeeds exactly
    /// once, and only when the attested `MRENCLAVE` equals the
    /// measurement predicted at issue time. Returns the *common*
    /// measurement of the underlying binary so policy engines can bind
    /// the singleton to the right application.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::TokenNotRedeemable`] for unknown,
    /// reused, or measurement-mismatched tokens.
    pub fn redeem(
        &self,
        token: &AttestationToken,
        attested_mrenclave: &Measurement,
    ) -> Result<Measurement, SinclaveError> {
        let mut shard = self.tokens[shard_of(token.as_bytes())].lock();
        match shard.states.get(token) {
            Some(TokenState::Issued { expected, common }) if *expected == *attested_mrenclave => {
                let common = *common;
                shard.plant_tombstone(*token);
                self.outstanding.fetch_sub(1, Ordering::Relaxed);
                self.mutations.fetch_add(1, Ordering::Relaxed);
                Ok(common)
            }
            _ => Err(SinclaveError::TokenNotRedeemable),
        }
    }

    /// Number of tokens issued but not yet redeemed (an atomic load;
    /// the counter is maintained under the shard locks at registration
    /// and redemption time).
    #[must_use]
    pub fn outstanding_tokens(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Total entries in the token table (outstanding tokens plus
    /// retained tombstones) — observability for the bounded lifecycle.
    #[must_use]
    pub fn token_table_len(&self) -> usize {
        self.tokens.iter().map(|s| s.lock().states.len()).sum()
    }

    /// Redeemed tombstones currently retained across all shards; never
    /// exceeds the fixed per-shard ring capacity times the shard
    /// count.
    #[must_use]
    pub fn redeemed_tombstones(&self) -> usize {
        self.tokens.iter().map(|s| s.lock().tombstones.len()).sum()
    }

    /// Distinct (signer, evidence) pairs with a warm verification.
    #[must_use]
    pub fn verified_cache_len(&self) -> usize {
        self.verified.len()
    }

    // ---- Durable state (verify-cache persistence) ------------------------

    /// Exports the issuer's durable state: the admitted verify-cache
    /// keys (oldest admission first) and the full token table —
    /// outstanding grants *and* redeemed tombstones, so exactly-once
    /// redemption survives a restore. Token entries are sorted by
    /// token bytes, making the snapshot's encoding reproducible for a
    /// given state.
    ///
    /// The prepared-midstate cache is deliberately *not* exported: its
    /// entries are pure functions of request inputs and are re-derived
    /// on the first grant per enclave for a few microseconds of
    /// hashing — unlike the ~0.4 ms RSA verification this snapshot
    /// spares.
    #[must_use]
    pub fn export_snapshot(&self) -> IssuerSnapshot {
        let mut tokens: Vec<TokenSnapshotEntry> = Vec::new();
        for shard in self.tokens.iter() {
            let shard = shard.lock();
            for (token, state) in &shard.states {
                tokens.push(TokenSnapshotEntry {
                    token: *token.as_bytes(),
                    state: match state {
                        TokenState::Issued { expected, common } => TokenSnapshotState::Issued {
                            expected: *expected.as_bytes(),
                            common: *common.as_bytes(),
                        },
                        TokenState::Redeemed => TokenSnapshotState::Redeemed,
                    },
                });
            }
        }
        tokens.sort_unstable_by_key(|entry| entry.token);
        IssuerSnapshot {
            verifier_identity: *self.verifier_identity.as_bytes(),
            signer_fingerprint: *self.signer_key.public_key().fingerprint().as_bytes(),
            // The issuer does not own the persistence lifecycle; the
            // CAS stamps the restore generation and journal sequence
            // before writing.
            generation: 0,
            journal_sequence: 0,
            fence: 0,
            verified_keys: self.verified.export_keys(),
            tokens,
        }
    }

    /// Rehydrates the issuer from a snapshot: re-admits verify-cache
    /// keys, re-registers outstanding tokens, and re-plants redeemed
    /// tombstones (bounded per shard exactly like live redemptions).
    ///
    /// Restoring can never widen trust beyond what this issuer's
    /// configuration would grant live:
    ///
    /// * the snapshot must name **this** issuer's pinned signer
    ///   fingerprint and verifier identity — state from a differently
    ///   configured CAS is refused wholesale;
    /// * every verify-cache key must carry the pinned signer
    ///   fingerprint, mirroring the live admission rule ("only
    ///   evidence this issuer vouches for occupies a slot");
    /// * validation happens entirely **before** any state is touched,
    ///   so a refused snapshot leaves the issuer exactly as cold as it
    ///   was — there is no partially-admitted outcome.
    ///
    /// Returns how many verify-cache keys, outstanding tokens and
    /// tombstones were restored.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::SnapshotInvalid`] naming the identity
    /// check that refused the snapshot.
    pub fn restore_snapshot(
        &self,
        snapshot: &IssuerSnapshot,
    ) -> Result<SnapshotRestore, SinclaveError> {
        let reject = |context| Err(SinclaveError::SnapshotInvalid { context });
        if snapshot.verifier_identity != *self.verifier_identity.as_bytes() {
            return reject("verifier identity mismatch");
        }
        let pinned = self.signer_key.public_key().fingerprint();
        if snapshot.signer_fingerprint != *pinned.as_bytes() {
            return reject("signer fingerprint mismatch");
        }
        if snapshot.verified_keys.iter().any(|key| key[..32] != *pinned.as_bytes()) {
            return reject("foreign signer in verify-cache key");
        }
        // All checks passed; from here on, restoration cannot fail.
        let mut report = SnapshotRestore::default();
        for key in &snapshot.verified_keys {
            self.verified.admit(*key);
            report.verified_keys += 1;
        }
        for entry in &snapshot.tokens {
            let token = AttestationToken(entry.token);
            match entry.state {
                TokenSnapshotState::Issued { expected, common } => {
                    self.register_token(
                        token,
                        Measurement(Digest(expected)),
                        Measurement(Digest(common)),
                    );
                    report.outstanding_tokens += 1;
                }
                TokenSnapshotState::Redeemed => {
                    self.restore_tombstone(token);
                    report.tombstones += 1;
                }
            }
        }
        Ok(report)
    }

    /// Re-plants one redeemed tombstone from a snapshot, honoring the
    /// same per-shard ring bound as live redemptions: once a shard's
    /// ring is full, the oldest restored tombstone leaves the table (a
    /// replay of it then fails as "unknown" instead of "redeemed" —
    /// refused either way, so exactly-once is preserved regardless).
    fn restore_tombstone(&self, token: AttestationToken) {
        let mut shard = self.tokens[shard_of(token.as_bytes())].lock();
        if shard.states.contains_key(&token) {
            return;
        }
        shard.plant_tombstone(token);
        self.mutations.fetch_add(1, Ordering::Relaxed);
    }

    // ---- Journal deltas (redemption journaling) --------------------------

    /// Durable-state mutation epoch: bumped on every change a snapshot
    /// would capture. The CAS records the epoch it last persisted and
    /// skips snapshot writes while the epoch is unchanged — read-heavy
    /// workloads stop paying volume churn for identical snapshots.
    #[must_use]
    pub fn mutation_epoch(&self) -> u64 {
        self.mutations.load(Ordering::Relaxed) as u64
    }

    /// The journal delta for a just-issued grant, read back from the
    /// token table (the table is the source of truth the journal must
    /// agree with). Returns `None` if the token has already left the
    /// Issued state — the caller then simply does not journal it, and
    /// a crash forgets the token, which fails closed.
    #[must_use]
    pub fn grant_record(&self, grant: &SingletonGrant) -> Option<JournalRecord> {
        let shard = self.tokens[shard_of(grant.token.as_bytes())].lock();
        match shard.states.get(&grant.token) {
            Some(TokenState::Issued { expected, common }) => Some(JournalRecord::TokenGranted {
                token: *grant.token.as_bytes(),
                expected: *expected.as_bytes(),
                common: *common.as_bytes(),
            }),
            _ => None,
        }
    }

    /// The journal delta for a just-redeemed token.
    #[must_use]
    pub fn redemption_record(token: &AttestationToken) -> JournalRecord {
        JournalRecord::TokenRedeemed { token: *token.as_bytes() }
    }

    /// Applies one replayed journal record on top of whatever state
    /// the snapshot restore left behind. Idempotent by construction —
    /// the same journal suffix can be replayed over a snapshot that
    /// already folded part of it in (the crash-between-checkpoint-and-
    /// truncation case) without disturbing anything:
    ///
    /// * a replayed grant registers the token only if the table has
    ///   never seen it (in particular it never resurrects a redeemed
    ///   tombstone back to Issued);
    /// * a replayed redemption moves an Issued token to Redeemed,
    ///   plants a tombstone for an unknown token (the grant record may
    ///   have been folded into an older, since-rejected snapshot), and
    ///   leaves an already-redeemed token alone;
    /// * checkpoints and fence bumps carry no token state.
    ///
    /// Returns whether any state changed.
    pub fn apply_record(&self, record: &JournalRecord) -> bool {
        match record {
            JournalRecord::TokenGranted { token, expected, common } => {
                let token = AttestationToken(*token);
                let mut shard = self.tokens[shard_of(token.as_bytes())].lock();
                if shard.states.contains_key(&token) {
                    return false;
                }
                let expected = Measurement(Digest(*expected));
                let common = Measurement(Digest(*common));
                shard.states.insert(token, TokenState::Issued { expected, common });
                self.outstanding.fetch_add(1, Ordering::Relaxed);
                self.mutations.fetch_add(1, Ordering::Relaxed);
                true
            }
            JournalRecord::TokenRedeemed { token } => {
                self.replay_redemption(AttestationToken(*token))
            }
            JournalRecord::Checkpoint { .. } => false,
            JournalRecord::Fence { .. } => false,
        }
    }

    /// Marks a replayed token redeemed regardless of its current
    /// state (the journal recorded an acked redemption; the attested
    /// measurement was checked live, before the record was written).
    fn replay_redemption(&self, token: AttestationToken) -> bool {
        let mut shard = self.tokens[shard_of(token.as_bytes())].lock();
        match shard.states.get(&token) {
            // Already redeemed — also the only state in which the
            // token could be in the tombstone ring, so planting below
            // never double-enters it.
            Some(TokenState::Redeemed) => return false,
            Some(TokenState::Issued { .. }) => {
                self.outstanding.fetch_sub(1, Ordering::Relaxed);
            }
            None => {}
        }
        shard.plant_tombstone(token);
        self.mutations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Withdraws an issued-but-never-delivered token: the CAS calls
    /// this when a grant's journal append fails and the reply is
    /// denied — the starter never learned the token, so leaving it
    /// Issued would leak a table entry (and an outstanding count)
    /// per failed append, and desynchronize snapshots from the
    /// journal. Returns whether an Issued entry was removed; a
    /// redeemed token is never withdrawn.
    pub fn withdraw_token(&self, token: &AttestationToken) -> bool {
        let mut shard = self.tokens[shard_of(token.as_bytes())].lock();
        if !matches!(shard.states.get(token), Some(TokenState::Issued { .. })) {
            return false;
        }
        shard.states.remove(token);
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.mutations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Fail-closed response to detected tampering or rollback: drops
    /// every outstanding (Issued) token so none of them can ever be
    /// redeemed — a replayed token is then refused as unknown, and
    /// legitimate holders re-request grants. Redeemed tombstones are
    /// kept. Returns how many tokens were quarantined.
    pub fn quarantine_outstanding(&self) -> usize {
        let mut dropped = 0;
        for shard in self.tokens.iter() {
            let mut shard = shard.lock();
            let before = shard.states.len();
            shard.states.retain(|_, state| !matches!(state, TokenState::Issued { .. }));
            dropped += before - shard.states.len();
        }
        if dropped > 0 {
            self.outstanding.fetch_sub(dropped, Ordering::Relaxed);
            self.mutations.fetch_add(1, Ordering::Relaxed);
        }
        dropped
    }
}

/// What [`SingletonIssuer::restore_snapshot`] rehydrated, for stats
/// and test assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotRestore {
    /// Verify-cache keys re-admitted.
    pub verified_keys: usize,
    /// Outstanding (issued, unredeemed) tokens re-registered.
    pub outstanding_tokens: usize,
    /// Redeemed tombstones re-planted (before ring bounding).
    pub tombstones: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::EnclaveLayout;
    use crate::signer::{sign_enclave, SignerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (SingletonIssuer, crate::signer::SignedEnclave, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let signer_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let layout = EnclaveLayout::for_program(b"user application", 2).unwrap();
        let signed = sign_enclave(&layout, &signer_key, &SignerConfig::default()).unwrap();
        let issuer = SingletonIssuer::new(signer_key, Digest([0x44; 32]));
        (issuer, signed, rng)
    }

    #[test]
    fn issue_produces_verifiable_unique_grants() {
        let (issuer, signed, mut rng) = setup(1);
        let g1 = issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let g2 = issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        // Repeat grants for the same enclave share one warm midstate.
        assert_eq!(issuer.prepared_cache_len(), 1);
        assert_ne!(g1.token, g2.token);
        assert_ne!(g1.expected_mrenclave, g2.expected_mrenclave);
        g1.sigstruct.verify().unwrap();
        assert_eq!(g1.sigstruct.body().enclave_hash, g1.expected_mrenclave);
        // Body carries over product identity from the common SigStruct.
        assert_eq!(g1.sigstruct.body().isv_prod_id, signed.common_sigstruct.body().isv_prod_id);
        assert_eq!(issuer.outstanding_tokens(), 2);
    }

    #[test]
    fn issue_batch_bit_identical_to_sequential_issues() {
        let (issuer, signed, _) = setup(10);
        let n = 5;
        let sequential: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(77);
            (0..n)
                .map(|_| {
                    issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap()
                })
                .collect()
        };
        let (batch_issuer, batch_signed, _) = setup(10);
        let mut rng = StdRng::seed_from_u64(77);
        let batch = batch_issuer
            .issue_batch(&mut rng, &batch_signed.common_sigstruct, &batch_signed.base_hash, n)
            .unwrap();
        assert_eq!(batch.len(), n);
        for (s, b) in sequential.iter().zip(&batch) {
            assert_eq!(s.token, b.token);
            assert_eq!(s.expected_mrenclave, b.expected_mrenclave);
            assert_eq!(s.sigstruct.to_bytes(), b.sigstruct.to_bytes());
            assert_eq!(s.verifier_identity, b.verifier_identity);
        }
        // Every batched token is registered and redeemable exactly once.
        assert_eq!(batch_issuer.outstanding_tokens(), n);
        for grant in &batch {
            batch_issuer.redeem(&grant.token, &grant.expected_mrenclave).unwrap();
            assert!(batch_issuer.redeem(&grant.token, &grant.expected_mrenclave).is_err());
        }
    }

    #[test]
    fn issue_batch_rejects_foreign_signer_without_registering_tokens() {
        let (issuer, _signed, mut rng) = setup(11);
        let adversary_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let layout = EnclaveLayout::for_program(b"user application", 2).unwrap();
        let forged = sign_enclave(&layout, &adversary_key, &SignerConfig::default()).unwrap();
        assert_eq!(
            issuer
                .issue_batch(&mut rng, &forged.common_sigstruct, &forged.base_hash, 4)
                .unwrap_err(),
            SinclaveError::SignerMismatch
        );
        assert_eq!(issuer.outstanding_tokens(), 0);
    }

    #[test]
    fn grant_instance_page_reproduces_measurement() {
        let (issuer, signed, mut rng) = setup(2);
        let grant = issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let recomputed = signed.base_hash.singleton_measurement(&grant.instance_page()).unwrap();
        assert_eq!(recomputed, grant.expected_mrenclave);
    }

    #[test]
    fn foreign_signer_rejected() {
        let (issuer, _signed, mut rng) = setup(3);
        // Adversary signs the same layout with their own key (§2.2.2)
        // and asks for a grant.
        let adversary_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let layout = EnclaveLayout::for_program(b"user application", 2).unwrap();
        let forged = sign_enclave(&layout, &adversary_key, &SignerConfig::default()).unwrap();
        assert_eq!(
            issuer.issue(&mut rng, &forged.common_sigstruct, &forged.base_hash).unwrap_err(),
            SinclaveError::SignerMismatch
        );
    }

    #[test]
    fn base_hash_mismatch_rejected() {
        let (issuer, signed, mut rng) = setup(4);
        // Present the right SigStruct but a base hash of a different
        // program — the verifier must not sign for unknown code.
        let other = EnclaveLayout::for_program(b"different code", 2).unwrap();
        let other_base = {
            let m = other.measure_base().unwrap();
            BaseEnclaveHash::new(m.export_state(), other.enclave_size, other.instance_page_offset())
        };
        assert_eq!(
            issuer.issue(&mut rng, &signed.common_sigstruct, &other_base).unwrap_err(),
            SinclaveError::BaseHashMismatch
        );
        // Rejected base hashes must not occupy cache slots: spraying
        // bogus hashes cannot evict legitimate warm entries.
        assert_eq!(issuer.prepared_cache_len(), 0);
        issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        assert_eq!(issuer.prepared_cache_len(), 1);
    }

    #[test]
    fn repeat_issues_share_one_verified_sigstruct() {
        let (issuer, signed, mut rng) = setup(20);
        assert_eq!(issuer.verified_cache_len(), 0);
        for _ in 0..3 {
            issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        }
        // One RSA verification served all three grants.
        assert_eq!(issuer.verified_cache_len(), 1);
    }

    #[test]
    fn warm_verification_cache_issues_bit_identical_grants() {
        // A cold issuer and an issuer whose caches were warmed by
        // earlier grants must produce byte-identical grants for the
        // same rng stream: the caches are pure memoization.
        let (cold, cold_signed, _) = setup(21);
        let cold_grants: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(400);
            (0..3)
                .map(|_| {
                    cold.issue(&mut rng, &cold_signed.common_sigstruct, &cold_signed.base_hash)
                        .unwrap()
                })
                .collect()
        };
        let (warm, warm_signed, mut warmup_rng) = setup(21);
        warm.issue(&mut warmup_rng, &warm_signed.common_sigstruct, &warm_signed.base_hash).unwrap();
        assert_eq!(warm.verified_cache_len(), 1);
        assert_eq!(warm.prepared_cache_len(), 1);
        let mut rng = StdRng::seed_from_u64(400);
        for cold_grant in &cold_grants {
            let warm_grant = warm
                .issue(&mut rng, &warm_signed.common_sigstruct, &warm_signed.base_hash)
                .unwrap();
            assert_eq!(warm_grant.token, cold_grant.token);
            assert_eq!(warm_grant.expected_mrenclave, cold_grant.expected_mrenclave);
            assert_eq!(warm_grant.sigstruct.to_bytes(), cold_grant.sigstruct.to_bytes());
        }
    }

    #[test]
    fn corrupted_sigstruct_not_admitted_to_verified_cache() {
        let (issuer, signed, mut rng) = setup(22);
        issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        assert_eq!(issuer.verified_cache_len(), 1);
        let bytes = signed.common_sigstruct.to_bytes();
        let n = bytes.len();
        for i in 0..16 {
            let mut corrupted = bytes.clone();
            corrupted[n - 1 - i] ^= 1;
            let corrupt = SigStruct::from_bytes(&corrupted).unwrap();
            assert_eq!(
                issuer.issue(&mut rng, &corrupt, &signed.base_hash).unwrap_err(),
                SinclaveError::SigStructInvalid
            );
        }
        // Spraying corrupt variants neither grew the cache nor evicted
        // the warm entry (next issue is still a lookup, not a verify).
        assert_eq!(issuer.verified_cache_len(), 1);
        issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        assert_eq!(issuer.verified_cache_len(), 1);
    }

    #[test]
    fn foreign_signed_sigstructs_never_occupy_cache_slots() {
        let (issuer, _signed, mut rng) = setup(23);
        // Validly signed under the adversary's key: verification would
        // succeed, but the signer pin rejects it first, so it must not
        // be admitted.
        let adversary_key = RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let layout = EnclaveLayout::for_program(b"user application", 2).unwrap();
        let forged = sign_enclave(&layout, &adversary_key, &SignerConfig::default()).unwrap();
        assert_eq!(
            issuer.issue(&mut rng, &forged.common_sigstruct, &forged.base_hash).unwrap_err(),
            SinclaveError::SignerMismatch
        );
        assert_eq!(issuer.verified_cache_len(), 0);
    }

    #[test]
    fn redeemed_tombstones_are_bounded() {
        let (issuer, _signed, _) = setup(24);
        let expected = Measurement(Digest([0xaa; 32]));
        let common = Measurement(Digest([0xbb; 32]));
        let token = |i: u32| {
            let mut bytes = [0u8; 32];
            bytes[..4].copy_from_slice(&i.to_le_bytes());
            AttestationToken(bytes)
        };
        // Far more redemptions than the total ring capacity.
        let total = ISSUER_SHARDS * TOMBSTONES_PER_SHARD;
        let rounds = (total * 3) as u32;
        for i in 0..rounds {
            issuer.register_token(token(i), expected, common);
        }
        assert_eq!(issuer.outstanding_tokens(), rounds as usize);
        for i in 0..rounds {
            issuer.redeem(&token(i), &expected).unwrap();
        }
        assert_eq!(issuer.outstanding_tokens(), 0);
        // Retention is bounded; the table holds only tombstones now.
        assert!(issuer.redeemed_tombstones() <= total, "{}", issuer.redeemed_tombstones());
        assert_eq!(issuer.token_table_len(), issuer.redeemed_tombstones());
        // Exactly-once still holds for every token, retained or
        // expired: a replay is refused either way.
        for i in (rounds - 32)..rounds {
            assert!(issuer.redeem(&token(i), &expected).is_err(), "retained tombstone replayed");
        }
        for i in 0..32 {
            assert!(issuer.redeem(&token(i), &expected).is_err(), "expired tombstone replayed");
        }
    }

    #[test]
    fn token_redeems_exactly_once() {
        let (issuer, signed, mut rng) = setup(5);
        let grant = issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        issuer.redeem(&grant.token, &grant.expected_mrenclave).unwrap();
        // Second redemption — the "reuse" — is refused.
        assert_eq!(
            issuer.redeem(&grant.token, &grant.expected_mrenclave).unwrap_err(),
            SinclaveError::TokenNotRedeemable
        );
        assert_eq!(issuer.outstanding_tokens(), 0);
    }

    #[test]
    fn redeem_requires_matching_measurement() {
        let (issuer, signed, mut rng) = setup(6);
        let grant = issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        // Attested measurement differs (e.g. the common enclave, or a
        // different singleton).
        let wrong = signed.common_measurement();
        assert_eq!(
            issuer.redeem(&grant.token, &wrong).unwrap_err(),
            SinclaveError::TokenNotRedeemable
        );
        // The token survives a failed redemption attempt with wrong
        // measurement? No — the paper wants exactly-once per enclave;
        // a mismatch is not a redemption, the real enclave can still
        // come. Verify that:
        issuer.redeem(&grant.token, &grant.expected_mrenclave).unwrap();
    }

    #[test]
    fn unknown_token_rejected() {
        let (issuer, _signed, mut rng) = setup(7);
        let bogus = AttestationToken::generate(&mut rng);
        assert_eq!(
            issuer.redeem(&bogus, &Measurement(Digest([0; 32]))).unwrap_err(),
            SinclaveError::TokenNotRedeemable
        );
    }

    #[test]
    fn snapshot_roundtrips_warm_state_into_a_fresh_issuer() {
        let (issuer, signed, mut rng) = setup(30);
        let g1 = issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let g2 = issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        issuer.redeem(&g1.token, &g1.expected_mrenclave).unwrap();

        let snapshot = issuer.export_snapshot();
        let bytes = snapshot.to_bytes();
        let decoded = crate::snapshot::IssuerSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snapshot);

        let (restored, _, _) = setup(30); // same keys, cold caches
        assert_eq!(restored.verified_cache_len(), 0);
        let report = restored.restore_snapshot(&decoded).unwrap();
        assert_eq!(report.verified_keys, 1);
        assert_eq!(report.outstanding_tokens, 1);
        assert_eq!(report.tombstones, 1);
        // Warm verification: the repeat grant skips the RSA verify.
        assert_eq!(restored.verified_cache_len(), 1);
        // Exactly-once across the restore, both directions.
        assert_eq!(
            restored.redeem(&g1.token, &g1.expected_mrenclave).unwrap_err(),
            SinclaveError::TokenNotRedeemable
        );
        restored.redeem(&g2.token, &g2.expected_mrenclave).unwrap();
        assert_eq!(restored.outstanding_tokens(), 0);
    }

    #[test]
    fn restored_issuer_grants_bit_identically_to_undisturbed_issuer() {
        let (original, signed, mut rng) = setup(31);
        original.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let snapshot = original.export_snapshot();

        let (restored, restored_signed, _) = setup(31);
        restored.restore_snapshot(&snapshot).unwrap();

        let mut rng_a = StdRng::seed_from_u64(900);
        let mut rng_b = StdRng::seed_from_u64(900);
        for _ in 0..3 {
            let a =
                original.issue(&mut rng_a, &signed.common_sigstruct, &signed.base_hash).unwrap();
            let b = restored
                .issue(&mut rng_b, &restored_signed.common_sigstruct, &restored_signed.base_hash)
                .unwrap();
            assert_eq!(a.token, b.token);
            assert_eq!(a.sigstruct.to_bytes(), b.sigstruct.to_bytes());
            assert_eq!(a.expected_mrenclave, b.expected_mrenclave);
        }
    }

    #[test]
    fn snapshot_for_foreign_identity_is_refused_wholesale() {
        let (issuer, signed, mut rng) = setup(32);
        issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let snapshot = issuer.export_snapshot();

        // Different signer key (seed differs) → fingerprint mismatch.
        let (other_signer, _, _) = setup(33);
        assert!(matches!(
            other_signer.restore_snapshot(&snapshot),
            Err(SinclaveError::SnapshotInvalid { context: "signer fingerprint mismatch" })
        ));
        assert_eq!(other_signer.verified_cache_len(), 0, "nothing admitted");
        assert_eq!(other_signer.outstanding_tokens(), 0);

        // Same signer, different verifier identity → its tokens would
        // predict other measurements; refused.
        let (same_keys, _, _) = setup(32);
        let mut wrong_identity = snapshot.clone();
        wrong_identity.verifier_identity = [0xde; 32];
        assert!(matches!(
            same_keys.restore_snapshot(&wrong_identity),
            Err(SinclaveError::SnapshotInvalid { context: "verifier identity mismatch" })
        ));
        assert_eq!(same_keys.verified_cache_len(), 0);
    }

    #[test]
    fn snapshot_with_foreign_verify_key_cannot_widen_trust() {
        let (issuer, signed, mut rng) = setup(34);
        issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let mut snapshot = issuer.export_snapshot();
        // Claim the matching fingerprint at the snapshot level but
        // smuggle a verify-cache key under another signer: the per-key
        // pin must refuse the whole snapshot (no partial admission).
        let mut foreign = [0u8; sinclave_sgx::verify_cache::KEY_LEN];
        foreign[..32].copy_from_slice(&[0xad; 32]);
        snapshot.verified_keys.push(foreign);
        let (fresh, _, _) = setup(34);
        assert!(matches!(
            fresh.restore_snapshot(&snapshot),
            Err(SinclaveError::SnapshotInvalid { context: "foreign signer in verify-cache key" })
        ));
        assert_eq!(fresh.verified_cache_len(), 0, "partial admission after rejection");
        assert_eq!(fresh.outstanding_tokens(), 0);
        assert_eq!(fresh.token_table_len(), 0);
    }

    #[test]
    fn restored_tombstones_respect_the_ring_bound() {
        let (issuer, _signed, _) = setup(35);
        let expected = Measurement(Digest([0xaa; 32]));
        let common = Measurement(Digest([0xbb; 32]));
        let token = |i: u32| {
            let mut bytes = [0u8; 32];
            bytes[..4].copy_from_slice(&i.to_le_bytes());
            AttestationToken(bytes)
        };
        let total = ISSUER_SHARDS * TOMBSTONES_PER_SHARD;
        let rounds = (total * 2) as u32;
        for i in 0..rounds {
            issuer.register_token(token(i), expected, common);
            issuer.redeem(&token(i), &expected).unwrap();
        }
        let snapshot = issuer.export_snapshot();
        assert!(snapshot.tokens.iter().all(|t| t.state == TokenSnapshotState::Redeemed));

        let (restored, _, _) = setup(35);
        let report = restored.restore_snapshot(&snapshot).unwrap();
        assert_eq!(report.tombstones, issuer.redeemed_tombstones());
        assert!(restored.redeemed_tombstones() <= total);
        assert_eq!(restored.token_table_len(), restored.redeemed_tombstones());
        // Every restored tombstone still refuses replay.
        for i in 0..rounds {
            assert!(restored.redeem(&token(i), &expected).is_err(), "token {i} replayed");
        }
    }

    #[test]
    fn grant_record_reflects_the_token_table() {
        let (issuer, signed, mut rng) = setup(40);
        let grant = issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let Some(JournalRecord::TokenGranted { token, expected, common }) =
            issuer.grant_record(&grant)
        else {
            panic!("issued grant must have a journal delta");
        };
        assert_eq!(token, *grant.token.as_bytes());
        assert_eq!(expected, *grant.expected_mrenclave.as_bytes());
        assert_eq!(common, *signed.common_measurement().as_bytes());
        // Once redeemed, there is no grant delta to journal anymore.
        issuer.redeem(&grant.token, &grant.expected_mrenclave).unwrap();
        assert_eq!(issuer.grant_record(&grant), None);
    }

    #[test]
    fn replayed_records_are_idempotent() {
        let (issuer, _signed, _) = setup(41);
        let granted = JournalRecord::TokenGranted {
            token: [0x51; 32],
            expected: [0x52; 32],
            common: [0x53; 32],
        };
        let redeemed = JournalRecord::TokenRedeemed { token: [0x51; 32] };

        assert!(issuer.apply_record(&granted));
        assert!(!issuer.apply_record(&granted), "double grant replay changed state");
        assert_eq!(issuer.outstanding_tokens(), 1);

        assert!(issuer.apply_record(&redeemed));
        assert!(!issuer.apply_record(&redeemed), "double redemption replay changed state");
        assert_eq!(issuer.outstanding_tokens(), 0);
        assert_eq!(issuer.redeemed_tombstones(), 1);
        // A grant replay must never resurrect a redeemed tombstone.
        assert!(!issuer.apply_record(&granted));
        assert_eq!(issuer.outstanding_tokens(), 0);
        assert!(
            issuer.redeem(&AttestationToken([0x51; 32]), &Measurement(Digest([0x52; 32]))).is_err(),
            "tombstone replayed after grant-record replay"
        );
        // A redemption replay for a token no snapshot knows (its grant
        // record was folded into a rejected snapshot) plants a
        // tombstone rather than being dropped.
        assert!(issuer.apply_record(&JournalRecord::TokenRedeemed { token: [0x61; 32] }));
        assert!(issuer
            .redeem(&AttestationToken([0x61; 32]), &Measurement(Digest([0; 32])))
            .is_err());
        // Checkpoints carry no token state.
        assert!(!issuer.apply_record(&JournalRecord::Checkpoint { generation: 9 }));
    }

    #[test]
    fn quarantine_drops_outstanding_keeps_tombstones() {
        let (issuer, _signed, _) = setup(42);
        let expected = Measurement(Digest([0xaa; 32]));
        let common = Measurement(Digest([0xbb; 32]));
        let token = |i: u32| {
            let mut bytes = [0u8; 32];
            bytes[..4].copy_from_slice(&i.to_le_bytes());
            AttestationToken(bytes)
        };
        for i in 0..10 {
            issuer.register_token(token(i), expected, common);
        }
        for i in 0..4 {
            issuer.redeem(&token(i), &expected).unwrap();
        }
        assert_eq!(issuer.quarantine_outstanding(), 6);
        assert_eq!(issuer.outstanding_tokens(), 0);
        assert_eq!(issuer.redeemed_tombstones(), 4, "tombstones must survive quarantine");
        for i in 0..10 {
            assert!(issuer.redeem(&token(i), &expected).is_err(), "token {i} honored");
        }
        // Idempotent: nothing left to drop.
        assert_eq!(issuer.quarantine_outstanding(), 0);
    }

    #[test]
    fn mutation_epoch_moves_only_with_durable_state() {
        let (issuer, signed, mut rng) = setup(43);
        let epoch0 = issuer.mutation_epoch();
        let grant = issuer.issue(&mut rng, &signed.common_sigstruct, &signed.base_hash).unwrap();
        let epoch1 = issuer.mutation_epoch();
        assert!(epoch1 > epoch0, "a grant is durable state");
        // Reads and failed redemptions do not dirty the state.
        let _ = issuer.export_snapshot();
        let _ = issuer.grant_record(&grant);
        assert!(issuer.redeem(&grant.token, &signed.common_measurement()).is_err());
        assert_eq!(issuer.mutation_epoch(), epoch1);
        issuer.redeem(&grant.token, &grant.expected_mrenclave).unwrap();
        assert!(issuer.mutation_epoch() > epoch1);
    }

    #[test]
    fn corrupted_common_sigstruct_rejected() {
        let (issuer, signed, mut rng) = setup(8);
        let mut bytes = signed.common_sigstruct.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 1; // corrupt the signature
        let corrupt = SigStruct::from_bytes(&bytes).unwrap();
        assert_eq!(
            issuer.issue(&mut rng, &corrupt, &signed.base_hash).unwrap_err(),
            SinclaveError::SigStructInvalid
        );
    }
}
