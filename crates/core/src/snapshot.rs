//! Durable attestation state: the versioned snapshot codec behind
//! verify-cache persistence.
//!
//! PR 3's verified-SigStruct cache makes repeat grants a lookup
//! instead of a ~0.4 ms RSA verification — but only per process.
//! This module defines the snapshot a [`SingletonIssuer`] seals into
//! the CAS's encrypted volume so a *restarted* verifier comes up warm:
//! the admitted `(signer fingerprint, evidence digest)` verify-cache
//! keys plus the full token table (outstanding grants *and* redeemed
//! tombstones, so exactly-once redemption holds across restarts).
//!
//! # Wire format
//!
//! A snapshot is length-prefixed, versioned and checksummed:
//!
//! ```text
//! magic    8 bytes   "SINSNAP\0"
//! version  u16 BE    SNAPSHOT_VERSION
//! body_len u32 BE    exact length of the body that follows
//! body     body_len  wire-codec encoding of IssuerSnapshot
//! digest   32 bytes  SHA-256 over everything above
//! ```
//!
//! The body reuses the deterministic `sinclave_net::wire` codec
//! (fixed-width big-endian integers, length-prefixed containers) that
//! every protocol message already uses — one codec, no drift. The
//! trailing digest is **not** a security boundary (the AEAD-sealed
//! volume provides tamper detection); it exists so that *any*
//! corruption that slips past outer layers — a software bug, a partial
//! plaintext write — is rejected as a unit instead of decoding to a
//! plausible-but-wrong snapshot. Unknown versions are refused the same
//! way. Rejection is always total: a snapshot either decodes fully or
//! contributes nothing, so a restore can never half-admit state.
//!
//! # Crash-safety and trust invariants
//!
//! * A snapshot file is rewritten through the encrypted volume's
//!   crash-safe write path (fresh file id, manifest flip as the commit
//!   point), so a crash mid-snapshot leaves the previous good snapshot
//!   readable.
//! * Restoring never widens trust: the issuer re-admits verify-cache
//!   keys only under its pinned signer identity and refuses snapshots
//!   naming a different signer or verifier identity (see
//!   [`SingletonIssuer::restore_snapshot`]). A stale or foreign
//!   snapshot therefore degrades to a cold cache — never to admitted
//!   entries the current configuration would not have produced.
//! * Any decode, version, checksum or identity failure is an error the
//!   caller maps to a cold start; no code path panics on snapshot
//!   bytes.
//!
//! [`SingletonIssuer`]: crate::verifier::SingletonIssuer
//! [`SingletonIssuer::restore_snapshot`]: crate::verifier::SingletonIssuer::restore_snapshot

use crate::error::SinclaveError;
use crate::token::TOKEN_LEN;
use sinclave_crypto::sha256;
use sinclave_net::wire::{Decode, Encode, Reader};
use sinclave_net::NetError;
use sinclave_sgx::verify_cache::KEY_LEN;

/// Magic bytes every snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SINSNAP\0";

/// The snapshot format version this build writes and accepts.
/// Version 2 added the monotonic restore generation (rollback
/// freshness); version 3 added the fencing generation (split-brain
/// refusal across failover). Older snapshots are refused like any
/// other unknown version and degrade to a counted cold start.
pub const SNAPSHOT_VERSION: u16 = 3;

/// Fixed framing before the body: magic + version + body length.
const HEADER_LEN: usize = 8 + 2 + 4;

/// Trailing SHA-256 over header and body.
const CHECKSUM_LEN: usize = 32;

/// The durable state of one issued-or-redeemed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenSnapshotState {
    /// Issued but not yet redeemed: the predicted singleton
    /// measurement and the common measurement of the underlying
    /// binary.
    Issued {
        /// The `MRENCLAVE` predicted at issue time.
        expected: [u8; 32],
        /// The common measurement of the granted binary.
        common: [u8; 32],
    },
    /// Redeemed — persisted so a token redeemed before the snapshot
    /// cannot be redeemed again after a restore.
    Redeemed,
}

/// One token-table entry in a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenSnapshotEntry {
    /// The token bytes.
    pub token: [u8; TOKEN_LEN],
    /// Its lifecycle state at snapshot time.
    pub state: TokenSnapshotState,
}

/// A point-in-time export of a [`SingletonIssuer`]'s durable state.
///
/// [`SingletonIssuer`]: crate::verifier::SingletonIssuer
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct IssuerSnapshot {
    /// The verifier identity the snapshotting issuer bakes into
    /// instance pages. A restoring issuer refuses snapshots naming a
    /// different identity: its tokens predict other measurements.
    pub verifier_identity: [u8; 32],
    /// Fingerprint of the signer key whose verifications the
    /// verify-cache keys attest. A restoring issuer refuses snapshots
    /// naming a signer other than its pinned one.
    pub signer_fingerprint: [u8; 32],
    /// Monotonic restore generation: bumped on every persisted
    /// snapshot and mirrored into journal checkpoint records. Compared
    /// against a counter kept *outside* the volume, it lets a CAS
    /// detect a whole-disk-image rollback (the volume's own superblock
    /// versioning only detects rollback within one image).
    pub generation: u64,
    /// The journal sequence number this snapshot is current through:
    /// every record with a sequence at or below it is folded into the
    /// snapshot's state. Replay uses it as the continuity baseline —
    /// journal records *above* it must be gap-free, so a host deleting
    /// a whole span of committed records (which storage alone cannot
    /// distinguish from a clean journal) is caught as a sequence gap.
    pub journal_sequence: u64,
    /// The fencing generation the snapshotting server held. A restored
    /// server resumes at this fence, so a deposed primary restarting
    /// from its own (pre-failover) snapshot still carries a fence the
    /// fleet's current one outranks — and its journal boundary keeps
    /// refusing writes once it observes the higher fence.
    pub fence: u64,
    /// Admitted verify-cache keys, oldest admission first (the order
    /// re-admission preserves).
    pub verified_keys: Vec<[u8; KEY_LEN]>,
    /// The token table: outstanding grants and redeemed tombstones,
    /// sorted by token bytes for reproducible snapshot bytes.
    pub tokens: Vec<TokenSnapshotEntry>,
}

const TOKEN_STATE_ISSUED: u8 = 0;
const TOKEN_STATE_REDEEMED: u8 = 1;

impl Encode for TokenSnapshotEntry {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.token.encode_into(out);
        match self.state {
            TokenSnapshotState::Issued { expected, common } => {
                out.push(TOKEN_STATE_ISSUED);
                expected.encode_into(out);
                common.encode_into(out);
            }
            TokenSnapshotState::Redeemed => out.push(TOKEN_STATE_REDEEMED),
        }
    }
}

impl Decode for TokenSnapshotEntry {
    /// Token bytes plus the one-byte state tag (a tombstone entry).
    const MIN_ENCODED_LEN: usize = TOKEN_LEN + 1;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        let token = <[u8; TOKEN_LEN]>::decode(reader)?;
        let state = match u8::decode(reader)? {
            TOKEN_STATE_ISSUED => TokenSnapshotState::Issued {
                expected: <[u8; 32]>::decode(reader)?,
                common: <[u8; 32]>::decode(reader)?,
            },
            TOKEN_STATE_REDEEMED => TokenSnapshotState::Redeemed,
            _ => return Err(NetError::Decode { context: "token state tag" }),
        };
        Ok(TokenSnapshotEntry { token, state })
    }
}

impl Encode for IssuerSnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.verifier_identity.encode_into(out);
        self.signer_fingerprint.encode_into(out);
        self.generation.encode_into(out);
        self.journal_sequence.encode_into(out);
        self.fence.encode_into(out);
        self.verified_keys.encode_into(out);
        self.tokens.encode_into(out);
    }
}

impl Decode for IssuerSnapshot {
    /// Two identities, the generation, journal sequence and fence,
    /// plus two (possibly empty) vectors.
    const MIN_ENCODED_LEN: usize = 32 + 32 + 8 + 8 + 8 + 4 + 4;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(IssuerSnapshot {
            verifier_identity: <[u8; 32]>::decode(reader)?,
            signer_fingerprint: <[u8; 32]>::decode(reader)?,
            generation: u64::decode(reader)?,
            journal_sequence: u64::decode(reader)?,
            fence: u64::decode(reader)?,
            verified_keys: Vec::decode(reader)?,
            tokens: Vec::decode(reader)?,
        })
    }
}

impl IssuerSnapshot {
    /// Serializes the snapshot with framing: magic, version, body
    /// length, body, trailing SHA-256.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.encode();
        let mut out = Vec::with_capacity(HEADER_LEN + body.len() + CHECKSUM_LEN);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_be_bytes());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        let digest = sha256::digest(&out);
        out.extend_from_slice(digest.as_bytes());
        out
    }

    /// Parses a snapshot produced by [`IssuerSnapshot::to_bytes`].
    ///
    /// Rejection is total: bad magic, an unsupported version, a length
    /// mismatch, a checksum mismatch, or any body decode error leaves
    /// the caller with nothing to restore — the defined fallback is a
    /// cold cache.
    ///
    /// # Errors
    ///
    /// Returns [`SinclaveError::SnapshotInvalid`] naming the first
    /// framing or codec check that failed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SinclaveError> {
        let reject = |context| Err(SinclaveError::SnapshotInvalid { context });
        if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
            return reject("truncated header");
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return reject("bad magic");
        }
        let version = u16::from_be_bytes(
            bytes[8..10]
                .try_into()
                .map_err(|_| SinclaveError::SnapshotInvalid { context: "truncated header" })?,
        );
        if version != SNAPSHOT_VERSION {
            return reject("unsupported version");
        }
        let body_len = u32::from_be_bytes(
            bytes[10..14]
                .try_into()
                .map_err(|_| SinclaveError::SnapshotInvalid { context: "truncated header" })?,
        ) as usize;
        if body_len != bytes.len() - HEADER_LEN - CHECKSUM_LEN {
            return reject("length mismatch");
        }
        let (framed, checksum) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        if sha256::digest(framed).as_bytes() != checksum {
            return reject("checksum mismatch");
        }
        let body = &framed[HEADER_LEN..];
        Self::decode_all(body).map_err(|_| SinclaveError::SnapshotInvalid { context: "body" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IssuerSnapshot {
        IssuerSnapshot {
            verifier_identity: [0x11; 32],
            signer_fingerprint: [0x22; 32],
            generation: 3,
            journal_sequence: 11,
            fence: 5,
            verified_keys: vec![[0x33; KEY_LEN], [0x44; KEY_LEN]],
            tokens: vec![
                TokenSnapshotEntry {
                    token: [0x55; TOKEN_LEN],
                    state: TokenSnapshotState::Issued { expected: [0x66; 32], common: [0x77; 32] },
                },
                TokenSnapshotEntry {
                    token: [0x88; TOKEN_LEN],
                    state: TokenSnapshotState::Redeemed,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        assert_eq!(IssuerSnapshot::from_bytes(&snap.to_bytes()).unwrap(), snap);
        let empty = IssuerSnapshot::default();
        assert_eq!(IssuerSnapshot::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    IssuerSnapshot::from_bytes(&corrupt).is_err(),
                    "flip of bit {bit} in byte {i} accepted"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(IssuerSnapshot::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(IssuerSnapshot::from_bytes(&padded).is_err(), "trailing byte accepted");
    }

    #[test]
    fn version_bump_with_valid_checksum_is_rejected() {
        // A future-format snapshot that is internally consistent (the
        // checksum covers the bumped version) must still be refused:
        // this build only understands SNAPSHOT_VERSION.
        let mut bytes = sample().to_bytes();
        let framed_len = bytes.len() - CHECKSUM_LEN;
        bytes[8..10].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_be_bytes());
        let digest = sha256::digest(&bytes[..framed_len]);
        bytes[framed_len..].copy_from_slice(digest.as_bytes());
        assert_eq!(
            IssuerSnapshot::from_bytes(&bytes),
            Err(SinclaveError::SnapshotInvalid { context: "unsupported version" })
        );
    }

    #[test]
    fn bad_token_tag_rejected() {
        let mut snap = sample();
        snap.tokens.clear();
        let mut bytes = snap.encode();
        // Hand-append an entry with an undefined state tag, then frame
        // it with a valid checksum: the body decode must reject it.
        // (Fix the token count prefix: it sits right after the two
        // identities, the generation, the journal sequence, the fence,
        // and the verified-keys vector.)
        let tokens_prefix = 32 + 32 + 8 + 8 + 8 + 4 + snap.verified_keys.len() * KEY_LEN;
        bytes[tokens_prefix..tokens_prefix + 4].copy_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&[0xaa; TOKEN_LEN]);
        bytes.push(7); // undefined tag
        let mut framed = Vec::new();
        framed.extend_from_slice(&SNAPSHOT_MAGIC);
        framed.extend_from_slice(&SNAPSHOT_VERSION.to_be_bytes());
        framed.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        framed.extend_from_slice(&bytes);
        let digest = sha256::digest(&framed);
        framed.extend_from_slice(digest.as_bytes());
        assert_eq!(
            IssuerSnapshot::from_bytes(&framed),
            Err(SinclaveError::SnapshotInvalid { context: "body" })
        );
    }
}
