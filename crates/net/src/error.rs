//! Error type for the in-process network and secure channels.

use std::error::Error;
use std::fmt;

/// Errors raised by network and channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// No listener is bound at the requested address.
    AddressUnreachable {
        /// The address that was dialed.
        address: String,
    },
    /// The peer closed the connection.
    Disconnected,
    /// No message arrived within the receive timeout.
    Timeout,
    /// A secure-channel handshake failed.
    HandshakeFailed {
        /// Non-secret failure description.
        reason: &'static str,
    },
    /// A secure-channel record failed to authenticate.
    RecordCorrupt,
    /// A secure channel's sequence-number space is exhausted; sending
    /// or receiving more records would reuse an AEAD nonce, so the
    /// channel fails closed instead.
    SequenceExhausted,
    /// A wire message could not be decoded.
    Decode {
        /// What was being decoded.
        context: &'static str,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::AddressUnreachable { address } => {
                write!(f, "no listener at address {address:?}")
            }
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::HandshakeFailed { reason } => write!(f, "handshake failed: {reason}"),
            NetError::RecordCorrupt => write!(f, "secure channel record corrupt"),
            NetError::SequenceExhausted => {
                write!(f, "secure channel sequence numbers exhausted")
            }
            NetError::Decode { context } => write!(f, "failed to decode {context}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_address() {
        let e = NetError::AddressUnreachable { address: "cas:4433".into() };
        assert!(e.to_string().contains("cas:4433"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
