//! Attestation-bindable secure channel.
//!
//! Stand-in for the TLS channel SCONE enclaves open to CAS and the
//! wireguard tunnel of SGX-LKL (§2.3). The construction:
//!
//! 1. The server holds a long-lived RSA *channel key*. Its public-key
//!    fingerprint is the **channel binding**: an attested server puts
//!    `H(channel public key)` in its quote's `reportdata`, so a
//!    verifier can check the channel terminates inside the attested
//!    enclave (RA-TLS pattern, §3.3.1).
//! 2. The client encapsulates a fresh secret to that key (RSA-KEM) and
//!    both sides derive directional ChaCha20-Poly1305 record keys.
//! 3. Records carry monotonic sequence numbers as AEAD nonces; any
//!    reorder, replay or tamper is rejected.
//!
//! The channel authenticates the *server key*, not the server's
//! honesty: exactly like TLS-with-RA, a MITM can terminate the channel
//! with their own key — and will then present a key fingerprint that
//! must survive attestation. That gap is the paper's attack surface.

use crate::bus::Connection;
use crate::error::NetError;
use crate::wire::{Decode, Encode, Reader};
use rand::RngCore;
use sinclave_crypto::aead::{self, AeadKey, Nonce};
use sinclave_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use sinclave_crypto::sha256::{self, Digest};
use std::sync::Arc;

/// Client hello: protocol version and a client nonce.
///
/// Public so adversarial tests (and attack reproductions) can speak
/// the handshake wire format directly against a real server end.
pub struct ClientHello {
    /// Protocol version the client offers.
    pub version: u16,
    /// Fresh client nonce mixed into the key derivation.
    pub client_nonce: [u8; 32],
}

impl Encode for ClientHello {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.version.encode_into(out);
        self.client_nonce.encode_into(out);
    }
}

impl Decode for ClientHello {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(ClientHello { version: u16::decode(reader)?, client_nonce: <[u8; 32]>::decode(reader)? })
    }
}

/// Server hello: the channel public key and a server nonce.
///
/// Public for the same reason as [`ClientHello`].
pub struct ServerHello {
    /// The server's serialized channel public key.
    pub server_key: Vec<u8>,
    /// Fresh server nonce mixed into the key derivation.
    pub server_nonce: [u8; 32],
}

impl Encode for ServerHello {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.server_key.encode_into(out);
        self.server_nonce.encode_into(out);
    }
}

impl Decode for ServerHello {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(ServerHello {
            server_key: Vec::<u8>::decode(reader)?,
            server_nonce: <[u8; 32]>::decode(reader)?,
        })
    }
}

const VERSION: u16 = 1;

/// An established secure channel.
///
/// Created by [`SecureChannel::server_accept`] /
/// [`SecureChannel::client_connect`]; afterwards both ends exchange
/// authenticated encrypted records with [`send`] / [`recv`]. A channel
/// can be [`split`] into independently owned sending and receiving
/// halves so one thread can serialize and send replies while another
/// receives and dispatches requests (the CAS pipelined message loop).
///
/// [`send`]: SecureChannel::send
/// [`recv`]: SecureChannel::recv
/// [`split`]: SecureChannel::split
#[derive(Debug)]
pub struct SecureChannel {
    sender: ChannelSender,
    receiver: ChannelReceiver,
    server_key_fingerprint: Digest,
    transcript: Digest,
}

/// The sending half of a [`SecureChannel`]: owns the directional send
/// key and sequence counter.
#[derive(Debug)]
pub struct ChannelSender {
    conn: Arc<Connection>,
    key: AeadKey,
    seq: u64,
}

/// The receiving half of a [`SecureChannel`]: owns the directional
/// receive key and sequence counter.
#[derive(Debug)]
pub struct ChannelReceiver {
    conn: Arc<Connection>,
    key: AeadKey,
    seq: u64,
}

impl ChannelSender {
    /// Sends one encrypted, authenticated record.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::SequenceExhausted`] once the 64-bit record
    /// counter is used up (sending further records would reuse an AEAD
    /// nonce, so the channel fails closed — the last counter value is
    /// sacrificed to keep the check simple); propagates transport
    /// errors.
    pub fn send(&mut self, plaintext: &[u8]) -> Result<(), NetError> {
        if self.seq == u64::MAX {
            return Err(NetError::SequenceExhausted);
        }
        let nonce = Nonce::from_parts(0, self.seq);
        let record = aead::seal(&self.key, nonce, &self.seq.to_be_bytes(), plaintext);
        self.seq += 1;
        self.conn.send(record)
    }
}

impl ChannelReceiver {
    /// Receives one record.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::RecordCorrupt`] on tampered, replayed or
    /// reordered records and [`NetError::SequenceExhausted`] once the
    /// 64-bit record counter is used up (mirroring the send side: a
    /// conforming peer will never seal a record with the final counter
    /// value); propagates transport errors.
    pub fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        if self.seq == u64::MAX {
            return Err(NetError::SequenceExhausted);
        }
        let record = self.conn.recv()?;
        self.open_record(&record)
    }

    /// Receives one record if one is already queued, without waiting —
    /// the reactor's drain primitive after a readiness event.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] when nothing is queued (no
    /// sequence number is consumed); otherwise as
    /// [`ChannelReceiver::recv`].
    pub fn try_recv(&mut self) -> Result<Vec<u8>, NetError> {
        if self.seq == u64::MAX {
            return Err(NetError::SequenceExhausted);
        }
        let record = self.conn.try_recv()?;
        self.open_record(&record)
    }

    fn open_record(&mut self, record: &[u8]) -> Result<Vec<u8>, NetError> {
        let nonce = Nonce::from_parts(0, self.seq);
        let plaintext = aead::open(&self.key, nonce, &self.seq.to_be_bytes(), record)
            .map_err(|_| NetError::RecordCorrupt)?;
        self.seq += 1;
        Ok(plaintext)
    }
}

impl SecureChannel {
    /// Server side of the handshake.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::HandshakeFailed`] on protocol violations and
    /// propagates transport errors.
    pub fn server_accept<R: RngCore + ?Sized>(
        conn: Connection,
        channel_key: &RsaPrivateKey,
        rng: &mut R,
    ) -> Result<SecureChannel, NetError> {
        let conn = Arc::new(conn);
        let mut handshake = ServerHandshake::new();
        loop {
            let raw = conn.recv()?;
            if let Some(channel) = handshake.on_message(&conn, &raw, channel_key, rng)? {
                return Ok(channel);
            }
        }
    }

    /// Client side of the handshake.
    ///
    /// The caller must check [`server_key_fingerprint`] against
    /// attestation evidence before trusting the channel — the
    /// handshake itself accepts *any* server key.
    ///
    /// [`server_key_fingerprint`]: SecureChannel::server_key_fingerprint
    ///
    /// # Errors
    ///
    /// Returns [`NetError::HandshakeFailed`] on protocol violations and
    /// propagates transport errors.
    pub fn client_connect<R: RngCore + ?Sized>(
        conn: Connection,
        rng: &mut R,
    ) -> Result<SecureChannel, NetError> {
        let mut client_nonce = [0u8; 32];
        rng.fill_bytes(&mut client_nonce);
        conn.send(ClientHello { version: VERSION, client_nonce }.encode())?;

        let server_hello = ServerHello::decode_all(&conn.recv()?)?;
        let server_key = RsaPublicKey::from_bytes(&server_hello.server_key)
            .map_err(|_| NetError::HandshakeFailed { reason: "server key malformed" })?;
        let (kem_ct, shared) = server_key
            .kem_encapsulate(rng)
            .map_err(|_| NetError::HandshakeFailed { reason: "kem encapsulation" })?;
        conn.send(kem_ct.encode())?;

        let fingerprint = server_key.fingerprint();
        let (c2s, s2c, transcript) =
            derive_keys(&shared, &client_nonce, &server_hello.server_nonce, &fingerprint);
        Ok(SecureChannel::assemble(Arc::new(conn), c2s, s2c, fingerprint, transcript))
    }

    /// Builds a channel from its derived directional keys.
    fn assemble(
        conn: Arc<Connection>,
        send_key: AeadKey,
        recv_key: AeadKey,
        server_key_fingerprint: Digest,
        transcript: Digest,
    ) -> SecureChannel {
        SecureChannel {
            sender: ChannelSender { conn: conn.clone(), key: send_key, seq: 0 },
            receiver: ChannelReceiver { conn, key: recv_key, seq: 0 },
            server_key_fingerprint,
            transcript,
        }
    }

    /// Splits the channel into its sending and receiving halves.
    ///
    /// Both halves keep the underlying connection alive; dropping one
    /// half does not close it. This is what lets a server pipeline its
    /// message loop: a writer thread seals and sends reply *N* while
    /// the dispatcher already receives and decodes request *N + 1*,
    /// with reply order preserved by the writer consuming an in-order
    /// queue.
    #[must_use]
    pub fn split(self) -> (ChannelSender, ChannelReceiver) {
        (self.sender, self.receiver)
    }

    /// Fingerprint of the server's channel key — the value an attested
    /// enclave embeds in `reportdata` (the channel binding).
    #[must_use]
    pub fn server_key_fingerprint(&self) -> Digest {
        self.server_key_fingerprint
    }

    /// A hash of the handshake transcript (keys and nonces); equal on
    /// both ends of one handshake, distinct across handshakes.
    #[must_use]
    pub fn transcript(&self) -> Digest {
        self.transcript
    }

    /// Overrides the underlying transport's blocking-receive timeout
    /// (`None` restores the default) — how a server bounds the time a
    /// stalled peer can hold [`SecureChannel::recv`] /
    /// [`ChannelReceiver::recv`]. Applies to the shared connection, so
    /// it survives [`SecureChannel::split`].
    pub fn set_recv_timeout(&self, timeout: Option<std::time::Duration>) {
        self.receiver.conn.set_recv_timeout(timeout);
    }

    /// Sends one encrypted, authenticated record.
    ///
    /// # Errors
    ///
    /// Same as [`ChannelSender::send`].
    pub fn send(&mut self, plaintext: &[u8]) -> Result<(), NetError> {
        self.sender.send(plaintext)
    }

    /// Receives one record.
    ///
    /// # Errors
    ///
    /// Same as [`ChannelReceiver::recv`].
    pub fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        self.receiver.recv()
    }
}

/// The server side of the handshake as an explicit state machine, for
/// event-driven servers that cannot block in
/// [`SecureChannel::server_accept`].
///
/// A reactor feeds each raw transport message to
/// [`ServerHandshake::on_message`]; the machine sends its own flight
/// (the `ServerHello`) inline and yields the established
/// [`SecureChannel`] when the client's KEM ciphertext arrives. Message
/// handling is identical to the blocking path — `server_accept` is
/// implemented on top of this machine — so both serving paths accept
/// bit-identical handshakes.
#[derive(Debug)]
pub struct ServerHandshake {
    state: HandshakeState,
}

#[derive(Debug)]
enum HandshakeState {
    AwaitHello,
    AwaitKem { client_nonce: [u8; 32], server_nonce: [u8; 32] },
    Done,
}

impl Default for ServerHandshake {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerHandshake {
    /// A fresh handshake awaiting the client's hello.
    #[must_use]
    pub fn new() -> ServerHandshake {
        ServerHandshake { state: HandshakeState::AwaitHello }
    }

    /// Advances the handshake with one raw transport message.
    ///
    /// Returns `Ok(None)` while the handshake is still in flight and
    /// `Ok(Some(channel))` when it completes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::HandshakeFailed`] on protocol violations —
    /// including feeding a completed machine — and propagates transport
    /// errors from sending the `ServerHello`. Any error is terminal:
    /// the connection should be closed.
    pub fn on_message<R: RngCore + ?Sized>(
        &mut self,
        conn: &Arc<Connection>,
        raw: &[u8],
        channel_key: &RsaPrivateKey,
        rng: &mut R,
    ) -> Result<Option<SecureChannel>, NetError> {
        match self.state {
            HandshakeState::AwaitHello => {
                let hello = ClientHello::decode_all(raw)?;
                if hello.version != VERSION {
                    return Err(NetError::HandshakeFailed { reason: "version mismatch" });
                }
                let mut server_nonce = [0u8; 32];
                rng.fill_bytes(&mut server_nonce);
                let server_hello =
                    ServerHello { server_key: channel_key.public_key().to_bytes(), server_nonce };
                conn.send(server_hello.encode())?;
                self.state =
                    HandshakeState::AwaitKem { client_nonce: hello.client_nonce, server_nonce };
                Ok(None)
            }
            HandshakeState::AwaitKem { client_nonce, server_nonce } => {
                let kem_ct = Vec::<u8>::decode_all(raw)?;
                let shared = channel_key
                    .kem_decapsulate(&kem_ct)
                    .map_err(|_| NetError::HandshakeFailed { reason: "kem decapsulation" })?;
                self.state = HandshakeState::Done;

                let fingerprint = channel_key.public_key().fingerprint();
                let (c2s, s2c, transcript) =
                    derive_keys(&shared, &client_nonce, &server_nonce, &fingerprint);
                Ok(Some(SecureChannel::assemble(conn.clone(), s2c, c2s, fingerprint, transcript)))
            }
            HandshakeState::Done => {
                Err(NetError::HandshakeFailed { reason: "handshake already complete" })
            }
        }
    }
}

/// Derives directional keys and a transcript hash.
fn derive_keys(
    shared: &[u8; 32],
    client_nonce: &[u8; 32],
    server_nonce: &[u8; 32],
    server_key_fp: &Digest,
) -> (AeadKey, AeadKey, Digest) {
    let mut context = Vec::with_capacity(96 + 32);
    context.extend_from_slice(client_nonce);
    context.extend_from_slice(server_nonce);
    context.extend_from_slice(server_key_fp.as_bytes());
    let c2s =
        AeadKey::new(sinclave_crypto::hkdf::derive(shared, &context, b"channel client->server"));
    let s2c =
        AeadKey::new(sinclave_crypto::hkdf::derive(shared, &context, b"channel server->client"));
    let transcript = sha256::digest_parts(&[b"transcript", shared, &context]);
    (c2s, s2c, transcript)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Connection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn channel_key(seed: u64) -> RsaPrivateKey {
        RsaPrivateKey::generate(&mut StdRng::seed_from_u64(seed), 1024).unwrap()
    }

    fn handshake(key: &RsaPrivateKey) -> (SecureChannel, SecureChannel) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SESSION: AtomicU64 = AtomicU64::new(0);
        let session = SESSION.fetch_add(1, Ordering::Relaxed);
        let (client_conn, server_conn) = Connection::pair();
        let key = key.clone();
        let server = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(1000 + session);
            SecureChannel::server_accept(server_conn, &key, &mut rng).unwrap()
        });
        let mut rng = StdRng::seed_from_u64(2000 + session);
        let client = SecureChannel::client_connect(client_conn, &mut rng).unwrap();
        (client, server.join().unwrap())
    }

    #[test]
    fn bidirectional_exchange() {
        let key = channel_key(10);
        let (mut client, mut server) = handshake(&key);
        client.send(b"config please").unwrap();
        assert_eq!(server.recv().unwrap(), b"config please");
        server.send(b"here are your secrets").unwrap();
        assert_eq!(client.recv().unwrap(), b"here are your secrets");
        // Several records in sequence.
        for i in 0..10u8 {
            client.send(&[i]).unwrap();
            assert_eq!(server.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn fingerprint_matches_server_key() {
        let key = channel_key(11);
        let (client, server) = handshake(&key);
        assert_eq!(client.server_key_fingerprint(), key.public_key().fingerprint());
        assert_eq!(server.server_key_fingerprint(), key.public_key().fingerprint());
        assert_eq!(client.transcript(), server.transcript());
    }

    #[test]
    fn sessions_have_distinct_transcripts() {
        let key = channel_key(12);
        let (c1, _s1) = handshake(&key);
        let (c2, _s2) = handshake(&key);
        assert_ne!(c1.transcript(), c2.transcript());
    }

    #[test]
    fn tampered_record_rejected() {
        let key = channel_key(13);
        let (mut client, mut server) = handshake(&key);
        client.send(b"ok").unwrap();
        // Reach under the channel and corrupt the next record.
        client.send(b"will be tampered").unwrap();
        let _ok = server.recv().unwrap();
        // Tamper by replacing the connection message: simulate by
        // sending garbage straight on the transport.
        server.sender.conn.send(vec![0u8; 32]).ok();
        let mut client = client;
        assert_eq!(client.recv(), Err(NetError::RecordCorrupt));
    }

    #[test]
    fn mitm_changes_fingerprint() {
        // A MITM terminating the channel with their own key succeeds at
        // the handshake level — but the fingerprint seen by the client
        // is the MITM's, which attestation binding must catch.
        let honest_key = channel_key(14);
        let mitm_key = channel_key(15);
        let (client, _server) = handshake(&mitm_key);
        assert_ne!(client.server_key_fingerprint(), honest_key.public_key().fingerprint());
    }

    #[test]
    fn replayed_record_rejected() {
        let key = channel_key(16);
        let (mut client, server) = handshake(&key);
        client.send(b"one").unwrap();
        let raw = server.receiver.conn.recv().unwrap();
        // Deliver the same ciphertext again: seq mismatch -> corrupt.
        let nonce = Nonce::from_parts(0, 0);
        let plain = aead::open(&server.receiver.key, nonce, &0u64.to_be_bytes(), &raw).unwrap();
        assert_eq!(plain, b"one");
        // Reflect the same ciphertext to the client: wrong direction
        // key and sequence — must be rejected, not decrypted.
        server.sender.conn.send(raw).ok();
        assert_eq!(client.recv(), Err(NetError::RecordCorrupt));
    }

    #[test]
    fn split_halves_exchange_and_keep_connection_alive() {
        let key = channel_key(17);
        let (client, server) = handshake(&key);
        let (mut client_tx, _client_rx) = client.split();
        let (_server_tx, mut server_rx) = server.split();
        client_tx.send(b"pipelined").unwrap();
        assert_eq!(server_rx.recv().unwrap(), b"pipelined");
        // Dropping the unused halves above must not have closed the
        // shared connection.
        client_tx.send(b"still open").unwrap();
        assert_eq!(server_rx.recv().unwrap(), b"still open");
    }

    #[test]
    fn try_recv_reports_empty_without_consuming_sequence() {
        let key = channel_key(19);
        let (mut client, server) = handshake(&key);
        let (_server_tx, mut server_rx) = server.split();
        assert_eq!(server_rx.try_recv(), Err(NetError::Timeout));
        client.send(b"after the poll").unwrap();
        // The failed poll must not have burned a sequence number.
        assert_eq!(server_rx.try_recv().unwrap(), b"after the poll");
        assert_eq!(server_rx.try_recv(), Err(NetError::Timeout));
    }

    #[test]
    fn stepwise_server_handshake_interoperates_with_blocking_client() {
        // Drive the server side one message at a time, as the reactor
        // does, against an unmodified blocking client.
        let key = channel_key(20);
        let (client_conn, server_conn) = Connection::pair();
        let client = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(3000);
            SecureChannel::client_connect(client_conn, &mut rng).unwrap()
        });

        let server_conn = Arc::new(server_conn);
        let mut rng = StdRng::seed_from_u64(3001);
        let mut hs = ServerHandshake::new();
        let first = server_conn.recv().unwrap();
        assert!(hs.on_message(&server_conn, &first, &key, &mut rng).unwrap().is_none());
        let second = server_conn.recv().unwrap();
        let mut server = hs.on_message(&server_conn, &second, &key, &mut rng).unwrap().unwrap();

        let mut client = client.join().unwrap();
        assert_eq!(client.transcript(), server.transcript());
        client.send(b"via fsm").unwrap();
        assert_eq!(server.recv().unwrap(), b"via fsm");

        // Feeding a completed machine is a protocol violation.
        assert!(matches!(
            hs.on_message(&server_conn, &second, &key, &mut rng),
            Err(NetError::HandshakeFailed { .. })
        ));
    }

    #[test]
    fn stepwise_handshake_rejects_bad_first_flight() {
        let key = channel_key(21);
        let (_client_conn, server_conn) = Connection::pair();
        let server_conn = Arc::new(server_conn);
        let mut rng = StdRng::seed_from_u64(3002);
        let mut hs = ServerHandshake::new();
        let bad = ClientHello { version: VERSION + 1, client_nonce: [0; 32] }.encode();
        assert!(matches!(
            hs.on_message(&server_conn, &bad, &key, &mut rng),
            Err(NetError::HandshakeFailed { reason: "version mismatch" })
        ));
    }

    #[test]
    fn send_fails_closed_at_sequence_exhaustion() {
        let key = channel_key(18);
        let (mut client, mut server) = handshake(&key);
        // Jump both directions to the edge of the counter space, as
        // after ~2^64 - 2 records.
        client.sender.seq = u64::MAX - 1;
        server.receiver.seq = u64::MAX - 1;
        // The penultimate counter value still works end to end.
        client.send(b"last record").unwrap();
        assert_eq!(server.recv().unwrap(), b"last record");
        // The final value is never used: the sender refuses before
        // sealing (no nonce reuse), and nothing reaches the wire.
        assert_eq!(client.send(b"overflow"), Err(NetError::SequenceExhausted));
        assert_eq!(client.sender.seq, u64::MAX, "counter must not wrap");
        assert_eq!(
            server.receiver.conn.try_recv(),
            Err(NetError::Timeout),
            "refused record must not reach the transport"
        );
        // The receive side mirrors the check rather than waiting on a
        // record a conforming peer will never send.
        assert_eq!(server.recv(), Err(NetError::SequenceExhausted));
    }
}
