//! The in-process message network with adversary interposition.
//!
//! Models the paper's system model (§2.3): the machine's network is
//! *under adversary control*. Honest parties bind listeners and dial
//! addresses; the adversary — and only code that holds the [`Network`]
//! handle's adversary API — can redirect dialed addresses to their own
//! listeners and wiretap connection metadata. This is exactly the
//! capability the SGX-LKL attack needs (§3.3.2: "the invocation
//! command is intercepted by the adversary").
//!
//! # Readiness
//!
//! Blocking one thread per connection does not scale to high fan-in,
//! so the bus also offers an epoll-shaped readiness layer: a
//! [`Poller`] hands out token-carrying [`Readiness`] handles, a
//! [`Connection`] or [`Listener`] is [`watch`]ed with one, and every
//! event that makes the source readable — a message send, a new
//! connection queued at a listener, a peer endpoint dropping — signals
//! the handle, which enqueues its token at the poller and wakes it
//! through a condvar. [`Poller::wait`] therefore *parks*: an idle bus
//! with thousands of watched connections costs zero CPU until an event
//! arrives (asserted by a unit test via [`Poller::idle_waits`], which
//! counts condvar blocks — a busy-poll would show thousands of
//! iterations where parking shows one).
//!
//! Signals are edge-shaped hints, deduplicated per handle while
//! queued: after draining a token the consumer must read the source
//! until it reports empty ([`Connection::try_recv`] /
//! [`Listener::try_accept`]). Watching a source signals once
//! immediately so anything queued *before* the watch is never lost.
//!
//! [`watch`]: Connection::watch

use crate::error::NetError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

/// Microseconds on a process-wide monotonic clock, used only to stamp
/// readiness signals. Never returns 0 — that value is reserved for
/// "never signaled".
fn monotonic_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let elapsed = EPOCH.get_or_init(Instant::now).elapsed();
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX).max(1)
}

/// Default receive timeout: generous for tests, short enough to fail
/// fast on deadlocks.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(10);

/// A watch slot: where a source keeps the readiness handle that its
/// events signal. Shared between the two endpoints of a connection
/// (each endpoint signals its *peer's* slot).
type WatchSlot = Mutex<Option<Arc<Readiness>>>;

fn signal_slot(slot: &WatchSlot) {
    if let Some(readiness) = slot.lock().as_ref() {
        readiness.signal();
    }
}

// ---- Poller ---------------------------------------------------------------

struct PollerShared {
    state: StdMutex<PollerState>,
    cv: Condvar,
}

struct PollerState {
    /// Handles whose tokens are queued, in signal order.
    ready: Vec<Arc<Readiness>>,
    /// Condvar blocks taken by [`Poller::wait`] — the no-busy-poll
    /// diagnostic: an idle wait parks once (plus rare spurious wakes)
    /// instead of iterating.
    idle_waits: u64,
}

/// A readiness token source: watched connections and listeners signal
/// their [`Readiness`] handles, the poller's owner drains the queued
/// tokens with [`Poller::wait`].
pub struct Poller {
    shared: Arc<PollerShared>,
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Poller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Poller").finish()
    }
}

impl Poller {
    /// Creates an empty poller.
    #[must_use]
    pub fn new() -> Poller {
        Poller {
            shared: Arc::new(PollerShared {
                state: StdMutex::new(PollerState { ready: Vec::new(), idle_waits: 0 }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Creates a readiness handle that enqueues `token` at this poller
    /// when signaled. Hand it to [`Connection::watch`] /
    /// [`Listener::watch`], or keep it to inject control events.
    #[must_use]
    pub fn readiness(&self, token: u64) -> Arc<Readiness> {
        Arc::new(Readiness {
            shared: self.shared.clone(),
            token,
            queued: AtomicBool::new(false),
            signaled_at_micros: AtomicU64::new(0),
        })
    }

    /// Waits until at least one token is queued (returning the drained
    /// tokens in signal order) or `timeout` passes (returning empty).
    /// Parks on a condvar while idle — never spins.
    ///
    /// A `timeout` too large to land on the monotonic clock (e.g.
    /// [`Duration::MAX`] as "wait forever") is treated as unbounded:
    /// the wait parks in long chunks until a token arrives instead of
    /// panicking on `Instant` overflow.
    #[must_use]
    pub fn wait(&self, timeout: Duration) -> Vec<u64> {
        // `None` = effectively infinite: `Instant + timeout` would
        // overflow, so there is no deadline to miss.
        let deadline = Instant::now().checked_add(timeout);
        let mut state = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if !state.ready.is_empty() {
                return state
                    .ready
                    .drain(..)
                    .map(|readiness| {
                        // Clear the dedup flag before reporting: a
                        // signal arriving after this re-queues the
                        // token (at worst a spurious extra event; the
                        // consumer drains to empty either way).
                        readiness.queued.store(false, Ordering::Release);
                        readiness.token
                    })
                    .collect();
            }
            let now = Instant::now();
            let remaining = match deadline {
                Some(deadline) if now >= deadline => return Vec::new(),
                Some(deadline) => deadline - now,
                // Unbounded: park in hour-long chunks (a signal wakes
                // the condvar immediately either way).
                None => Duration::from_secs(3600),
            };
            state.idle_waits += 1;
            state = self
                .shared
                .cv
                .wait_timeout(state, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// How many times [`Poller::wait`] has parked on the condvar.
    /// Diagnostic for the no-busy-poll contract: an idle wait adds 1
    /// (plus rare spurious wakeups), a spinning implementation would
    /// add thousands per second.
    #[must_use]
    pub fn idle_waits(&self) -> u64 {
        self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).idle_waits
    }
}

/// A token-carrying readiness handle (see [`Poller::readiness`]).
///
/// Signals are deduplicated while queued: however many events fire
/// between two [`Poller::wait`] drains, the token is reported once.
pub struct Readiness {
    shared: Arc<PollerShared>,
    token: u64,
    queued: AtomicBool,
    /// Monotonic microseconds of the signal that queued the token
    /// (0 = never signaled). Lets a consumer price how long readiness
    /// sat unserviced before the drain that delivered the event.
    signaled_at_micros: AtomicU64,
}

impl fmt::Debug for Readiness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Readiness").field("token", &self.token).finish()
    }
}

impl Readiness {
    /// The token this handle enqueues.
    #[must_use]
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Enqueues the token at the owning poller and wakes it. Idempotent
    /// while the token is still queued.
    pub fn signal(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            // Stamp only on the queueing transition: later deduplicated
            // signals belong to the same pending drain, and the age of
            // the *oldest* undrained event is the wait that matters.
            self.signaled_at_micros.store(monotonic_micros(), Ordering::Relaxed);
            let mut state =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            state.ready.push(self.clone());
            drop(state);
            self.shared.cv.notify_one();
        }
    }

    /// Time since the signal that queued this token; `None` before the
    /// first signal. Read after draining an event to measure how long
    /// readiness sat unserviced (e.g. the queue leg of a traced
    /// request). The value is a coarse hint: a fresh signal racing the
    /// drain shortens it.
    #[must_use]
    pub fn since_signal(&self) -> Option<Duration> {
        match self.signaled_at_micros.load(Ordering::Relaxed) {
            0 => None,
            at => Some(Duration::from_micros(monotonic_micros().saturating_sub(at))),
        }
    }
}

// ---- Network --------------------------------------------------------------

struct ListenerEntry {
    tx: Sender<Connection>,
    /// Signaled when a connection is queued at the listener.
    watch: Arc<WatchSlot>,
}

struct NetworkInner {
    listeners: HashMap<String, ListenerEntry>,
    /// Adversary-installed address rewrites, applied at dial time.
    redirects: HashMap<String, String>,
    /// Count of observed dials per (requested) address.
    dial_log: Vec<String>,
}

/// A simulated network: a switchboard of named listeners.
///
/// Cloneable handle; all clones share the same switchboard.
#[derive(Clone)]
pub struct Network {
    inner: Arc<Mutex<NetworkInner>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("listeners", &inner.listeners.len())
            .field("redirects", &inner.redirects.len())
            .finish()
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Network {
            inner: Arc::new(Mutex::new(NetworkInner {
                listeners: HashMap::new(),
                redirects: HashMap::new(),
                dial_log: Vec::new(),
            })),
        }
    }

    /// Binds a listener at `address`, replacing any previous listener
    /// at the same address (the host controls its port namespace).
    #[must_use]
    pub fn listen(&self, address: &str) -> Listener {
        let (tx, rx) = unbounded();
        let watch = Arc::new(Mutex::new(None));
        self.inner
            .lock()
            .listeners
            .insert(address.to_owned(), ListenerEntry { tx, watch: watch.clone() });
        Listener { address: address.to_owned(), rx, watch }
    }

    /// Dials `address`, returning the caller's end of a fresh
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AddressUnreachable`] if (after adversary
    /// redirects) no listener is bound.
    pub fn connect(&self, address: &str) -> Result<Connection, NetError> {
        let mut inner = self.inner.lock();
        inner.dial_log.push(address.to_owned());
        let effective = inner.redirects.get(address).cloned().unwrap_or_else(|| address.to_owned());
        let entry = inner
            .listeners
            .get(&effective)
            .ok_or_else(|| NetError::AddressUnreachable { address: effective.clone() })?;
        let (listener_tx, listener_watch) = (entry.tx.clone(), entry.watch.clone());
        drop(inner);

        let (client_side, server_side) = Connection::wired(effective, format!("dial:{address}"));
        listener_tx
            .send(server_side)
            .map_err(|_| NetError::AddressUnreachable { address: address.to_owned() })?;
        signal_slot(&listener_watch);
        Ok(client_side)
    }

    // ---- Adversary API ---------------------------------------------------
    // In the paper's threat model the host network belongs to the
    // adversary; these methods model that power.

    /// Adversary: transparently redirect future dials of `from` to `to`.
    pub fn adversary_redirect(&self, from: &str, to: &str) {
        self.inner.lock().redirects.insert(from.to_owned(), to.to_owned());
    }

    /// Adversary: remove a redirect.
    pub fn adversary_clear_redirect(&self, from: &str) {
        self.inner.lock().redirects.remove(from);
    }

    /// Adversary: observe which addresses have been dialed.
    #[must_use]
    pub fn adversary_dial_log(&self) -> Vec<String> {
        self.inner.lock().dial_log.clone()
    }
}

/// A bound listener.
///
/// `Listener` is `Sync`: a server worker pool may share one listener
/// (behind an `Arc`) and have every worker call [`Listener::accept`]
/// concurrently — each queued connection is handed to exactly one
/// accepter, like `accept(2)` on a shared listening socket. The CAS
/// worker pool relies on this; the CAS reactor instead [`watch`]es the
/// listener and drains it with [`Listener::try_accept`].
///
/// [`watch`]: Listener::watch
#[derive(Debug)]
pub struct Listener {
    address: String,
    rx: Receiver<Connection>,
    /// Readiness handle signaled when a connection is queued.
    watch: Arc<WatchSlot>,
}

impl Listener {
    /// The bound address.
    #[must_use]
    pub fn address(&self) -> &str {
        &self.address
    }

    /// Accepts the next incoming connection.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] if nothing arrives within
    /// [`RECV_TIMEOUT`].
    pub fn accept(&self) -> Result<Connection, NetError> {
        self.rx.recv_timeout(RECV_TIMEOUT).map_err(|_| NetError::Timeout)
    }

    /// Accepts with a caller-chosen timeout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] when the deadline passes.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Connection, NetError> {
        self.rx.recv_timeout(timeout).map_err(|_| NetError::Timeout)
    }

    /// Accepts a queued connection without waiting.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] when none is queued.
    pub fn try_accept(&self) -> Result<Connection, NetError> {
        self.rx.try_recv().map_err(|_| NetError::Timeout)
    }

    /// Registers `readiness` to be signaled whenever a connection is
    /// queued at this listener, and signals it once immediately so
    /// connections queued before the watch are not missed. Replaces
    /// any previous watch.
    pub fn watch(&self, readiness: &Arc<Readiness>) {
        *self.watch.lock() = Some(readiness.clone());
        readiness.signal();
    }
}

/// One endpoint of a bidirectional, message-oriented connection.
#[derive(Debug)]
pub struct Connection {
    /// `Some` until drop: [`Connection`]'s `Drop` impl must disconnect
    /// the peer's receive side *before* signaling its watch slot (see
    /// there), and field drop glue runs after `Drop::drop`.
    tx: Option<Sender<Vec<u8>>>,
    rx: Receiver<Vec<u8>>,
    peer: String,
    /// Signaled when *this* endpoint becomes readable (peer sent or
    /// hung up).
    watch: Arc<WatchSlot>,
    /// The peer endpoint's watch slot: signaled by our sends and drop.
    peer_watch: Arc<WatchSlot>,
    /// Receive-timeout override in microseconds for [`Connection::recv`]
    /// (`0` = the [`RECV_TIMEOUT`] default). Lets a server bound how
    /// long a stalled peer can hold a blocking reader.
    recv_timeout_micros: AtomicU64,
}

impl Connection {
    /// Builds a cross-wired endpoint pair: each side's sends (and
    /// drop) signal the other side's watch slot.
    fn wired(peer_a: String, peer_b: String) -> (Connection, Connection) {
        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        let a_watch: Arc<WatchSlot> = Arc::new(Mutex::new(None));
        let b_watch: Arc<WatchSlot> = Arc::new(Mutex::new(None));
        (
            Connection {
                tx: Some(a_tx),
                rx: a_rx,
                peer: peer_a,
                watch: a_watch.clone(),
                peer_watch: b_watch.clone(),
                recv_timeout_micros: AtomicU64::new(0),
            },
            Connection {
                tx: Some(b_tx),
                rx: b_rx,
                peer: peer_b,
                watch: b_watch,
                peer_watch: a_watch,
                recv_timeout_micros: AtomicU64::new(0),
            },
        )
    }

    /// Description of the peer (informational).
    #[must_use]
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Registers `readiness` to be signaled whenever this endpoint
    /// becomes readable — a message arrives or the peer endpoint is
    /// dropped — and signals it once immediately so messages queued
    /// before the watch are not missed. Replaces any previous watch.
    pub fn watch(&self, readiness: &Arc<Readiness>) {
        *self.watch.lock() = Some(readiness.clone());
        readiness.signal();
    }

    /// Overrides the timeout [`Connection::recv`] blocks for (`None`
    /// restores the [`RECV_TIMEOUT`] default). This is the pooled
    /// serving path's stall bound: a handshake or read deadline small
    /// enough that a slow-loris peer cannot pin a worker.
    pub fn set_recv_timeout(&self, timeout: Option<Duration>) {
        let micros = timeout.map_or(0, |t| t.as_micros().try_into().unwrap_or(u64::MAX).max(1));
        self.recv_timeout_micros.store(micros, Ordering::Relaxed);
    }

    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if the peer endpoint was
    /// dropped.
    pub fn send(&self, message: Vec<u8>) -> Result<(), NetError> {
        let tx = self.tx.as_ref().ok_or(NetError::Disconnected)?;
        tx.send(message).map_err(|_| NetError::Disconnected)?;
        signal_slot(&self.peer_watch);
        Ok(())
    }

    /// Receives one message if one is already queued, without waiting.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] when the queue is empty and
    /// [`NetError::Disconnected`] if the peer endpoint was dropped.
    pub fn try_recv(&self) -> Result<Vec<u8>, NetError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(m),
            Err(std::sync::mpsc::TryRecvError::Empty) => Err(NetError::Timeout),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Receives one message.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] after the configured receive
    /// timeout ([`RECV_TIMEOUT`] unless overridden via
    /// [`Connection::set_recv_timeout`]) and [`NetError::Disconnected`]
    /// if the peer endpoint was dropped.
    pub fn recv(&self) -> Result<Vec<u8>, NetError> {
        let micros = self.recv_timeout_micros.load(Ordering::Relaxed);
        let timeout = if micros == 0 { RECV_TIMEOUT } else { Duration::from_micros(micros) };
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Creates a connected pair directly (for tests and local links).
    #[must_use]
    pub fn pair() -> (Connection, Connection) {
        Connection::wired("pair:b".to_owned(), "pair:a".to_owned())
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        // A watched peer must learn about the hang-up without polling:
        // its next try_recv reports Disconnected. The sender half MUST
        // go first: signals are consumed edge-style, so if the wakeup
        // fired while our sender was still alive, a fast peer could
        // drain `Empty` (not `Disconnected`), park again, and never be
        // signaled about this connection again.
        drop(self.tx.take());
        signal_slot(&self.peer_watch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_connect_exchange() {
        let net = Network::new();
        let listener = net.listen("svc:1");
        let client = net.connect("svc:1").unwrap();
        let server = listener.accept().unwrap();

        client.send(b"ping".to_vec()).unwrap();
        assert_eq!(server.recv().unwrap(), b"ping");
        server.send(b"pong".to_vec()).unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
    }

    #[test]
    fn unknown_address_unreachable() {
        let net = Network::new();
        assert!(matches!(net.connect("nowhere"), Err(NetError::AddressUnreachable { .. })));
    }

    #[test]
    fn adversary_redirect_hijacks_dials() {
        let net = Network::new();
        let _honest = net.listen("cas:443");
        let evil = net.listen("evil:443");

        net.adversary_redirect("cas:443", "evil:443");
        let client = net.connect("cas:443").unwrap();
        let hijacked = evil.accept().unwrap();
        client.send(b"secret hello".to_vec()).unwrap();
        assert_eq!(hijacked.recv().unwrap(), b"secret hello");

        // Clearing the redirect restores honest routing.
        net.adversary_clear_redirect("cas:443");
        let _client2 = net.connect("cas:443").unwrap();
        assert!(evil.accept_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn dial_log_records_requested_addresses() {
        let net = Network::new();
        let _l = net.listen("a");
        let _ = net.connect("a");
        let _ = net.connect("missing");
        assert_eq!(net.adversary_dial_log(), vec!["a".to_owned(), "missing".to_owned()]);
    }

    #[test]
    fn disconnect_detected() {
        let (a, b) = Connection::pair();
        drop(b);
        assert_eq!(a.send(b"x".to_vec()), Err(NetError::Disconnected));
        assert_eq!(a.recv(), Err(NetError::Disconnected));
    }

    #[test]
    fn shared_listener_hands_each_connection_to_one_accepter() {
        // The property the CAS worker pool depends on: workers sharing
        // one listener each get a distinct connection, none is lost,
        // and none is delivered twice.
        let net = Network::new();
        let listener = std::sync::Arc::new(net.listen("svc:pool"));
        let workers = 4;
        let conns_per_worker = 8;
        let total = workers * conns_per_worker;

        let accepted = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let listener = listener.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for _ in 0..conns_per_worker {
                            let conn = listener.accept().unwrap();
                            got.push(conn.recv().unwrap());
                        }
                        got
                    })
                })
                .collect();
            // Client ends stay alive until every worker has drained
            // its messages.
            let mut clients = Vec::new();
            for i in 0..total {
                let conn = net.connect("svc:pool").unwrap();
                conn.send(vec![i as u8]).unwrap();
                clients.push(conn);
            }
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });

        let mut seen: Vec<u8> = accepted.into_iter().map(|m| m[0]).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..total as u8).collect::<Vec<_>>());
    }

    #[test]
    fn rebinding_replaces_listener() {
        let net = Network::new();
        let old = net.listen("svc");
        let new = net.listen("svc");
        let _c = net.connect("svc").unwrap();
        assert!(new.accept_timeout(Duration::from_millis(100)).is_ok());
        assert!(old.accept_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn messages_preserve_order() {
        let (a, b) = Connection::pair();
        for i in 0..100u8 {
            a.send(vec![i]).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }

    #[test]
    fn recv_timeout_override_bounds_the_stall() {
        let (a, _b) = Connection::pair();
        a.set_recv_timeout(Some(Duration::from_millis(20)));
        let start = Instant::now();
        assert_eq!(a.recv(), Err(NetError::Timeout));
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(20), "returned early: {elapsed:?}");
        assert!(elapsed < RECV_TIMEOUT, "override ignored");
    }

    // ---- Readiness --------------------------------------------------------

    #[test]
    fn since_signal_tracks_the_queueing_transition() {
        let poller = Poller::new();
        let ready = poller.readiness(42);
        assert!(ready.since_signal().is_none(), "unsignaled handle has no age");
        ready.signal();
        let first = ready.since_signal().expect("signaled handle has an age");
        std::thread::sleep(Duration::from_millis(5));
        // A deduplicated re-signal must not refresh the stamp: the
        // oldest undrained event defines the wait.
        ready.signal();
        let second = ready.since_signal().expect("still signaled");
        assert!(second >= first, "age went backwards: {first:?} -> {second:?}");
        assert!(second >= Duration::from_millis(5), "dedup refreshed the stamp");
        assert_eq!(poller.wait(Duration::from_millis(100)), vec![42]);
    }

    #[test]
    fn watched_connection_signals_on_send_and_drop() {
        let poller = Poller::new();
        let (a, b) = Connection::pair();
        a.watch(&poller.readiness(7));
        // The watch itself signals once (catch-up semantics).
        assert_eq!(poller.wait(Duration::from_millis(100)), vec![7]);

        b.send(b"x".to_vec()).unwrap();
        assert_eq!(poller.wait(Duration::from_millis(100)), vec![7]);
        assert_eq!(a.try_recv().unwrap(), b"x");
        assert_eq!(a.try_recv(), Err(NetError::Timeout));

        drop(b);
        assert_eq!(poller.wait(Duration::from_millis(100)), vec![7]);
        assert_eq!(a.try_recv(), Err(NetError::Disconnected));
    }

    #[test]
    fn hang_up_signal_never_precedes_the_disconnect() {
        // Regression: `Connection`'s `Drop` once signaled the peer's
        // watch *before* its sender field was dropped. A reactor waking
        // on that signal could drain `Empty` (the channel still looked
        // connected), consume the edge, and then park forever — the
        // disconnect landed after the only wakeup it would ever get.
        // Now the signal is ordered after the sender drop, so once the
        // token is reported the disconnect must be observable.
        for _ in 0..500 {
            let poller = Poller::new();
            let (a, b) = Connection::pair();
            b.watch(&poller.readiness(1));
            let _ = poller.wait(Duration::from_millis(10)); // catch-up
            let dropper = std::thread::spawn(move || drop(a));
            while poller.wait(Duration::from_millis(100)).is_empty() {}
            assert_eq!(b.try_recv(), Err(NetError::Disconnected), "lost hang-up edge");
            dropper.join().unwrap();
        }
    }

    #[test]
    fn watch_catches_up_on_messages_sent_before_registration() {
        let poller = Poller::new();
        let (a, b) = Connection::pair();
        b.send(b"early".to_vec()).unwrap();
        a.watch(&poller.readiness(3));
        assert_eq!(poller.wait(Duration::from_millis(100)), vec![3]);
        assert_eq!(a.try_recv().unwrap(), b"early");
    }

    #[test]
    fn signals_deduplicate_while_queued() {
        let poller = Poller::new();
        let readiness = poller.readiness(9);
        for _ in 0..100 {
            readiness.signal();
        }
        assert_eq!(poller.wait(Duration::from_millis(100)), vec![9]);
        assert!(poller.wait(Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn unbounded_wait_survives_duration_max() {
        // Regression: `wait` computed `Instant::now() + timeout`, which
        // panics on overflow when a caller passes `Duration::MAX` as
        // "wait forever". The overflow-checked deadline treats such
        // timeouts as unbounded — the wait must park (not panic) and
        // still wake on the next signal.
        let poller = Poller::new();
        let readiness = poller.readiness(7);
        let signaler = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            readiness.signal();
        });
        assert_eq!(poller.wait(Duration::MAX), vec![7]);
        signaler.join().unwrap();
    }

    #[test]
    fn watched_listener_signals_on_connect() {
        let net = Network::new();
        let listener = net.listen("svc:reactor");
        let poller = Poller::new();
        listener.watch(&poller.readiness(1));
        let _ = poller.wait(Duration::from_millis(50)); // catch-up signal
        assert!(matches!(listener.try_accept(), Err(NetError::Timeout)));

        let _client = net.connect("svc:reactor").unwrap();
        assert_eq!(poller.wait(Duration::from_millis(100)), vec![1]);
        assert!(listener.try_accept().is_ok());
    }

    #[test]
    fn idle_bus_parks_instead_of_spinning() {
        // The no-busy-poll contract behind the reactor: a poller
        // watching a 1k-connection idle bus must *park* — one condvar
        // block for the whole wait, not a poll loop over the sources.
        let net = Network::new();
        let listener = net.listen("svc:idle");
        let poller = Poller::new();
        listener.watch(&poller.readiness(0));
        let mut conns = Vec::new();
        for i in 0..1000u64 {
            let client = net.connect("svc:idle").unwrap();
            let server = listener.try_accept().unwrap();
            server.watch(&poller.readiness(1 + i));
            conns.push((client, server));
        }
        // Drain the registration catch-up signals.
        while !poller.wait(Duration::from_millis(10)).is_empty() {}

        let baseline = poller.idle_waits();
        let start = Instant::now();
        assert!(poller.wait(Duration::from_millis(120)).is_empty(), "idle bus produced events");
        assert!(start.elapsed() >= Duration::from_millis(120));
        let blocks = poller.idle_waits() - baseline;
        assert!(
            blocks <= 4,
            "idle 1k-connection wait must park (≤ a few condvar blocks), took {blocks}"
        );

        // And a single event still wakes it promptly.
        conns[500].0.send(b"wake".to_vec()).unwrap();
        assert_eq!(poller.wait(Duration::from_millis(200)), vec![501]);
    }
}
