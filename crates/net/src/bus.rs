//! The in-process message network with adversary interposition.
//!
//! Models the paper's system model (§2.3): the machine's network is
//! *under adversary control*. Honest parties bind listeners and dial
//! addresses; the adversary — and only code that holds the [`Network`]
//! handle's adversary API — can redirect dialed addresses to their own
//! listeners and wiretap connection metadata. This is exactly the
//! capability the SGX-LKL attack needs (§3.3.2: "the invocation
//! command is intercepted by the adversary").

use crate::error::NetError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Default receive timeout: generous for tests, short enough to fail
/// fast on deadlocks.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(10);

struct NetworkInner {
    listeners: HashMap<String, Sender<Connection>>,
    /// Adversary-installed address rewrites, applied at dial time.
    redirects: HashMap<String, String>,
    /// Count of observed dials per (requested) address.
    dial_log: Vec<String>,
}

/// A simulated network: a switchboard of named listeners.
///
/// Cloneable handle; all clones share the same switchboard.
#[derive(Clone)]
pub struct Network {
    inner: Arc<Mutex<NetworkInner>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Network")
            .field("listeners", &inner.listeners.len())
            .field("redirects", &inner.redirects.len())
            .finish()
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Network {
            inner: Arc::new(Mutex::new(NetworkInner {
                listeners: HashMap::new(),
                redirects: HashMap::new(),
                dial_log: Vec::new(),
            })),
        }
    }

    /// Binds a listener at `address`, replacing any previous listener
    /// at the same address (the host controls its port namespace).
    #[must_use]
    pub fn listen(&self, address: &str) -> Listener {
        let (tx, rx) = unbounded();
        self.inner.lock().listeners.insert(address.to_owned(), tx);
        Listener { address: address.to_owned(), rx }
    }

    /// Dials `address`, returning the caller's end of a fresh
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AddressUnreachable`] if (after adversary
    /// redirects) no listener is bound.
    pub fn connect(&self, address: &str) -> Result<Connection, NetError> {
        let mut inner = self.inner.lock();
        inner.dial_log.push(address.to_owned());
        let effective = inner.redirects.get(address).cloned().unwrap_or_else(|| address.to_owned());
        let listener_tx = inner
            .listeners
            .get(&effective)
            .cloned()
            .ok_or_else(|| NetError::AddressUnreachable { address: effective.clone() })?;
        drop(inner);

        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        let server_side = Connection { tx: b_tx, rx: b_rx, peer: format!("dial:{address}") };
        let client_side = Connection { tx: a_tx, rx: a_rx, peer: effective };
        listener_tx
            .send(server_side)
            .map_err(|_| NetError::AddressUnreachable { address: address.to_owned() })?;
        Ok(client_side)
    }

    // ---- Adversary API ---------------------------------------------------
    // In the paper's threat model the host network belongs to the
    // adversary; these methods model that power.

    /// Adversary: transparently redirect future dials of `from` to `to`.
    pub fn adversary_redirect(&self, from: &str, to: &str) {
        self.inner.lock().redirects.insert(from.to_owned(), to.to_owned());
    }

    /// Adversary: remove a redirect.
    pub fn adversary_clear_redirect(&self, from: &str) {
        self.inner.lock().redirects.remove(from);
    }

    /// Adversary: observe which addresses have been dialed.
    #[must_use]
    pub fn adversary_dial_log(&self) -> Vec<String> {
        self.inner.lock().dial_log.clone()
    }
}

/// A bound listener.
///
/// `Listener` is `Sync`: a server worker pool may share one listener
/// (behind an `Arc`) and have every worker call [`Listener::accept`]
/// concurrently — each queued connection is handed to exactly one
/// accepter, like `accept(2)` on a shared listening socket. The CAS
/// worker pool relies on this.
#[derive(Debug)]
pub struct Listener {
    address: String,
    rx: Receiver<Connection>,
}

impl Listener {
    /// The bound address.
    #[must_use]
    pub fn address(&self) -> &str {
        &self.address
    }

    /// Accepts the next incoming connection.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] if nothing arrives within
    /// [`RECV_TIMEOUT`].
    pub fn accept(&self) -> Result<Connection, NetError> {
        self.rx.recv_timeout(RECV_TIMEOUT).map_err(|_| NetError::Timeout)
    }

    /// Accepts with a caller-chosen timeout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] when the deadline passes.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Connection, NetError> {
        self.rx.recv_timeout(timeout).map_err(|_| NetError::Timeout)
    }
}

/// One endpoint of a bidirectional, message-oriented connection.
#[derive(Debug)]
pub struct Connection {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    peer: String,
}

impl Connection {
    /// Description of the peer (informational).
    #[must_use]
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if the peer endpoint was
    /// dropped.
    pub fn send(&self, message: Vec<u8>) -> Result<(), NetError> {
        self.tx.send(message).map_err(|_| NetError::Disconnected)
    }

    /// Receives one message if one is already queued, without waiting.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] when the queue is empty and
    /// [`NetError::Disconnected`] if the peer endpoint was dropped.
    pub fn try_recv(&self) -> Result<Vec<u8>, NetError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(m),
            Err(std::sync::mpsc::TryRecvError::Empty) => Err(NetError::Timeout),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Receives one message.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] after [`RECV_TIMEOUT`] and
    /// [`NetError::Disconnected`] if the peer endpoint was dropped.
    pub fn recv(&self) -> Result<Vec<u8>, NetError> {
        match self.rx.recv_timeout(RECV_TIMEOUT) {
            Ok(m) => Ok(m),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Creates a connected pair directly (for tests and local links).
    #[must_use]
    pub fn pair() -> (Connection, Connection) {
        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        (
            Connection { tx: a_tx, rx: a_rx, peer: "pair:b".to_owned() },
            Connection { tx: b_tx, rx: b_rx, peer: "pair:a".to_owned() },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_connect_exchange() {
        let net = Network::new();
        let listener = net.listen("svc:1");
        let client = net.connect("svc:1").unwrap();
        let server = listener.accept().unwrap();

        client.send(b"ping".to_vec()).unwrap();
        assert_eq!(server.recv().unwrap(), b"ping");
        server.send(b"pong".to_vec()).unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
    }

    #[test]
    fn unknown_address_unreachable() {
        let net = Network::new();
        assert!(matches!(net.connect("nowhere"), Err(NetError::AddressUnreachable { .. })));
    }

    #[test]
    fn adversary_redirect_hijacks_dials() {
        let net = Network::new();
        let _honest = net.listen("cas:443");
        let evil = net.listen("evil:443");

        net.adversary_redirect("cas:443", "evil:443");
        let client = net.connect("cas:443").unwrap();
        let hijacked = evil.accept().unwrap();
        client.send(b"secret hello".to_vec()).unwrap();
        assert_eq!(hijacked.recv().unwrap(), b"secret hello");

        // Clearing the redirect restores honest routing.
        net.adversary_clear_redirect("cas:443");
        let _client2 = net.connect("cas:443").unwrap();
        assert!(evil.accept_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn dial_log_records_requested_addresses() {
        let net = Network::new();
        let _l = net.listen("a");
        let _ = net.connect("a");
        let _ = net.connect("missing");
        assert_eq!(net.adversary_dial_log(), vec!["a".to_owned(), "missing".to_owned()]);
    }

    #[test]
    fn disconnect_detected() {
        let (a, b) = Connection::pair();
        drop(b);
        assert_eq!(a.send(b"x".to_vec()), Err(NetError::Disconnected));
        assert_eq!(a.recv(), Err(NetError::Disconnected));
    }

    #[test]
    fn shared_listener_hands_each_connection_to_one_accepter() {
        // The property the CAS worker pool depends on: workers sharing
        // one listener each get a distinct connection, none is lost,
        // and none is delivered twice.
        let net = Network::new();
        let listener = std::sync::Arc::new(net.listen("svc:pool"));
        let workers = 4;
        let conns_per_worker = 8;
        let total = workers * conns_per_worker;

        let accepted = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let listener = listener.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for _ in 0..conns_per_worker {
                            let conn = listener.accept().unwrap();
                            got.push(conn.recv().unwrap());
                        }
                        got
                    })
                })
                .collect();
            // Client ends stay alive until every worker has drained
            // its messages.
            let mut clients = Vec::new();
            for i in 0..total {
                let conn = net.connect("svc:pool").unwrap();
                conn.send(vec![i as u8]).unwrap();
                clients.push(conn);
            }
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });

        let mut seen: Vec<u8> = accepted.into_iter().map(|m| m[0]).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..total as u8).collect::<Vec<_>>());
    }

    #[test]
    fn rebinding_replaces_listener() {
        let net = Network::new();
        let old = net.listen("svc");
        let new = net.listen("svc");
        let _c = net.connect("svc").unwrap();
        assert!(new.accept_timeout(Duration::from_millis(100)).is_ok());
        assert!(old.accept_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn messages_preserve_order() {
        let (a, b) = Connection::pair();
        for i in 0..100u8 {
            a.send(vec![i]).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(b.recv().unwrap(), vec![i]);
        }
    }
}
