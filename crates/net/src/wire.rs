//! Deterministic binary wire encoding.
//!
//! Protocol messages must encode identically on every machine and
//! every run: parts of them are hashed into attestation evidence
//! (channel bindings, singleton pages), so a general-purpose serializer
//! with unstable layout guarantees is not acceptable. This module
//! provides a small explicit TLV-free codec: values encode as
//! fixed-width big-endian integers and length-prefixed byte strings.

use crate::error::NetError;

/// Serializes a value into a deterministic byte string.
pub trait Encode {
    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Deserializes a value from a [`Reader`].
pub trait Decode: Sized {
    /// Lower bound on the encoded size of any value of this type, in
    /// bytes. Container decoders use it to scale hostile-length guards:
    /// a claimed element count is rejected up front unless even
    /// minimally encoded elements could fit in the remaining input, so
    /// corrupt input can never force an allocation larger than the
    /// input itself.
    const MIN_ENCODED_LEN: usize = 1;

    /// Reads one value.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Decode`] on malformed or truncated input.
    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError>;

    /// Convenience: decodes a value that must consume the whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Decode`] on malformed input or trailing bytes.
    fn decode_all(bytes: &[u8]) -> Result<Self, NetError> {
        let mut reader = Reader::new(bytes);
        let value = Self::decode(&mut reader)?;
        reader.finish()?;
        Ok(value)
    }
}

/// A cursor over a byte buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes }
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Decode`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.bytes.len() < n {
            return Err(NetError::Decode { context: "truncated input" });
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    /// Remaining unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// Asserts the buffer was fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Decode`] if bytes remain.
    pub fn finish(&self) -> Result<(), NetError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(NetError::Decode { context: "trailing bytes" })
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
        }
        impl Decode for $t {
            const MIN_ENCODED_LEN: usize = std::mem::size_of::<$t>();

            fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
                let bytes = reader.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_be_bytes(bytes.try_into().map_err(|_| NetError::Decode { context: "sized take" })?))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64);

impl Encode for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Decode for bool {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        match u8::decode(reader)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(NetError::Decode { context: "bool" }),
        }
    }
}

impl Encode for [u8] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_be_bytes());
        out.extend_from_slice(self);
    }
}

// Note: `Vec<u8>` is covered by the generic `Vec<T: Encode>` impls
// below and produces the same bytes as `[u8]::encode_into` (a length
// prefix followed by the raw bytes).

impl Encode for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_bytes().encode_into(out);
    }
}

impl Decode for String {
    /// A string is at least its 4-byte length prefix.
    const MIN_ENCODED_LEN: usize = 4;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        let bytes = Vec::<u8>::decode(reader)?;
        String::from_utf8(bytes).map_err(|_| NetError::Decode { context: "utf-8 string" })
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    const MIN_ENCODED_LEN: usize = N;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        let bytes = reader.take(N)?;
        bytes.try_into().map_err(|_| NetError::Decode { context: "sized take" })
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        match u8::decode(reader)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(reader)?)),
            _ => Err(NetError::Decode { context: "option tag" }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_be_bytes());
        for item in self {
            item.encode_into(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    /// A vector is at least its 4-byte length prefix.
    const MIN_ENCODED_LEN: usize = 4;

    fn decode(reader: &mut Reader<'_>) -> Result<Self, NetError> {
        let len = u32::decode(reader)? as usize;
        // Guard against absurd allocations from corrupt input, scaled
        // by the element's minimum encoded width: a claimed length of
        // `remaining()` u64s would otherwise pre-allocate ~8x the
        // input before the element decodes could fail.
        if len > reader.remaining() / T::MIN_ENCODED_LEN.max(1) {
            return Err(NetError::Decode { context: "vector length" });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(reader)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrips() {
        let mut out = Vec::new();
        0x1234_5678_9abc_def0u64.encode_into(&mut out);
        0xcafeu16.encode_into(&mut out);
        true.encode_into(&mut out);
        let mut r = Reader::new(&out);
        assert_eq!(u64::decode(&mut r).unwrap(), 0x1234_5678_9abc_def0);
        assert_eq!(u16::decode(&mut r).unwrap(), 0xcafe);
        assert!(bool::decode(&mut r).unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn byte_string_roundtrip() {
        let v = vec![1u8, 2, 3];
        let decoded = Vec::<u8>::decode_all(&v.encode()).unwrap();
        assert_eq!(decoded, v);
        let empty: Vec<u8> = Vec::new();
        assert_eq!(Vec::<u8>::decode_all(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn string_roundtrip_and_utf8_validation() {
        let s = "hello wörld".to_owned();
        assert_eq!(String::decode_all(&s.encode()).unwrap(), s);
        let bad = vec![0u8, 0, 0, 2, 0xff, 0xfe];
        assert_eq!(String::decode_all(&bad), Err(NetError::Decode { context: "utf-8 string" }));
    }

    #[test]
    fn fixed_array_roundtrip() {
        let a = [9u8; 16];
        assert_eq!(<[u8; 16]>::decode_all(&a.encode()).unwrap(), a);
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::decode_all(&some.encode()).unwrap(), some);
        assert_eq!(Option::<u32>::decode_all(&none.encode()).unwrap(), none);
        assert!(Option::<u32>::decode_all(&[2]).is_err());
    }

    #[test]
    fn vec_of_values_roundtrip() {
        let v = vec![1u16, 2, 3];
        assert_eq!(Vec::<u16>::decode_all(&v.encode()).unwrap(), v);
    }

    #[test]
    fn truncation_and_trailing_rejected() {
        let v = vec![1u8, 2, 3];
        let enc = v.encode();
        assert!(Vec::<u8>::decode_all(&enc[..enc.len() - 1]).is_err());
        let mut padded = enc.clone();
        padded.push(0);
        assert!(Vec::<u8>::decode_all(&padded).is_err());
    }

    #[test]
    fn hostile_length_rejected_without_allocation() {
        // Length claims 4 GiB but only 4 bytes follow.
        let bytes = [0xffu8, 0xff, 0xff, 0xff, 1, 2, 3, 4];
        assert!(Vec::<u16>::decode_all(&bytes).is_err());
        // The subtler over-allocation: a claimed element count equal to
        // the remaining *byte* count passed the old guard, yet for wide
        // elements it pre-allocates a multiple of the input size. Eight
        // u64s need 64 bytes; eight bytes of input must be rejected by
        // the width-scaled guard, not by failing element decodes after
        // a 64-byte allocation.
        let mut wide = 8u32.to_be_bytes().to_vec();
        wide.extend_from_slice(&[0; 8]);
        assert!(Vec::<u64>::decode_all(&wide).is_err());
        // Same shape for nested vectors (4-byte minimum per element).
        assert!(Vec::<Vec<u8>>::decode_all(&wide).is_err());
        // The guard must not over-reject: exactly-fitting wide elements
        // still decode.
        let mut exact = 1u32.to_be_bytes().to_vec();
        exact.extend_from_slice(&7u64.to_be_bytes());
        assert_eq!(Vec::<u64>::decode_all(&exact).unwrap(), vec![7]);
        let packed = vec![3u16, 4, 5];
        assert_eq!(Vec::<u16>::decode_all(&packed.encode()).unwrap(), packed);
    }

    #[test]
    fn bool_rejects_invalid() {
        assert!(bool::decode_all(&[7]).is_err());
    }
}
