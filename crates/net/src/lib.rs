//! In-process networking for the SinClave reproduction.
//!
//! The paper's attack (§3) is a *protocol-level* machine-in-the-middle:
//! the adversary controls the host's network stack, intercepts
//! attestation traffic, redirects connections to impersonators, and
//! forwards what suits them. An in-process message network with an
//! explicitly adversary-programmable switch reproduces this
//! deterministically:
//!
//! * [`bus`] — addressable listeners, connections, and adversary
//!   controls (redirect, wiretap).
//! * [`wire`] — deterministic binary encoding for protocol messages
//!   (no serde: every byte on the wire must be reproducible because
//!   some of it is hashed into attestation evidence).
//! * [`stream`] — long-lived stream session utilities (deterministic
//!   bounded reconnect backoff for replication subscribers).
//! * [`channel`] — an attestation-bindable secure channel (RSA-KEM +
//!   ChaCha20-Poly1305), the stand-in for SCONE's TLS and SGX-LKL's
//!   wireguard: the server's key fingerprint is what enclaves embed in
//!   `reportdata`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod channel;
pub mod error;
pub mod stream;
pub mod wire;

pub use bus::{Connection, Listener, Network, Poller, Readiness};
pub use channel::{ChannelReceiver, ChannelSender, SecureChannel, ServerHandshake};
pub use error::NetError;
pub use stream::Backoff;
