//! Long-lived stream session utilities.
//!
//! A replication subscriber keeps one `SecureChannel` open for the
//! life of the stream and must survive losing it: the paper's
//! adversary owns the network (§3), so a partitioned stream is an
//! expected condition, not an error to crash on. The one policy
//! decision that lives here is *how fast to retry*: unbounded
//! hammering turns one partition into a self-inflicted connect storm,
//! while a fixed long delay turns a blip into minutes of staleness.
//! [`Backoff`] is the deterministic middle ground — exponential from a
//! base delay to a cap, with no randomness (every run of a test or a
//! reproduction schedules identically).

use std::time::Duration;

/// Deterministic bounded exponential backoff: `base * 2^attempt`,
/// saturating at `cap`.
///
/// ```
/// use sinclave_net::stream::Backoff;
/// use std::time::Duration;
///
/// let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_millis(80));
/// assert_eq!(backoff.next_delay(), Duration::from_millis(10));
/// assert_eq!(backoff.next_delay(), Duration::from_millis(20));
/// assert_eq!(backoff.next_delay(), Duration::from_millis(40));
/// assert_eq!(backoff.next_delay(), Duration::from_millis(80));
/// assert_eq!(backoff.next_delay(), Duration::from_millis(80)); // capped
/// backoff.reset();
/// assert_eq!(backoff.next_delay(), Duration::from_millis(10));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A backoff starting at `base` and saturating at `cap` (raised to
    /// `base` if smaller).
    #[must_use]
    pub fn new(base: Duration, cap: Duration) -> Self {
        Backoff { base, cap: cap.max(base), attempt: 0 }
    }

    /// The delay to sleep before the next attempt; each call advances
    /// the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let factor = 1u32 << self.attempt.min(20);
        let delay = self.base.saturating_mul(factor).min(self.cap);
        if delay < self.cap {
            self.attempt += 1;
        }
        delay
    }

    /// How many delays have been handed out since the last reset.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Back to the base delay — call on a successful reconnect.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_to_cap_and_stays_there() {
        let mut b = Backoff::new(Duration::from_micros(100), Duration::from_micros(1000));
        let delays: Vec<u128> = (0..6).map(|_| b.next_delay().as_micros()).collect();
        assert_eq!(delays, vec![100, 200, 400, 800, 1000, 1000]);
        b.reset();
        assert_eq!(b.next_delay().as_micros(), 100);
    }

    #[test]
    fn degenerate_cap_below_base_is_clamped() {
        let mut b = Backoff::new(Duration::from_millis(5), Duration::from_millis(1));
        assert_eq!(b.next_delay(), Duration::from_millis(5));
        assert_eq!(b.next_delay(), Duration::from_millis(5));
    }

    #[test]
    fn zero_base_never_overflows() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO);
        for _ in 0..100 {
            assert_eq!(b.next_delay(), Duration::ZERO);
        }
    }
}
