//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! The simulated SGX platform uses HMAC-SHA-256 where real hardware
//! uses AES-CMAC with a fused key: to authenticate `EREPORT` structures
//! toward the quoting enclave and to derive sealing keys (via
//! [`crate::hkdf`]). The substitution preserves the security argument —
//! a PRF keyed with platform-internal material — without an AES
//! implementation.

use crate::sha256::{Digest, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Output length of HMAC-SHA-256 in bytes.
pub const MAC_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA-256 computation.
///
/// # Example
///
/// ```
/// use sinclave_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag.as_bytes().len(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance for `key`.
    ///
    /// Keys longer than the 64-byte block size are hashed first, per
    /// the RFC.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::digest(key);
            block_key[..DIGEST_LEN].copy_from_slice(digest.as_bytes());
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad_key: opad }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalizes the MAC, consuming the instance.
    #[must_use]
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256 of `message` under `key`.
#[must_use]
pub fn hmac(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Verifies `tag` against `message` under `key` in constant time.
#[must_use]
pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expect = hmac(key, message);
    crate::ct::eq(expect.as_bytes(), tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac(&key, &msg);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"split ");
        mac.update(b"message");
        assert_eq!(mac.finalize(), hmac(b"key", b"split message"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac(b"k", b"m");
        assert!(verify(b"k", b"m", tag.as_bytes()));
        let mut bad = *tag.as_bytes();
        bad[0] ^= 1;
        assert!(!verify(b"k", b"m", &bad));
        assert!(!verify(b"k2", b"m", tag.as_bytes()));
        assert!(!verify(b"k", b"m2", tag.as_bytes()));
        assert!(!verify(b"k", b"m", &tag.as_bytes()[..31]));
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        assert_ne!(hmac(b"a", b"m"), hmac(b"b", b"m"));
    }
}
