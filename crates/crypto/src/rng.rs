//! Randomness helpers bridging `rand` and [`crate::bignum::Uint`].

use crate::bignum::Uint;
use rand::RngCore;

/// Returns a uniformly random integer with exactly `bits` significant
/// bits (top bit forced to one).
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn uint_with_bits<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> Uint {
    assert!(bits > 0, "cannot sample a 0-bit integer");
    let byte_len = bits.div_ceil(8);
    let mut bytes = vec![0u8; byte_len];
    rng.fill_bytes(&mut bytes);
    let mut v = Uint::from_be_bytes(&bytes).shr(byte_len * 8 - bits);
    v.set_bit(bits - 1);
    v
}

/// Returns a uniformly random integer in `[0, bound)` by rejection
/// sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn uint_below<R: RngCore + ?Sized>(rng: &mut R, bound: &Uint) -> Uint {
    assert!(!bound.is_zero(), "empty sampling range");
    let bits = bound.bit_len();
    let byte_len = bits.div_ceil(8);
    let excess_bits = byte_len * 8 - bits;
    loop {
        let mut bytes = vec![0u8; byte_len];
        rng.fill_bytes(&mut bytes);
        let v = Uint::from_be_bytes(&bytes).shr(excess_bits);
        if &v < bound {
            return v;
        }
    }
}

/// Fills and returns an array of random bytes.
pub fn bytes<const N: usize, R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
    let mut out = [0u8; N];
    rng.fill_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn with_bits_has_exact_bit_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [1usize, 2, 7, 8, 9, 63, 64, 65, 512, 1536] {
            for _ in 0..5 {
                let v = uint_with_bits(&mut rng, bits);
                assert_eq!(v.bit_len(), bits, "bits = {bits}");
            }
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let bound = Uint::from_u64(1000);
        for _ in 0..200 {
            assert!(uint_below(&mut rng, &bound) < bound);
        }
        // A bound of one always samples zero.
        assert!(uint_below(&mut rng, &Uint::one()).is_zero());
    }

    #[test]
    fn below_large_bound_varies() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = Uint::one().shl(256);
        let a = uint_below(&mut rng, &bound);
        let b = uint_below(&mut rng, &bound);
        assert_ne!(a, b, "256-bit collisions are cosmically unlikely");
    }

    #[test]
    fn bytes_fills() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: [u8; 32] = bytes(&mut rng);
        let b: [u8; 32] = bytes(&mut rng);
        assert_ne!(a, b);
    }
}
