//! Lock-shard selection shared across the stack.
//!
//! The verifier's token/midstate maps, the sgx verification cache and
//! the CAS policy cache are all sharded by uniformly distributed keys
//! (random tokens, hash encodings, config ids). They must agree on one
//! fold so a future change to the hash cannot silently skew one
//! consumer's shard distribution and not another's; this crate is the
//! lowest layer every consumer already depends on.

/// FNV-1a over `bytes`, folded to an index below `shards`.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn fnv1a_index(bytes: &[u8], shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_stay_below_shard_count_and_spread() {
        let shards = 16;
        let mut hit = vec![false; shards];
        for i in 0u32..512 {
            let idx = fnv1a_index(&i.to_le_bytes(), shards);
            assert!(idx < shards);
            hit[idx] = true;
        }
        // Uniform keys reach every shard.
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn deterministic() {
        assert_eq!(fnv1a_index(b"config-id", 8), fnv1a_index(b"config-id", 8));
    }
}
