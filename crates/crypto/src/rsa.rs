//! RSA PKCS#1 v1.5 signatures over SHA-256.
//!
//! SGX SigStructs carry an RSA-3072 signature by the enclave signer
//! (§2.2.2); SinClave's verifier creates *on-demand* SigStructs, signing
//! one per singleton enclave (§4.4, Fig. 7b/7c). This module provides
//! key generation, signing (with the CRT optimization) and
//! verification, all over [`crate::bignum`].

use crate::bignum::{Montgomery, Uint};
use crate::ct;
use crate::error::CryptoError;
use crate::prime;
use crate::sha256;
use rand::RngCore;
use std::fmt;
use std::sync::Arc;

/// The public exponent used by all keys in this crate: F4 = 65537.
pub const PUBLIC_EXPONENT: u64 = 65_537;

/// DER-encoded `DigestInfo` prefix for SHA-256 (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO: &[u8] = &[
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// An RSA public key.
#[derive(Clone)]
pub struct RsaPublicKey {
    n: Uint,
    e: Uint,
    /// Cached Montgomery context for `n` (verification hot path).
    mont: Arc<Montgomery>,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RsaPublicKey")
            .field("bits", &self.n.bit_len())
            .field("fingerprint", &self.fingerprint().to_hex())
            .finish()
    }
}

impl RsaPublicKey {
    /// Constructs a public key from modulus and exponent.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] for an even/tiny modulus or
    /// an exponent smaller than 3.
    pub fn new(n: Uint, e: Uint) -> Result<Self, CryptoError> {
        if n.bit_len() < 512 {
            return Err(CryptoError::InvalidKey { context: "modulus below 512 bits" });
        }
        if e < Uint::from_u64(3) {
            return Err(CryptoError::InvalidKey { context: "public exponent below 3" });
        }
        let mont = Montgomery::new(&n)?;
        Ok(RsaPublicKey { n, e, mont: Arc::new(mont) })
    }

    /// The modulus.
    #[must_use]
    pub fn modulus(&self) -> &Uint {
        &self.n
    }

    /// The public exponent.
    #[must_use]
    pub fn exponent(&self) -> &Uint {
        &self.e
    }

    /// Modulus length in whole bytes.
    #[must_use]
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// A stable identity for the key: SHA-256 over the serialized key.
    ///
    /// This plays the role of `MRSIGNER` in SGX, which is defined as the
    /// SHA-256 hash of the signer's public key modulus.
    #[must_use]
    pub fn fingerprint(&self) -> sha256::Digest {
        sha256::digest(&self.to_bytes())
    }

    /// Serializes as `len(n) || n || len(e) || e` (big-endian u32
    /// lengths, minimal big-endian magnitudes).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_be_bytes();
        let e = self.e.to_be_bytes();
        let mut out = Vec::with_capacity(8 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses a key serialized by [`RsaPublicKey::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] on malformed input and
    /// [`CryptoError::InvalidKey`] if the decoded key is invalid.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let err = CryptoError::InvalidLength { context: "rsa public key" };
        if bytes.len() < 4 {
            return Err(err.clone());
        }
        let n_len = u32::from_be_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        if bytes.len() < 4 + n_len + 4 {
            return Err(err.clone());
        }
        let n = Uint::from_be_bytes(&bytes[4..4 + n_len]);
        let e_off = 4 + n_len;
        let e_len =
            u32::from_be_bytes(bytes[e_off..e_off + 4].try_into().expect("4 bytes")) as usize;
        if bytes.len() != e_off + 4 + e_len {
            return Err(err);
        }
        let e = Uint::from_be_bytes(&bytes[e_off + 4..]);
        RsaPublicKey::new(n, e)
    }

    /// Verifies a PKCS#1 v1.5 SHA-256 signature over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::SignatureInvalid`] if the signature does
    /// not verify, and [`CryptoError::InvalidLength`] if it has the
    /// wrong size for this key.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        let digest = sha256::digest(message);
        self.verify_digest(&digest, signature)
    }

    /// Verifies a signature over a precomputed SHA-256 digest.
    ///
    /// # Errors
    ///
    /// Same as [`RsaPublicKey::verify`].
    pub fn verify_digest(
        &self,
        digest: &sha256::Digest,
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        if signature.len() != self.modulus_len() {
            return Err(CryptoError::InvalidLength { context: "rsa signature" });
        }
        let s = Uint::from_be_bytes(signature);
        if s >= self.n {
            return Err(CryptoError::SignatureInvalid);
        }
        let em = self.mont.pow(&s, &self.e);
        let expected = emsa_pkcs1_v15(digest, self.modulus_len())?;
        let em_bytes =
            em.to_be_bytes_padded(self.modulus_len()).map_err(|_| CryptoError::SignatureInvalid)?;
        if ct::eq(&em_bytes, &expected) {
            Ok(())
        } else {
            Err(CryptoError::SignatureInvalid)
        }
    }
}

/// An RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: Uint,
    p: Uint,
    q: Uint,
    dp: Uint,
    dq: Uint,
    q_inv: Uint,
    mont_p: Montgomery,
    mont_q: Montgomery,
}

impl fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print private material.
        f.debug_struct("RsaPrivateKey")
            .field("bits", &self.public.n.bit_len())
            .field("fingerprint", &self.public.fingerprint().to_hex())
            .finish()
    }
}

impl RsaPrivateKey {
    /// Generates a fresh key with a modulus of `bits` bits.
    ///
    /// The paper uses RSA-3072 (the SGX SigStruct key size); tests use
    /// smaller keys for speed.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError::PrimeGenerationFailed`] (practically
    /// unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `bits < 512` or `bits` is odd.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> Result<Self, CryptoError> {
        assert!(bits >= 512, "modulus below 512 bits");
        assert!(bits.is_multiple_of(2), "modulus size must be even");
        let e = Uint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = prime::generate_prime(rng, bits / 2)?;
            let mut q = prime::generate_prime(rng, bits / 2)?;
            while q == p {
                q = prime::generate_prime(rng, bits / 2)?;
            }
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            let p1 = p.checked_sub(&Uint::one()).expect("p > 1");
            let q1 = q.checked_sub(&Uint::one()).expect("q > 1");
            let phi = &p1 * &q1;
            let Some(d) = e.mod_inv(&phi) else {
                continue; // gcd(e, phi) != 1; resample
            };
            let dp = d.rem_ref(&p1);
            let dq = d.rem_ref(&q1);
            let q_inv = q.mod_inv(&p).expect("p, q distinct primes");
            let public = RsaPublicKey::new(n, e.clone())?;
            let mont_p = Montgomery::new(&p)?;
            let mont_q = Montgomery::new(&q)?;
            return Ok(RsaPrivateKey { public, d, p, q, dp, dq, q_inv, mont_p, mont_q });
        }
    }

    /// The corresponding public key.
    #[must_use]
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Signs `message` with PKCS#1 v1.5 over SHA-256.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if the modulus is too
    /// small for the padding (impossible for keys ≥ 512 bits).
    pub fn sign(&self, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let digest = sha256::digest(message);
        self.sign_digest(&digest)
    }

    /// Signs a precomputed SHA-256 digest.
    ///
    /// # Errors
    ///
    /// Same as [`RsaPrivateKey::sign`].
    pub fn sign_digest(&self, digest: &sha256::Digest) -> Result<Vec<u8>, CryptoError> {
        self.sign_digest_impl(digest, true)
    }

    /// Signs with the exponentiation squarings on the general
    /// Montgomery multiplier instead of the dedicated squaring path —
    /// the pre-fast-path code, kept as the `ablation/mont-sqr`
    /// benchmark baseline and the reference for bit-identity tests.
    ///
    /// # Errors
    ///
    /// Same as [`RsaPrivateKey::sign`].
    pub fn sign_digest_mul_only(&self, digest: &sha256::Digest) -> Result<Vec<u8>, CryptoError> {
        self.sign_digest_impl(digest, false)
    }

    fn sign_digest_impl(
        &self,
        digest: &sha256::Digest,
        use_sqr: bool,
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let em = emsa_pkcs1_v15(digest, k)?;
        let m = Uint::from_be_bytes(&em);

        // CRT: m1 = m^dp mod p, m2 = m^dq mod q,
        //      h = q_inv (m1 - m2) mod p, s = m2 + h q.
        let (m1, m2) = if use_sqr {
            (self.mont_p.pow(&m, &self.dp), self.mont_q.pow(&m, &self.dq))
        } else {
            (self.mont_p.pow_mul_only(&m, &self.dp), self.mont_q.pow_mul_only(&m, &self.dq))
        };
        let diff = if m1 >= m2 {
            m1.checked_sub(&m2).expect("m1 >= m2")
        } else {
            // m1 - m2 mod p = m1 + p - (m2 mod p)
            let m2_mod_p = m2.rem_ref(&self.p);
            let t = m1.add_ref(&self.p);
            t.checked_sub(&m2_mod_p).expect("t >= m2 mod p")
        };
        let h = self.mont_p.mul(&diff, &self.q_inv);
        let s = m2.add_ref(&(&h * &self.q));

        debug_assert_eq!(s, m.mod_pow(&self.d, &self.public.n), "crt consistency");
        s.to_be_bytes_padded(k)
    }
}

impl RsaPublicKey {
    /// RSA-KEM encapsulation: picks a random `r < n`, sends `r^e mod n`
    /// and derives a 32-byte shared secret from `r`.
    ///
    /// Used by the secure channel to establish session keys (the
    /// stand-in for the TLS/wireguard key exchanges of the paper's
    /// systems).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] only on internal
    /// serialization failure (practically unreachable).
    pub fn kem_encapsulate<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<(Vec<u8>, [u8; 32]), CryptoError> {
        let r = crate::rng::uint_below(rng, &self.n);
        let ciphertext = self.mont.pow(&r, &self.e).to_be_bytes_padded(self.modulus_len())?;
        let shared = kem_kdf(&r, self.modulus_len())?;
        Ok((ciphertext, shared))
    }
}

impl RsaPrivateKey {
    /// RSA-KEM decapsulation: recovers `r` and re-derives the shared
    /// secret.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] for ciphertexts of the
    /// wrong size.
    pub fn kem_decapsulate(&self, ciphertext: &[u8]) -> Result<[u8; 32], CryptoError> {
        if ciphertext.len() != self.public.modulus_len() {
            return Err(CryptoError::InvalidLength { context: "rsa-kem ciphertext" });
        }
        let c = Uint::from_be_bytes(ciphertext);
        let r = c.mod_pow(&self.d, &self.public.n);
        kem_kdf(&r, self.public.modulus_len())
    }
}

/// Shared-secret derivation for RSA-KEM.
fn kem_kdf(r: &Uint, modulus_len: usize) -> Result<[u8; 32], CryptoError> {
    let bytes = r.to_be_bytes_padded(modulus_len)?;
    Ok(crate::hkdf::derive(b"rsa-kem", &bytes, b"shared-secret"))
}

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest for a `k`-byte modulus.
fn emsa_pkcs1_v15(digest: &sha256::Digest, k: usize) -> Result<Vec<u8>, CryptoError> {
    let t_len = SHA256_DIGEST_INFO.len() + sha256::DIGEST_LEN;
    if k < t_len + 11 {
        return Err(CryptoError::MessageTooLarge);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(SHA256_DIGEST_INFO);
    em.extend_from_slice(digest.as_bytes());
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key(seed: u64) -> RsaPrivateKey {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaPrivateKey::generate(&mut rng, 1024).expect("keygen")
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key(1);
        let sig = key.sign(b"the singleton page").unwrap();
        assert_eq!(sig.len(), key.public_key().modulus_len());
        key.public_key().verify(b"the singleton page", &sig).unwrap();
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let key = test_key(2);
        let sig = key.sign(b"original").unwrap();
        assert_eq!(key.public_key().verify(b"altered", &sig), Err(CryptoError::SignatureInvalid));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key(3);
        let mut sig = key.sign(b"message").unwrap();
        sig[10] ^= 0x40;
        assert_eq!(key.public_key().verify(b"message", &sig), Err(CryptoError::SignatureInvalid));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key_a = test_key(4);
        let key_b = test_key(5);
        let sig = key_a.sign(b"message").unwrap();
        assert!(key_b.public_key().verify(b"message", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let key = test_key(6);
        let sig = key.sign(b"m").unwrap();
        assert_eq!(
            key.public_key().verify(b"m", &sig[..sig.len() - 1]),
            Err(CryptoError::InvalidLength { context: "rsa signature" })
        );
    }

    #[test]
    fn signature_value_below_modulus_required() {
        let key = test_key(7);
        let n_bytes =
            key.public_key().modulus().to_be_bytes_padded(key.public_key().modulus_len()).unwrap();
        assert_eq!(key.public_key().verify(b"m", &n_bytes), Err(CryptoError::SignatureInvalid));
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let key = test_key(8);
        let bytes = key.public_key().to_bytes();
        let parsed = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&parsed, key.public_key());
        assert_eq!(parsed.fingerprint(), key.public_key().fingerprint());
    }

    #[test]
    fn public_key_from_bytes_rejects_garbage() {
        assert!(RsaPublicKey::from_bytes(&[]).is_err());
        assert!(RsaPublicKey::from_bytes(&[0, 0, 0, 200, 1, 2]).is_err());
        let key = test_key(9);
        let mut bytes = key.public_key().to_bytes();
        bytes.push(0); // trailing junk
        assert!(RsaPublicKey::from_bytes(&bytes).is_err());
    }

    #[test]
    fn fingerprints_are_distinct_per_key() {
        assert_ne!(
            test_key(10).public_key().fingerprint(),
            test_key(11).public_key().fingerprint()
        );
    }

    #[test]
    fn signing_is_deterministic() {
        let key = test_key(12);
        assert_eq!(key.sign(b"same input").unwrap(), key.sign(b"same input").unwrap());
    }

    #[test]
    fn sign_digest_matches_sign() {
        let key = test_key(13);
        let digest = sha256::digest(b"payload");
        assert_eq!(key.sign(b"payload").unwrap(), key.sign_digest(&digest).unwrap());
    }

    #[test]
    fn mont_sqr_signing_bit_identical_to_mul_only_path() {
        // The dedicated-squaring fast path is a pure optimization: the
        // signatures must match the mul-only baseline byte for byte.
        for seed in 30..33 {
            let key = test_key(seed);
            let digest = sha256::digest(&seed.to_le_bytes());
            assert_eq!(
                key.sign_digest(&digest).unwrap(),
                key.sign_digest_mul_only(&digest).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn emsa_layout() {
        let digest = sha256::digest(b"x");
        let em = emsa_pkcs1_v15(&digest, 128).unwrap();
        assert_eq!(em.len(), 128);
        assert_eq!(&em[..2], &[0x00, 0x01]);
        let sep = em.iter().skip(2).position(|&b| b == 0x00).unwrap() + 2;
        assert!(em[2..sep].iter().all(|&b| b == 0xff));
        assert_eq!(&em[em.len() - 32..], digest.as_bytes());
    }

    #[test]
    fn emsa_rejects_tiny_modulus() {
        let digest = sha256::digest(b"x");
        assert_eq!(emsa_pkcs1_v15(&digest, 32), Err(CryptoError::MessageTooLarge));
    }

    #[test]
    fn kem_roundtrip() {
        let key = test_key(20);
        let mut rng = StdRng::seed_from_u64(21);
        let (ct, shared_enc) = key.public_key().kem_encapsulate(&mut rng).unwrap();
        assert_eq!(ct.len(), key.public_key().modulus_len());
        let shared_dec = key.kem_decapsulate(&ct).unwrap();
        assert_eq!(shared_enc, shared_dec);
    }

    #[test]
    fn kem_fresh_secrets_per_encapsulation() {
        let key = test_key(22);
        let mut rng = StdRng::seed_from_u64(23);
        let (ct1, s1) = key.public_key().kem_encapsulate(&mut rng).unwrap();
        let (ct2, s2) = key.public_key().kem_encapsulate(&mut rng).unwrap();
        assert_ne!(ct1, ct2);
        assert_ne!(s1, s2);
    }

    #[test]
    fn kem_rejects_wrong_length() {
        let key = test_key(24);
        assert_eq!(
            key.kem_decapsulate(&[0u8; 10]),
            Err(CryptoError::InvalidLength { context: "rsa-kem ciphertext" })
        );
    }

    #[test]
    fn kem_wrong_key_derives_different_secret() {
        let key_a = test_key(25);
        let key_b = test_key(26);
        // Same modulus length so decapsulation runs but yields garbage.
        let mut rng = StdRng::seed_from_u64(27);
        let (ct, shared) = key_a.public_key().kem_encapsulate(&mut rng).unwrap();
        let wrong = key_b.kem_decapsulate(&ct).unwrap();
        assert_ne!(shared, wrong);
    }

    #[test]
    fn debug_output_hides_secrets() {
        let key = test_key(14);
        let rendered = format!("{key:?}");
        assert!(rendered.contains("fingerprint"));
        assert!(!rendered.contains(&key.d.to_hex()));
        assert!(!rendered.contains(&key.p.to_hex()));
    }
}
