//! Multi-precision division (Knuth TAOCP vol. 2, Algorithm D).

use super::Uint;

impl Uint {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem(&self, divisor: &Uint) -> (Uint, Uint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Uint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            return self.div_rem_limb(divisor.limbs[0]);
        }
        self.div_rem_knuth(divisor)
    }

    /// `self / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_ref(&self, divisor: &Uint) -> Uint {
        self.div_rem(divisor).0
    }

    /// `self % divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn rem_ref(&self, divisor: &Uint) -> Uint {
        self.div_rem(divisor).1
    }

    /// Fast path: divisor fits in one limb.
    fn div_rem_limb(&self, d: u64) -> (Uint, Uint) {
        debug_assert!(d != 0);
        let d128 = d as u128;
        let mut rem: u128 = 0;
        let mut q = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d128) as u64;
            rem = cur % d128;
        }
        (Uint::from_limbs(q), Uint::from_u64(rem as u64))
    }

    /// Algorithm D for divisors of two or more limbs.
    fn div_rem_knuth(&self, divisor: &Uint) -> (Uint, Uint) {
        // D1: normalize so the divisor's top bit is set.
        let shift = divisor.limbs.last().expect("non-empty").leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let n = v.len();
        debug_assert!(v[n - 1] >> 63 == 1);

        let mut u = self.shl(shift).limbs;
        // The dividend needs one extra high limb for the algorithm.
        let m = u.len().saturating_sub(n);
        u.push(0);

        let b = 1u128 << 64;
        let mut q = vec![0u64; m + 1];

        // D2-D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two dividend limbs.
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / v[n - 1] as u128;
            let mut rhat = top % v[n - 1] as u128;
            loop {
                if qhat >= b || qhat * v[n - 2] as u128 > (rhat << 64) + u[j + n - 2] as u128 {
                    qhat -= 1;
                    rhat += v[n - 1] as u128;
                    if rhat < b {
                        continue;
                    }
                }
                break;
            }

            // D4: multiply and subtract u[j..j+n] -= qhat * v.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let product = qhat * v[i] as u128 + carry;
                carry = product >> 64;
                let sub = u[j + i] as i128 - (product as u64) as i128 + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = sub as u64;
            let went_negative = sub < 0;

            q[j] = qhat as u64;

            // D6: add back if we overshot (probability ~2/2^64).
            if went_negative {
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = t as u64;
                    carry = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
        }

        // D8: denormalize the remainder.
        let rem = Uint::from_limbs(u[..n].to_vec()).shr(shift);
        (Uint::from_limbs(q), rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_division() {
        let a = Uint::from_u64(100);
        let b = Uint::from_u64(7);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, Uint::from_u64(14));
        assert_eq!(r, Uint::from_u64(2));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let a = Uint::from_u64(3);
        let b = Uint::from_hex("ffffffffffffffffff").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn exact_division() {
        let b = Uint::from_hex("1000000000000000000000001").unwrap();
        let a = &b * &Uint::from_u64(123_456_789);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, Uint::from_u64(123_456_789));
        assert!(r.is_zero());
    }

    #[test]
    fn multi_limb_division_known_values() {
        // 2^256 - 1 divided by 2^128 - 1 equals 2^128 + 1 exactly.
        let a = Uint::one().shl(256).checked_sub(&Uint::one()).unwrap();
        let b = Uint::one().shl(128).checked_sub(&Uint::one()).unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, Uint::one().shl(128).add_ref(&Uint::one()));
        assert!(r.is_zero());
    }

    #[test]
    fn division_triggering_qhat_correction() {
        // Constructed so the initial qhat estimate must be corrected:
        // top divisor limb is 2^63 (minimal normalized), dividend top
        // limbs force qhat = b-1 overshoot.
        let v = Uint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let u = Uint::from_limbs(vec![u64::MAX, u64::MAX, 0x7fff_ffff_ffff_ffff]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Uint::one().div_rem(&Uint::zero());
    }

    fn arb_uint(max_limbs: usize) -> impl Strategy<Value = Uint> {
        proptest::collection::vec(any::<u64>(), 0..max_limbs).prop_map(Uint::from_limbs)
    }

    proptest! {
        #[test]
        fn prop_div_rem_identity(a in arb_uint(8), b in arb_uint(5)) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(&(&q * &b) + &r, a);
        }

        #[test]
        fn prop_div_by_one(a in arb_uint(8)) {
            let (q, r) = a.div_rem(&Uint::one());
            prop_assert_eq!(q, a);
            prop_assert!(r.is_zero());
        }

        #[test]
        fn prop_self_division(a in arb_uint(8)) {
            prop_assume!(!a.is_zero());
            let (q, r) = a.div_rem(&a);
            prop_assert!(q.is_one());
            prop_assert!(r.is_zero());
        }

        #[test]
        fn prop_u128_agreement(x in any::<u128>(), y in any::<u128>()) {
            prop_assume!(y != 0);
            let a = Uint::from_be_bytes(&x.to_be_bytes());
            let b = Uint::from_be_bytes(&y.to_be_bytes());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(q, Uint::from_be_bytes(&(x / y).to_be_bytes()));
            prop_assert_eq!(r, Uint::from_be_bytes(&(x % y).to_be_bytes()));
        }
    }
}
