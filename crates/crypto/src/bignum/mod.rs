//! Arbitrary-precision unsigned integers.
//!
//! A minimal but complete big-integer library sized for RSA-3072: the
//! SGX SigStruct is signed with RSA-3072 PKCS#1 v1.5 (§2.2.2 of the
//! paper), and SinClave's on-demand SigStruct creation re-signs one per
//! singleton enclave, so signing performance appears directly in
//! Fig. 7b/7c.
//!
//! Representation: little-endian `u64` limbs, always *normalized* (no
//! trailing zero limbs; zero is the empty limb vector). All arithmetic
//! is value-semantics over `&self`; operators are provided for
//! ergonomics where allocation is unavoidable anyway.

mod div;
mod modular;

pub use modular::Montgomery;

use crate::error::CryptoError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Rem, Sub};

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use sinclave_crypto::bignum::Uint;
///
/// let a = Uint::from_u64(1 << 40);
/// let b = Uint::from_u64(12345);
/// assert_eq!((&a * &b + &b).rem_ref(&a), b);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Uint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    pub(crate) limbs: Vec<u64>,
}

impl Uint {
    /// The value 0.
    #[must_use]
    pub fn zero() -> Self {
        Uint { limbs: Vec::new() }
    }

    /// The value 1.
    #[must_use]
    pub fn one() -> Self {
        Uint { limbs: vec![1] }
    }

    /// Creates a `Uint` from a `u64`.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Uint::zero()
        } else {
            Uint { limbs: vec![v] }
        }
    }

    /// Creates a `Uint` from little-endian limbs, normalizing.
    #[must_use]
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut u = Uint { limbs };
        u.normalize();
        u
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Parses a big-endian byte string (leading zeros allowed).
    #[must_use]
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = [0u8; 8];
            limb[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(limb));
        }
        Uint::from_limbs(limbs)
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    #[must_use]
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padding with
    /// zeros.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLarge`] if the value does not
    /// fit in `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Result<Vec<u8>, CryptoError> {
        let raw = self.to_be_bytes();
        if raw.len() > len {
            return Err(CryptoError::MessageTooLarge);
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] on non-hex characters or
    /// an empty string.
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        if s.is_empty() {
            return Err(CryptoError::InvalidLength { context: "hex uint" });
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let raw = s.as_bytes();
        let mut idx = 0;
        if raw.len() % 2 == 1 {
            bytes.push(hex_nibble(raw[0])?);
            idx = 1;
        }
        while idx < raw.len() {
            bytes.push(hex_nibble(raw[idx])? << 4 | hex_nibble(raw[idx + 1])?);
            idx += 2;
        }
        Ok(Uint::from_be_bytes(&bytes))
    }

    /// Renders as minimal lowercase hex (`"0"` for zero).
    #[must_use]
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let bytes = self.to_be_bytes();
        let mut s: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        if s.starts_with('0') {
            s.remove(0);
        }
        s
    }

    /// Whether the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the value is odd (false for zero).
    #[must_use]
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Whether the value is even (true for zero).
    #[must_use]
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to one.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << (i % 64);
    }

    /// Converts to `u64` if the value fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// `self + rhs`.
    #[must_use]
    pub fn add_ref(&self, rhs: &Uint) -> Uint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Uint::from_limbs(out)
    }

    /// `self - rhs`, or `None` if it would underflow.
    #[must_use]
    pub fn checked_sub(&self, rhs: &Uint) -> Option<Uint> {
        if self < rhs {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Uint::from_limbs(out))
    }

    /// `self * rhs` (schoolbook multiplication).
    #[must_use]
    pub fn mul_ref(&self, rhs: &Uint) -> Uint {
        if self.is_zero() || rhs.is_zero() {
            return Uint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Uint::from_limbs(out)
    }

    /// `self << bits`.
    #[must_use]
    pub fn shl(&self, bits: usize) -> Uint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = (bits % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Uint::from_limbs(out)
    }

    /// `self >> bits`.
    #[must_use]
    pub fn shr(&self, bits: usize) -> Uint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Uint::zero();
        }
        let bit_shift = (bits % 64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        Uint::from_limbs(out)
    }

    /// Greatest common divisor (binary GCD).
    #[must_use]
    pub fn gcd(&self, rhs: &Uint) -> Uint {
        let mut a = self.clone();
        let mut b = rhs.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_twos = a.trailing_zeros();
        let b_twos = b.trailing_zeros();
        let common_twos = a_twos.min(b_twos);
        a = a.shr(a_twos);
        b = b.shr(b_twos);
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).expect("b >= a");
            if b.is_zero() {
                return a.shl(common_twos);
            }
            b = b.shr(b.trailing_zeros());
        }
    }

    /// Number of trailing zero bits (0 for zero to keep callers total).
    #[must_use]
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }
}

fn hex_nibble(c: u8) -> Result<u8, CryptoError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(CryptoError::InvalidLength { context: "hex uint" }),
    }
}

impl PartialOrd for Uint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Uint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint(0x{})", self.to_hex())
    }
}

impl fmt::Display for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for Uint {
    fn from(v: u64) -> Self {
        Uint::from_u64(v)
    }
}

impl Add for &Uint {
    type Output = Uint;
    fn add(self, rhs: &Uint) -> Uint {
        self.add_ref(rhs)
    }
}

impl Add<&Uint> for Uint {
    type Output = Uint;
    fn add(self, rhs: &Uint) -> Uint {
        self.add_ref(rhs)
    }
}

impl Sub for &Uint {
    type Output = Uint;
    /// # Panics
    /// Panics on underflow; use [`Uint::checked_sub`] to handle it.
    fn sub(self, rhs: &Uint) -> Uint {
        self.checked_sub(rhs).expect("uint subtraction underflow")
    }
}

impl Mul for &Uint {
    type Output = Uint;
    fn mul(self, rhs: &Uint) -> Uint {
        self.mul_ref(rhs)
    }
}

impl Rem for &Uint {
    type Output = Uint;
    fn rem(self, rhs: &Uint) -> Uint {
        self.rem_ref(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_and_one_basics() {
        assert!(Uint::zero().is_zero());
        assert!(Uint::one().is_one());
        assert!(Uint::zero().is_even());
        assert!(Uint::one().is_odd());
        assert_eq!(Uint::zero().bit_len(), 0);
        assert_eq!(Uint::one().bit_len(), 1);
        assert_eq!(Uint::zero().to_hex(), "0");
    }

    #[test]
    fn byte_roundtrip() {
        let v = Uint::from_be_bytes(&[0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(v.to_be_bytes(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(v.to_be_bytes_padded(12).unwrap(), vec![0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert!(v.to_be_bytes_padded(4).is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let v = Uint::from_hex("deadbeefcafebabe1234567890").unwrap();
        assert_eq!(v.to_hex(), "deadbeefcafebabe1234567890");
        assert_eq!(Uint::from_hex(&v.to_hex()).unwrap(), v);
        assert!(Uint::from_hex("").is_err());
        assert!(Uint::from_hex("xy").is_err());
        // Odd-length hex works.
        assert_eq!(Uint::from_hex("f").unwrap(), Uint::from_u64(15));
    }

    #[test]
    fn add_sub_small() {
        let a = Uint::from_u64(u64::MAX);
        let b = Uint::from_u64(1);
        let sum = &a + &b;
        assert_eq!(sum.to_hex(), "10000000000000000");
        assert_eq!(&sum - &b, a);
        assert_eq!(a.checked_sub(&sum), None);
    }

    #[test]
    fn mul_small() {
        let a = Uint::from_u64(u64::MAX);
        let sq = &a * &a;
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
        assert_eq!(&a * &Uint::zero(), Uint::zero());
        assert_eq!(&a * &Uint::one(), a);
    }

    #[test]
    fn shifts() {
        let a = Uint::from_u64(1);
        assert_eq!(a.shl(127).to_hex(), "80000000000000000000000000000000");
        assert_eq!(a.shl(127).shr(127), a);
        assert_eq!(a.shr(1), Uint::zero());
        let b = Uint::from_hex("123456789abcdef0123456789abcdef").unwrap();
        assert_eq!(b.shl(0), b);
        assert_eq!(b.shl(64).shr(64), b);
        assert_eq!(b.shl(3).shr(3), b);
    }

    #[test]
    fn bits() {
        let mut v = Uint::zero();
        v.set_bit(200);
        assert!(v.bit(200));
        assert!(!v.bit(199));
        assert_eq!(v.bit_len(), 201);
        assert_eq!(v, Uint::one().shl(200));
    }

    #[test]
    fn ordering() {
        let a = Uint::from_hex("ffffffffffffffff").unwrap();
        let b = Uint::from_hex("10000000000000000").unwrap();
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn gcd_examples() {
        let a = Uint::from_u64(48);
        let b = Uint::from_u64(36);
        assert_eq!(a.gcd(&b), Uint::from_u64(12));
        assert_eq!(a.gcd(&Uint::zero()), a);
        assert_eq!(Uint::zero().gcd(&b), b);
        let p = Uint::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff").unwrap();
        assert_eq!(p.gcd(&Uint::one()), Uint::one());
    }

    fn arb_uint() -> impl Strategy<Value = Uint> {
        proptest::collection::vec(any::<u64>(), 0..6).prop_map(Uint::from_limbs)
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_uint(), b in arb_uint()) {
            prop_assert_eq!(&a + &b, &b + &a);
        }

        #[test]
        fn prop_add_sub_roundtrip(a in arb_uint(), b in arb_uint()) {
            prop_assert_eq!(&(&a + &b) - &b, a);
        }

        #[test]
        fn prop_mul_commutative(a in arb_uint(), b in arb_uint()) {
            prop_assert_eq!(&a * &b, &b * &a);
        }

        #[test]
        fn prop_mul_distributes(a in arb_uint(), b in arb_uint(), c in arb_uint()) {
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn prop_bytes_roundtrip(a in arb_uint()) {
            prop_assert_eq!(Uint::from_be_bytes(&a.to_be_bytes()), a);
        }

        #[test]
        fn prop_shift_is_mul_by_power_of_two(a in arb_uint(), s in 0usize..130) {
            prop_assert_eq!(a.shl(s), &a * &Uint::one().shl(s));
        }

        #[test]
        fn prop_u64_agreement(x in any::<u64>(), y in any::<u64>()) {
            let a = Uint::from_u64(x);
            let b = Uint::from_u64(y);
            prop_assert_eq!(&a + &b, Uint::from_be_bytes(&(x as u128 + y as u128).to_be_bytes()));
            prop_assert_eq!(&a * &b, Uint::from_be_bytes(&(x as u128 * y as u128).to_be_bytes()));
        }
    }
}
