//! Modular arithmetic: Montgomery multiplication, exponentiation and
//! modular inverse — the hot path of RSA signing (Fig. 7b).

use super::Uint;
use crate::error::CryptoError;

/// Precomputed Montgomery context for a fixed odd modulus.
///
/// Construct once per key with [`Montgomery::new`] and reuse for many
/// exponentiations (the CAS signs one SigStruct per singleton enclave,
/// always under the same signer key).
#[derive(Clone, Debug)]
pub struct Montgomery {
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n` where `R = 2^(64 * limbs)`.
    r2: Vec<u64>,
    /// `R mod n` — the Montgomery form of 1, precomputed once per key
    /// so exponentiation never re-derives it per call.
    r1: Vec<u64>,
}

impl Montgomery {
    /// Creates a context for an odd modulus greater than one.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] if the modulus is even or
    /// not greater than one (Montgomery reduction requires
    /// `gcd(n, 2^64) = 1`).
    pub fn new(modulus: &Uint) -> Result<Self, CryptoError> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return Err(CryptoError::InvalidKey {
                context: "montgomery modulus must be odd and > 1",
            });
        }
        let k = modulus.limbs.len();
        let n0_inv = inv_mod_u64(modulus.limbs[0]).wrapping_neg();
        // R^2 mod n computed by shifting: R mod n, then double 64*k times.
        let r = Uint::one().shl(64 * k).rem_ref(modulus);
        let mut r2 = r.clone();
        for _ in 0..64 * k {
            r2 = r2.shl(1);
            if &r2 >= modulus {
                r2 = r2.checked_sub(modulus).expect("r2 >= modulus");
            }
        }
        let mut n_limbs = modulus.limbs.clone();
        n_limbs.shrink_to_fit();
        Ok(Montgomery { n: n_limbs, n0_inv, r2: pad(&r2, k), r1: pad(&r, k) })
    }

    /// Number of limbs of the modulus.
    fn k(&self) -> usize {
        self.n.len()
    }

    /// Montgomery product `a * b * R^{-1} mod n` (CIOS method).
    ///
    /// Kept out-of-line (like [`mont_sqr`]) so the exponentiation loop
    /// alternates between two compact hot loops instead of one huge
    /// inlined body — measurably faster on small I-cache cores.
    ///
    /// [`mont_sqr`]: Montgomery::mont_sqr
    #[inline(never)]
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        let mut t = vec![0u64; k + 2];
        for &ai in a {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1].wrapping_add((s >> 64) as u64);
            t[k + 1] = 0;
        }
        t.truncate(k + 1);
        // Conditional final subtraction.
        if ge(&t, &self.n) {
            sub_in_place(&mut t, &self.n);
        }
        t.truncate(k);
        t
    }

    /// Montgomery squaring `a * a * R^{-1} mod n` (SOS method).
    ///
    /// Squarings dominate windowed exponentiation (four per 4-bit
    /// window versus at most one table multiply), so they get a
    /// dedicated path: the cross products `a[i] * a[j]` with `i < j`
    /// are computed once and doubled by a single shift instead of
    /// being materialized twice as general multiplication does —
    /// nearly halving the single-precision multiplies per squaring.
    #[inline(never)]
    fn mont_sqr(&self, a: &[u64]) -> Vec<u64> {
        let k = self.k();
        debug_assert_eq!(a.len(), k);
        // Cross-product rows: c[i + j] accumulates a[i] * a[j] for
        // i < j, each partial product touched exactly once. Inner
        // loops run over zipped subslices so the compiler drops the
        // per-limb bounds checks — at CRT half-width the checks
        // otherwise eat the multiply savings.
        let mut c = vec![0u64; 2 * k];
        for i in 0..k {
            let ai = a[i];
            let start = 2 * i + 1;
            let mut carry = 0u128;
            for (cij, &aj) in c[start..i + k].iter_mut().zip(&a[i + 1..]) {
                let s = *cij as u128 + ai as u128 * aj as u128 + carry;
                *cij = s as u64;
                carry = s >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let s = c[idx] as u128 + carry;
                c[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }

        // Montgomery reduction fused with the doubling and the
        // diagonal squares: the true product limb at position `i` is
        //     2 * c[i] (one shifted read — no doubling pass)
        //   + the low/high half of a[i/2]^2
        //   + the reduction rows accumulated in `r`
        //   + the running combination carry,
        // assembled on the fly exactly when the reduction needs it.
        // This saves a full read-modify-write sweep (and its serial
        // carry chain) over the double-width product.
        let mut r = vec![0u64; 2 * k + 1];
        let mut comb = 0u128;
        let mut sq = 0u128;
        for i in 0..k {
            let doubled = (c[i] << 1) | if i == 0 { 0 } else { c[i - 1] >> 63 };
            let diag = if i % 2 == 0 {
                sq = a[i / 2] as u128 * a[i / 2] as u128;
                sq as u64
            } else {
                (sq >> 64) as u64
            };
            let v = r[i] as u128 + doubled as u128 + diag as u128 + comb;
            comb = v >> 64;
            let m = (v as u64).wrapping_mul(self.n0_inv);
            // Row add m * n; the low limb cancels by construction.
            let s = v as u64 as u128 + m as u128 * self.n[0] as u128;
            debug_assert_eq!(s as u64, 0);
            let mut carry = s >> 64;
            for (rj, &nj) in r[i + 1..i + k].iter_mut().zip(&self.n[1..]) {
                let s = *rj as u128 + m as u128 * nj as u128 + carry;
                *rj = s as u64;
                carry = s >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let s = r[idx] as u128 + carry;
                r[idx] = s as u64;
                carry = s >> 64;
                idx += 1;
            }
        }
        // High half: combine reduction rows, doubled cross products,
        // diagonals and the carry into the result limbs.
        let mut out = Vec::with_capacity(k + 1);
        for p in k..=2 * k {
            let doubled =
                if p < 2 * k { (c[p] << 1) | (c[p - 1] >> 63) } else { c[2 * k - 1] >> 63 };
            let diag = if p % 2 == 0 {
                if p / 2 < k {
                    sq = a[p / 2] as u128 * a[p / 2] as u128;
                    sq as u64
                } else {
                    0
                }
            } else {
                (sq >> 64) as u64
            };
            let v = r[p] as u128 + doubled as u128 + diag as u128 + comb;
            out.push(v as u64);
            comb = v >> 64;
        }
        debug_assert_eq!(comb, 0);
        if ge(&out, &self.n) {
            sub_in_place(&mut out, &self.n);
        }
        out.truncate(k);
        out
    }

    /// Converts into Montgomery form.
    fn to_mont(&self, a: &Uint) -> Vec<u64> {
        let reduced = a.rem_ref(&Uint::from_limbs(self.n.clone()));
        self.mont_mul(&pad(&reduced, self.k()), &self.r2)
    }

    /// Converts out of Montgomery form.
    #[allow(clippy::wrong_self_convention)] // "from Montgomery form", not a constructor
    fn from_mont(&self, a: &[u64]) -> Uint {
        let mut one = vec![0u64; self.k()];
        one[0] = 1;
        Uint::from_limbs(self.mont_mul(a, &one))
    }

    /// Modular multiplication `a * b mod n`.
    #[must_use]
    pub fn mul(&self, a: &Uint, b: &Uint) -> Uint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` using a 4-bit window,
    /// with the window squarings on the dedicated [`mont_sqr`] path.
    ///
    /// [`mont_sqr`]: Montgomery::mont_sqr
    #[must_use]
    pub fn pow(&self, base: &Uint, exp: &Uint) -> Uint {
        self.pow_impl(base, exp, true)
    }

    /// [`Montgomery::pow`] with squarings performed by the general
    /// multiplier instead of [`mont_sqr`] — the pre-fast-path code,
    /// kept as the `ablation/mont-sqr` benchmark baseline and as the
    /// reference implementation for bit-identity property tests.
    ///
    /// [`mont_sqr`]: Montgomery::mont_sqr
    #[must_use]
    pub fn pow_mul_only(&self, base: &Uint, exp: &Uint) -> Uint {
        self.pow_impl(base, exp, false)
    }

    fn pow_impl(&self, base: &Uint, exp: &Uint, use_sqr: bool) -> Uint {
        if exp.is_zero() {
            return Uint::one().rem_ref(&Uint::from_limbs(self.n.clone()));
        }
        let base_m = self.to_mont(base);

        // Precompute base^0..base^15 in Montgomery form; base^0 is the
        // per-key precomputed R mod n.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone());
        for i in 1..16 {
            let next = self.mont_mul(&table[i - 1], &base_m);
            table.push(next);
        }

        let bits = exp.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = table[0].clone(); // 1 in Montgomery form
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..4 {
                    acc = if use_sqr { self.mont_sqr(&acc) } else { self.mont_mul(&acc, &acc) };
                }
            }
            let mut idx = 0usize;
            for b in 0..4 {
                let bit_pos = w * 4 + (3 - b);
                idx <<= 1;
                if bit_pos < bits && exp.bit(bit_pos) {
                    idx |= 1;
                }
            }
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
                started = true;
            } else if started {
                // Multiply by 1 (no-op) — keep timing uniform-ish.
            } else {
                // Leading zero windows before the first set bit.
            }
        }
        self.from_mont(&acc)
    }

    /// Modular squaring `a^2 mod n` on the dedicated squaring path.
    #[must_use]
    pub fn sqr(&self, a: &Uint) -> Uint {
        let am = self.to_mont(a);
        self.from_mont(&self.mont_sqr(&am))
    }
}

/// `a >= b` for equal-length limb slices interpreted little-endian,
/// where `a` may be one limb longer.
fn ge(a: &[u64], b: &[u64]) -> bool {
    if a.len() > b.len() && a[b.len()..].iter().any(|&l| l != 0) {
        return true;
    }
    for i in (0..b.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

/// `a -= b` in place; `a` may be longer than `b`.
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, ai) in a.iter_mut().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = ai.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *ai = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
}

fn pad(u: &Uint, k: usize) -> Vec<u64> {
    let mut v = u.limbs.clone();
    assert!(v.len() <= k, "value wider than modulus");
    v.resize(k, 0);
    v
}

/// Inverse of an odd `x` modulo 2^64 (Newton iteration).
fn inv_mod_u64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

impl Uint {
    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Uses Montgomery multiplication for odd moduli and falls back to
    /// plain square-and-multiply with division for even moduli.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    #[must_use]
    pub fn mod_pow(&self, exp: &Uint, modulus: &Uint) -> Uint {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus.is_one() {
            return Uint::zero();
        }
        if modulus.is_odd() {
            let mont = Montgomery::new(modulus).expect("odd modulus > 1");
            return mont.pow(self, exp);
        }
        // Even modulus: plain binary exponentiation (rare path, used
        // only by tests; RSA moduli are odd).
        let mut result = Uint::one();
        let mut base = self.rem_ref(modulus);
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = (&result * &base).rem_ref(modulus);
            }
            base = (&base * &base).rem_ref(modulus);
        }
        result
    }

    /// Modular inverse `self^{-1} mod modulus`, or `None` when it does
    /// not exist (`gcd(self, modulus) != 1`).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or one.
    #[must_use]
    pub fn mod_inv(&self, modulus: &Uint) -> Option<Uint> {
        assert!(!modulus.is_zero() && !modulus.is_one(), "invalid modulus");
        // Extended Euclid with sign tracking on the Bezout coefficient.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem_ref(modulus);
        if r1.is_zero() {
            return None;
        }
        // t0 + s0*x = r0 (mod m) invariant, signs tracked separately.
        let mut t0 = (Uint::zero(), false); // (magnitude, negative?)
        let mut t1 = (Uint::one(), false);

        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            // t = t0 - q * t1 (signed)
            let qt1 = &q * &t1.0;
            let t = signed_sub(&t0, &(qt1, t1.1));
            r0 = std::mem::replace(&mut r1, r);
            t0 = std::mem::replace(&mut t1, t);
        }

        if !r0.is_one() {
            return None;
        }
        let (mag, neg) = t0;
        let mag = mag.rem_ref(modulus);
        Some(if neg && !mag.is_zero() {
            modulus.checked_sub(&mag).expect("mag < modulus")
        } else {
            mag
        })
    }
}

/// Signed subtraction `a - b` over (magnitude, negative?) pairs.
fn signed_sub(a: &(Uint, bool), b: &(Uint, bool)) -> (Uint, bool) {
    match (a.1, b.1) {
        // a - b with both positive.
        (false, false) => match a.0.checked_sub(&b.0) {
            Some(d) => (d, false),
            None => (b.0.checked_sub(&a.0).expect("b > a"), true),
        },
        // (-a) - (-b) = b - a.
        (true, true) => match b.0.checked_sub(&a.0) {
            Some(d) => (d, false),
            None => (a.0.checked_sub(&b.0).expect("a > b"), true),
        },
        // a - (-b) = a + b.
        (false, true) => (a.0.add_ref(&b.0), false),
        // (-a) - b = -(a + b).
        (true, false) => (a.0.add_ref(&b.0), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn inv_mod_u64_examples() {
        for x in [1u64, 3, 5, 0xdead_beef_1234_5679, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv_mod_u64(x)), 1, "x = {x}");
        }
    }

    #[test]
    fn montgomery_rejects_even_modulus() {
        assert!(Montgomery::new(&Uint::from_u64(10)).is_err());
        assert!(Montgomery::new(&Uint::from_u64(1)).is_err());
        assert!(Montgomery::new(&Uint::zero()).is_err());
    }

    #[test]
    fn mont_mul_matches_naive() {
        let n = Uint::from_hex("f123456789abcdef0123456789abcdef1").unwrap();
        let mont = Montgomery::new(&n).unwrap();
        let a = Uint::from_hex("abcdef0123456789").unwrap();
        let b = Uint::from_hex("123456789abcdef01234").unwrap();
        assert_eq!(mont.mul(&a, &b), (&a * &b).rem_ref(&n));
    }

    #[test]
    fn mod_pow_small_values() {
        let m = Uint::from_u64(1_000_000_007);
        assert_eq!(Uint::from_u64(2).mod_pow(&Uint::from_u64(10), &m), Uint::from_u64(1024));
        // Fermat: a^(p-1) = 1 mod p.
        assert_eq!(Uint::from_u64(31337).mod_pow(&Uint::from_u64(1_000_000_006), &m), Uint::one());
    }

    #[test]
    fn mod_pow_zero_exponent_and_base() {
        let m = Uint::from_u64(97);
        assert_eq!(Uint::from_u64(5).mod_pow(&Uint::zero(), &m), Uint::one());
        assert_eq!(Uint::zero().mod_pow(&Uint::from_u64(5), &m), Uint::zero());
        assert_eq!(Uint::from_u64(5).mod_pow(&Uint::from_u64(3), &Uint::one()), Uint::zero());
    }

    #[test]
    fn mod_pow_even_modulus_fallback() {
        let m = Uint::from_u64(100);
        assert_eq!(Uint::from_u64(7).mod_pow(&Uint::from_u64(3), &m), Uint::from_u64(43));
    }

    #[test]
    fn mod_pow_large_modulus() {
        // 2^255 - 19 is prime; check Fermat's little theorem for it.
        let p = Uint::one().shl(255).checked_sub(&Uint::from_u64(19)).unwrap();
        let a = Uint::from_hex("123456789abcdef123456789abcdef123456789abcdef").unwrap();
        let p_minus_1 = p.checked_sub(&Uint::one()).unwrap();
        assert_eq!(a.mod_pow(&p_minus_1, &p), Uint::one());
    }

    #[test]
    fn mod_inv_examples() {
        let m = Uint::from_u64(97);
        let inv = Uint::from_u64(31).mod_inv(&m).unwrap();
        assert_eq!((&inv * &Uint::from_u64(31)).rem_ref(&m), Uint::one());
        // 0 and non-coprime values have no inverse.
        assert!(Uint::zero().mod_inv(&m).is_none());
        assert!(Uint::from_u64(6).mod_inv(&Uint::from_u64(9)).is_none());
    }

    #[test]
    fn mod_inv_large() {
        let p = Uint::one().shl(255).checked_sub(&Uint::from_u64(19)).unwrap();
        let a = Uint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        let inv = a.mod_inv(&p).unwrap();
        assert_eq!((&inv * &a).rem_ref(&p), Uint::one());
    }

    /// Deterministic pseudo-random value of `limbs` limbs (RSA-width
    /// coverage the small proptest strategies do not reach).
    fn wide(limbs: usize, mut x: u64) -> Uint {
        let mut v = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.push(x);
        }
        Uint::from_limbs(v)
    }

    #[test]
    fn sqr_and_pow_agree_at_rsa_width() {
        // 1536-bit odd modulus — the width of one RSA-3072 CRT half.
        let mut m = wide(24, 1);
        m.set_bit(0);
        let mont = Montgomery::new(&m).unwrap();
        let a = wide(24, 2).rem_ref(&m);
        assert_eq!(mont.sqr(&a), (&a * &a).rem_ref(&m));
        let e = wide(24, 3);
        assert_eq!(mont.pow(&a, &e), mont.pow_mul_only(&a, &e));
    }

    fn arb_uint(max_limbs: usize) -> impl Strategy<Value = Uint> {
        proptest::collection::vec(any::<u64>(), 0..max_limbs).prop_map(Uint::from_limbs)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_mont_mul_matches_division(
            a in arb_uint(5),
            b in arb_uint(5),
            mut m in arb_uint(5),
        ) {
            m.set_bit(0); // force odd
            prop_assume!(!m.is_one());
            let mont = Montgomery::new(&m).unwrap();
            prop_assert_eq!(mont.mul(&a, &b), (&a * &b).rem_ref(&m));
        }

        #[test]
        fn prop_pow_addition_law(
            a in arb_uint(3),
            e1 in 0u64..512,
            e2 in 0u64..512,
            mut m in arb_uint(3),
        ) {
            m.set_bit(0);
            prop_assume!(!m.is_one());
            let mont = Montgomery::new(&m).unwrap();
            let lhs = mont.pow(&a, &Uint::from_u64(e1 + e2));
            let rhs = (&mont.pow(&a, &Uint::from_u64(e1)) * &mont.pow(&a, &Uint::from_u64(e2))).rem_ref(&m);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_sqr_matches_mul_and_division(a in arb_uint(5), mut m in arb_uint(5)) {
            m.set_bit(0); // force odd
            prop_assume!(!m.is_one());
            let mont = Montgomery::new(&m).unwrap();
            let sq = mont.sqr(&a);
            prop_assert_eq!(&sq, &mont.mul(&a, &a));
            prop_assert_eq!(sq, (&a * &a).rem_ref(&m));
        }

        #[test]
        fn prop_pow_bit_identical_to_mul_only_path(
            a in arb_uint(4),
            e in arb_uint(2),
            mut m in arb_uint(4),
        ) {
            m.set_bit(0);
            prop_assume!(!m.is_one());
            let mont = Montgomery::new(&m).unwrap();
            prop_assert_eq!(mont.pow(&a, &e), mont.pow_mul_only(&a, &e));
        }

        #[test]
        fn prop_inverse_multiplies_to_one(a in arb_uint(4), mut m in arb_uint(4)) {
            m.set_bit(0);
            m.set_bit(80); // ensure m > 1 and reasonably big
            if let Some(inv) = a.mod_inv(&m) {
                prop_assert_eq!((&inv * &a).rem_ref(&m), Uint::one());
                prop_assert!(inv < m);
            } else {
                prop_assert!(!a.gcd(&m).is_one() || a.rem_ref(&m).is_zero());
            }
        }
    }
}
